//! The HTTP serving plane under churn — the stack paths bulk transfer
//! never exercises:
//!
//! * an accept **burst into a full listen backlog** sheds SYNs at the
//!   listener (BSD semantics: counted, no RST, **no TCB allocated**) and
//!   leaves no stuck state behind once the burst drains;
//! * **close-per-request churn** across thousands of sequential
//!   connections cycles ephemeral ports through TIME_WAIT quarantine
//!   without exhausting the socket table;
//! * the open-loop fleet scenario is **byte-identical at workers=1/2/4**
//!   (the sharding determinism contract extends to the new workload).

mod testutil;

use capnet::scenario::ScenarioSpec;
use capnet_httpd::{FleetConfig, HttpServerConfig};
use chos::fdtable::Fd;
use fstack::socket::SockType;
use simkern::time::SimDuration;
use testutil::{Side, TwoHost};

const PORT: u16 = 8080;

/// A burst of 10 simultaneous SYNs into a listener whose backlog holds 3:
/// exactly 3 connections establish, every excess SYN is dropped *and
/// counted* without allocating a TCB, and after the burst drains the
/// server's socket table is back to just the listener.
#[test]
fn accept_burst_overflows_backlog_without_stuck_tcbs() {
    let mut net = TwoHost::new(0xACCE57);
    let lfd = net.stack(Side::B).ff_socket(SockType::Stream).unwrap();
    net.stack(Side::B).ff_bind(lfd, PORT).unwrap();
    net.stack(Side::B).ff_listen(lfd, 3).unwrap();

    // Launch the whole burst in one instant; nobody accepts yet.
    let mut cfds: Vec<Fd> = Vec::new();
    for _ in 0..10 {
        let fd = net.stack(Side::A).ff_socket(SockType::Stream).unwrap();
        let now = net.now;
        net.stack(Side::A)
            .ff_connect(fd, (testutil::IP_B, PORT), now)
            .unwrap();
        cfds.push(fd);
    }
    for _ in 0..2_000 {
        net.tick();
    }

    let (incomplete, ready) = net.stack(Side::B).listen_queue_depths(lfd).unwrap();
    assert_eq!(
        incomplete + ready,
        3,
        "the combined accept queue is capped at the backlog"
    );
    let drops = net.stack(Side::B).stats().listen_drops;
    assert!(
        drops >= 7,
        "7 of 10 SYNs (plus their retransmissions) must be shed, got {drops}"
    );
    // The hardening under test: a shed SYN allocates nothing, so the
    // server holds exactly the listener plus the 3 queued connections.
    assert_eq!(
        net.stack(Side::B).socket_count(),
        1 + 3,
        "no TCB allocated for dropped SYNs"
    );

    // Drain the queue: every queued connection is acceptable, then EAGAIN.
    let mut accepted = Vec::new();
    for _ in 0..3 {
        accepted.push(net.stack(Side::B).ff_accept(lfd).unwrap());
    }
    assert!(net.stack(Side::B).ff_accept(lfd).is_err());
    assert_eq!(net.stack(Side::B).listen_queue_depths(lfd), Some((0, 0)));

    // Tear everything down (both sides, including the never-established
    // clients) and run far past 2 MSL: nothing may linger server-side.
    for &fd in &cfds {
        let _ = net.stack(Side::A).ff_close(fd);
    }
    for &fd in &accepted {
        let _ = net.stack(Side::B).ff_close(fd);
    }
    for _ in 0..60_000 {
        net.tick();
    }
    assert_eq!(
        net.stack(Side::B).socket_count(),
        1,
        "only the listener survives the churn"
    );
    assert_eq!(net.stack(Side::A).socket_count(), 0, "client table drained");
}

/// Close-per-request churn: two fleets drive thousands of sequential
/// connections through one hub server. Every connection is actively
/// closed by the client, so the leaves cycle ephemeral ports through
/// TIME_WAIT quarantine — the run must neither exhaust the port range
/// nor wedge the server's socket table.
#[test]
fn time_wait_churn_over_thousands_of_connections() {
    let out = ScenarioSpec::star(2)
        .duration(SimDuration::from_millis(200))
        .seed(0xC0FFEE)
        .http(
            HttpServerConfig::default(),
            FleetConfig {
                rate_per_sec: 8_000,
                keep_alive_per_mille: 0, // pure close-per-request churn
                think_ns: 0,
                max_open: 512,
                ..FleetConfig::default()
            },
        )
        .run()
        .unwrap();

    let started: u64 = out.http_fleets.iter().map(|f| f.conns_started).sum();
    let completed: u64 = out.http_fleets.iter().map(|f| f.conns_completed).sum();
    let ok: u64 = out.http_fleets.iter().map(|f| f.requests_ok).sum();
    assert!(started >= 2_000, "churn volume: {started} connections");
    assert!(
        completed as f64 >= started as f64 * 0.95,
        "nearly every connection must run to completion ({completed}/{started})"
    );
    assert_eq!(ok, completed, "close-per-request: one 200 per connection");
    let exhausted: u64 = out.http_fleets.iter().map(|f| f.addr_exhausted).sum();
    assert_eq!(
        exhausted, 0,
        "8 k/s churn stays inside the 20 001-port ephemeral range"
    );
    // The server accepted every completed connection and leaked none of
    // its counters into error paths.
    assert_eq!(out.http_servers.len(), 1);
    let srv = &out.http_servers[0];
    assert!(srv.accepted >= completed);
    assert_eq!(srv.ok, ok);
    // The hub's stack saw real listen pressure accounting (drops are
    // allowed under burst alignment, but must be counted, not wedged).
    let (_, hub_stats) = out
        .stack_stats
        .iter()
        .find(|(name, _)| name == "hub")
        .expect("hub stack stats present");
    assert_eq!(hub_stats.listen_drops, 0, "backlog 64 absorbs this rate");
}

/// The determinism contract extends to the serving plane: the same spec
/// sharded over 1, 2 and 4 workers produces byte-identical delivery
/// digests and identical fleet populations.
#[test]
fn httpd_digest_identical_at_any_worker_count() {
    let spec = || {
        ScenarioSpec::star(4)
            .duration(SimDuration::from_millis(80))
            .seed(0xD16E57)
            .http(
                HttpServerConfig::default(),
                FleetConfig {
                    rate_per_sec: 3_000,
                    keep_alive_per_mille: 500,
                    requests_per_conn: 4,
                    ..FleetConfig::default()
                },
            )
    };
    let base = spec().workers(1).run().unwrap();
    assert!(base.trace.frames > 0, "the scenario moved traffic");
    let ok: u64 = base.http_fleets.iter().map(|f| f.requests_ok).sum();
    assert!(ok > 0, "keep-alive mix completed requests");
    for workers in [2, 4] {
        // Adaptive selection off: a 4-leaf star would collapse back to
        // one engine, and this test exists to drive the sharded path.
        let out = spec()
            .workers(workers)
            .adaptive_workers(false)
            .run()
            .unwrap();
        assert!(out.workers > 1, "workers={workers}: plan stayed sharded");
        assert_eq!(
            out.trace.digest, base.trace.digest,
            "workers={workers} digest diverged"
        );
        assert_eq!(out.trace.frames, base.trace.frames);
        for (a, b) in base.http_fleets.iter().zip(&out.http_fleets) {
            assert_eq!(a, b, "workers={workers} fleet report diverged");
        }
    }
}
