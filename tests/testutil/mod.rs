//! Shared support for the root integration tests.
//!
//! Three pieces, matching what deterministic end-to-end suites need:
//!
//! * **seeded RNG helpers** — [`rng`] and [`seeded_bytes`] wrap
//!   [`SimRng::seed_from_u64`] so test inputs derive from one `u64` seed;
//! * **a two-host topology builder** — [`TwoHost`] wires two full stacks
//!   (`FStack` over `EthDev` over capability-tagged packet memory) back to
//!   back over an optionally impaired cable, and drives both poll-mode main
//!   loops tick by tick;
//! * **packet-capture assertions** — every frame delivery is recorded in a
//!   [`Trace`]; [`Trace::assert_identical`] pinpoints the first divergence
//!   (tick, direction, byte offset) instead of just failing.
//!
//! All randomness in a `TwoHost` run flows from the constructor seed, so a
//! run is a pure function of `(seed, impairments, workload)` — which is the
//! property `tests/harness_determinism.rs` locks in.
//!
//! A fourth piece, [`SwitchedSegment`], generalizes the builder from a
//! cable to a shared L2 segment: N full stacks on one
//! [`updk::switch::LinkFabric`] learning switch, every delivery recorded,
//! for broadcast/ARP and flood-behavior suites.

#![allow(dead_code)]

use cheri::{Capability, Perms, TaggedMemory};
use chos::Errno;
use fstack::loop_::iterate;
use fstack::socket::SockType;
use fstack::{FStack, StackConfig};
use simkern::rng::SimRng;
use simkern::{CostModel, SimDuration, SimTime};
use std::net::Ipv4Addr;
use updk::kmod::{BindingRegistry, PciAddress};
use updk::nic::{MacAddr, NicModel};
use updk::switch::LinkFabric;
use updk::wire::{Frame, ImpairmentStats, Impairments};
use updk::EthDev;

/// A deterministic RNG for test inputs.
pub fn rng(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// `len` pseudo-random bytes fully determined by `seed`.
pub fn seeded_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut r = rng(seed);
    (0..len).map(|_| r.next_u64() as u8).collect()
}

/// Which way a frame crossed the cable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    AtoB,
    BtoA,
}

/// One recorded frame delivery: what arrived, where, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub at_ns: u64,
    pub dir: Dir,
    pub bytes: Vec<u8>,
}

/// The byte-exact record of every frame delivered over a [`TwoHost`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

impl Trace {
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a over every event (instant, direction and payload bytes), so
    /// two traces compare with one `u64`.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for ev in &self.events {
            for b in ev.at_ns.to_le_bytes() {
                eat(b);
            }
            eat(match ev.dir {
                Dir::AtoB => 0xA,
                Dir::BtoA => 0xB,
            });
            for b in (ev.bytes.len() as u32).to_le_bytes() {
                eat(b);
            }
            for &b in &ev.bytes {
                eat(b);
            }
        }
        h
    }

    /// Asserts byte-identical traces, reporting the first divergence (event
    /// index, then byte offset within the frame) on failure.
    pub fn assert_identical(&self, other: &Trace) {
        let n = self.events.len().min(other.events.len());
        for i in 0..n {
            let (a, b) = (&self.events[i], &other.events[i]);
            assert_eq!(
                (a.at_ns, a.dir),
                (b.at_ns, b.dir),
                "trace diverges at event {i}: {:?} vs {:?}",
                (a.at_ns, a.dir, a.bytes.len()),
                (b.at_ns, b.dir, b.bytes.len()),
            );
            if a.bytes != b.bytes {
                let off = a
                    .bytes
                    .iter()
                    .zip(&b.bytes)
                    .position(|(x, y)| x != y)
                    .unwrap_or(a.bytes.len().min(b.bytes.len()));
                panic!(
                    "trace diverges at event {i}, byte {off}: \
                     frame lengths {} vs {}, bytes {:?} vs {:?}",
                    a.bytes.len(),
                    b.bytes.len(),
                    a.bytes.get(off),
                    b.bytes.get(off),
                );
            }
        }
        assert_eq!(
            self.events.len(),
            other.events.len(),
            "traces agree on the first {n} events but have different lengths"
        );
    }
}

/// How far each tick advances virtual time.
const TICK: SimDuration = SimDuration::from_micros(2);
/// One-way cable latency.
const WIRE_LATENCY: SimDuration = SimDuration::from_micros(1);
/// Per-host arena size and packet-pool layout (mirrors the root tests).
const MEM_BYTES: u64 = 1 << 21;
const POOL_BASE: u64 = 4096;
const POOL_BYTES: u64 = 1 << 19;
const APP_BASE: u64 = 1 << 20;
const APP_BYTES: u64 = 16 * 1024;

struct Host {
    stack: FStack,
    dev: EthDev,
    mem: TaggedMemory,
}

/// One side of the topology, as an index (`A` is the client side by
/// convention in the workload helpers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    A,
    B,
}

/// A frame copy scheduled to arrive at one host.
struct InFlight {
    at: SimTime,
    seq: u64,
    dir: Dir,
    frame: Frame,
}

/// Two full stacks cabled back to back, every layer in between real:
/// `ff_*` API → TCP/UDP → IP → Ethernet → poll-mode driver → mempool-backed
/// mbufs in capability-tagged memory → (impaired) wire.
pub struct TwoHost {
    a: Host,
    b: Host,
    costs: CostModel,
    pub now: SimTime,
    impairments: Impairments,
    rng: SimRng,
    in_flight: Vec<InFlight>,
    next_seq: u64,
    pub trace: Trace,
    pub wire_stats: ImpairmentStats,
}

pub const IP_A: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 1);
pub const IP_B: Ipv4Addr = Ipv4Addr::new(10, 77, 0, 2);

impl TwoHost {
    /// An ideal cable: determinism should not depend on the seed at all.
    pub fn new(seed: u64) -> Self {
        Self::with_impairments(seed, Impairments::default())
    }

    /// A degraded cable whose loss/corruption/duplication/reordering draws
    /// all come from `seed`.
    pub fn with_impairments(seed: u64, impairments: Impairments) -> Self {
        let costs = CostModel::morello();
        let mut kmod = BindingRegistry::new();
        let mut mk = |bus: u8| {
            let addr = PciAddress::new(bus, 0, 0);
            kmod.discover(addr, "testutil nic");
            kmod.bind_userspace(addr).unwrap();
            let mut dev = EthDev::new(addr, NicModel::Host, CostModel::morello());
            let mut mem = TaggedMemory::new(MEM_BYTES);
            let pool = mem.root_cap().try_restrict(POOL_BASE, POOL_BYTES).unwrap();
            dev.configure_port(0, &mut mem, pool, 256).unwrap();
            (dev, mem)
        };
        let (dev_a, mem_a) = mk(1);
        let (dev_b, mem_b) = mk(2);
        let mut a = Host {
            stack: FStack::new(StackConfig::new("a", dev_a.mac(0), IP_A)),
            dev: dev_a,
            mem: mem_a,
        };
        let mut b = Host {
            stack: FStack::new(StackConfig::new("b", dev_b.mac(0), IP_B)),
            dev: dev_b,
            mem: mem_b,
        };
        a.dev.start(&kmod).unwrap();
        b.dev.start(&kmod).unwrap();
        TwoHost {
            a,
            b,
            costs,
            now: SimTime::from_micros(5),
            impairments,
            rng: rng(seed),
            in_flight: Vec::new(),
            next_seq: 0,
            trace: Trace::default(),
            wire_stats: ImpairmentStats::default(),
        }
    }

    fn host(&mut self, side: Side) -> &mut Host {
        match side {
            Side::A => &mut self.a,
            Side::B => &mut self.b,
        }
    }

    pub fn stack(&mut self, side: Side) -> &mut FStack {
        &mut self.host(side).stack
    }

    /// Both the stack and its backing memory, for `ff_*` calls that take
    /// the arena by `&mut` alongside the stack.
    pub fn stack_and_mem(&mut self, side: Side) -> (&mut FStack, &mut TaggedMemory) {
        let h = self.host(side);
        (&mut h.stack, &mut h.mem)
    }

    pub fn mem(&mut self, side: Side) -> &mut TaggedMemory {
        &mut self.host(side).mem
    }

    /// A `Perms::data()` capability over the host's app-buffer region.
    pub fn app_buffer(&mut self, side: Side) -> Capability {
        self.host(side)
            .mem
            .root_cap()
            .try_restrict(APP_BASE, APP_BYTES)
            .unwrap()
            .try_restrict_perms(Perms::data())
            .unwrap()
    }

    fn schedule(&mut self, dir: Dir, frame: Frame, departure: SimTime) {
        let nominal = departure + WIRE_LATENCY;
        let plan = self.impairments.plan(&mut self.rng, nominal);
        self.wire_stats.absorb(plan.stats);
        for (at, corrupted) in plan.deliveries {
            let frame = if corrupted {
                frame.corrupted(&mut self.rng)
            } else {
                frame.clone()
            };
            self.in_flight.push(InFlight {
                at,
                seq: self.next_seq,
                dir,
                frame,
            });
            self.next_seq += 1;
        }
    }

    /// One round: run both main loops, put their TX frames on the wire, and
    /// deliver (and record) everything whose arrival instant has come.
    pub fn tick(&mut self) {
        let now = self.now;
        let out_a = iterate(
            &mut self.a.stack,
            &mut self.a.dev,
            0,
            &mut self.a.mem,
            now,
            &self.costs,
        )
        .unwrap();
        for (f, dep) in out_a.tx {
            self.schedule(Dir::AtoB, f, dep);
        }
        let out_b = iterate(
            &mut self.b.stack,
            &mut self.b.dev,
            0,
            &mut self.b.mem,
            now,
            &self.costs,
        )
        .unwrap();
        for (f, dep) in out_b.tx {
            self.schedule(Dir::BtoA, f, dep);
        }

        // Deliver in (arrival, schedule-order) order so late (reordered)
        // copies land behind frames sent after them, deterministically.
        self.in_flight.sort_by_key(|p| (p.at, p.seq));
        while let Some(first) = self.in_flight.first() {
            if first.at > now {
                break;
            }
            let p = self.in_flight.remove(0);
            self.trace.events.push(TraceEvent {
                at_ns: p.at.as_nanos(),
                dir: p.dir,
                bytes: p.frame.bytes().to_vec(),
            });
            match p.dir {
                Dir::AtoB => self.b.dev.deliver(0, p.at, p.frame),
                Dir::BtoA => self.a.dev.deliver(0, p.at, p.frame),
            }
        }
        self.now += TICK;
    }

    /// Drives a TCP bulk transfer of `total` bytes of seeded payload from A
    /// to B (server on `port`), for at most `max_ticks` rounds. Returns the
    /// bytes B received, which equal the bytes sent iff TCP recovered from
    /// whatever the wire did.
    pub fn run_tcp_transfer(&mut self, port: u16, total: u64, max_ticks: usize) -> u64 {
        let lfd = self.b.stack.ff_socket(SockType::Stream).unwrap();
        self.b.stack.ff_bind(lfd, port).unwrap();
        self.b.stack.ff_listen(lfd, 4).unwrap();
        let cfd = self.a.stack.ff_socket(SockType::Stream).unwrap();
        let now = self.now;
        self.a.stack.ff_connect(cfd, (IP_B, port), now).unwrap();

        let pay = self.app_buffer(Side::A);
        let pattern = seeded_bytes(0x5EED_0000 | u64::from(port), APP_BYTES as usize);
        self.a.mem.write(&pay, pay.base(), &pattern).unwrap();
        let sink = self.app_buffer(Side::B);

        let mut accepted = None;
        let mut wrote = 0u64;
        let mut closed = false;
        let mut received = 0u64;
        for _ in 0..max_ticks {
            self.tick();
            if accepted.is_none() {
                accepted = self.b.stack.ff_accept(lfd).ok();
            }
            if wrote < total {
                let want = (total - wrote).min(pay.len());
                match self.a.stack.ff_write(&mut self.a.mem, cfd, &pay, want) {
                    Ok(n) => wrote += n,
                    Err(Errno::EAGAIN) | Err(Errno::EPIPE) => {}
                    Err(e) => panic!("ff_write: {e}"),
                }
            } else if !closed {
                self.a.stack.ff_close(cfd).unwrap();
                closed = true;
            }
            if let Some(fd) = accepted {
                loop {
                    match self.b.stack.ff_read(&mut self.b.mem, fd, &sink, sink.len()) {
                        Ok(0) => break,
                        Ok(n) => received += n,
                        Err(_) => break,
                    }
                }
            }
            if received >= total && closed {
                break;
            }
        }
        received
    }

    /// Sends one seeded UDP datagram per tick from A to B (bound on `port`)
    /// and drains B's socket every tick. Returns the datagrams B received,
    /// in arrival order.
    pub fn run_udp_burst(&mut self, port: u16, count: usize, max_ticks: usize) -> Vec<Vec<u8>> {
        let sfd = self.b.stack.ff_socket(SockType::Dgram).unwrap();
        self.b.stack.ff_bind(sfd, port).unwrap();
        let cfd = self.a.stack.ff_socket(SockType::Dgram).unwrap();

        let pay = self.app_buffer(Side::A);
        let sink = self.app_buffer(Side::B);
        let mut sent = 0usize;
        let mut got = Vec::new();
        for _ in 0..max_ticks {
            if sent < count {
                let dgram = seeded_bytes(0xD6_0000 + sent as u64, 256 + (sent % 512));
                self.a.mem.write(&pay, pay.base(), &dgram).unwrap();
                self.a
                    .stack
                    .ff_sendto(&mut self.a.mem, cfd, &pay, dgram.len() as u64, (IP_B, port))
                    .unwrap();
                sent += 1;
            }
            self.tick();
            while let Ok((n, _from)) = self.b.stack.ff_recvfrom(&mut self.b.mem, sfd, &sink) {
                got.push(self.b.mem.read_vec(&sink, sink.base(), n).unwrap());
            }
            if sent == count && self.in_flight.is_empty() && got.len() >= count {
                break;
            }
        }
        got
    }
}

/// One recorded delivery on a [`SwitchedSegment`]: when, to which host,
/// and the exact frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegDelivery {
    pub at_ns: u64,
    pub host: usize,
    pub bytes: Vec<u8>,
}

/// N full stacks on one [`LinkFabric`] learning switch: host `i` sits on
/// fabric port `i`, every layer in between is real (as in [`TwoHost`]),
/// and every frame the fabric delivers to a host is recorded. Ideal
/// cables; the fabric's own queues and flooding are the object under test.
pub struct SwitchedSegment {
    hosts: Vec<Host>,
    macs: Vec<MacAddr>,
    fabric: LinkFabric,
    costs: CostModel,
    pub now: SimTime,
    /// Frames in flight toward the switch: `(arrival, seq, ingress port)`.
    to_switch: Vec<(SimTime, u64, usize, Frame)>,
    /// Frames in flight from the switch: `(arrival, seq, host)`.
    to_host: Vec<(SimTime, u64, usize, Frame)>,
    next_seq: u64,
    /// Every frame handed to a host NIC, in delivery order.
    pub deliveries: Vec<SegDelivery>,
}

impl SwitchedSegment {
    /// Host `i`'s address: `10.88.0.(i + 1)`.
    pub fn ip(i: usize) -> Ipv4Addr {
        Ipv4Addr::new(10, 88, 0, (i + 1) as u8)
    }

    /// Builds `n` hosts on an `n`-port fabric.
    pub fn new(n: usize) -> Self {
        assert!((2..=200).contains(&n), "segment size out of range: {n}");
        let costs = CostModel::morello();
        let mut kmod = BindingRegistry::new();
        let mut hosts = Vec::with_capacity(n);
        let mut macs = Vec::with_capacity(n);
        for i in 0..n {
            let addr = PciAddress::new((i + 1) as u8, 0, 0);
            kmod.discover(addr, "segment nic");
            kmod.bind_userspace(addr).unwrap();
            let mut dev = EthDev::new(addr, NicModel::Host, CostModel::morello());
            let mut mem = TaggedMemory::new(MEM_BYTES);
            let pool = mem.root_cap().try_restrict(POOL_BASE, POOL_BYTES).unwrap();
            dev.configure_port(0, &mut mem, pool, 256).unwrap();
            dev.start(&kmod).unwrap();
            macs.push(dev.mac(0));
            let stack = FStack::new(StackConfig::new(format!("h{i}"), dev.mac(0), Self::ip(i)));
            hosts.push(Host { stack, dev, mem });
        }
        SwitchedSegment {
            hosts,
            macs,
            fabric: LinkFabric::new(n, LinkFabric::DEFAULT_QUEUE),
            costs,
            now: SimTime::from_micros(5),
            to_switch: Vec::new(),
            to_host: Vec::new(),
            next_seq: 0,
            deliveries: Vec::new(),
        }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Segments are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Host `i`'s stack.
    pub fn stack(&mut self, i: usize) -> &mut FStack {
        &mut self.hosts[i].stack
    }

    /// Host `i`'s NIC MAC.
    pub fn mac(&self, i: usize) -> MacAddr {
        self.macs[i]
    }

    /// The fabric under the segment.
    pub fn fabric(&self) -> &LinkFabric {
        &self.fabric
    }

    /// A `Perms::data()` capability over host `i`'s app-buffer region.
    pub fn app_buffer(&mut self, i: usize) -> Capability {
        self.hosts[i]
            .mem
            .root_cap()
            .try_restrict(APP_BASE, APP_BYTES)
            .unwrap()
            .try_restrict_perms(Perms::data())
            .unwrap()
    }

    /// Whether host `i` has host `j`'s MAC in its ARP cache.
    pub fn resolved(&mut self, i: usize, j: usize) -> bool {
        let want = self.macs[j];
        self.hosts[i].stack.arp_cache_mut().lookup(Self::ip(j)) == Some(want)
    }

    /// One round: run every host's main loop, move frames host → fabric →
    /// host(s) respecting each hop's arrival instant, record deliveries.
    pub fn tick(&mut self) {
        let now = self.now;
        for i in 0..self.hosts.len() {
            let h = &mut self.hosts[i];
            let out = iterate(&mut h.stack, &mut h.dev, 0, &mut h.mem, now, &self.costs).unwrap();
            for (frame, dep) in out.tx {
                self.to_switch
                    .push((dep + WIRE_LATENCY, self.next_seq, i, frame));
                self.next_seq += 1;
            }
        }

        // Fabric ingress for everything that has reached it, in arrival
        // order (seq breaks ties deterministically).
        self.to_switch.sort_by_key(|e| (e.0, e.1));
        while let Some(first) = self.to_switch.first() {
            if first.0 > now {
                break;
            }
            let (at, _, port, frame) = self.to_switch.remove(0);
            for tx in self.fabric.ingress(port, at, frame, &self.costs) {
                self.to_host.push((
                    tx.departure + WIRE_LATENCY,
                    self.next_seq,
                    tx.port,
                    tx.frame,
                ));
                self.next_seq += 1;
            }
        }

        // Host deliveries that have arrived.
        self.to_host.sort_by_key(|e| (e.0, e.1));
        while let Some(first) = self.to_host.first() {
            if first.0 > now {
                break;
            }
            let (at, _, host, frame) = self.to_host.remove(0);
            self.deliveries.push(SegDelivery {
                at_ns: at.as_nanos(),
                host,
                bytes: frame.bytes().to_vec(),
            });
            self.hosts[host].dev.deliver(0, at, frame);
        }
        self.now += TICK;
    }

    /// `true` once nothing is in flight in either direction.
    pub fn quiesced(&self) -> bool {
        self.to_switch.is_empty() && self.to_host.is_empty()
    }

    /// Every host sends one UDP datagram to every other host (bound on
    /// `port`), forcing a full mesh of ARP resolutions, then runs up to
    /// `max_ticks`. Returns the datagrams each host received.
    pub fn mesh_udp(&mut self, port: u16, max_ticks: usize) -> Vec<Vec<Vec<u8>>> {
        let n = self.hosts.len();
        let mut rx_fds = Vec::with_capacity(n);
        let mut tx_fds = Vec::with_capacity(n);
        for i in 0..n {
            let rfd = self.hosts[i].stack.ff_socket(SockType::Dgram).unwrap();
            self.hosts[i].stack.ff_bind(rfd, port).unwrap();
            rx_fds.push(rfd);
            tx_fds.push(self.hosts[i].stack.ff_socket(SockType::Dgram).unwrap());
        }
        for (i, &tfd) in tx_fds.iter().enumerate() {
            let pay = self.app_buffer(i);
            for j in 0..n {
                if i == j {
                    continue;
                }
                // Payload encodes (sender, receiver) so every frame on the
                // segment is unique.
                let dgram = [b"mesh:".as_slice(), &[i as u8, j as u8]].concat();
                let h = &mut self.hosts[i];
                h.mem.write(&pay, pay.base(), &dgram).unwrap();
                h.stack
                    .ff_sendto(
                        &mut h.mem,
                        tfd,
                        &pay,
                        dgram.len() as u64,
                        (Self::ip(j), port),
                    )
                    .unwrap();
            }
        }
        let mut got = vec![Vec::new(); n];
        for _ in 0..max_ticks {
            self.tick();
            for (i, &rfd) in rx_fds.iter().enumerate() {
                let sink = self.app_buffer(i);
                loop {
                    let h = &mut self.hosts[i];
                    match h.stack.ff_recvfrom(&mut h.mem, rfd, &sink) {
                        Ok((nbytes, _from)) => {
                            let d = self.hosts[i]
                                .mem
                                .read_vec(&sink, sink.base(), nbytes)
                                .unwrap();
                            got[i].push(d);
                        }
                        Err(_) => break,
                    }
                }
            }
            let done = got.iter().all(|g| g.len() >= n - 1);
            if done && self.quiesced() {
                break;
            }
        }
        got
    }
}
