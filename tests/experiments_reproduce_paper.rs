//! Integration: every paper artifact reproduces with the expected shape.
//!
//! These are the headline acceptance tests of the repository. Exact
//! absolute numbers belong to the Morello testbed; what must hold here is
//! who wins, by roughly what factor, and where the crossovers fall.

use capnet::experiment::{fig3, figs, table1, table2};
use capnet::scenario::ScenarioKind;
use simkern::{CostModel, SimDuration};

#[test]
fn table1_loc_fraction_is_small() {
    let t = table1::run();
    let fstack = &t.rows[0];
    assert!(fstack.total_loc > 1_000);
    // Paper: 0.99% of F-Stack touched. Ours is capability-native, so the
    // capability-specific surface is larger, but still a small fraction.
    assert!(
        fstack.percent() < 15.0,
        "{:.2}% capability-specific",
        fstack.percent()
    );
    assert!(t.to_string().contains("TABLE I"));
}

#[test]
fn table2_dual_port_rows_are_pci_limited_and_symmetric() {
    let t = table2::run_scenarios(
        &[ScenarioKind::BaselineTwoProcess, ScenarioKind::Scenario1],
        SimDuration::from_millis(120),
        CostModel::morello(),
    )
    .unwrap();
    for block in &t.blocks {
        assert_eq!(block.server.len(), 2, "{}", block.scenario);
        for c in &block.server {
            assert!(
                (c.mbit - 658.0).abs() < 35.0,
                "{} server {:.0}",
                c.label,
                c.mbit
            );
        }
        for c in &block.client {
            assert!(
                (c.mbit - 757.0).abs() < 35.0,
                "{} client {:.0}",
                c.label,
                c.mbit
            );
        }
    }
    // Scenario 1 must equal Baseline within noise: CHERI costs nothing at
    // the bandwidth level — the paper's key "maintaining performance" claim.
    let b = &t.blocks[0].server[0].mbit;
    let s1 = &t.blocks[1].server[0].mbit;
    assert!((b - s1).abs() < 10.0, "baseline {b:.0} vs s1 {s1:.0}");
}

#[test]
fn table2_single_port_rows_hit_the_goodput_ceiling() {
    let t = table2::run_scenarios(
        &[
            ScenarioKind::BaselineSingleProcess,
            ScenarioKind::Scenario2Uncontended,
        ],
        SimDuration::from_millis(120),
        CostModel::morello(),
    )
    .unwrap();
    for block in &t.blocks {
        for c in block.server.iter().chain(&block.client) {
            assert!(
                (c.mbit - 941.0).abs() < 25.0,
                "{} / {}: {:.0} Mbit/s",
                block.scenario,
                c.label,
                c.mbit
            );
            assert!((c.efficiency - 0.941).abs() < 0.03);
        }
    }
}

#[test]
fn table2_contended_flows_share_the_port() {
    let t = table2::run_scenarios(
        &[ScenarioKind::Scenario2Contended],
        SimDuration::from_millis(120),
        CostModel::morello(),
    )
    .unwrap();
    let block = &t.blocks[0];
    assert_eq!(block.server.len(), 2);
    let server_sum: f64 = block.server.iter().map(|c| c.mbit).sum();
    let client_sum: f64 = block.client.iter().map(|c| c.mbit).sum();
    // Paper: 470+470 server, 531+410 client — the *sum* saturates the port.
    assert!(
        (server_sum - 941.0).abs() < 45.0,
        "server sum {server_sum:.0}"
    );
    assert!(
        (client_sum - 941.0).abs() < 45.0,
        "client sum {client_sum:.0}"
    );
}

#[test]
fn fig3_violation_and_matrix() {
    let out = fig3::run().unwrap();
    assert!(out.fault.is_out_of_bounds());
    assert_eq!(out.matrix.len(), 6);
}

#[test]
fn figs_4_5_6_deltas_match_the_paper() {
    const N: usize = 30_000;
    let costs = CostModel::morello();
    let runs = figs::run_all(N, costs, 7).unwrap();
    let (base, s1, s2u, s2c) = (
        &runs[0].summary,
        &runs[1].summary,
        &runs[2].summary,
        &runs[3].summary,
    );
    // Fig. 4: S1 − Baseline ≈ 125 ns.
    let d1 = s1.mean - base.mean;
    assert!((d1 - 125.0).abs() < 40.0, "S1-Baseline {d1:.0} ns");
    // Fig. 5: S2u − S1 ≈ 200 ns.
    let d2 = s2u.mean - s1.mean;
    assert!((d2 - 200.0).abs() < 80.0, "S2u-S1 {d2:.0} ns");
    // Fig. 6: contention ≈ 19 µs, two orders of magnitude.
    let d3 = s2c.mean - s2u.mean;
    assert!(
        (14_000.0..26_000.0).contains(&d3),
        "S2c-S2u {d3:.0} ns (paper ~19,000)"
    );
    let slowdown = d3 / 125.0;
    assert!(
        (100.0..220.0).contains(&slowdown),
        "slowdown {slowdown:.0}x (paper ~152x)"
    );
    // The paper's quantization observation: fast scenarios collapse.
    assert!(base.iqr() <= 50, "baseline IQR {}", base.iqr());
    assert!(s1.iqr() <= 50, "s1 IQR {}", s1.iqr());
}

#[test]
fn scenario3_extension_behaves_like_s2_at_the_bandwidth_level() {
    let t = table2::run_scenarios(
        &[ScenarioKind::Scenario3],
        SimDuration::from_millis(100),
        CostModel::morello(),
    )
    .unwrap();
    let c = &t.blocks[0].server[0];
    assert!((c.mbit - 941.0).abs() < 30.0, "{:.0}", c.mbit);
}

#[test]
fn scenario4_full_split_still_saturates_the_port() {
    // Paper §VI future work (ii): separating the *entire* stack. Three
    // crossings per call are still far below the per-packet time budget,
    // so bandwidth must stay at the ceiling.
    let t = table2::run_scenarios(
        &[ScenarioKind::Scenario4],
        SimDuration::from_millis(100),
        CostModel::morello(),
    )
    .unwrap();
    let block = &t.blocks[0];
    for c in block.server.iter().chain(&block.client) {
        assert!((c.mbit - 941.0).abs() < 30.0, "{}: {:.0}", c.label, c.mbit);
    }
}

#[test]
fn extension_scenarios_latency_ladder() {
    // Figs. 4–6 analog for the future-work scenarios: each extra
    // compartment boundary adds one sealed crossing (≈ xcall_ns), keeping
    // the whole ladder well under the contended-mutex cliff.
    const N: usize = 20_000;
    let costs = CostModel::morello();
    let s2u = figs::measure(
        figs::LatencyScenario::Scenario2Uncontended,
        N,
        costs.clone(),
        7,
    )
    .unwrap()
    .summary;
    let ext = figs::run_extensions(N, costs.clone(), 7).unwrap();
    let (s3, s4) = (&ext[0].summary, &ext[1].summary);
    let d3 = s3.mean - s2u.mean;
    let d4 = s4.mean - s2u.mean;
    assert!(
        (d3 - costs.xcall_ns as f64).abs() < 60.0,
        "S3 adds one crossing: {d3:.0} ns"
    );
    assert!(
        (d4 - 2.0 * costs.xcall_ns as f64).abs() < 90.0,
        "S4 adds two crossings: {d4:.0} ns"
    );
}
