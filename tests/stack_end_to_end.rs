//! Integration: the full network stack path — `ff_*` API over TCP over
//! IPv4 over Ethernet over the poll-mode driver over the simulated NIC —
//! exercised end to end across crates.

use capnet::netsim::{IsolationProfile, NetSim};
use cheri::{Perms, TaggedMemory};
use chos::Errno;
use fstack::epoll::EpollFlags;
use fstack::loop_::iterate;
use fstack::socket::SockType;
use fstack::{FStack, StackConfig};
use simkern::{CostModel, SimDuration, SimTime};
use std::net::Ipv4Addr;
use updk::kmod::{BindingRegistry, PciAddress};
use updk::nic::NicModel;
use updk::EthDev;

/// Two stacks on two host NICs, frames moved by hand: the classic
/// handshake-transfer-close lifecycle through every layer *except* the
/// event engine (which `capnet::netsim` covers).
#[test]
fn tcp_lifecycle_through_the_driver() {
    let costs = CostModel::morello();
    let mut kmod = BindingRegistry::new();
    let mk = |bus: u8, kmod: &mut BindingRegistry| {
        let addr = PciAddress::new(bus, 0, 0);
        kmod.discover(addr, "host nic");
        kmod.bind_userspace(addr).unwrap();
        EthDev::new(addr, NicModel::Host, CostModel::morello())
    };
    let mut dev_a = mk(1, &mut kmod);
    let mut dev_b = mk(2, &mut kmod);
    let mut mem_a = TaggedMemory::new(1 << 21);
    let mut mem_b = TaggedMemory::new(1 << 21);
    let region_a = mem_a.root_cap().try_restrict(4096, 1 << 19).unwrap();
    let region_b = mem_b.root_cap().try_restrict(4096, 1 << 19).unwrap();
    dev_a.configure_port(0, &mut mem_a, region_a, 256).unwrap();
    dev_b.configure_port(0, &mut mem_b, region_b, 256).unwrap();
    dev_a.start(&kmod).unwrap();
    dev_b.start(&kmod).unwrap();

    let ip_a = Ipv4Addr::new(192, 168, 7, 1);
    let ip_b = Ipv4Addr::new(192, 168, 7, 2);
    let mut stack_a = FStack::new(StackConfig::new("a", dev_a.mac(0), ip_a));
    let mut stack_b = FStack::new(StackConfig::new("b", dev_b.mac(0), ip_b));

    // Server on B.
    let lfd = stack_b.ff_socket(SockType::Stream).unwrap();
    stack_b.ff_bind(lfd, 7000).unwrap();
    stack_b.ff_listen(lfd, 4).unwrap();
    // Client on A (ARP resolves over the wire — no static entries).
    let cfd = stack_a.ff_socket(SockType::Stream).unwrap();
    stack_a
        .ff_connect(cfd, (ip_b, 7000), SimTime::ZERO)
        .unwrap();

    // Payload buffers, capability-bounded.
    let pay = mem_a
        .root_cap()
        .try_restrict(1 << 20, 8 * 1024)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap();
    mem_a.fill(&pay, pay.base(), 8 * 1024, 0x42).unwrap();
    let sink = mem_b
        .root_cap()
        .try_restrict(1 << 20, 8 * 1024)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap();

    let mut now = SimTime::from_micros(5);
    let mut accepted = None;
    let mut received = 0u64;
    let mut wrote = 0u64;
    let target = 256 * 1024u64;

    for _ in 0..40_000 {
        // A's loop iteration.
        let out_a = iterate(&mut stack_a, &mut dev_a, 0, &mut mem_a, now, &costs).unwrap();
        for (f, dep) in out_a.tx {
            dev_b.deliver(0, dep + SimDuration::from_micros(1), f);
        }
        // B's loop iteration.
        let out_b = iterate(&mut stack_b, &mut dev_b, 0, &mut mem_b, now, &costs).unwrap();
        for (f, dep) in out_b.tx {
            dev_a.deliver(0, dep + SimDuration::from_micros(1), f);
        }
        // Apps.
        if accepted.is_none() {
            accepted = stack_b.ff_accept(lfd).ok();
        }
        if wrote < target {
            let want = (target - wrote).min(pay.len());
            match stack_a.ff_write(&mut mem_a, cfd, &pay, want) {
                Ok(n) => wrote += n,
                Err(Errno::EAGAIN) | Err(Errno::EPIPE) => {}
                Err(e) => panic!("write: {e}"),
            }
        } else if wrote == target {
            stack_a.ff_close(cfd).unwrap();
            wrote += 1; // close once
        }
        if let Some(fd) = accepted {
            loop {
                match stack_b.ff_read(&mut mem_b, fd, &sink, sink.len()) {
                    Ok(0) => break,
                    Ok(n) => received += n,
                    Err(_) => break,
                }
            }
        }
        now += SimDuration::from_micros(2);
        if received >= target {
            break;
        }
    }
    assert_eq!(received, target, "every byte arrives exactly once");
    // The payload pattern survived the capability-checked path.
    let sample = mem_b.read_vec(&sink.clone(), sink.base(), 64).unwrap();
    assert!(sample.iter().all(|&b| b == 0x42));
}

/// `ff_write` with a *bad* capability is rejected with `EFAULT` and no
/// bytes leak onto the wire — the API-level contract of the port.
#[test]
fn ff_write_rejects_bad_capabilities_with_efault() {
    let ip_a = Ipv4Addr::new(10, 1, 0, 1);
    let ip_b = Ipv4Addr::new(10, 1, 0, 2);
    let mut mem = TaggedMemory::new(1 << 20);
    let mut a = FStack::new(StackConfig::new("a", updk::nic::MacAddr::local(1), ip_a));
    let mut b = FStack::new(StackConfig::new("b", updk::nic::MacAddr::local(2), ip_b));
    a.arp_cache_mut()
        .insert_static(ip_b, updk::nic::MacAddr::local(2));
    b.arp_cache_mut()
        .insert_static(ip_a, updk::nic::MacAddr::local(1));
    let lfd = b.ff_socket(SockType::Stream).unwrap();
    b.ff_bind(lfd, 9000).unwrap();
    b.ff_listen(lfd, 2).unwrap();
    let cfd = a.ff_socket(SockType::Stream).unwrap();
    a.ff_connect(cfd, (ip_b, 9000), SimTime::ZERO).unwrap();
    let mut now = SimTime::from_micros(1);
    for _ in 0..10 {
        for f in a.poll_tx(now) {
            b.input_frame(now, &f);
        }
        for f in b.poll_tx(now) {
            a.input_frame(now, &f);
        }
        now += SimDuration::from_micros(50);
    }
    b.ff_accept(lfd).unwrap();

    let good = mem
        .root_cap()
        .try_restrict(0x1000, 1024)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap();

    // (a) untagged capability.
    let dead = good.without_tag();
    assert_eq!(
        a.ff_write(&mut mem, cfd, &dead, 64).unwrap_err(),
        Errno::EFAULT
    );
    // (b) read permission missing? STORE-only can't be *read from* by the
    // stack's copy-in.
    let wo = good.try_restrict_perms(Perms::STORE).unwrap();
    assert_eq!(
        a.ff_write(&mut mem, cfd, &wo, 64).unwrap_err(),
        Errno::EFAULT
    );
    // (c) length beyond the capability's bounds.
    assert_eq!(
        a.ff_write(&mut mem, cfd, &good, 4096).unwrap_err(),
        Errno::EFAULT
    );
    // (d) and the good one still works.
    assert_eq!(a.ff_write(&mut mem, cfd, &good, 64).unwrap(), 64);
}

/// Epoll-driven readiness across the full stack: a connection becomes
/// EPOLLOUT after the handshake and EPOLLIN when data lands.
#[test]
fn epoll_tracks_connection_lifecycle() {
    let ip_a = Ipv4Addr::new(10, 2, 0, 1);
    let ip_b = Ipv4Addr::new(10, 2, 0, 2);
    let mut mem = TaggedMemory::new(1 << 20);
    let mut a = FStack::new(StackConfig::new("a", updk::nic::MacAddr::local(3), ip_a));
    let mut b = FStack::new(StackConfig::new("b", updk::nic::MacAddr::local(4), ip_b));
    a.arp_cache_mut()
        .insert_static(ip_b, updk::nic::MacAddr::local(4));
    b.arp_cache_mut()
        .insert_static(ip_a, updk::nic::MacAddr::local(3));

    let lfd = b.ff_socket(SockType::Stream).unwrap();
    b.ff_bind(lfd, 9100).unwrap();
    b.ff_listen(lfd, 2).unwrap();
    let bep = b.ff_epoll_create();
    b.ff_epoll_ctl_add(bep, lfd, EpollFlags::IN).unwrap();

    let cfd = a.ff_socket(SockType::Stream).unwrap();
    let aep = a.ff_epoll_create();
    a.ff_epoll_ctl_add(aep, cfd, EpollFlags::OUT).unwrap();
    a.ff_connect(cfd, (ip_b, 9100), SimTime::ZERO).unwrap();

    // Before the handshake: nothing ready anywhere.
    assert!(a.ff_epoll_wait(aep).unwrap().is_empty());
    assert!(b.ff_epoll_wait(bep).unwrap().is_empty());

    let mut now = SimTime::from_micros(1);
    for _ in 0..10 {
        for f in a.poll_tx(now) {
            b.input_frame(now, &f);
        }
        for f in b.poll_tx(now) {
            a.input_frame(now, &f);
        }
        now += SimDuration::from_micros(50);
    }
    // Connected: client is writable, listener readable.
    assert!(a.ff_epoll_wait(aep).unwrap()[0]
        .events
        .contains(EpollFlags::OUT));
    assert!(b.ff_epoll_wait(bep).unwrap()[0]
        .events
        .contains(EpollFlags::IN));
    let sfd = b.ff_accept(lfd).unwrap();
    b.ff_epoll_ctl_add(bep, sfd, EpollFlags::IN).unwrap();

    // Data lands → EPOLLIN on the server connection.
    let buf = mem
        .root_cap()
        .try_restrict(0, 128)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap();
    a.ff_write(&mut mem, cfd, &buf, 128).unwrap();
    for f in a.poll_tx(now) {
        b.input_frame(now, &f);
    }
    let ready = b.ff_epoll_wait(bep).unwrap();
    assert!(ready
        .iter()
        .any(|e| e.fd == sfd && e.events.contains(EpollFlags::IN)));
}

/// The netsim composes everything under the event engine; a short run with
/// isolation charges still converges to the goodput ceiling.
#[test]
fn netsim_with_isolation_charges_still_converges() {
    let costs = CostModel::morello();
    let mut sim = NetSim::new(costs.clone());
    let a = sim.add_dev(NicModel::Dual82576).unwrap();
    let h = sim.add_dev(NicModel::Host).unwrap();
    sim.link(a, 0, h, 0).unwrap();
    let dut = sim
        .add_node(
            "dut",
            a,
            0,
            Ipv4Addr::new(10, 3, 0, 1),
            IsolationProfile {
                per_ff_call_ns: costs.xcall_ns + costs.mutex_fast_ns,
                s2_service: true,
            },
        )
        .unwrap();
    let host = sim
        .add_node(
            "host",
            h,
            0,
            Ipv4Addr::new(10, 3, 0, 2),
            IsolationProfile::default(),
        )
        .unwrap();
    sim.add_server(dut, "dut-rx", 5201).unwrap();
    sim.add_client(
        host,
        "host-tx",
        (Ipv4Addr::new(10, 3, 0, 1), 5201),
        SimDuration::from_millis(80),
        SimDuration::ZERO,
    )
    .unwrap();
    let out = sim.run(SimDuration::from_millis(100)).unwrap();
    let bw = out.servers[0].mbit_per_sec();
    assert!((bw - 941.0).abs() < 25.0, "bw {bw:.0}");
    let (acq, _cont, _wait) = out.mutex_stats.expect("s2 mutex was used");
    assert!(acq > 1_000, "the service loop serialized on the mutex");
}
