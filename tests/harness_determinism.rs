//! Determinism of the end-to-end harness: identical seeds yield
//! byte-identical traces — and identical outcomes — through the full stack
//! (`ff_*` API → TCP/UDP → IP → Ethernet → poll-mode driver → tagged packet
//! memory → impaired wire), and through the compartmentalized `NetSim` world
//! on top of it.
//!
//! Every scale/perf PR that follows leans on this suite: once sharding,
//! batching or caching lands, "same seed, same trace" is what proves the
//! optimization didn't change behavior.

mod testutil;

use capnet::netsim::{IsolationProfile, NetSim};
use simkern::{CostModel, SimDuration};
use std::net::Ipv4Addr;
use testutil::TwoHost;
use updk::nic::NicModel;
use updk::wire::Impairments;

const TCP_PORT: u16 = 7100;
const UDP_PORT: u16 = 5600;
const TCP_BYTES: u64 = 96 * 1024;

/// Scenario 1 — TCP bulk transfer over the ideal cable. With no stochastic
/// impairments the trace must not depend on the seed at all: any two runs,
/// same seed or not, are byte-identical.
#[test]
fn tcp_transfer_on_ideal_wire_is_fully_deterministic() {
    let run = |seed: u64| {
        let mut net = TwoHost::new(seed);
        let received = net.run_tcp_transfer(TCP_PORT, TCP_BYTES, 40_000);
        assert_eq!(received, TCP_BYTES, "ideal wire delivers every byte");
        net.trace
    };
    let t1 = run(1);
    let t2 = run(1);
    let t3 = run(999);
    assert!(!t1.is_empty(), "the transfer produced traffic");
    t1.assert_identical(&t2);
    t1.assert_identical(&t3); // seed is irrelevant without impairments
}

/// Scenario 2 — TCP over a lossy cable. The loss pattern is drawn from the
/// seed, so identical seeds give byte-identical traces (including every
/// retransmission), different seeds give different traces, and TCP recovers
/// in all cases.
#[test]
fn tcp_transfer_over_lossy_wire_is_seed_deterministic() {
    let run = |seed: u64| {
        let mut net = TwoHost::with_impairments(seed, Impairments::lossy(30));
        let received = net.run_tcp_transfer(TCP_PORT, TCP_BYTES, 60_000);
        assert_eq!(received, TCP_BYTES, "TCP recovered all {TCP_BYTES} bytes");
        (net.trace, net.wire_stats)
    };
    let (t1, s1) = run(42);
    let (t2, s2) = run(42);
    let (t3, s3) = run(43);
    assert!(s1.lost > 0, "the cable actually lost frames: {s1:?}");
    t1.assert_identical(&t2);
    assert_eq!(
        s1, s2,
        "wire counters are part of the deterministic outcome"
    );
    assert_ne!(
        t1.digest(),
        t3.digest(),
        "a different seed draws a different loss pattern"
    );
    assert_ne!(s1, s3);
}

/// Scenario 3 — TCP over a cable that reorders, duplicates AND corrupts.
/// The hardest recovery path (out-of-order reassembly + checksum discard +
/// dup suppression) is still a pure function of the seed.
#[test]
fn tcp_transfer_over_chaotic_wire_is_seed_deterministic() {
    let imp = Impairments {
        corrupt_per_mille: 10,
        dup_per_mille: 20,
        reorder_per_mille: 40,
        reorder_delay: SimDuration::from_micros(300),
        ..Impairments::default()
    };
    let run = |seed: u64| {
        let mut net = TwoHost::with_impairments(seed, imp);
        let received = net.run_tcp_transfer(TCP_PORT, TCP_BYTES, 60_000);
        assert_eq!(received, TCP_BYTES, "TCP survived the chaotic cable");
        (net.trace, net.wire_stats)
    };
    let (t1, s1) = run(7);
    let (t2, s2) = run(7);
    assert!(
        s1.reordered > 0 && s1.duplicated > 0 && s1.corrupted > 0,
        "every impairment class fired: {s1:?}"
    );
    t1.assert_identical(&t2);
    assert_eq!(s1, s2);
}

/// Scenario 4 — UDP telemetry burst over a lossy cable. The datagrams that
/// survive (and their payload bytes) are identical for identical seeds and
/// differ across seeds.
#[test]
fn udp_burst_over_lossy_wire_is_seed_deterministic() {
    let run = |seed: u64| {
        let mut net = TwoHost::with_impairments(seed, Impairments::lossy(100));
        let got = net.run_udp_burst(UDP_PORT, 64, 4_000);
        (got, net.trace, net.wire_stats)
    };
    let (g1, t1, s1) = run(11);
    let (g2, t2, s2) = run(11);
    let (g3, t3, _) = run(12);
    assert!(s1.lost > 0, "the cable actually lost datagrams: {s1:?}");
    assert!(!g1.is_empty() && g1.len() < 64, "some but not all arrived");
    assert_eq!(g1, g2, "identical survivor payloads for identical seeds");
    t1.assert_identical(&t2);
    assert_eq!(s1, s2);
    assert_ne!(t1.digest(), t3.digest(), "seed 12 draws differently");
    assert_ne!(g1, g3, "different survivors for a different seed");
}

/// Builds a two-host `NetSim` whose client writes in bursts separated by
/// `write_gap` — when the gap dwarfs the 900 ns idle poll period, the
/// quiescence-aware engine parks both nodes between bursts instead of
/// polling through the gap. The park/wake scenarios below prove that this
/// changes nothing observable.
fn bursty_two_host(seed: u64, write_gap: SimDuration) -> NetSim {
    let mut sim = NetSim::new(CostModel::morello());
    sim.set_seed(seed);
    let a = sim.add_dev(NicModel::Host).unwrap();
    let b = sim.add_dev(NicModel::Host).unwrap();
    sim.link(a, 0, b, 0).unwrap();
    let srv = sim
        .add_node(
            "srv",
            a,
            0,
            Ipv4Addr::new(10, 7, 0, 1),
            IsolationProfile::default(),
        )
        .unwrap();
    let cli = sim
        .add_node(
            "cli",
            b,
            0,
            Ipv4Addr::new(10, 7, 0, 2),
            IsolationProfile::default(),
        )
        .unwrap();
    sim.add_server(srv, "srv-rx", 5201).unwrap();
    sim.add_client(
        cli,
        "cli-tx",
        (Ipv4Addr::new(10, 7, 0, 1), 5201),
        SimDuration::from_millis(30),
        write_gap,
    )
    .unwrap();
    sim
}

/// Park/wake scenario A — a client whose write gap (50 µs) is ~55× the
/// idle poll period leaves long quiescent stretches between bursts: both
/// nodes park and wake repeatedly. On ideal cables the trace must be
/// byte-identical across runs AND across seeds (parking may not leak any
/// seed- or schedule-dependence into wire behavior).
#[test]
fn bursty_client_with_parked_gaps_is_fully_deterministic() {
    let run = |seed: u64| {
        bursty_two_host(seed, SimDuration::from_micros(50))
            .run(SimDuration::from_millis(45))
            .unwrap()
    };
    let o1 = run(3);
    let o2 = run(3);
    let o3 = run(77);
    assert!(o1.trace.frames > 100, "bursts produced traffic");
    assert_eq!(o1.trace, o2.trace, "same seed ⇒ byte-identical trace");
    assert_eq!(o1.trace, o3.trace, "ideal cables ⇒ seed-independent");
    assert_eq!(o1.servers, o3.servers);
    assert_eq!(o1.ended_at, o3.ended_at);
    // The gaps actually exercised the park/wake machinery.
    assert!(o1.counters.parks > 100, "nodes parked: {:?}", o1.counters);
    assert!(o1.counters.wakes > 100, "deliveries woke parked nodes");
    assert_eq!(o1.counters, o3.counters, "wake pattern is deterministic");
}

/// Park/wake scenario B — idle gaps between bursts on a *lossy* cable:
/// retransmission timers are the only thing standing between a lost burst
/// and a stall, so parked nodes must wake on stack timer deadlines. Same
/// seed ⇒ same trace; different seed ⇒ different loss pattern.
#[test]
fn bursty_client_over_lossy_wire_wakes_on_timers_deterministically() {
    let run = |seed: u64| {
        let mut sim = bursty_two_host(seed, SimDuration::from_micros(80));
        sim.set_impairments(Impairments::lossy(30));
        sim.run(SimDuration::from_millis(60)).unwrap()
    };
    let o1 = run(9);
    let o2 = run(9);
    let o3 = run(10);
    assert!(o1.impairment_stats.lost > 0, "the cable actually lost");
    assert_eq!(o1.trace, o2.trace);
    assert_eq!(o1.counters, o2.counters);
    assert_ne!(o1.trace.digest, o3.trace.digest, "different loss pattern");
    assert!(
        o1.counters.timer_wakes > 0,
        "losses forced timer wakes: {:?}",
        o1.counters
    );
    // The client still got its data through despite parking around losses.
    assert!(o1.servers[0].bytes > 0);
}

/// Scenario 5 — the full compartment world: two `NetSim` runs built the same
/// way (CAP-VM isolation charges, S2 service mutex, impaired cable) and
/// seeded the same produce identical reports, byte counts and wire
/// counters; a different seed produces different wire counters.
#[test]
fn netsim_compartment_run_is_seed_deterministic() {
    let build = |seed: u64| {
        let costs = CostModel::morello();
        let mut sim = NetSim::new(costs.clone());
        sim.set_seed(seed);
        sim.set_impairments(Impairments::lossy(20));
        let a = sim.add_dev(NicModel::Dual82576).unwrap();
        let h = sim.add_dev(NicModel::Host).unwrap();
        sim.link(a, 0, h, 0).unwrap();
        let dut = sim
            .add_node(
                "dut",
                a,
                0,
                Ipv4Addr::new(10, 9, 0, 1),
                IsolationProfile {
                    per_ff_call_ns: costs.xcall_ns + costs.mutex_fast_ns,
                    s2_service: true,
                },
            )
            .unwrap();
        let host = sim
            .add_node(
                "host",
                h,
                0,
                Ipv4Addr::new(10, 9, 0, 2),
                IsolationProfile::default(),
            )
            .unwrap();
        sim.add_server(dut, "dut-rx", 5201).unwrap();
        sim.add_client(
            host,
            "host-tx",
            (Ipv4Addr::new(10, 9, 0, 1), 5201),
            SimDuration::from_millis(40),
            SimDuration::ZERO,
        )
        .unwrap();
        sim.run(SimDuration::from_millis(50)).unwrap()
    };
    let o1 = build(21);
    let o2 = build(21);
    let o3 = build(22);
    assert_eq!(o1.servers, o2.servers, "server reports are bit-identical");
    assert_eq!(o1.clients, o2.clients, "client reports are bit-identical");
    assert_eq!(o1.ended_at, o2.ended_at);
    assert_eq!(o1.impairment_stats, o2.impairment_stats);
    assert!(
        o1.impairment_stats.lost > 0,
        "the impaired cable did its job: {:?}",
        o1.impairment_stats
    );
    assert_ne!(
        o1.impairment_stats, o3.impairment_stats,
        "a different seed loses different frames"
    );
}
