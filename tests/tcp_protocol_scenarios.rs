//! The TCP protocol-fidelity scenarios: lossy-WAN goodput (SACK on/off)
//! and mixed congestion-control dumbbell fairness. Like every scenario in
//! this repository they are pure functions of their argument tuple — the
//! digests pinned here are the seed values; update them only for a change
//! that *intends* to alter wire behavior — and byte-identical at any
//! worker count.

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

use capnet::scenario::{
    fairness_index, run_dumbbell_cc, run_dumbbell_cc_impaired, run_lossy_wan, run_star_iperf_custom,
};
use capnet::CcAlgo;
use simkern::{CostModel, SimDuration};
use updk::wire::Impairments;

const LOSSY_SEED: u64 = 77;
const LOSS_PER_MILLE: u16 = 20;

/// CUBIC + SACK star over a 2% lossy fabric, across worker counts: the
/// new protocol machinery (scoreboard retransmits, cubic window growth)
/// must shard exactly like the classic path does.
#[test]
fn lossy_cubic_sack_star_is_pinned_and_shards_identically() {
    let run = |workers: usize| {
        run_star_iperf_custom(
            2,
            SimDuration::from_millis(40),
            CostModel::morello(),
            LOSSY_SEED,
            Impairments {
                loss_per_mille: LOSS_PER_MILLE,
                ..Default::default()
            },
            workers,
            CcAlgo::Cubic,
            true,
        )
        .expect("lossy star runs")
    };
    let base = run(1);
    assert!(base.trace.frames > 1_000, "real traffic flowed");
    assert!(
        base.impairment_stats.lost > 0,
        "the lossy fabric actually dropped frames"
    );
    assert_eq!(
        base.trace.digest, 0x713744d4632534de,
        "lossy CUBIC+SACK star trace drifted"
    );
    // Same scenario with Reno: the CC choice genuinely reaches the wire
    // once loss makes the algorithms recover differently.
    let reno = run_star_iperf_custom(
        2,
        SimDuration::from_millis(40),
        CostModel::morello(),
        LOSSY_SEED,
        Impairments {
            loss_per_mille: LOSS_PER_MILLE,
            ..Default::default()
        },
        1,
        CcAlgo::Reno,
        true,
    )
    .expect("reno star runs");
    assert_ne!(
        base.trace.digest, reno.trace.digest,
        "CUBIC and Reno must diverge under loss"
    );
    // The deprecated wrapper leaves adaptive selection on, so these runs
    // collapse back to one engine — proving the wrapper still delegates
    // byte-identically through the adaptive path.
    for workers in [2usize, 4] {
        let out = run(workers);
        assert_eq!(
            base.trace, out.trace,
            "workers={workers}: byte-identical trace"
        );
        assert_eq!(base.servers, out.servers, "workers={workers}: reports");
        assert_eq!(
            base.impairment_stats, out.impairment_stats,
            "workers={workers}: impairment totals"
        );
    }
    // And genuinely sharded (adaptive off): the protocol machinery must
    // survive real window-driven execution, not just the collapsed path.
    let sharded = capnet::ScenarioSpec::star(2)
        .duration(SimDuration::from_millis(40))
        .costs(CostModel::morello())
        .seed(LOSSY_SEED)
        .impairments(Impairments {
            loss_per_mille: LOSS_PER_MILLE,
            ..Default::default()
        })
        .workers(2)
        .adaptive_workers(false)
        .congestion(CcAlgo::Cubic)
        .sack(true)
        .run()
        .expect("sharded lossy star runs");
    assert_eq!(sharded.workers, 2, "forced plan must stay sharded");
    assert_eq!(base.trace, sharded.trace, "sharded: byte-identical trace");
    assert_eq!(base.servers, sharded.servers, "sharded: reports");
    assert_eq!(
        base.impairment_stats, sharded.impairment_stats,
        "sharded: impairment totals"
    );
}

/// SACK recovers goodput on a lossy WAN: the same seed, the same drops —
/// the scoreboard-driven retransmit path must deliver at least as much as
/// timeout/fast-retransmit-only recovery, and both runs are deterministic.
#[test]
fn sack_recovers_goodput_on_a_lossy_wan() {
    let dur = SimDuration::from_millis(40);
    let with_sack = run_lossy_wan(dur, CostModel::morello(), LOSSY_SEED, LOSS_PER_MILLE, true)
        .expect("sack run");
    let without = run_lossy_wan(dur, CostModel::morello(), LOSSY_SEED, LOSS_PER_MILLE, false)
        .expect("plain run");
    let sum =
        |out: &capnet::SimOutcome| -> f64 { out.servers.iter().map(|r| r.mbit_per_sec()).sum() };
    let (on, off) = (sum(&with_sack), sum(&without));
    assert!(
        on > 0.0 && off > 0.0,
        "both modes moved data: {on:.1}/{off:.1}"
    );
    assert!(
        on >= off * 0.95,
        "SACK must not cost goodput: {on:.1} vs {off:.1} Mbit/s"
    );
    // Determinism: replaying either configuration reproduces it exactly.
    let replay =
        run_lossy_wan(dur, CostModel::morello(), LOSSY_SEED, LOSS_PER_MILLE, true).expect("replay");
    assert_eq!(with_sack.trace, replay.trace, "same seed, same trace");
    assert_eq!(with_sack.servers, replay.servers);
}

/// Reno and CUBIC senders sharing a lossy dumbbell trunk: the split is the
/// inter-algorithm fairness experiment, pinned by digest and scored by
/// Jain's index. On the drop-free dumbbell both algorithms stay in slow
/// start (receiver-window-limited) and the classic pinned digest must hold
/// for ANY algorithm mix — the CC plumbing is opt-in by construction.
#[test]
fn reno_vs_cubic_dumbbell_is_pinned_and_fair_enough() {
    let lossy = Impairments {
        loss_per_mille: 10,
        ..Default::default()
    };
    let out = run_dumbbell_cc_impaired(
        2,
        SimDuration::from_millis(30),
        CostModel::morello(),
        5,
        &[CcAlgo::Reno, CcAlgo::Cubic],
        lossy,
    )
    .expect("dumbbell runs");
    assert_eq!(out.servers.len(), 2);
    assert_eq!(
        out.trace.digest, 0x3afe5d066e8e0e51,
        "Reno-vs-CUBIC lossy dumbbell trace drifted"
    );
    let rates: Vec<f64> = out.servers.iter().map(|r| r.mbit_per_sec()).collect();
    let jain = fairness_index(&rates);
    assert!(
        jain > 0.5,
        "neither algorithm starves the other: J={jain:.3} over {rates:?}"
    );
    // The same lossy run with both senders on Reno must differ: the mixed
    // algorithms genuinely reached the wire.
    let all_reno = run_dumbbell_cc_impaired(
        2,
        SimDuration::from_millis(30),
        CostModel::morello(),
        5,
        &[CcAlgo::Reno, CcAlgo::Reno],
        lossy,
    )
    .expect("all-reno dumbbell");
    assert_ne!(
        out.trace.digest, all_reno.trace.digest,
        "mixing CUBIC in must change recovery behavior under loss"
    );
    // An all-default, drop-free run (empty algo slice) must reproduce the
    // repo's long-pinned classic dumbbell digest — the new plumbing
    // changes nothing unless asked.
    let classic = run_dumbbell_cc(
        2,
        SimDuration::from_millis(30),
        CostModel::morello(),
        5,
        &[],
    )
    .expect("classic dumbbell");
    assert_eq!(
        classic.trace.digest, 0x5a1adb9234ff72c8,
        "default-CC dumbbell must keep the classic pinned digest"
    );
    // And with an explicit all-CUBIC mix but no loss, the flows never
    // leave slow start, so even the algorithm swap is invisible.
    let clean_cubic = run_dumbbell_cc(
        2,
        SimDuration::from_millis(30),
        CostModel::morello(),
        5,
        &[CcAlgo::Cubic],
    )
    .expect("clean cubic dumbbell");
    assert_eq!(
        clean_cubic.trace.digest, 0x5a1adb9234ff72c8,
        "drop-free dumbbell is rwnd-limited: CC choice is inert"
    );
}
