//! Integration: contended-flow fairness in Scenario 2 (Table II, bottom).
//!
//! The paper's contended client rows are unbalanced — 531 vs 410 Mbit/s —
//! attributed to "the lack of mechanisms for fairness control"; the server
//! rows stay even (470/470). With [`AppSched::paper_barging`] this repo
//! reproduces the imbalance (a mutex-convoy starvation model); with the
//! default round-robin scheduling — the fairness fix the paper defers to
//! future work — the split comes out even. Both worlds keep the aggregate
//! at the port ceiling, the paper's headline claim.

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

use capnet::netsim::AppSched;
use capnet::scenario::{run_bandwidth_full, ScenarioKind, TrafficMode};
use simkern::{CostModel, SimDuration};
use updk::wire::Impairments;

const RUN: SimDuration = SimDuration::from_millis(150);

fn contended(mode: TrafficMode, sched: AppSched) -> (f64, f64) {
    let out = run_bandwidth_full(
        ScenarioKind::Scenario2Contended,
        mode,
        RUN,
        CostModel::morello(),
        Impairments::default(),
        sched,
    )
    .expect("contended run");
    let reports = match mode {
        TrafficMode::Server => &out.servers,
        TrafficMode::Client => &out.clients,
    };
    (reports[0].mbit_per_sec(), reports[1].mbit_per_sec())
}

#[test]
fn barging_reproduces_the_papers_unbalanced_client_split() {
    let (a, b) = contended(TrafficMode::Client, AppSched::paper_barging());
    // Paper: 531 / 410 Mbit/s (ratio ≈ 1.30).
    assert!((a - 531.0).abs() < 25.0, "favored flow: {a:.0} (paper 531)");
    assert!((b - 410.0).abs() < 25.0, "starved flow: {b:.0} (paper 410)");
    let ratio = a / b;
    assert!(
        (1.15..=1.45).contains(&ratio),
        "imbalance ratio {ratio:.2} (paper ≈ 1.30)"
    );
    // The aggregate still saturates the port — the paper's headline.
    assert!((a + b - 941.0).abs() < 30.0, "joint {:.0}", a + b);
}

#[test]
fn round_robin_is_the_fairness_fix() {
    let (a, b) = contended(TrafficMode::Client, AppSched::RoundRobin);
    let ratio = a.max(b) / a.min(b);
    assert!(ratio < 1.06, "fair split, got {a:.0}/{b:.0}");
    assert!((a + b - 941.0).abs() < 30.0, "joint {:.0}", a + b);
}

#[test]
fn server_side_stays_even_under_both_policies() {
    // The paper's server rows are 470/470 even on the unfair testbed: the
    // receive path is driven by the service loop, not by app stepping.
    for sched in [AppSched::RoundRobin, AppSched::paper_barging()] {
        let (a, b) = contended(TrafficMode::Server, sched);
        let ratio = a.max(b) / a.min(b);
        assert!(
            ratio < 1.10,
            "server split must stay even under {sched:?}: {a:.0}/{b:.0}"
        );
        assert!((a - 470.0).abs() < 25.0, "{a:.0} vs paper 470");
    }
}

#[test]
fn weighted_policy_splits_bandwidth_by_weight() {
    // The QoS answer to the paper's fairness future work: an explicit
    // weighted scheduler makes the contended split a configuration knob.
    for (wf, wr, want_ratio) in [(1u32, 1u32, 1.0), (2, 1, 2.0), (3, 1, 3.0)] {
        let (a, b) = contended(
            TrafficMode::Client,
            AppSched::Weighted {
                weight_first: wf,
                weight_rest: wr,
            },
        );
        let ratio = a / b;
        assert!(
            (ratio - want_ratio).abs() < 0.25 * want_ratio,
            "weights {wf}:{wr} gave {a:.0}/{b:.0} (ratio {ratio:.2}, want ≈{want_ratio})"
        );
        assert!((a + b - 941.0).abs() < 40.0, "joint {:.0}", a + b);
    }
}

#[test]
fn single_flow_is_unaffected_by_the_policy() {
    // With one app cVM there is nobody to starve: both policies must give
    // the uncontended 941.
    for sched in [AppSched::RoundRobin, AppSched::paper_barging()] {
        let out = run_bandwidth_full(
            ScenarioKind::Scenario2Uncontended,
            TrafficMode::Server,
            RUN,
            CostModel::morello(),
            Impairments::default(),
            sched,
        )
        .unwrap();
        let bw = out.servers[0].mbit_per_sec();
        assert!((bw - 941.0).abs() < 20.0, "{sched:?}: {bw:.0}");
    }
}
