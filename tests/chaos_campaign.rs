//! The adversarial suite end to end — chaos campaigns riding a live HTTP
//! serving plane:
//!
//! * a full three-family campaign (wire fuzzing, capability walker,
//!   bit-flip injection) is **byte-identical at workers=1/2/4**: the
//!   campaign digest, every injector tally and the wire trace all match
//!   the single-engine run;
//! * every capability probe lands as **exactly** the predicted
//!   [`cheri::FaultKind`] — zero mismatches — and no probe ever corrupts
//!   the victim compartment;
//! * malformed frames are **rejected and counted** by the victim stack's
//!   parsers (`parse_drops`), never panicked on;
//! * the slow-loris adversary in the fleet is **shed** by the server's
//!   idle-header-read reaper, and both sides count it.

use capnet::scenario::ScenarioSpec;
use capnet::SimOutcome;
use capnet_chaos::{BitFlipConfig, ChaosConfig, TcpForgeConfig, WalkerConfig, WireChaosConfig};
use capnet_httpd::{FleetConfig, HttpServerConfig};
use simkern::cost::CostModel;
use simkern::time::SimDuration;

/// A star-4 serving plane with a full three-family campaign on leaf 0.
fn chaos_star(workers: usize) -> SimOutcome {
    ScenarioSpec::star(4)
        .duration(SimDuration::from_millis(15))
        .costs(CostModel::morello())
        .seed(42)
        .workers(workers)
        .adaptive_workers(false)
        .http(
            HttpServerConfig::default(),
            FleetConfig {
                rate_per_sec: 2_000,
                keep_alive_per_mille: 300,
                ..FleetConfig::default()
            },
        )
        .chaos(ChaosConfig {
            rounds: 120,
            wire: Some(WireChaosConfig::default()),
            walker: Some(WalkerConfig::default()),
            bitflip: Some(BitFlipConfig::default()),
            ..ChaosConfig::default()
        })
        .run()
        .expect("chaos star runs")
}

#[test]
fn campaign_is_byte_identical_at_any_worker_count() {
    let base = chaos_star(1);
    assert_eq!(base.chaos.len(), 1, "one campaign installed");
    assert_eq!(base.chaos[0].rounds, 120, "the campaign ran to completion");
    assert!(
        base.trace.frames > 500,
        "the workload produced real traffic"
    );
    for workers in [2usize, 4] {
        let out = chaos_star(workers);
        assert_eq!(
            base.trace, out.trace,
            "workers={workers}: the wire trace (workload + fuzz frames) \
             must be byte-identical"
        );
        assert_eq!(
            base.chaos, out.chaos,
            "workers={workers}: the campaign digest and every injector \
             tally must be byte-identical"
        );
        assert_eq!(
            base.http_servers, out.http_servers,
            "workers={workers}: server reports"
        );
    }
}

#[test]
fn every_injected_violation_faults_as_predicted_and_corrupts_nothing() {
    let out = chaos_star(1);
    let report = &out.chaos[0];
    let walker = report.walker.as_ref().expect("walker ran");
    assert!(walker.probes >= 200, "the walker actually probed");
    assert_eq!(
        walker.faults_expected, walker.probes,
        "every probe must raise a fault"
    );
    assert_eq!(
        walker.mismatches, 0,
        "every fault must be exactly the predicted FaultKind"
    );
    assert_eq!(
        walker.corruptions, 0,
        "no probe may corrupt the victim compartment"
    );
    assert!(
        walker.logged_faults > 0,
        "the Intravisor logged the attacker's faults"
    );
    let flips = report.bitflip.as_ref().expect("bitflip ran");
    assert!(flips.caps_killed > 0, "flips actually hit tagged granules");
    assert_eq!(
        flips.kills_detected, flips.caps_killed,
        "every capability kill must be detectable end to end"
    );
    assert!(
        report.violations_detected() > 0,
        "the campaign reports detected violations"
    );
    assert_eq!(report.mismatches(), 0);
    assert_eq!(report.corruptions(), 0);
}

#[test]
fn malformed_frames_are_rejected_and_counted_by_the_victim() {
    let out = chaos_star(1);
    let wire = out.chaos[0].wire.as_ref().expect("wire adversary ran");
    assert!(
        wire.frames_emitted > 300,
        "the adversary actually transmitted"
    );
    assert!(wire.arp_poison > 0, "poison replies were among them");
    // The fuzz targets the hub; its parsers must drop-and-count, and the
    // run completing at all proves nothing panicked.
    let (_, hub_stats) = out
        .stack_stats
        .iter()
        .find(|(name, _)| name == "hub")
        .expect("hub stack stats present");
    assert!(
        hub_stats.parse_drops() > 0,
        "the hub counted malformed-frame drops: {hub_stats:?}"
    );
}

/// The off-path TCP forger against the serving hub: blind RSTs and SYNs
/// spoofing a real leaf's address at live connections. RFC 5961 holds —
/// every forgery is a counted drop, no connection dies, service continues
/// — and the whole attack is byte-identical at any worker count.
fn forge_star(workers: usize) -> SimOutcome {
    ScenarioSpec::star(4)
        .duration(SimDuration::from_millis(20))
        .costs(CostModel::morello())
        .seed(23)
        .workers(workers)
        .adaptive_workers(false)
        .http(
            HttpServerConfig::default(),
            FleetConfig {
                rate_per_sec: 3_000,
                keep_alive_per_mille: 700,
                requests_per_conn: 8,
                ..FleetConfig::default()
            },
        )
        .chaos(ChaosConfig {
            rounds: 150,
            forge: Some(TcpForgeConfig {
                frames_per_round: 6,
                ..TcpForgeConfig::default()
            }),
            ..ChaosConfig::default()
        })
        .run()
        .expect("forge star runs")
}

#[test]
fn blind_rst_and_syn_forgeries_are_dropped_counted_and_deterministic() {
    let base = forge_star(1);
    let forge = base.chaos[0].forge.as_ref().expect("forger ran");
    assert!(
        forge.rsts_forged > 100 && forge.syns_forged > 100,
        "the forger actually sprayed both kinds: {forge:?}"
    );
    let (_, hub_stats) = base
        .stack_stats
        .iter()
        .find(|(name, _)| name == "hub")
        .expect("hub stack stats present");
    assert!(
        hub_stats.rst_forgery_drops > 0,
        "blind RSTs against live tuples must be counted drops: {hub_stats:?}"
    );
    assert!(
        hub_stats.syn_forgery_drops > 0,
        "blind SYNs against live tuples must be counted drops: {hub_stats:?}"
    );
    // RFC 5961: the barrage never tears a live connection down, so the
    // serving plane keeps completing requests throughout.
    let ok: u64 = base.http_fleets.iter().map(|f| f.requests_ok).sum();
    assert!(ok > 50, "service continued under forgery: {ok} requests ok");
    for workers in [2usize, 4] {
        let out = forge_star(workers);
        assert_eq!(base.trace, out.trace, "workers={workers}: wire trace");
        assert_eq!(base.chaos, out.chaos, "workers={workers}: forge tallies");
        assert_eq!(
            base.stack_stats, out.stack_stats,
            "workers={workers}: victim forgery counters"
        );
    }
}

/// Slow-loris fleets against the idle-header-read reaper: the server sheds
/// the drip-feeding connections (counting them), and the fleets observe
/// their loris connections dying.
#[test]
fn loris_connections_are_shed_by_the_idle_reaper() {
    let out = ScenarioSpec::star(4)
        .duration(SimDuration::from_millis(25))
        .costs(CostModel::morello())
        .seed(7)
        .http(
            HttpServerConfig {
                idle_header_timeout: SimDuration::from_millis(2),
                ..HttpServerConfig::default()
            },
            FleetConfig {
                rate_per_sec: 2_000,
                loris_per_mille: 500,
                loris_drip_bytes: 1,
                loris_drip_interval: SimDuration::from_millis(8),
                ..FleetConfig::default()
            },
        )
        .run()
        .expect("loris star runs");
    let server = &out.http_servers[0];
    assert!(
        server.idle_shed > 0,
        "the reaper shed idle loris connections: {server:?}"
    );
    let loris_conns: u64 = out.http_fleets.iter().map(|f| f.loris_conns).sum();
    let loris_shed: u64 = out.http_fleets.iter().map(|f| f.loris_shed).sum();
    assert!(
        loris_conns > 0,
        "the fleets actually opened loris connections"
    );
    assert!(
        loris_shed > 0,
        "the fleets observed their loris connections being shed \
         (conns={loris_conns})"
    );
    // Normal traffic still flows around the attack.
    assert!(
        out.http_servers[0].ok > 0,
        "legitimate requests were still served"
    );
}
