//! Integration: the UDP datagram path through the `ff_*` API, and the
//! iperf applications driven against real stacks.

use cheri::{Perms, TaggedMemory};
use chos::Errno;
use fstack::socket::SockType;
use fstack::{FStack, StackConfig};
use iperf::{ClientApp, ServerApp};
use simkern::{SimDuration, SimTime};
use std::net::Ipv4Addr;
use updk::nic::MacAddr;

const IP_A: Ipv4Addr = Ipv4Addr::new(10, 5, 0, 1);
const IP_B: Ipv4Addr = Ipv4Addr::new(10, 5, 0, 2);

fn stack_pair() -> (FStack, FStack) {
    let mut a = FStack::new(StackConfig::new("a", MacAddr::local(1), IP_A));
    let mut b = FStack::new(StackConfig::new("b", MacAddr::local(2), IP_B));
    a.arp_cache_mut().insert_static(IP_B, MacAddr::local(2));
    b.arp_cache_mut().insert_static(IP_A, MacAddr::local(1));
    (a, b)
}

fn pump(now: SimTime, a: &mut FStack, b: &mut FStack) {
    for _ in 0..4 {
        let fa = a.poll_tx(now);
        let fb = b.poll_tx(now);
        if fa.is_empty() && fb.is_empty() {
            break;
        }
        for f in fa {
            b.input_frame(now, &f);
        }
        for f in fb {
            a.input_frame(now, &f);
        }
    }
}

#[test]
fn udp_request_reply_round_trip() {
    let (mut a, mut b) = stack_pair();
    let mut mem = TaggedMemory::new(1 << 20);
    let now = SimTime::from_micros(10);

    // B: bound UDP "telemetry" service.
    let sb = b.ff_socket(SockType::Dgram).unwrap();
    b.ff_bind(sb, 14_550).unwrap(); // the MAVLink UDP port
                                    // A: unbound client.
    let sa = a.ff_socket(SockType::Dgram).unwrap();

    let msg = mem
        .root_cap()
        .try_restrict(0x1000, 64)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap();
    mem.write(
        &msg,
        msg.base(),
        b"HEARTBEAT drone-1 mode=HOVER bat=87%____________________________"[..64].as_ref(),
    )
    .unwrap();

    let sent = a.ff_sendto(&mut mem, sa, &msg, 64, (IP_B, 14_550)).unwrap();
    assert_eq!(sent, 64);
    pump(now, &mut a, &mut b);

    // B receives, learns the ephemeral source, replies.
    let sink = mem
        .root_cap()
        .try_restrict(0x2000, 128)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap();
    let (n, from) = b.ff_recvfrom(&mut mem, sb, &sink).unwrap();
    assert_eq!(n, 64);
    assert_eq!(from.0, IP_A);
    let got = mem.read_vec(&sink, sink.base(), 9).unwrap();
    assert_eq!(&got, b"HEARTBEAT");

    let ack = mem
        .root_cap()
        .try_restrict(0x3000, 16)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap();
    mem.write(&ack, ack.base(), b"ACK seq=0001____").unwrap();
    b.ff_sendto(&mut mem, sb, &ack, 16, from).unwrap();
    pump(now, &mut a, &mut b);

    let (n, from_b) = a.ff_recvfrom(&mut mem, sa, &sink).unwrap();
    assert_eq!(n, 16);
    assert_eq!(from_b, (IP_B, 14_550));
    assert_eq!(b.stats().udp_in, 1);
    assert_eq!(a.stats().udp_in, 1);
}

#[test]
fn udp_errors_are_posixy() {
    let (mut a, _b) = stack_pair();
    let mut mem = TaggedMemory::new(1 << 20);
    let sa = a.ff_socket(SockType::Dgram).unwrap();
    let buf = mem.root_cap().try_restrict(0, 64).unwrap();

    // Oversized datagram.
    assert_eq!(
        a.ff_sendto(&mut mem, sa, &buf, 2_000, (IP_B, 1))
            .unwrap_err(),
        Errno::EMSGSIZE
    );
    // Empty receive queue.
    assert_eq!(
        a.ff_recvfrom(&mut mem, sa, &buf).unwrap_err(),
        Errno::EAGAIN
    );
    // sendto with a dead capability.
    let dead = buf.without_tag();
    assert_eq!(
        a.ff_sendto(&mut mem, sa, &dead, 16, (IP_B, 1)).unwrap_err(),
        Errno::EFAULT
    );
    // TCP calls on a UDP socket.
    assert_eq!(a.ff_listen(sa, 1).unwrap_err(), Errno::EINVAL);
    assert_eq!(a.ff_accept(sa).unwrap_err(), Errno::EINVAL);
}

#[test]
fn iperf_apps_drive_a_real_connection() {
    let (mut a, mut b) = stack_pair();
    let mut mem = TaggedMemory::new(1 << 20);
    let mk_buf = |mem: &mut TaggedMemory, base: u64| {
        mem.root_cap()
            .try_restrict(base, 8 * 1024)
            .unwrap()
            .try_restrict_perms(Perms::data())
            .unwrap()
    };
    let srv_buf = mk_buf(&mut mem, 0x10000);
    let cli_buf = mk_buf(&mut mem, 0x20000);
    mem.fill(&cli_buf, cli_buf.base(), 8 * 1024, 0x77).unwrap();

    let mut server = ServerApp::start(&mut b, "rx", 5201, srv_buf).unwrap();
    let mut client = ClientApp::start(
        &mut a,
        "tx",
        (IP_B, 5201),
        cli_buf,
        SimDuration::from_millis(2),
        SimTime::ZERO,
    )
    .unwrap();

    let mut now = SimTime::from_micros(1);
    for _ in 0..8_000 {
        pump(now, &mut a, &mut b);
        client.step(&mut a, &mut mem, now).unwrap();
        server.step(&mut b, &mut mem, now).unwrap();
        now += SimDuration::from_micros(5);
        if client.is_done() && server.connections() == 0 && server.bytes() > 0 {
            break;
        }
    }
    assert!(client.is_done(), "client finished its timed run");
    assert!(client.bytes() > 0);
    assert_eq!(
        server.bytes(),
        client.bytes(),
        "receiver counted exactly what the sender wrote"
    );
    let report = server.report(now);
    assert!(report.mbit_per_sec() > 0.0);
    assert!(!report.intervals.is_empty());
}

#[test]
fn two_clients_one_server_port_each() {
    // The contended Scenario 2 app shape: two senders into one stack.
    let (mut a, mut b) = stack_pair();
    let mut mem = TaggedMemory::new(1 << 20);
    let buf = |mem: &mut TaggedMemory, base: u64| {
        mem.root_cap()
            .try_restrict(base, 4096)
            .unwrap()
            .try_restrict_perms(Perms::data())
            .unwrap()
    };
    let s1 = ServerApp::start(&mut b, "rx1", 5201, buf(&mut mem, 0x10000)).unwrap();
    let s2 = ServerApp::start(&mut b, "rx2", 5202, buf(&mut mem, 0x20000)).unwrap();
    let mut servers = [s1, s2];
    let c1 = ClientApp::start(
        &mut a,
        "tx1",
        (IP_B, 5201),
        buf(&mut mem, 0x30000),
        SimDuration::from_millis(1),
        SimTime::ZERO,
    )
    .unwrap();
    let c2 = ClientApp::start(
        &mut a,
        "tx2",
        (IP_B, 5202),
        buf(&mut mem, 0x40000),
        SimDuration::from_millis(1),
        SimTime::ZERO,
    )
    .unwrap();
    let mut clients = [c1, c2];

    let mut now = SimTime::from_micros(1);
    for _ in 0..6_000 {
        pump(now, &mut a, &mut b);
        for c in &mut clients {
            c.step(&mut a, &mut mem, now).unwrap();
        }
        for s in &mut servers {
            s.step(&mut b, &mut mem, now).unwrap();
        }
        now += SimDuration::from_micros(5);
        if clients.iter().all(ClientApp::is_done) {
            break;
        }
    }
    assert!(clients.iter().all(|c| c.bytes() > 0));
    assert_eq!(servers[0].bytes(), clients[0].bytes());
    assert_eq!(servers[1].bytes(), clients[1].bytes());
}

#[test]
fn udp_to_closed_port_draws_port_unreachable_and_econnrefused() {
    let (mut a, mut b) = stack_pair();
    let mut mem = TaggedMemory::new(1 << 20);
    let now = SimTime::from_micros(10);

    let sa = a.ff_socket(SockType::Dgram).unwrap();
    let msg = mem
        .root_cap()
        .try_restrict(0x1000, 64)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap();
    mem.fill(&msg, msg.base(), 64, 0x77).unwrap();

    // Nothing listens on 4444 at B.
    a.ff_sendto(&mut mem, sa, &msg, 64, (IP_B, 4_444)).unwrap();
    for _ in 0..4 {
        for f in a.poll_tx(now) {
            b.input_frame(now, &f);
        }
        for f in b.poll_tx(now) {
            a.input_frame(now, &f);
        }
    }
    assert_eq!(b.stats().unreach_out, 1, "B answered with port unreachable");

    // The asynchronous error surfaces exactly once, then the socket works.
    assert_eq!(
        a.ff_recvfrom(&mut mem, sa, &msg).unwrap_err(),
        Errno::ECONNREFUSED
    );
    assert_eq!(
        a.ff_recvfrom(&mut mem, sa, &msg).unwrap_err(),
        Errno::EAGAIN
    );
}

#[test]
fn udp_unreachable_raises_epollerr_until_observed() {
    use fstack::epoll::EpollFlags;
    let (mut a, mut b) = stack_pair();
    let mut mem = TaggedMemory::new(1 << 20);
    let now = SimTime::from_micros(10);

    let sa = a.ff_socket(SockType::Dgram).unwrap();
    let ep = a.ff_epoll_create();
    a.ff_epoll_ctl_add(ep, sa, EpollFlags::IN).unwrap();
    let msg = mem
        .root_cap()
        .try_restrict(0x1000, 32)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap();
    a.ff_sendto(&mut mem, sa, &msg, 32, (IP_B, 4_445)).unwrap();
    for _ in 0..4 {
        for f in a.poll_tx(now) {
            b.input_frame(now, &f);
        }
        for f in b.poll_tx(now) {
            a.input_frame(now, &f);
        }
    }
    let ev = a.ff_epoll_wait(ep).unwrap();
    assert!(ev
        .iter()
        .any(|e| e.fd == sa && e.events.contains(EpollFlags::ERR)));
    let _ = a.ff_recvfrom(&mut mem, sa, &msg);
    let ev = a.ff_epoll_wait(ep).unwrap();
    assert!(
        !ev.iter()
            .any(|e| e.fd == sa && e.events.contains(EpollFlags::ERR)),
        "error cleared after observation"
    );
}

#[test]
fn udp_to_open_port_never_raises_unreachable() {
    let (mut a, mut b) = stack_pair();
    let mut mem = TaggedMemory::new(1 << 20);
    let now = SimTime::from_micros(10);

    let sb = b.ff_socket(SockType::Dgram).unwrap();
    b.ff_bind(sb, 4_446).unwrap();
    let sa = a.ff_socket(SockType::Dgram).unwrap();
    let msg = mem
        .root_cap()
        .try_restrict(0x1000, 32)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap();
    a.ff_sendto(&mut mem, sa, &msg, 32, (IP_B, 4_446)).unwrap();
    for _ in 0..4 {
        for f in a.poll_tx(now) {
            b.input_frame(now, &f);
        }
        for f in b.poll_tx(now) {
            a.input_frame(now, &f);
        }
    }
    assert_eq!(b.stats().unreach_out, 0);
    assert_eq!(
        a.ff_recvfrom(&mut mem, sa, &msg).unwrap_err(),
        Errno::EAGAIN
    );
    let (n, _) = b.ff_recvfrom(&mut mem, sb, &msg).unwrap();
    assert_eq!(n, 32);
}
