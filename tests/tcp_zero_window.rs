//! Zero-window flow control through the full stack: when the receiver's
//! buffer fills and it advertises a zero window, the sender must fall back
//! to the RFC 1122 §4.2.2.17 persist timer — one-byte probes at a
//! backed-off cadence — instead of blasting full segments at a peer that
//! has nowhere to put them. Every frame on the wire is captured and its
//! TCP header parsed, so the assertions are about actual wire behavior,
//! not internal counters alone.

mod testutil;

use chos::Errno;
use fstack::socket::SockType;
use testutil::{Dir, TwoHost};

const PORT: u16 = 7300;
/// More than the receiver can buffer (its socket buffer is 64 KiB).
const TOTAL: u64 = 160 * 1024;

/// A parsed TCP frame off the captured wire.
struct TcpView {
    payload_len: usize,
    window: u16,
    syn: bool,
    fin: bool,
}

/// Ethernet + IPv4 + TCP parse; `None` for ARP and anything non-TCP.
fn parse_tcp(bytes: &[u8]) -> Option<TcpView> {
    if bytes.len() < 14 + 20 + 20 {
        return None;
    }
    if bytes[12] != 0x08 || bytes[13] != 0x00 {
        return None; // not IPv4
    }
    let ip = &bytes[14..];
    let ihl = usize::from(ip[0] & 0x0F) * 4;
    if ip[9] != 6 {
        return None; // not TCP
    }
    let total_len = usize::from(u16::from_be_bytes([ip[2], ip[3]]));
    let tcp = &ip[ihl..];
    let data_off = usize::from(tcp[12] >> 4) * 4;
    Some(TcpView {
        payload_len: total_len - ihl - data_off,
        window: u16::from_be_bytes([tcp[14], tcp[15]]),
        syn: tcp[13] & 0x02 != 0,
        fin: tcp[13] & 0x01 != 0,
    })
}

#[test]
fn zero_window_receiver_sees_only_one_byte_probes() {
    let mut net = TwoHost::new(0xF10D);
    let lfd = net
        .stack(testutil::Side::B)
        .ff_socket(SockType::Stream)
        .unwrap();
    net.stack(testutil::Side::B).ff_bind(lfd, PORT).unwrap();
    net.stack(testutil::Side::B).ff_listen(lfd, 4).unwrap();
    let cfd = net
        .stack(testutil::Side::A)
        .ff_socket(SockType::Stream)
        .unwrap();
    let now = net.now;
    net.stack(testutil::Side::A)
        .ff_connect(cfd, (testutil::IP_B, PORT), now)
        .unwrap();

    // Phase 1: flood. B accepts the connection but its app NEVER reads, so
    // the advertised window shrinks to zero and stays there.
    let pay = net.app_buffer(testutil::Side::A);
    let mut wrote = 0u64;
    for _ in 0..6_000 {
        net.tick();
        if wrote < TOTAL {
            let want = (TOTAL - wrote).min(pay.len());
            let (stack, mem) = net.stack_and_mem(testutil::Side::A);
            match stack.ff_write(mem, cfd, &pay, want) {
                Ok(n) => wrote += n,
                // EPIPE covers the pre-established handshake window.
                Err(Errno::EAGAIN) | Err(Errno::EPIPE) => {}
                Err(e) => panic!("ff_write: {e}"),
            }
        }
    }
    let afd = net.stack(testutil::Side::B).ff_accept(lfd).unwrap();
    let stalled = net
        .trace
        .events
        .iter()
        .rev()
        .filter(|ev| ev.dir == Dir::BtoA)
        .find_map(|ev| parse_tcp(&ev.bytes))
        .expect("B sent ACKs");
    assert_eq!(stalled.window, 0, "receiver is advertising a zero window");

    // Phase 2: hold the zero window for 40 ms of virtual time. Everything
    // A now puts on the wire must be a persist probe of at most one byte.
    let mark = net.trace.events.len();
    for _ in 0..20_000 {
        net.tick();
    }
    let mut probes = 0usize;
    for ev in &net.trace.events[mark..] {
        if ev.dir != Dir::AtoB {
            continue;
        }
        let Some(t) = parse_tcp(&ev.bytes) else {
            continue;
        };
        assert!(!t.syn && !t.fin, "no handshake traffic during the stall");
        assert!(
            t.payload_len <= 1,
            "{}-byte segment sent into a zero window",
            t.payload_len
        );
        if t.payload_len == 1 {
            probes += 1;
        }
    }
    assert!(probes >= 2, "probes kept the connection alive: {probes}");
    // The cadence is the backed-off persist timer, not once-per-RTT spam:
    // 40 ms at a 5 ms floor with doubling allows only a handful.
    assert!(
        probes <= 10,
        "persist backoff bounds the probe rate: {probes}"
    );
    let stats = net
        .stack(testutil::Side::A)
        .tcb_stats(cfd)
        .expect("client TCB alive");
    assert!(
        stats.persist_probes >= probes as u64,
        "probes came from the persist machinery ({} counted, {} on the wire)",
        stats.persist_probes,
        probes
    );

    // Phase 3: B drains; the window reopens and the rest of the transfer
    // completes — the stall was fully recoverable.
    let sink = net.app_buffer(testutil::Side::B);
    let mut received = 0u64;
    for _ in 0..60_000 {
        net.tick();
        if wrote < TOTAL {
            let want = (TOTAL - wrote).min(pay.len());
            let (stack, mem) = net.stack_and_mem(testutil::Side::A);
            match stack.ff_write(mem, cfd, &pay, want) {
                Ok(n) => wrote += n,
                Err(Errno::EAGAIN) => {}
                Err(e) => panic!("ff_write: {e}"),
            }
        }
        loop {
            let (stack, mem) = net.stack_and_mem(testutil::Side::B);
            match stack.ff_read(mem, afd, &sink, sink.len()) {
                Ok(0) => break,
                Ok(n) => received += n,
                Err(_) => break,
            }
        }
        if received >= TOTAL {
            break;
        }
    }
    assert_eq!(
        received, TOTAL,
        "transfer completed after the window reopened"
    );
}
