//! Switched N-node topologies, end to end: the LinkFabric learning switch
//! under real stacks (star, chain, dumbbell), the broadcast/ARP behavior
//! of a shared segment, and the determinism contract extended to switched
//! worlds — same seed, byte-identical delivery traces.

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

mod testutil;

use capnet::netsim::NetSim;
use capnet::scenario::{
    fairness_index, run_dumbbell_fairness, run_star_iperf, run_star_iperf_impaired,
};
use capnet::topology::build_chain;
use simkern::{CostModel, SimDuration};
use testutil::SwitchedSegment;
use updk::wire::Impairments;

/// The wire bytes are **pinned**: these digests were captured before the
/// zero-copy frame-path refactor (PR 3) and must never drift — an
/// optimization that changes a single payload byte, delivery instant or
/// event order changes the FNV fold and fails here. Update them only for
/// a change that *intends* to alter wire behavior.
#[test]
fn star_and_dumbbell_trace_digests_are_pinned() {
    let star = run_star_iperf(8, SimDuration::from_millis(40), CostModel::morello(), 21).unwrap();
    assert_eq!(star.trace.digest, 0xfa099c29f1e937d5, "star trace drifted");
    assert_eq!(star.trace.frames, 5658);
    assert_eq!(star.trace.bytes, 5_593_940);
    let bell =
        run_dumbbell_fairness(2, SimDuration::from_millis(30), CostModel::morello(), 5).unwrap();
    assert_eq!(
        bell.trace.digest, 0x5a1adb9234ff72c8,
        "dumbbell trace drifted"
    );
    assert_eq!(bell.trace.frames, 3864);
    assert_eq!(bell.trace.bytes, 3_906_078);
}

/// The acceptance scenario: an 8-client star is a pure function of its
/// seed — two identically seeded runs produce byte-identical delivery
/// traces (and reports); on ideal cables the seed is irrelevant entirely.
#[test]
fn star_8_clients_is_seed_deterministic() {
    let run = |seed: u64| {
        run_star_iperf(8, SimDuration::from_millis(40), CostModel::morello(), seed).unwrap()
    };
    let o1 = run(21);
    let o2 = run(21);
    assert!(o1.trace.frames > 0, "the star produced traffic");
    assert_eq!(o1.trace, o2.trace, "same seed ⇒ byte-identical trace");
    assert_eq!(o1.servers, o2.servers);
    assert_eq!(o1.clients, o2.clients);
    assert_eq!(o1.ended_at, o2.ended_at);
    assert_eq!(o1.switch_stats, o2.switch_stats);
    // No stochastic impairments: any seed replays the same world.
    let o3 = run(22);
    assert_eq!(o1.trace, o3.trace, "ideal cables ⇒ seed-independent");
}

/// The same star over lossy cables: the loss pattern (and therefore the
/// trace) is drawn from the seed — identical seeds replay identically,
/// different seeds lose different frames.
#[test]
fn impaired_star_replays_by_seed() {
    let run = |seed: u64| {
        run_star_iperf_impaired(
            4,
            SimDuration::from_millis(30),
            CostModel::morello(),
            seed,
            Impairments::lossy(20),
        )
        .unwrap()
    };
    let o1 = run(7);
    let o2 = run(7);
    let o3 = run(8);
    assert!(o1.impairment_stats.lost > 0, "the cables actually lost");
    assert_eq!(o1.trace, o2.trace);
    assert_eq!(o1.impairment_stats, o2.impairment_stats);
    assert_ne!(o1.trace.digest, o3.trace.digest, "different loss pattern");
}

/// All 8 star clients funnel into the hub's single switch port: the
/// aggregate must reach the shared 1 Gbit/s bottleneck's TCP ceiling, and
/// the fabric must have seen real convergence (forwarding on every flow).
#[test]
fn star_8_clients_saturate_the_shared_uplink() {
    let out = run_star_iperf(8, SimDuration::from_millis(60), CostModel::morello(), 3).unwrap();
    assert_eq!(out.servers.len(), 8);
    let per_flow: Vec<f64> = out.servers.iter().map(|r| r.mbit_per_sec()).collect();
    let total: f64 = per_flow.iter().sum();
    assert!(
        (total - 941.0).abs() < 50.0,
        "aggregate {total:.0} Mbit/s, per flow {per_flow:?}"
    );
    // Every flow makes progress through the shared bottleneck.
    for (i, f) in per_flow.iter().enumerate() {
        assert!(*f > 20.0, "flow {i} starved: {f:.0} Mbit/s of {per_flow:?}");
    }
    let sw = out.switch_stats[0];
    assert!(sw.forwarded > 0, "learned unicast forwarding dominated");
}

/// Dumbbell: every pair's flow crosses the one trunk; the trunk serializes
/// them to the TCP ceiling in aggregate and the FIFO egress queue splits
/// it evenly (Jain's index near 1).
#[test]
fn dumbbell_shares_the_trunk_fairly() {
    let out =
        run_dumbbell_fairness(3, SimDuration::from_millis(60), CostModel::morello(), 11).unwrap();
    assert_eq!(out.servers.len(), 3);
    let per_flow: Vec<f64> = out.servers.iter().map(|r| r.mbit_per_sec()).collect();
    let total: f64 = per_flow.iter().sum();
    assert!(
        (total - 941.0).abs() < 50.0,
        "trunk aggregate {total:.0} Mbit/s, per flow {per_flow:?}"
    );
    let jain = fairness_index(&per_flow);
    assert!(jain > 0.9, "unfair split {per_flow:?} (Jain {jain:.3})");
    // Both fabrics forwarded; the trunk carried every flow.
    assert_eq!(out.switch_stats.len(), 2);
    assert!(out.switch_stats.iter().all(|s| s.forwarded > 0));
}

/// Dumbbell determinism: the fairness measurement replays bit-for-bit.
#[test]
fn dumbbell_is_seed_deterministic() {
    let run = |seed: u64| {
        run_dumbbell_fairness(2, SimDuration::from_millis(30), CostModel::morello(), seed).unwrap()
    };
    let o1 = run(5);
    let o2 = run(5);
    assert_eq!(o1.trace, o2.trace);
    assert_eq!(o1.servers, o2.servers);
}

/// A chain of three switches between two hosts still delivers the full
/// single-flow TCP ceiling — store-and-forward hops add latency, not a
/// bandwidth cap — and every fabric in the row forwards.
#[test]
fn chain_of_switches_carries_line_rate() {
    let costs = CostModel::morello();
    let mut sim = NetSim::new(costs.clone());
    let chain = build_chain(&mut sim, 3).unwrap();
    sim.add_server(chain.b, "b-rx", 5501).unwrap();
    sim.add_client(
        chain.a,
        "a-tx",
        (chain.b_ip, 5501),
        SimDuration::from_millis(60),
        SimDuration::ZERO,
    )
    .unwrap();
    let out = sim.run(SimDuration::from_millis(90)).unwrap();
    let bw = out.servers[0].mbit_per_sec();
    assert!((bw - 941.0).abs() < 30.0, "through 3 hops: {bw:.0} Mbit/s");
    assert_eq!(out.switch_stats.len(), 3);
    for (i, s) in out.switch_stats.iter().enumerate() {
        assert!(s.forwarded > 0, "switch {i} idle: {s:?}");
    }
}

/// Broadcast/ARP across a shared segment (the satellite requirement):
/// with 4 stacks on one fabric, a full mesh of traffic resolves every
/// host's MAC at every other host, the fabric learns all stations, and no
/// frame is ever delivered twice to the same host.
#[test]
fn arp_resolves_across_a_switched_segment_without_duplicates() {
    let n = 4;
    let mut seg = SwitchedSegment::new(n);
    let got = seg.mesh_udp(9100, 4_000);

    // Every datagram arrived exactly once.
    for (i, inbox) in got.iter().enumerate() {
        assert_eq!(inbox.len(), n - 1, "host {i} inbox: {inbox:?}");
    }
    // Every node resolved every other node's real MAC.
    for i in 0..n {
        for j in 0..n {
            if i != j {
                assert!(seg.resolved(i, j), "host {i} did not resolve host {j}");
            }
        }
    }
    // The fabric learned all stations.
    assert_eq!(seg.fabric().stations(), n);
    let stats = seg.fabric().stats();
    assert!(stats.flooded > 0, "ARP requests flooded: {stats:?}");
    assert!(stats.forwarded > 0, "replies + data unicast: {stats:?}");
    assert_eq!(stats.dropped, 0, "an idle segment drops nothing");

    // No duplicate delivery: the fabric never hands the same bytes to the
    // same host twice (every mesh frame is unique by construction).
    let mut seen = std::collections::HashSet::new();
    for d in &seg.deliveries {
        assert!(
            seen.insert((d.host, d.bytes.clone())),
            "duplicate delivery to host {} at {} ns",
            d.host,
            d.at_ns
        );
    }

    // Broadcast ARP requests reached every host except the sender: each
    // of the n hosts sent n-1 requests, flooded to n-1 ports each.
    let arp_broadcasts = seg
        .deliveries
        .iter()
        .filter(|d| d.bytes[0..6] == [0xFF; 6] && d.bytes[12..14] == [0x08, 0x06])
        .count();
    assert_eq!(arp_broadcasts, n * (n - 1) * (n - 1));
}
