//! Integration: RFC 793 reset behavior through the `ff_*` API.
//!
//! A robust edge stack must fail *fast and loud* when peers disappear or
//! ports are closed — drones cannot afford 60-second connect timeouts.
//! These tests cover the RST surface added on top of the paper's stack:
//! SYN-to-closed-port refusal (ECONNREFUSED), peer resets of established
//! connections (ECONNRESET), stray-segment resets, and the never-answer-
//! RST-with-RST rule.

use cheri::{Perms, TaggedMemory};
use chos::Errno;
use fstack::socket::SockType;
use fstack::{FStack, StackConfig};
use simkern::SimTime;
use std::net::Ipv4Addr;
use updk::nic::MacAddr;

const IP_A: Ipv4Addr = Ipv4Addr::new(10, 6, 0, 1);
const IP_B: Ipv4Addr = Ipv4Addr::new(10, 6, 0, 2);

fn stack_pair() -> (FStack, FStack) {
    let mut a = FStack::new(StackConfig::new("a", MacAddr::local(1), IP_A));
    let mut b = FStack::new(StackConfig::new("b", MacAddr::local(2), IP_B));
    a.arp_cache_mut().insert_static(IP_B, MacAddr::local(2));
    b.arp_cache_mut().insert_static(IP_A, MacAddr::local(1));
    (a, b)
}

fn pump(now: SimTime, a: &mut FStack, b: &mut FStack) {
    for _ in 0..6 {
        let fa = a.poll_tx(now);
        let fb = b.poll_tx(now);
        if fa.is_empty() && fb.is_empty() {
            break;
        }
        for f in fa {
            b.input_frame(now, &f);
        }
        for f in fb {
            a.input_frame(now, &f);
        }
    }
}

fn data_buf(mem: &mut TaggedMemory, base: u64) -> cheri::Capability {
    mem.root_cap()
        .try_restrict(base, 4_096)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap()
}

#[test]
fn syn_to_closed_port_is_refused() {
    let (mut a, mut b) = stack_pair();
    let mut mem = TaggedMemory::new(1 << 20);
    let now = SimTime::from_micros(10);

    // No listener on 9999: the active open must be RST'd.
    let fd = a.ff_socket(SockType::Stream).unwrap();
    a.ff_connect(fd, (IP_B, 9_999), now).unwrap();
    pump(now, &mut a, &mut b);

    assert_eq!(b.stats().rsts_out, 1, "B refused the SYN");
    let buf = data_buf(&mut mem, 0x1000);
    assert_eq!(
        a.ff_write(&mut mem, fd, &buf, 16).unwrap_err(),
        Errno::ECONNREFUSED,
        "the client sees connection-refused, not a silent hang"
    );
    assert_eq!(
        a.ff_read(&mut mem, fd, &buf, 16).unwrap_err(),
        Errno::ECONNREFUSED
    );
}

#[test]
fn connect_to_listening_port_is_not_refused() {
    let (mut a, mut b) = stack_pair();
    let mut mem = TaggedMemory::new(1 << 20);
    let now = SimTime::from_micros(10);

    let lfd = b.ff_socket(SockType::Stream).unwrap();
    b.ff_bind(lfd, 7_000).unwrap();
    b.ff_listen(lfd, 4).unwrap();
    let fd = a.ff_socket(SockType::Stream).unwrap();
    a.ff_connect(fd, (IP_B, 7_000), now).unwrap();
    pump(now, &mut a, &mut b);

    assert_eq!(b.stats().rsts_out, 0);
    let buf = data_buf(&mut mem, 0x1000);
    assert!(
        a.ff_write(&mut mem, fd, &buf, 64).is_ok(),
        "handshake completed"
    );
}

#[test]
fn peer_reset_of_established_connection_surfaces_econnreset() {
    let (mut a, mut b) = stack_pair();
    let mut mem = TaggedMemory::new(1 << 20);
    let now = SimTime::from_micros(10);

    let lfd = b.ff_socket(SockType::Stream).unwrap();
    b.ff_bind(lfd, 7_000).unwrap();
    b.ff_listen(lfd, 4).unwrap();
    let fd = a.ff_socket(SockType::Stream).unwrap();
    a.ff_connect(fd, (IP_B, 7_000), now).unwrap();
    pump(now, &mut a, &mut b);
    let cfd = b.ff_accept(lfd).unwrap();

    let _ = cfd;
    // B crashes and reboots: a fresh stack, same address, no sockets. A's
    // next data segment finds nothing there → reboot-B resets it → A's
    // established connection dies with ECONNRESET, not a silent stall.
    let mut b2 = FStack::new(StackConfig::new("b2", MacAddr::local(2), IP_B));
    b2.arp_cache_mut().insert_static(IP_A, MacAddr::local(1));

    let buf = data_buf(&mut mem, 0x1000);
    let mut saw_reset_errno = false;
    for _ in 0..32 {
        match a.ff_write(&mut mem, fd, &buf, 512) {
            Err(Errno::ECONNRESET) => {
                saw_reset_errno = true;
                break;
            }
            Err(Errno::EPIPE) => {
                saw_reset_errno = true;
                break;
            }
            _ => {}
        }
        pump(now, &mut a, &mut b2);
    }
    assert!(
        saw_reset_errno,
        "writing into a torn-down connection must fail hard"
    );
    assert!(b2.stats().rsts_out >= 1, "the rebooted peer sent the reset");
}

#[test]
fn stray_data_segment_draws_a_reset_but_rst_does_not() {
    let (mut a, mut b) = stack_pair();
    let mut mem = TaggedMemory::new(1 << 20);
    let now = SimTime::from_micros(10);

    // Establish and then forget (simulate A rebooting): a leftover data
    // segment from B must be RST'd by the rebooted A…
    let lfd = b.ff_socket(SockType::Stream).unwrap();
    b.ff_bind(lfd, 7_000).unwrap();
    b.ff_listen(lfd, 4).unwrap();
    let fd = a.ff_socket(SockType::Stream).unwrap();
    a.ff_connect(fd, (IP_B, 7_000), now).unwrap();
    pump(now, &mut a, &mut b);
    let cfd = b.ff_accept(lfd).unwrap();

    // "Reboot" A: a fresh stack with the same address, no sockets.
    let mut a2 = FStack::new(StackConfig::new("a2", MacAddr::local(1), IP_A));
    a2.arp_cache_mut().insert_static(IP_B, MacAddr::local(2));

    // B sends data into the stale connection.
    let buf = data_buf(&mut mem, 0x1000);
    b.ff_write(&mut mem, cfd, &buf, 256).unwrap();
    pump(now, &mut a2, &mut b);

    assert!(a2.stats().rsts_out >= 1, "stale segment refused with RST");
    // …and the RST that comes back must not be answered with another RST
    // by B (no reset storm).
    let b_rsts = b.stats().rsts_out;
    pump(now, &mut a2, &mut b);
    assert_eq!(b.stats().rsts_out, b_rsts, "no RST-for-RST loop");
    // B's connection dies cleanly instead.
    assert!(
        matches!(
            b.ff_write(&mut mem, cfd, &buf, 16),
            Err(Errno::ECONNRESET) | Err(Errno::EPIPE) | Err(Errno::EAGAIN)
        ),
        "B's socket is reset or at least no longer progressing"
    );
}

#[test]
fn refused_connection_raises_epollerr() {
    use fstack::epoll::EpollFlags;
    let (mut a, mut b) = stack_pair();
    let now = SimTime::from_micros(10);
    let fd = a.ff_socket(SockType::Stream).unwrap();
    let ep = a.ff_epoll_create();
    a.ff_epoll_ctl_add(ep, fd, EpollFlags::IN | EpollFlags::OUT)
        .unwrap();
    a.ff_connect(fd, (IP_B, 9_999), now).unwrap();
    pump(now, &mut a, &mut b);
    let events = a.ff_epoll_wait(ep).unwrap();
    let ev = events
        .iter()
        .find(|e| e.fd == fd)
        .expect("the refused socket reports an event");
    assert!(
        ev.events.contains(EpollFlags::ERR),
        "EPOLLERR expected, got {:?}",
        ev.events
    );
}

#[test]
fn refused_connection_counts_no_delivered_segments() {
    let (mut a, mut b) = stack_pair();
    let now = SimTime::from_micros(10);
    let fd = a.ff_socket(SockType::Stream).unwrap();
    a.ff_connect(fd, (IP_B, 4_242), now).unwrap();
    pump(now, &mut a, &mut b);
    // The refused handshake delivered nothing upward on either side.
    assert_eq!(b.stats().tcp_in, 1, "B saw exactly the SYN");
    assert_eq!(b.stats().rsts_out, 1);
}
