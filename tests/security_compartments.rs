//! Integration: the security claims of the paper, end to end.
//!
//! §IV: "We verified the effectiveness of compartmentalization modifying
//! applications to access memory ranges outside their valid boundaries. As
//! expected, CHERI triggers a CAP-out-of-bound exceptions" (Fig. 3).

use capnet::experiment::fig3;
use cheri::{FaultKind, Perms};
use intravisor::{validate_boundary_cap, CvmConfig, Intravisor};
use simkern::CostModel;

fn boot(n_cvms: usize) -> (Intravisor, Vec<intravisor::CvmId>) {
    let mut iv = Intravisor::new(1 << 21, CostModel::morello());
    let ids = (0..n_cvms)
        .map(|i| {
            iv.create_cvm(CvmConfig::new(format!("cvm{i}")).mem_size(64 * 1024))
                .expect("create cvm")
        })
        .collect();
    (iv, ids)
}

#[test]
fn fig3_full_experiment() {
    let out = fig3::run().expect("fig3 runs");
    assert!(out.fault.is_out_of_bounds());
    assert!(out.victim_could_read_own);
    // The rendered figure mentions the exception by name.
    assert!(out
        .to_string()
        .contains("Capability Out-of-Bounds Exception"));
}

#[test]
fn every_cvm_pair_is_mutually_isolated() {
    let (mut iv, ids) = boot(4);
    // Seed each compartment with its own data.
    for (i, &id) in ids.iter().enumerate() {
        let buf = iv.cvm_alloc(id, 64, 16).unwrap();
        iv.memory_mut()
            .write(&buf, buf.base(), &[i as u8; 64])
            .unwrap();
    }
    let mut denied = 0;
    for &a in &ids {
        for &b in &ids {
            let target = iv.cvm(b).ctx().ddc().base();
            let r = iv.cvm_load(a, target, 16);
            if a == b {
                assert!(r.is_ok(), "{a:?} must read its own region");
            } else {
                let e = r.expect_err("cross-compartment read must fault");
                assert_eq!(e.kind(), FaultKind::Bounds);
                denied += 1;
            }
        }
    }
    assert_eq!(denied, 12, "all 4x3 cross pairs denied");
    assert_eq!(iv.fault_log().len(), 12);
}

#[test]
fn intravisor_reserved_region_is_unreachable_from_cvms() {
    let (mut iv, ids) = boot(2);
    for &id in &ids {
        assert!(iv.cvm_store(id, 0, &[0xFF; 16]).is_err());
        assert!(iv.cvm_load(id, 4096, 16).is_err());
    }
}

#[test]
fn confused_deputy_arguments_are_rejected_at_the_boundary() {
    let (mut iv, ids) = boot(2);
    let (a, b) = (ids[0], ids[1]);
    let ddc_a = *iv.cvm(a).ctx().ddc();

    // A capability to B's memory presented "as" A's buffer.
    let b_buf = iv.cvm_alloc(b, 128, 16).unwrap();
    assert_eq!(
        validate_boundary_cap(&ddc_a, &b_buf).unwrap_err().kind(),
        FaultKind::Monotonicity
    );

    // A sealed capability cannot be used as a buffer either.
    let sealed = *iv.cvm(b).entry();
    assert_eq!(
        validate_boundary_cap(&ddc_a, &sealed).unwrap_err().kind(),
        FaultKind::Seal
    );

    // A legitimate buffer passes.
    let a_buf = iv.cvm_alloc(a, 128, 16).unwrap();
    assert!(validate_boundary_cap(&ddc_a, &a_buf).is_ok());
}

#[test]
fn capability_leak_through_shared_memory_is_neutralized() {
    // Even if cVM B's capability *value* ends up in cVM A's memory (e.g.
    // via an IPC bug), A cannot use it: storing it as data strips the tag.
    let (mut iv, ids) = boot(2);
    let (a, b) = (ids[0], ids[1]);
    let b_buf = iv.cvm_alloc(b, 64, 16).unwrap();
    let a_slot = iv.cvm_alloc(a, 16, 16).unwrap();

    // "Leak" the raw bytes of B's capability into A's memory (a data write,
    // as any exfiltration through a shared buffer would be).
    let leaked_bytes = b_buf.addr().to_le_bytes();
    iv.memory_mut()
        .write(&a_slot, a_slot.base(), &leaked_bytes)
        .unwrap();
    // A "reconstructs" a capability from those bytes: the load yields an
    // untagged value, and using it faults.
    let forged = iv
        .memory_mut()
        .load_cap(
            &a_slot.try_restrict_perms(Perms::data()).unwrap(),
            a_slot.base(),
        )
        .unwrap();
    assert!(!forged.tag(), "forged capability must be untagged");
    assert_eq!(
        iv.memory_mut()
            .read_vec(&forged, b_buf.base(), 8)
            .unwrap_err()
            .kind(),
        FaultKind::Tag
    );
}

#[test]
fn legitimate_capability_transfer_works_where_forgery_fails() {
    // The flip side: a capability *stored as a capability* (with the tag)
    // through an authorized channel arrives usable — that is how the
    // Intravisor distributes memory grants in the first place.
    let (mut iv, ids) = boot(1);
    let a = ids[0];
    let buf = iv.cvm_alloc(a, 64, 16).unwrap();
    let slot = iv.cvm_alloc(a, 16, 16).unwrap();
    iv.memory_mut().store_cap(&slot, slot.base(), buf).unwrap();
    let loaded = iv.memory_mut().load_cap(&slot, slot.base()).unwrap();
    assert!(loaded.tag());
    assert!(iv.memory_mut().write(&loaded, buf.base(), b"hi").is_ok());
}
