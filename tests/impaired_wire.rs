//! Integration: the paper's scenarios driven over *degraded* cables.
//!
//! The paper's testbed cables are ideal, so its evaluation never stresses
//! TCP loss recovery. Edge radio links (the drones and industrial plants of
//! the paper's introduction) do. These tests subject the full simulated
//! stack — `ff_*` API, F-Stack TCP (RTO, fast retransmit, out-of-order
//! reassembly, checksums), the poll-mode driver, and the compartment cost
//! model — to loss, corruption, duplication and reordering, and check that
//! the connection survives and degrades the way TCP should.

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

use capnet::scenario::{run_bandwidth, run_bandwidth_impaired, ScenarioKind, TrafficMode};
use simkern::{CostModel, SimDuration};
use updk::wire::Impairments;

const RUN: SimDuration = SimDuration::from_millis(120);

fn goodput(kind: ScenarioKind, imp: Impairments) -> (f64, capnet::netsim::SimOutcome) {
    let out = run_bandwidth_impaired(kind, TrafficMode::Server, RUN, CostModel::morello(), imp)
        .expect("impaired run completes");
    (out.servers[0].mbit_per_sec(), out)
}

#[test]
fn mild_loss_survives_and_costs_bandwidth() {
    let ideal = run_bandwidth(
        ScenarioKind::BaselineSingleProcess,
        TrafficMode::Server,
        RUN,
        CostModel::morello(),
    )
    .unwrap()
    .servers[0]
        .mbit_per_sec();
    let (lossy, out) = goodput(ScenarioKind::BaselineSingleProcess, Impairments::lossy(5));
    assert!(out.impairment_stats.lost > 0, "losses actually happened");
    assert!(lossy > 50.0, "TCP must keep moving data: {lossy:.0} Mbit/s");
    assert!(
        lossy < ideal - 5.0,
        "0.5% loss must cost goodput: {lossy:.0} vs ideal {ideal:.0}"
    );
}

#[test]
fn heavier_loss_degrades_further() {
    let (mild, _) = goodput(ScenarioKind::BaselineSingleProcess, Impairments::lossy(5));
    let (heavy, out) = goodput(ScenarioKind::BaselineSingleProcess, Impairments::lossy(30));
    assert!(out.impairment_stats.lost > 0);
    assert!(
        heavy < mild,
        "3% loss ({heavy:.0}) must be slower than 0.5% ({mild:.0})"
    );
    assert!(heavy > 10.0, "still functional at 3% loss: {heavy:.0}");
}

#[test]
fn corruption_is_rejected_by_checksums_and_recovered() {
    let imp = Impairments {
        corrupt_per_mille: 10,
        ..Impairments::default()
    };
    let (bw, out) = goodput(ScenarioKind::BaselineSingleProcess, imp);
    assert!(out.impairment_stats.corrupted > 0, "corruption happened");
    // Every corrupted frame must be caught by IP/TCP checksum validation
    // (counted as a stack drop on the receiving side), never delivered to
    // the application as payload.
    let drops: u64 = out.stack_stats.iter().map(|(_, s)| s.drops).sum();
    assert!(
        drops >= out.impairment_stats.corrupted,
        "stack drops ({drops}) must cover corrupted frames ({})",
        out.impairment_stats.corrupted
    );
    assert!(bw > 50.0, "TCP recovers from corruption: {bw:.0} Mbit/s");
}

#[test]
fn duplication_is_harmless_to_goodput() {
    let imp = Impairments {
        dup_per_mille: 50,
        ..Impairments::default()
    };
    let (bw, out) = goodput(ScenarioKind::BaselineSingleProcess, imp);
    assert!(out.impairment_stats.duplicated > 0);
    // Duplicates waste wire and RX-ring slots but TCP sequence numbers
    // de-duplicate them; goodput stays near the ceiling.
    assert!(
        bw > 800.0,
        "duplication should not collapse goodput: {bw:.0}"
    );
}

#[test]
fn reordering_triggers_recovery_not_collapse() {
    let imp = Impairments::reordering(20, SimDuration::from_micros(300));
    let (bw, out) = goodput(ScenarioKind::BaselineSingleProcess, imp);
    assert!(out.impairment_stats.reordered > 0);
    // Held-back segments arrive late; the receiver's out-of-order queue and
    // (dup-ACK-driven) fast retransmit keep the stream moving.
    assert!(bw > 100.0, "reordering must not stall TCP: {bw:.0} Mbit/s");
}

#[test]
fn scenario2_service_survives_lossy_links() {
    // The Scenario 2 service cVM (the compartment split under test in the
    // paper) must tolerate the same degraded link as the monolithic
    // baseline: compartmentalization must not amplify loss sensitivity.
    let (s2, out) = goodput(ScenarioKind::Scenario2Uncontended, Impairments::lossy(5));
    let (base, _) = goodput(ScenarioKind::BaselineSingleProcess, Impairments::lossy(5));
    assert!(out.impairment_stats.lost > 0);
    assert!(
        (s2 - base).abs() / base < 0.25,
        "S2 under loss ({s2:.0}) should track Baseline under loss ({base:.0})"
    );
}

#[test]
fn jitter_alone_preserves_goodput() {
    let imp = Impairments {
        jitter: SimDuration::from_micros(2),
        ..Impairments::default()
    };
    let (bw, _) = goodput(ScenarioKind::BaselineSingleProcess, imp);
    assert!(bw > 850.0, "2µs jitter is absorbed by buffering: {bw:.0}");
}

#[test]
fn outcome_reports_stack_stats_per_node() {
    let (_, out) = goodput(ScenarioKind::BaselineSingleProcess, Impairments::default());
    assert_eq!(out.stack_stats.len(), 2, "DUT + measurement host");
    let total_in: u64 = out.stack_stats.iter().map(|(_, s)| s.frames_in).sum();
    assert!(total_in > 1_000, "frames flowed: {total_in}");
}
