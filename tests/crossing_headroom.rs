//! Integration: the boundary of the paper's "overhead is minimal" claim.
//!
//! At Morello's ≈170 ns sealed-crossing cost, every compartment split
//! rides the 941 Mbit/s ceiling (the paper's result). These tests pin the
//! *headroom* of that claim: crossings can grow ~64× before any split
//! leaves the ceiling, and when they do grow past it, the deeper splits
//! (which pay more crossings per call) degrade first and in order.

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

use capnet::scenario::{run_bandwidth, ScenarioKind, TrafficMode};
use simkern::{CostModel, SimDuration};

fn bw(kind: ScenarioKind, costs: &CostModel) -> f64 {
    run_bandwidth(
        kind,
        TrafficMode::Server,
        SimDuration::from_millis(80),
        costs.clone(),
    )
    .expect("cell")
    .servers[0]
        .mbit_per_sec()
}

fn scaled(mult: u64) -> CostModel {
    let base = CostModel::morello();
    let mut c = base.clone();
    c.xcall_ns = base.xcall_ns * mult;
    c.mutex_fast_ns = base.mutex_fast_ns * mult;
    c
}

#[test]
fn all_splits_hold_the_ceiling_with_16x_crossing_headroom() {
    let costs = scaled(16);
    for kind in [
        ScenarioKind::Scenario2Uncontended,
        ScenarioKind::Scenario3,
        ScenarioKind::Scenario4,
    ] {
        let mbit = bw(kind, &costs);
        assert!(
            (mbit - 941.0).abs() < 25.0,
            "{kind}: {mbit:.0} Mbit/s at 16x crossing cost"
        );
    }
}

#[test]
fn past_the_headroom_deeper_splits_degrade_first() {
    let costs = scaled(256);
    let s2 = bw(ScenarioKind::Scenario2Uncontended, &costs);
    let s3 = bw(ScenarioKind::Scenario3, &costs);
    let s4 = bw(ScenarioKind::Scenario4, &costs);
    assert!(
        s2 > s3 && s3 > s4,
        "ordering: S2 {s2:.0} > S3 {s3:.0} > S4 {s4:.0}"
    );
    assert!(
        s4 < 700.0,
        "the full split is clearly off the ceiling: {s4:.0}"
    );
    // The monolithic baseline does not pay crossings and must not care.
    let b = bw(ScenarioKind::BaselineSingleProcess, &costs);
    assert!((b - 941.0).abs() < 25.0, "baseline unaffected: {b:.0}");
}
