//! Witnesses for the quiescence-aware typed event engine: the steady-state
//! hot path schedules **zero boxed events** (every event is an inline
//! [`capnet::NetEvent`]), idle loop polls collapse by orders of magnitude
//! versus the poll-every-tick baseline, and the per-kind event counters
//! account for the run.

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

use capnet::netsim::NetSim;
use capnet::scenario::run_star_iperf;
use capnet::topology::build_chain;
use simkern::{CostModel, SimDuration};

/// The `tests/hotpath_allocs`-style witness for the scheduler: a
/// steady-state star run schedules no boxed closure events at all — the
/// whole run rides the typed, allocation-free calendar.
#[test]
fn steady_state_run_schedules_zero_boxed_events() {
    let out = run_star_iperf(4, SimDuration::from_millis(25), CostModel::morello(), 7).unwrap();
    assert!(out.trace.frames > 1_000, "the run produced real traffic");
    assert_eq!(
        out.counters.boxed_events, 0,
        "hot path boxed an event: {:?}",
        out.counters
    );
}

/// Quiescence accounting on an idle-heavy run: a single flow through one
/// switch hop, with 30 ms of post-traffic drain. The poll-every-900ns
/// baseline executed ~2 polls per µs per node; with park/wake, idle polls
/// must be a rounding error against the old regime, and the counters must
/// add up to the engine's executed-event total.
#[test]
fn parking_collapses_idle_polls_and_counters_account_for_the_run() {
    let mut sim = NetSim::new(CostModel::morello());
    let chain = build_chain(&mut sim, 1).unwrap();
    sim.add_server(chain.b, "b-rx", 5501).unwrap();
    sim.add_client(
        chain.a,
        "a-tx",
        (chain.b_ip, 5501),
        SimDuration::from_millis(25),
        SimDuration::ZERO,
    )
    .unwrap();
    let out = sim.run(SimDuration::from_millis(55)).unwrap();
    let c = out.counters;

    // The old engine executed ~550k events for a run of this shape (every
    // node polling every 900 ns for 55 ms). Parking must cut idle polls by
    // far more than the 10× the acceptance bar asks for.
    let polled_baseline = 2 * 55_000_000 / 900; // 2 hosts, 55 ms, 900 ns
    assert!(
        c.idle_polls < polled_baseline / 10,
        "idle polls did not collapse: {} vs baseline {}",
        c.idle_polls,
        polled_baseline
    );
    assert!(c.parks > 1_000, "steady state parks between frames: {c:?}");
    assert!(c.wakes > 1_000, "deliveries wake parked loops: {c:?}");
    assert_eq!(c.boxed_events, 0);

    // Every executed event is accounted for by exactly one counter class.
    // An executed event is a LoopIter, a Wake, a Deliver or a SwitchHop;
    // honored wakes run a loop iteration (so they land in `loop_polls`),
    // stale wakes are counted separately — the four classes partition the
    // engine's executed-event total.
    let accounted = c.loop_polls + c.deliveries + c.switch_hops + c.stale_wakes;
    assert_eq!(
        accounted, out.events,
        "counter classes must partition the event total: {c:?}"
    );

    // And the run still does its job.
    let bw = out.servers[0].mbit_per_sec();
    assert!((bw - 941.0).abs() < 30.0, "line rate survived: {bw:.0}");
}
