//! The zero-copy acceptance witness: a steady-state iperf run performs
//! **zero frame-buffer allocations**.
//!
//! The frame-buffer pool in `updk::framebuf` is itself the counting
//! allocator: every buffer take is classified as `fresh` (heap allocation
//! because the pool was empty) or `reused` (recycled storage). A warm-up
//! run populates the pool to the workload's peak in-flight frame count;
//! after that, a full one-second two-host iperf run must take every one of
//! its hundreds of thousands of frame buffers from the pool — `fresh`
//! stays exactly flat.

use capnet::netsim::{IsolationProfile, NetSim};
use simkern::{CostModel, SimDuration};
use std::net::Ipv4Addr;
use updk::framebuf::pool_stats;
use updk::nic::NicModel;

const SRV_IP: Ipv4Addr = Ipv4Addr::new(10, 9, 0, 1);
const CLI_IP: Ipv4Addr = Ipv4Addr::new(10, 9, 0, 2);

/// Two ideal hosts over one cable, iperf client → server for `run` of
/// simulated time. Returns the server-side goodput so the test can prove
/// the hot path actually carried line-rate traffic.
fn two_host_iperf(run: SimDuration) -> f64 {
    let mut sim = NetSim::new(CostModel::morello());
    let a = sim.add_dev(NicModel::Host).expect("dev a");
    let b = sim.add_dev(NicModel::Host).expect("dev b");
    sim.link(a, 0, b, 0).expect("cable");
    let srv = sim
        .add_node("srv", a, 0, SRV_IP, IsolationProfile::default())
        .expect("server node");
    let cli = sim
        .add_node("cli", b, 0, CLI_IP, IsolationProfile::default())
        .expect("client node");
    sim.add_server(srv, "srv", 5201).expect("server app");
    sim.add_client(cli, "cli", (SRV_IP, 5201), run, SimDuration::ZERO)
        .expect("client app");
    let out = sim
        .run(run + SimDuration::from_millis(20))
        .expect("sim runs");
    out.servers[0].mbit_per_sec()
}

/// After warm-up, a 1-second two-host iperf run allocates **no** frame
/// buffers: every frame on the hot path (`ff_write` → TCP segment build →
/// IP/Ethernet prepend → NIC → wire → rx parse) lives in recycled pool
/// storage.
#[test]
fn steady_state_iperf_allocates_zero_frame_buffers() {
    // Warm-up: reaches every code path (ARP, handshake, bulk transfer,
    // FIN) and leaves the pool stocked to the workload's peak footprint.
    two_host_iperf(SimDuration::from_millis(50));

    let before = pool_stats();
    let bw = two_host_iperf(SimDuration::from_secs(1));
    let after = pool_stats();

    assert!(
        (bw - 941.0).abs() < 20.0,
        "hot path must run at the TCP goodput ceiling to count (got {bw:.0} Mbit/s)"
    );
    let taken = (after.fresh + after.reused) - (before.fresh + before.reused);
    assert!(
        taken > 100_000,
        "a 1-second line-rate run cycles >100k frame buffers, saw {taken}"
    );
    assert_eq!(
        after.fresh,
        before.fresh,
        "steady state must take every frame buffer from the pool \
         ({} fresh allocations leaked into the hot path)",
        after.fresh - before.fresh
    );
    // And the pool balances: everything taken flowed back.
    assert_eq!(
        after.recycled - before.recycled,
        taken,
        "every taken buffer is recycled once the run tears down"
    );
}
