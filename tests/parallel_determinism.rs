//! The sharded parallel `NetSim`'s headline contract: **wire behavior is
//! byte-identical at any worker count**. Every scenario here runs at
//! `workers = 1` (the classic single-engine loop), 2 and 4, and must
//! produce the same delivery-trace digest byte for byte, the same per-kind
//! event counters and the same executed-event total — the conservative
//! lookahead windows, the barrier frame exchange and the order-key merge
//! are pure implementation detail.
//!
//! The shard partitioner itself is property-tested below: every node of a
//! random topology lands in exactly one shard, co-location constraints
//! hold, and plans are pure functions of the graph.

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

use capnet::netsim::NetSim;
use capnet::parallel::{LookaheadMatrix, Profitability, ROUND_COST_EVENTS};
use capnet::scenario::{run_dumbbell_fairness, run_star_iperf, run_star_iperf_impaired};
use capnet::topology::{build_chain, partition_shards, ShardGraph};
use capnet::SimOutcome;
use proptest::prelude::*;
use simkern::{CostModel, SimDuration};
use updk::wire::Impairments;

/// Asserts the full equivalence contract between a `workers = 1` run and a
/// sharded run of the same scenario.
fn assert_equivalent(base: &SimOutcome, out: &SimOutcome, what: &str) {
    assert_eq!(
        base.trace, out.trace,
        "{what}: trace digest must be byte-identical at any worker count"
    );
    assert_eq!(
        base.counters, out.counters,
        "{what}: per-kind event counters must match"
    );
    assert_eq!(base.events, out.events, "{what}: executed-event totals");
    assert_eq!(base.ended_at, out.ended_at, "{what}: final virtual instant");
    assert_eq!(base.servers, out.servers, "{what}: server reports");
    assert_eq!(base.clients, out.clients, "{what}: client reports");
    assert_eq!(base.switch_stats, out.switch_stats, "{what}: switch stats");
    assert_eq!(
        base.impairment_stats, out.impairment_stats,
        "{what}: impairment totals"
    );
}

fn star(workers: usize) -> SimOutcome {
    let mut sim = NetSim::new(CostModel::morello());
    sim.set_seed(21);
    sim.set_workers(workers);
    // An 8-leaf star is too light for sharding to pay — force the plan
    // through the sharded drivers anyway; that's what this test is for.
    sim.set_adaptive_workers(false);
    let star = capnet::topology::build_star(&mut sim, 8).expect("star builds");
    for (i, &leaf) in star.leaves.iter().enumerate() {
        let port = 5600 + i as u16;
        sim.add_server(star.hub, format!("hub-rx{i}"), port)
            .expect("server");
        sim.add_client(
            leaf,
            format!("leaf-tx{i}"),
            (star.hub_ip, port),
            SimDuration::from_millis(20),
            SimDuration::ZERO,
        )
        .expect("client");
    }
    sim.run(SimDuration::from_millis(40)).expect("runs")
}

#[test]
fn star8_is_byte_identical_at_any_worker_count() {
    let base = star(1);
    assert_eq!(base.workers, 1);
    assert!(base.trace.frames > 1_000, "the star produced real traffic");
    for workers in [2usize, 4] {
        let out = star(workers);
        assert_eq!(out.workers, workers, "the plan used the requested shards");
        assert!(out.lookahead_ns > 0, "a cut topology has a finite window");
        assert!(
            out.rounds.rounds > 0,
            "the sharded drivers actually drove rounds"
        );
        assert!(
            out.rounds.xshard_frames > 0,
            "frames crossed shard boundaries"
        );
        assert_equivalent(&base, &out, "star8");
    }
}

/// The pinned-digest scenario of `tests/topology.rs`, across worker
/// counts: the sharded runs must land on the exact digest the seed
/// repository pinned before parallel execution existed — both with
/// adaptive selection forced off (genuinely sharded) and left on (the
/// plan collapses transparently; same bytes either way).
#[test]
fn pinned_star_digest_holds_at_every_worker_count() {
    for adaptive in [false, true] {
        for workers in [1usize, 2, 4] {
            let o = capnet::ScenarioSpec::star(8)
                .duration(SimDuration::from_millis(40))
                .costs(CostModel::morello())
                .seed(21)
                .workers(workers)
                .adaptive_workers(adaptive)
                .congestion(capnet::CcAlgo::Reno)
                .sack(false)
                .run()
                .expect("star runs");
            assert_eq!(
                o.trace.digest, 0xfa099c29f1e937d5,
                "workers={workers} adaptive={adaptive} drifted off the pinned star8 digest"
            );
        }
    }
}

/// Adaptive worker selection collapses an unprofitable plan to the
/// single-engine loop — transparently (same bytes, `workers` reports the
/// collapse) — and still reports the window the plan would have run
/// under.
#[test]
fn unprofitable_plans_collapse_to_a_single_engine() {
    let mut sim = NetSim::new(CostModel::morello());
    sim.set_seed(21);
    sim.set_workers(4); // adaptive selection left on (the default)
    let topo = capnet::topology::build_star(&mut sim, 8).expect("star builds");
    for (i, &leaf) in topo.leaves.iter().enumerate() {
        let port = 5600 + i as u16;
        sim.add_server(topo.hub, format!("hub-rx{i}"), port)
            .expect("server");
        sim.add_client(
            leaf,
            format!("leaf-tx{i}"),
            (topo.hub_ip, port),
            SimDuration::from_millis(20),
            SimDuration::ZERO,
        )
        .expect("client");
    }
    let out = sim.run(SimDuration::from_millis(40)).expect("runs");
    assert_eq!(out.workers, 1, "the light star collapsed");
    assert!(
        out.lookahead_ns > 0,
        "the would-be window is still reported"
    );
    assert_eq!(out.rounds.rounds, 0, "no rendezvous rounds were driven");
    assert_equivalent(&star(1), &out, "adaptive star8");
}

#[test]
fn dumbbell_is_byte_identical_at_any_worker_count() {
    let run = |workers: usize| {
        let mut sim = NetSim::new(CostModel::morello());
        sim.set_seed(5);
        sim.set_workers(workers);
        sim.set_adaptive_workers(false);
        let bell = capnet::topology::build_dumbbell(&mut sim, 4).expect("dumbbell");
        for i in 0..4 {
            let port = 5700 + i as u16;
            sim.add_server(bell.servers[i], format!("srv{i}"), port)
                .expect("srv");
            sim.add_client(
                bell.clients[i],
                format!("cli{i}"),
                (bell.server_ips[i], port),
                SimDuration::from_millis(15),
                SimDuration::ZERO,
            )
            .expect("cli");
        }
        sim.run(SimDuration::from_millis(30)).expect("runs")
    };
    let base = run(1);
    assert!(base.trace.frames > 500);
    for workers in [2usize, 4] {
        assert_equivalent(&base, &run(workers), "dumbbell4");
    }
}

#[test]
fn chain_is_byte_identical_at_any_worker_count() {
    let run = |workers: usize| {
        let mut sim = NetSim::new(CostModel::morello());
        sim.set_seed(9);
        sim.set_workers(workers);
        sim.set_adaptive_workers(false);
        let chain = build_chain(&mut sim, 3).expect("chain");
        sim.add_server(chain.b, "b-rx", 5501).expect("srv");
        sim.add_client(
            chain.a,
            "a-tx",
            (chain.b_ip, 5501),
            SimDuration::from_millis(15),
            SimDuration::ZERO,
        )
        .expect("cli");
        sim.run(SimDuration::from_millis(30)).expect("runs")
    };
    let base = run(1);
    assert!(base.trace.frames > 500);
    for workers in [2usize, 4] {
        assert_equivalent(&base, &run(workers), "chain3");
    }
}

/// Lossy cables: the per-destination-port impairment streams must make
/// loss, duplication and corruption draws land identically no matter which
/// shard plans them.
#[test]
fn lossy_star_is_byte_identical_at_any_worker_count() {
    let imp = Impairments {
        loss_per_mille: 8,
        dup_per_mille: 4,
        corrupt_per_mille: 4,
        ..Impairments::default()
    };
    let run = |workers: usize| {
        let mut sim = NetSim::new(CostModel::morello());
        sim.set_seed(77);
        sim.set_workers(workers);
        sim.set_adaptive_workers(false);
        sim.set_impairments(imp);
        let star = capnet::topology::build_star(&mut sim, 6).expect("star");
        for (i, &leaf) in star.leaves.iter().enumerate() {
            let port = 5800 + i as u16;
            sim.add_server(star.hub, format!("hub-rx{i}"), port)
                .expect("srv");
            sim.add_client(
                leaf,
                format!("leaf-tx{i}"),
                (star.hub_ip, port),
                SimDuration::from_millis(15),
                SimDuration::ZERO,
            )
            .expect("cli");
        }
        sim.run(SimDuration::from_millis(30)).expect("runs")
    };
    let base = run(1);
    assert!(
        base.impairment_stats.lost > 0 || base.impairment_stats.duplicated > 0,
        "the impairments actually fired: {:?}",
        base.impairment_stats
    );
    for workers in [2usize, 4] {
        assert_equivalent(&base, &run(workers), "lossy star6");
    }
}

/// The threaded window driver (worker threads + barriers) produces the
/// same bytes as the single-engine run and the sequential multiplexer —
/// forced on via [`NetSim::set_worker_threads`] (an explicit setter, not
/// the env override: tests run concurrently and mutating the process
/// environment races sibling tests' reads).
#[test]
fn threaded_driver_matches_sequential() {
    let base =
        run_star_iperf(4, SimDuration::from_millis(10), CostModel::morello(), 3).expect("baseline");
    let run_forced = |threaded: bool| {
        let mut sim = NetSim::new(CostModel::morello());
        sim.set_seed(3);
        sim.set_workers(2);
        sim.set_adaptive_workers(false);
        sim.set_worker_threads(Some(threaded));
        let star = capnet::topology::build_star(&mut sim, 4).expect("star");
        for (i, &leaf) in star.leaves.iter().enumerate() {
            let port = 5301 + i as u16; // run_star_iperf's port layout
            sim.add_server(star.hub, format!("hub-rx{i}"), port)
                .expect("srv");
            sim.add_client(
                leaf,
                format!("leaf-tx{i}"),
                (star.hub_ip, port),
                SimDuration::from_millis(10),
                SimDuration::ZERO,
            )
            .expect("cli");
        }
        sim.run(SimDuration::from_millis(40)).expect("runs")
    };
    for threaded in [false, true] {
        let out = run_forced(threaded);
        assert_eq!(
            base.trace, out.trace,
            "threaded={threaded} vs single engine"
        );
        assert_eq!(base.counters, out.counters, "threaded={threaded}");
        assert!(out.rounds.xshard_frames > 0, "threaded={threaded}");
        if threaded {
            // Thread-crossing frames are rehomed into Arc-backed pages:
            // at most one copy each, witnessed by the byte tally.
            assert!(out.rounds.rehome_bytes > 0, "pages were built");
            assert!(
                out.rounds.rehome_bytes < out.rounds.xshard_frames * updk::wire::MAX_FRAME as u64,
                "rehoming copies at most one frame's bytes per crossing"
            );
        } else {
            assert_eq!(
                out.rounds.rehome_bytes, 0,
                "single-thread multiplexed handoffs share frames, no copies"
            );
        }
    }
}

/// Scenario helpers keep their workers=1 behavior bit for bit (they never
/// call `set_workers`), including under impairments. Single-engine runs
/// now report the window a 2-shard plan *would* run under, so bench
/// output can show the would-be width without sharding.
#[test]
fn scenario_helpers_still_run_single_engine() {
    let out = run_star_iperf_impaired(
        2,
        SimDuration::from_millis(10),
        CostModel::morello(),
        11,
        Impairments::lossy(10),
    )
    .expect("impaired star runs");
    assert_eq!(out.workers, 1);
    assert!(
        out.lookahead_ns > 0,
        "a cut 2-shard plan exists, so the would-be window is reported"
    );
    assert_eq!(out.rounds.rounds, 0, "but no sharded driver ever ran");
    let bell = run_dumbbell_fairness(2, SimDuration::from_millis(10), CostModel::morello(), 11)
        .expect("dumbbell runs");
    assert_eq!(bell.workers, 1);
}

/// The full fault pipeline under sharding: a hub-uplink flap, a leaf
/// crash/restart and a switch blip, riding a retrying HTTP serving plane.
/// Fault events are scheduled on every shard (identical keys everywhere),
/// so the wire trace, the fleet/server reports and the merged fault
/// counters must all be byte-identical at any worker count. The raw
/// executed-event total is *not* compared — each shard burns its own
/// fault bookkeeping events; the wire is the contract, not the engine's
/// internal event count.
fn faulted_star(workers: usize) -> SimOutcome {
    let ms = SimDuration::from_millis;
    capnet::ScenarioSpec::star(8)
        .duration(ms(80))
        .costs(CostModel::morello())
        .seed(0xF417)
        .workers(workers)
        .adaptive_workers(false)
        .http(
            capnet_httpd::HttpServerConfig {
                max_conns: 24,
                ..capnet_httpd::HttpServerConfig::default()
            },
            capnet_httpd::FleetConfig {
                rate_per_sec: 3_000,
                keep_alive_per_mille: 400,
                retry_budget: 3,
                ..capnet_httpd::FleetConfig::default()
            },
        )
        .faults(
            capnet::FaultPlan::new()
                .link_down(ms(20), capnet::FaultTarget::Hub)
                .link_up(ms(32), capnet::FaultTarget::Hub)
                .node_crash(ms(15), capnet::FaultTarget::Leaf(5))
                .node_restart(ms(45), capnet::FaultTarget::Leaf(5))
                .switch_fail(ms(55), capnet::FaultTarget::Switch(0))
                .switch_recover(ms(58), capnet::FaultTarget::Switch(0)),
        )
        .run()
        .expect("faulted star runs")
}

fn assert_fault_equivalent(base: &SimOutcome, out: &SimOutcome, what: &str) {
    assert_eq!(base.trace, out.trace, "{what}: wire trace");
    assert_eq!(base.ended_at, out.ended_at, "{what}: final instant");
    assert_eq!(base.http_fleets, out.http_fleets, "{what}: fleet reports");
    assert_eq!(
        base.http_servers, out.http_servers,
        "{what}: server reports"
    );
    assert_eq!(base.fault_stats, out.fault_stats, "{what}: fault counters");
    assert_eq!(
        base.impairment_stats, out.impairment_stats,
        "{what}: blackhole tallies"
    );
    assert_eq!(base.stack_stats, out.stack_stats, "{what}: stack stats");
    assert_eq!(base.switch_stats, out.switch_stats, "{what}: switch stats");
}

#[test]
fn faulted_star_is_byte_identical_at_any_worker_count() {
    let base = faulted_star(1);
    assert_eq!(base.fault_stats.link_down_events, 1);
    assert_eq!(base.fault_stats.node_crashes, 1);
    assert_eq!(base.fault_stats.switch_fail_events, 1);
    assert!(
        base.impairment_stats.blackholed > 0,
        "the flap actually cut traffic: {:?}",
        base.impairment_stats
    );
    let retries: u64 = base.http_fleets.iter().map(|f| f.retries).sum();
    assert!(retries > 0, "the partition actually triggered retries");
    for workers in [2usize, 4] {
        let out = faulted_star(workers);
        assert_eq!(out.workers, workers, "the plan used the requested shards");
        assert_fault_equivalent(&base, &out, "faulted star8");
    }
}

/// Cut-edge faults: every leaf uplink in turn — the exact edges the shard
/// partitioner cuts — flaps on a staggered schedule while the leaves keep
/// serving. Downing a *cut* edge exercises the blackhole check on the
/// TX hop that feeds the cross-shard rendezvous.
#[test]
fn staggered_cut_edge_flaps_are_byte_identical() {
    let ms = SimDuration::from_millis;
    let run = |workers: usize| {
        let mut plan = capnet::FaultPlan::new();
        for i in 0..8usize {
            plan = plan
                .link_down(ms(10 + 4 * i as u64), capnet::FaultTarget::Leaf(i))
                .link_up(ms(12 + 4 * i as u64), capnet::FaultTarget::Leaf(i));
        }
        capnet::ScenarioSpec::star(8)
            .duration(ms(70))
            .costs(CostModel::morello())
            .seed(0xCE11)
            .workers(workers)
            .adaptive_workers(false)
            .http(
                capnet_httpd::HttpServerConfig::default(),
                capnet_httpd::FleetConfig {
                    rate_per_sec: 4_000,
                    retry_budget: 2,
                    ..capnet_httpd::FleetConfig::default()
                },
            )
            .faults(plan)
            .run()
            .expect("staggered flap star runs")
    };
    let base = run(1);
    assert_eq!(base.fault_stats.link_down_events, 8);
    assert_eq!(base.fault_stats.link_up_events, 8);
    for workers in [2usize, 4] {
        assert_fault_equivalent(&base, &run(workers), "staggered flaps");
    }
}

/// An *empty* fault plan is provably free: the explicit `.faults(...)`
/// call with no events must land on the exact pinned pre-fault digest —
/// the subsystem's presence costs nothing when unused.
#[test]
fn empty_fault_plan_leaves_the_pinned_digest_untouched() {
    let o = capnet::ScenarioSpec::star(8)
        .duration(SimDuration::from_millis(40))
        .costs(CostModel::morello())
        .seed(21)
        .workers(2)
        .adaptive_workers(false)
        .congestion(capnet::CcAlgo::Reno)
        .sack(false)
        .faults(capnet::FaultPlan::new())
        .run()
        .expect("star runs");
    assert_eq!(
        o.trace.digest, 0xfa099c29f1e937d5,
        "an empty FaultPlan must not perturb a single byte"
    );
}

proptest! {
    /// Random topologies partition into shards covering every node exactly
    /// once, with every constraint group intact — for any worker count.
    #[test]
    fn random_partitions_cover_every_node_exactly_once(
        nodes in 1usize..40,
        switches in 0usize..6,
        workers in 1usize..8,
        edge_seed in any::<u64>(),
    ) {
        // Derive attachments / links / groups deterministically from the
        // seed so failures replay.
        let mut x = edge_seed;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        let mut g = ShardGraph {
            nodes,
            switches,
            node_weight: (0..nodes).map(|i| 1 + (i as u64 % 5)).collect(),
            ..ShardGraph::default()
        };
        for i in 0..nodes {
            match next() % 3 {
                0 if switches > 0 => g.attachments.push((i, next() % switches)),
                1 if nodes > 1 => {
                    let j = next() % nodes;
                    if j != i {
                        g.node_links.push((i, j));
                    }
                }
                _ => {}
            }
        }
        if switches > 1 {
            for s in 1..switches {
                if next() % 2 == 0 {
                    g.trunks.push((s - 1, s));
                }
            }
        }
        if nodes > 2 && next() % 2 == 0 {
            g.bind_groups.push(vec![0, nodes / 2, nodes - 1]);
        }

        let plan = partition_shards(&g, workers);
        prop_assert!(plan.workers >= 1 && plan.workers <= workers.max(1));
        // Exactly-once coverage: one owning shard per node, in range.
        prop_assert_eq!(plan.node_shard.len(), nodes);
        for &s in &plan.node_shard {
            prop_assert!(s < plan.workers, "node shard {} of {}", s, plan.workers);
        }
        prop_assert_eq!(plan.switch_shard.len(), switches);
        for &s in &plan.switch_shard {
            prop_assert!(s < plan.workers);
        }
        // Constraints: direct cables and bind groups co-shard.
        for &(a, b) in &g.node_links {
            prop_assert_eq!(plan.node_shard[a], plan.node_shard[b]);
        }
        for group in &g.bind_groups {
            for w in group.windows(2) {
                prop_assert_eq!(plan.node_shard[w[0]], plan.node_shard[w[1]]);
            }
        }
        // Purity: the same graph plans identically.
        let again = partition_shards(&g, workers);
        prop_assert_eq!(plan.node_shard, again.node_shard);
        prop_assert_eq!(plan.switch_shard, again.switch_shard);
    }

    /// The lookahead matrix's conservative-execution invariants, on random
    /// cut graphs and queue states: no shard's window ever reaches past
    /// any peer's earliest event plus the closed path floor to get here
    /// (`min(peer_next) + L` per pair), past its own round trip, or below
    /// the scalar `min_finite` guarantee; the closure satisfies the
    /// triangle inequality; and windows are monotone in the inputs —
    /// advancing any peer never shrinks anyone's window.
    #[test]
    fn window_bounds_hold_on_random_matrices(
        workers in 2usize..6,
        edges in proptest::collection::vec((0usize..6, 0usize..6, 1u64..10_000), 1..24),
        mut nexts in proptest::collection::vec(0u64..1u64 << 41, 6),
        bump in 0u64..1u64 << 30,
        who in 0usize..6,
    ) {
        let mut m = LookaheadMatrix::new(workers);
        for &(a, b, lat) in &edges {
            m.note_edge(a % workers, b % workers, lat);
        }
        m.close();
        nexts.truncate(workers);
        // The top half of the draw range means "idle shard" (no event).
        let nexts: Vec<u64> = nexts
            .into_iter()
            .map(|n| if n >= 1 << 40 { u64::MAX } else { n })
            .collect();

        // Triangle inequality survives the min-plus closure.
        for a in 0..workers {
            for b in 0..workers {
                for c in 0..workers {
                    let via = m.dist(a, b).saturating_add(m.dist(b, c));
                    prop_assert!(m.dist(a, c) <= via, "dist({a},{c}) > via {b}");
                }
            }
        }

        let min_next = nexts.iter().copied().min().unwrap_or(u64::MAX);
        for me in 0..workers {
            let end = m.window_end(&nexts, me);
            // Never past any peer's earliest event plus its path floor in.
            for (q, &n) in nexts.iter().enumerate() {
                if q != me {
                    prop_assert!(end <= n.saturating_add(m.dist(q, me)));
                }
            }
            // The scalar summary is a floor on every granted window:
            // whatever the queue state, nobody's bound is tighter than
            // the earliest event anywhere plus the tightest pair floor.
            if let Some(l) = m.min_finite() {
                prop_assert!(
                    end >= min_next.saturating_add(l),
                    "window {end} below min_next {min_next} + min_finite {l}"
                );
            }
            // Progress: the globally earliest shard always gets to run
            // (the drivers would otherwise spin forever).
            if nexts[me] == min_next && min_next != u64::MAX && m.min_finite() != Some(0) {
                prop_assert!(end > nexts[me], "the earliest shard's window is non-empty");
            }
        }

        // Monotonicity: advancing one shard's queue never shrinks windows.
        let who = who % workers;
        if nexts[who] != u64::MAX {
            let mut later = nexts.clone();
            later[who] = later[who].saturating_add(bump);
            for me in 0..workers {
                prop_assert!(
                    m.window_end(&later, me) >= m.window_end(&nexts, me),
                    "window_end must be monotone in the published instants"
                );
            }
        }
    }

    /// The profitability model: collapse exactly when the estimated
    /// per-round work cannot cover the round cost, monotone in weight and
    /// window width, anti-monotone in worker count; uncut plans always
    /// shard.
    #[test]
    fn profitability_is_monotone(
        weight in 0u64..100_000,
        lookahead_raw in 0u64..1u64 << 24,
        idle in 1u64..1_000_000,
        workers in 1usize..16,
    ) {
        // 0 stands for "no cut edge" (an uncut plan's unbounded window).
        let lookahead = (lookahead_raw != 0).then_some(lookahead_raw);
        let fit = Profitability::assess(weight, lookahead, idle, workers);
        prop_assert_eq!(fit.profitable, fit.est_events_per_round >= fit.round_cost_events);
        prop_assert_eq!(fit.round_cost_events, ROUND_COST_EVENTS * workers as u64);
        match lookahead {
            None => prop_assert!(fit.profitable, "uncut plans always shard"),
            Some(l) => {
                // More weight or wider windows never flip a profitable
                // plan unprofitable; more workers never flip an
                // unprofitable plan profitable.
                let heavier = Profitability::assess(weight * 2 + 1, Some(l), idle, workers);
                let wider = Profitability::assess(weight, Some(l * 2), idle, workers);
                let more_shards = Profitability::assess(weight, Some(l), idle, workers * 2);
                if fit.profitable {
                    prop_assert!(heavier.profitable);
                    prop_assert!(wider.profitable);
                } else {
                    prop_assert!(!more_shards.profitable);
                }
            }
        }
    }
}
