//! TIME_WAIT correctness through the full stack: an actively-closed
//! connection's 4-tuple stays blocked for 2 MSL, so rapid reconnect churn
//! to the same server gets a *fresh* ephemeral port (and a fresh ISN)
//! instead of aliasing the old connection's sequence space — and once the
//! 2 MSL quarantine expires, the tuple really is reusable.

mod testutil;

use chos::fdtable::Fd;
use chos::Errno;
use fstack::socket::SockType;
use fstack::tcp::tcb::TcpState;
use testutil::{Side, TwoHost};

const PORT: u16 = 7400;
/// One round-trip's worth of app payload per connection.
const CHUNK: u64 = 4096;

/// Connects A→B:PORT, pushes `CHUNK` bytes, closes from A, and runs until
/// A's TCB reaches TIME_WAIT. Returns `(local_port, isn)` of the client
/// connection as observed while it was alive.
fn one_connection(net: &mut TwoHost, lfd: Fd) -> (u16, u32) {
    let cfd = net.stack(Side::A).ff_socket(SockType::Stream).unwrap();
    let now = net.now;
    net.stack(Side::A)
        .ff_connect(cfd, (testutil::IP_B, PORT), now)
        .unwrap();
    let pay = net.app_buffer(Side::A);
    let sink = net.app_buffer(Side::B);
    let mut wrote = 0u64;
    let mut closed = false;
    let mut accepted = None;
    let mut received = 0u64;
    let mut b_closed = false;
    for _ in 0..40_000 {
        net.tick();
        if accepted.is_none() {
            accepted = net.stack(Side::B).ff_accept(lfd).ok();
        }
        if wrote < CHUNK {
            let want = (CHUNK - wrote).min(pay.len());
            let (stack, mem) = net.stack_and_mem(Side::A);
            match stack.ff_write(mem, cfd, &pay, want) {
                Ok(n) => wrote += n,
                // EPIPE covers the pre-established handshake window.
                Err(Errno::EAGAIN) | Err(Errno::EPIPE) => {}
                Err(e) => panic!("ff_write: {e}"),
            }
        } else if !closed {
            net.stack(Side::A).ff_close(cfd).unwrap();
            closed = true;
        }
        if let Some(fd) = accepted {
            if !b_closed {
                loop {
                    let (stack, mem) = net.stack_and_mem(Side::B);
                    match stack.ff_read(mem, fd, &sink, sink.len()) {
                        // EOF: A's FIN arrived — B closes its side too, so
                        // A (the active closer) can move through TIME_WAIT.
                        Ok(0) => {
                            net.stack(Side::B).ff_close(fd).unwrap();
                            b_closed = true;
                            break;
                        }
                        Ok(n) => received += n,
                        Err(_) => break,
                    }
                }
            }
        }
        if closed && net.stack(Side::A).tcp_state(cfd) == Some(TcpState::TimeWait) {
            break;
        }
    }
    assert_eq!(received, CHUNK, "payload arrived before the close");
    assert_eq!(
        net.stack(Side::A).tcp_state(cfd),
        Some(TcpState::TimeWait),
        "active closer parks in TIME_WAIT"
    );
    let (_, port) = net.stack(Side::A).local_addr(cfd).unwrap();
    let isn = net.stack(Side::A).initial_seq(cfd).unwrap();
    (port, isn)
}

#[test]
fn time_wait_blocks_tuple_reuse_until_2msl() {
    let mut net = TwoHost::new(0x71AE);
    let lfd = net.stack(Side::B).ff_socket(SockType::Stream).unwrap();
    net.stack(Side::B).ff_bind(lfd, PORT).unwrap();
    net.stack(Side::B).ff_listen(lfd, 8).unwrap();

    // Round 1: a normal connection, actively closed by A.
    net.stack(Side::A).set_ephemeral_start(41_000);
    let (port1, isn1) = one_connection(&mut net, lfd);
    assert_eq!(port1, 41_000, "allocator started where we pinned it");

    // Round 2, immediately (well inside 2 MSL): force the allocator to try
    // the quarantined tuple first. It must skip to a fresh port, and the
    // new connection must start from a fresh ISN.
    net.stack(Side::A).set_ephemeral_start(port1);
    let (port2, isn2) = one_connection(&mut net, lfd);
    assert_ne!(
        port2, port1,
        "TIME_WAIT holds the old tuple; churn gets a different port"
    );
    assert_ne!(isn2, isn1, "no ISN reuse across connections");

    // Round 3: run well past 2 MSL (50 ms) so the quarantine expires and
    // the TIME_WAIT TCBs are reaped, then ask for the original port again —
    // now it is genuinely free.
    for _ in 0..30_000 {
        net.tick();
    }
    net.stack(Side::A).set_ephemeral_start(port1);
    let (port3, isn3) = one_connection(&mut net, lfd);
    assert_eq!(
        port3, port1,
        "after 2 MSL the tuple leaves quarantine and is reusable"
    );
    assert_ne!(isn3, isn1, "…but still with a fresh ISN");
}
