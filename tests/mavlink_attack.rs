//! Integration: the paper's §I motivating attack, end to end.
//!
//! *"A buffer overflow in the network stack could allow an attacker to take
//! full control of a drone"* — and CVE-2024-38951 "leverages unchecked
//! buffer limits to mount a DoS attack on the MAVLink protocol of PX4".
//!
//! Here the whole chain runs in simulation: a drone streams MAVLink-style
//! telemetry over UDP through the F-Stack/updk datapath to a ground
//! station; an attacker on the same network injects one CRC-valid frame
//! with a forged length field. The ground station's receive path is the
//! CVE's unchecked copy. Deployed on flat memory (the paper's Baseline) the
//! exploit rewrites the adjacent actuator block; deployed in a CHERI
//! compartment it dies with Fig. 3's capability out-of-bounds exception and
//! the rest of the system keeps operating.

use cheri::{Perms, TaggedMemory};
use fstack::socket::SockType;
use fstack::{FStack, StackConfig};
use mavsim::frame::{MavFrame, SeqTracker};
use mavsim::msg::{Attitude, Heartbeat, MavMode, Message};
use mavsim::parser::{
    attack, CheriParser, GroundStation, ParserOutcome, VulnerableParser, MOTOR_IDLE,
};
use simkern::SimTime;
use std::net::Ipv4Addr;
use updk::nic::MacAddr;

const DRONE_IP: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 1);
const GCS_IP: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 2);
const ATTACKER_IP: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 66);
const MAV_PORT: u16 = 14_550;

/// Three hosts on one segment: drone, ground station, attacker.
struct Net {
    drone: FStack,
    gcs: FStack,
    attacker: FStack,
}

impl Net {
    fn new() -> Self {
        let mut drone = FStack::new(StackConfig::new("drone", MacAddr::local(1), DRONE_IP));
        let mut gcs = FStack::new(StackConfig::new("gcs", MacAddr::local(2), GCS_IP));
        let mut attacker =
            FStack::new(StackConfig::new("attacker", MacAddr::local(6), ATTACKER_IP));
        for (s, others) in [
            (&mut drone, [(GCS_IP, 2u8), (ATTACKER_IP, 6)]),
            (&mut gcs, [(DRONE_IP, 1), (ATTACKER_IP, 6)]),
            (&mut attacker, [(DRONE_IP, 1), (GCS_IP, 2)]),
        ] {
            for (ip, mac) in others {
                s.arp_cache_mut().insert_static(ip, MacAddr::local(mac));
            }
        }
        Net {
            drone,
            gcs,
            attacker,
        }
    }

    /// Moves frames between all three stacks until quiescent (a switch).
    fn pump(&mut self, now: SimTime) {
        for _ in 0..6 {
            let fd = self.drone.poll_tx(now);
            let fg = self.gcs.poll_tx(now);
            let fa = self.attacker.poll_tx(now);
            if fd.is_empty() && fg.is_empty() && fa.is_empty() {
                break;
            }
            // Everything here is unicast to a known MAC; deliver by IP.
            for f in fd.iter().chain(&fg).chain(&fa) {
                for s in [&mut self.drone, &mut self.gcs, &mut self.attacker] {
                    s.input_frame(now, f);
                }
            }
        }
    }
}

fn buf(mem: &mut TaggedMemory, base: u64, len: u64) -> cheri::Capability {
    mem.root_cap()
        .try_restrict(base, len)
        .unwrap()
        .try_restrict_perms(Perms::data())
        .unwrap()
}

/// Sends `frame_bytes` as one UDP datagram from `src` to the GCS port.
fn send_mav(
    stack: &mut FStack,
    mem: &mut TaggedMemory,
    fd: i32,
    scratch: &cheri::Capability,
    frame_bytes: &[u8],
) {
    mem.write(scratch, scratch.base(), frame_bytes).unwrap();
    stack
        .ff_sendto(
            mem,
            fd,
            scratch,
            frame_bytes.len() as u64,
            (GCS_IP, MAV_PORT),
        )
        .unwrap();
}

/// Runs the full scenario against a given ground-station receive path.
/// Returns (parser, telemetry frames delivered before the attack,
/// telemetry frames delivered after the attack).
fn run_attack<G: GroundStation>(mut gs: G) -> (G, u64, u64) {
    let mut net = Net::new();
    let mut mem = TaggedMemory::new(1 << 20);
    let now = SimTime::from_micros(50);

    let s_gcs = net.gcs.ff_socket(SockType::Dgram).unwrap();
    net.gcs.ff_bind(s_gcs, MAV_PORT).unwrap();
    let s_drone = net.drone.ff_socket(SockType::Dgram).unwrap();
    let s_attacker = net.attacker.ff_socket(SockType::Dgram).unwrap();

    let tx = buf(&mut mem, 0x1000, 512);
    let rx = buf(&mut mem, 0x2000, 512);
    let mut seq = SeqTracker::new();
    let mut delivered_pre = 0u64;
    let mut delivered_post = 0u64;
    let recv_all = |net: &mut Net,
                    mem: &mut TaggedMemory,
                    gs: &mut G,
                    count: &mut u64,
                    seq: &mut SeqTracker| {
        while let Ok((n, _from)) = net.gcs.ff_recvfrom(mem, s_gcs, &rx) {
            let bytes = mem.read_vec(&rx, rx.base(), n).unwrap();
            if let Ok(f) = MavFrame::decode(&bytes) {
                seq.observe(f.seq);
            }
            if gs.handle(&bytes).is_delivered() {
                *count += 1;
            }
        }
    };

    // Phase 1: ten telemetry frames of legitimate traffic.
    for i in 0..10u8 {
        let m = if i % 2 == 0 {
            Message::Heartbeat(Heartbeat {
                mode: MavMode::Auto,
                battery_pct: 90 - i,
                armed: true,
            })
        } else {
            Message::Attitude(Attitude {
                roll_mrad: i32::from(i) * 10,
                pitch_mrad: -5,
                yaw_mrad: 1_570,
            })
        };
        send_mav(
            &mut net.drone,
            &mut mem,
            s_drone,
            &tx,
            &MavFrame::encode(i, 1, 1, &m),
        );
        net.pump(now);
        recv_all(&mut net, &mut mem, &mut gs, &mut delivered_pre, &mut seq);
    }

    // Phase 2: the attacker injects the oversized frame (full-throttle
    // motor bytes ride past the RX buffer).
    let exploit = attack::oversized_statustext(120, 0xFFFF);
    send_mav(&mut net.attacker, &mut mem, s_attacker, &tx, &exploit);
    net.pump(now);
    let mut sink = 0u64;
    recv_all(&mut net, &mut mem, &mut gs, &mut sink, &mut seq);

    // Phase 3: the drone keeps streaming; does the GCS still hear it?
    for i in 10..20u8 {
        let m = Message::Heartbeat(Heartbeat {
            mode: MavMode::Auto,
            battery_pct: 80,
            armed: true,
        });
        send_mav(
            &mut net.drone,
            &mut mem,
            s_drone,
            &tx,
            &MavFrame::encode(i, 1, 1, &m),
        );
        net.pump(now);
        recv_all(&mut net, &mut mem, &mut gs, &mut delivered_post, &mut seq);
    }
    assert_eq!(seq.received, 21, "all 21 frames traversed the UDP stack");
    (gs, delivered_pre, delivered_post)
}

#[test]
fn baseline_flat_memory_is_silently_hijacked() {
    let (gs, pre, post) = run_attack(VulnerableParser::new());
    assert_eq!(pre, 10, "all telemetry delivered before the attack");
    // The insidious part: nothing visibly fails…
    assert!(gs.alive());
    assert_eq!(post, 10, "telemetry keeps flowing as if nothing happened");
    // …but the actuator block is attacker-controlled now.
    assert_eq!(
        gs.motors(),
        [0xFFFF; 4],
        "motors at attacker's full throttle"
    );
    assert!(!gs.failsafe_armed(), "failsafe disarmed by the overflow");
}

#[test]
fn cheri_compartment_contains_the_same_attack() {
    let (gs, pre, post) = run_attack(CheriParser::new());
    assert_eq!(pre, 10);
    // The compartment died at the moment of the violation (fail stop)…
    assert!(!gs.alive());
    let fault = gs.fault().expect("the capability fault is recorded");
    assert!(
        format!("{fault}").to_lowercase().contains("bound"),
        "Fig. 3 out-of-bounds exception: {fault}"
    );
    assert_eq!(
        post, 0,
        "a dead cVM receives nothing (fail-stop, not fail-open)"
    );
    // …and the safety-critical state is exactly as it was.
    assert_eq!(gs.motors(), [MOTOR_IDLE; 4]);
}

#[test]
fn attack_frame_survives_the_udp_path_intact() {
    // Sanity: the exploit is not mangled by the stack — checksums pass and
    // the GCS receives the exact bytes the attacker sent.
    let mut net = Net::new();
    let mut mem = TaggedMemory::new(1 << 20);
    let now = SimTime::from_micros(50);
    let s_gcs = net.gcs.ff_socket(SockType::Dgram).unwrap();
    net.gcs.ff_bind(s_gcs, MAV_PORT).unwrap();
    let s_attacker = net.attacker.ff_socket(SockType::Dgram).unwrap();
    let tx = buf(&mut mem, 0x1000, 512);
    let rx = buf(&mut mem, 0x2000, 512);
    let exploit = attack::oversized_statustext(120, 0xFFFF);
    send_mav(&mut net.attacker, &mut mem, s_attacker, &tx, &exploit);
    net.pump(now);
    let (n, from) = net.gcs.ff_recvfrom(&mut mem, s_gcs, &rx).unwrap();
    assert_eq!(n, exploit.len() as u64);
    assert_eq!(from.0, ATTACKER_IP);
    let bytes = mem.read_vec(&rx, rx.base(), n).unwrap();
    assert_eq!(bytes, exploit);
    assert!(MavFrame::decode(&bytes).is_ok(), "CRC-valid end to end");
}

#[test]
fn cheri_gcs_recovers_from_attack_via_respawn() {
    // The CVE is a DoS; the Intravisor's cVM lifecycle turns it into a
    // bounded availability blip: after the exploit kills the compartment,
    // a respawn restores telemetry with actuator state never glitched.
    let (mut gs, pre, post) = run_attack(CheriParser::new());
    assert_eq!((pre, post), (10, 0));
    gs.respawn();
    assert!(gs.alive());
    let hb = MavFrame::encode(
        42,
        1,
        1,
        &Message::Heartbeat(Heartbeat {
            mode: MavMode::Rtl,
            battery_pct: 60,
            armed: true,
        }),
    );
    assert!(
        gs.handle(&hb).is_delivered(),
        "telemetry resumes post-respawn"
    );
    assert_eq!(gs.motors(), [MOTOR_IDLE; 4]);
    assert_eq!(gs.faults_survived(), 1);
}

#[test]
fn telemetry_over_a_lossy_link_is_detected_by_seq_gaps() {
    // MAVLink's sequence field is the GCS's link-quality meter. Push 200
    // frames through a 10%-lossy radio link (the impairment model applied
    // at the datagram level) and check the tracker's accounting: received
    // + inferred-lost equals sent, and measured quality ≈ delivery rate.
    use simkern::rng::SimRng;
    use updk::wire::Impairments;

    let imp = Impairments::lossy(100); // 10 %
    let mut rng = SimRng::seed_from_u64(0xD20E);
    let mut gs = CheriParser::new();
    let mut seq = SeqTracker::new();
    let mut sent = 0u16;
    for i in 0..200u8 {
        sent += 1;
        let wire = MavFrame::encode(
            i,
            1,
            1,
            &Message::Attitude(Attitude {
                roll_mrad: i32::from(i),
                pitch_mrad: 0,
                yaw_mrad: 0,
            }),
        );
        let plan = imp.plan(&mut rng, simkern::SimTime::from_micros(u64::from(i) * 50));
        for _ in plan.deliveries {
            if let Ok(f) = MavFrame::decode(&wire) {
                seq.observe(f.seq);
            }
            assert!(gs.handle(&wire).is_delivered());
        }
    }
    assert!(seq.received < u64::from(sent), "some frames were lost");
    // A gap tracker cannot see losses before the first or after the last
    // received frame, so its total is bounded by what was sent and must
    // cover at least the frames it saw plus the gaps between them.
    assert!(seq.received + seq.lost <= u64::from(sent));
    assert!(seq.lost > 0, "a 10% lossy link shows gaps");
    let quality = seq.quality();
    assert!(
        (0.80..=0.97).contains(&quality),
        "≈90% delivery measured, got {quality:.2}"
    );
    assert!(gs.alive(), "loss never harms the compartment");
}

#[test]
fn legit_command_traffic_still_decodes_through_both_parsers() {
    use mavsim::msg::CommandLong;
    let arm = Message::CommandLong(CommandLong {
        command: 400,
        params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    });
    let wire = MavFrame::encode(0, 255, 190, &arm);
    let mut v = VulnerableParser::new();
    let mut c = CheriParser::new();
    assert!(
        matches!(v.handle(&wire), ParserOutcome::Delivered(Message::CommandLong(k)) if k.command == 400)
    );
    assert!(
        matches!(c.handle(&wire), ParserOutcome::Delivered(Message::CommandLong(k)) if k.command == 400)
    );
}

#[test]
fn ground_control_supervises_a_lossy_mission() {
    // The full consumer story: a drone streams heartbeat+attitude over a
    // 5%-lossy radio; the ground station folds state, measures link
    // quality from sequence gaps, and — when the drone goes silent while
    // armed — recommends failsafe.
    use mavsim::gcs::GroundControl;
    use simkern::rng::SimRng;
    use updk::wire::Impairments;

    let imp = Impairments::lossy(50);
    let mut rng = SimRng::seed_from_u64(0xF00D);
    let mut gcs = GroundControl::new(500_000_000); // 0.5 s timeout
    let mut t: u64 = 0;
    for i in 0..100u8 {
        t += 100_000_000; // 10 Hz telemetry
        let m = if i % 2 == 0 {
            Message::Heartbeat(Heartbeat {
                mode: MavMode::Auto,
                battery_pct: 100 - i / 2,
                armed: true,
            })
        } else {
            Message::Attitude(Attitude {
                roll_mrad: i32::from(i) * 3,
                pitch_mrad: 0,
                yaw_mrad: 0,
            })
        };
        let wire = MavFrame::encode(i, 1, 1, &m);
        let plan = imp.plan(&mut rng, simkern::SimTime::from_nanos(t));
        for _ in plan.deliveries {
            gcs.observe(t, &wire).unwrap();
        }
    }
    let (ok, bad) = gcs.frame_counts();
    assert!(ok > 80 && bad == 0, "most frames arrived: {ok}");
    let q = gcs.link_quality();
    assert!((0.85..=1.0).contains(&q), "≈95% quality, got {q:.2}");
    assert!(gcs.state().armed);
    assert!(gcs.state().battery_pct < 100, "battery telemetry tracked");
    assert!(!gcs.link_stale(t), "alive while streaming");

    // The drone goes silent (crash, jammer, or the §I exploit killing a
    // monolithic firmware): half a second later the station must call it.
    let silence = t + 600_000_000;
    assert!(gcs.link_stale(silence));
    assert!(gcs.failsafe_recommended(silence), "armed + silent = RTL");
}
