//! # capnet-repro — umbrella crate
//!
//! Reproduction of *"Enabling Security on the Edge: A CHERI
//! Compartmentalized Network Stack"* (DATE 2025). This crate re-exports the
//! workspace members so the root-level examples and integration tests can
//! exercise the whole system through one dependency; the substance lives in
//! the member crates:
//!
//! * [`cheri`] — software CHERI capability machine,
//! * [`chos`] — CheriBSD-like host OS slice,
//! * [`intravisor`] — CAP-VM compartment manager,
//! * [`updk`] — DPDK-like user-space poll-mode NIC layer,
//! * [`fstack`] — F-Stack-like TCP/IP library with the `ff_*` API,
//! * [`iperf`] — the bandwidth measurement application,
//! * [`capnet_httpd`] — the HTTP serving plane (static server + open-loop
//!   client fleet),
//! * [`capnet`] — scenarios, experiments and statistics.
//!
//! See `README.md` for the quickstart and `DESIGN.md` for the architecture
//! and per-experiment index.

pub use capnet;
pub use capnet_httpd;
pub use cheri;
pub use chos;
pub use fstack;
pub use intravisor;
pub use iperf;
pub use mavsim;
pub use simkern;
pub use updk;
