//! Offline stand-in for `serde_derive`: the derives parse (and swallow
//! `#[serde(...)]` attributes) but emit nothing. The sibling `serde` crate
//! provides a blanket trait impl, so `#[derive(Serialize)]` + `T: Serialize`
//! bounds both work without any real serialization machinery.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
