//! The `Strategy` trait and the combinators the workspace uses.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. Unlike real proptest there is
/// no shrinking: replay uses the recorded case seed instead.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Type-erase a strategy so heterogeneous alternatives can share a `Vec`.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed alternatives; built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// Integer range strategies. Signed values map to u64 through a sign-bit flip
// so one uniform-span primitive covers every width.
macro_rules! int_range_strategy {
    ($($ty:ty => $to:expr, $from:expr;)*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let lo = $to(self.start);
                let hi = $to(self.end) - 1;
                $from(rng.span(lo, hi))
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let lo = $to(*self.start());
                let hi = $to(*self.end());
                $from(rng.span(lo, hi))
            }
        }
    )*};
}

int_range_strategy! {
    u8    => (|v| v as u64), (|v| v as u8);
    u16   => (|v| v as u64), (|v| v as u16);
    u32   => (|v| v as u64), (|v| v as u32);
    u64   => (|v| v), (|v| v);
    usize => (|v| v as u64), (|v| v as usize);
    i8    => (|v: i8| (v as u8 ^ 0x80) as u64), (|v: u64| (v as u8 ^ 0x80) as i8);
    i16   => (|v: i16| (v as u16 ^ 0x8000) as u64), (|v: u64| (v as u16 ^ 0x8000) as i16);
    i32   => (|v: i32| (v as u32 ^ 0x8000_0000) as u64),
             (|v: u64| (v as u32 ^ 0x8000_0000) as i32);
    i64   => (|v: i64| v as u64 ^ 0x8000_0000_0000_0000),
             (|v: u64| (v ^ 0x8000_0000_0000_0000) as i64);
    isize => (|v: isize| v as u64 ^ 0x8000_0000_0000_0000),
             (|v: u64| (v ^ 0x8000_0000_0000_0000) as isize);
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// `&str` strategies: a character-class pattern such as `"[A-Z_]{1,16}"`.
///
/// Supported grammar (a deliberate sliver of regex, enough for the suites):
/// literal characters, `[...]` classes with `a-z` ranges, and an optional
/// `{n}` / `{m,n}` repeat suffix per atom.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: either a class or a literal char.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in pattern strategy")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            assert!(!alphabet.is_empty(), "empty character class in pattern");

            // Parse an optional {m,n} repeat.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed {{ in pattern strategy")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repeat lower bound"),
                        n.trim().parse::<usize>().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };

            let reps = rng.span(lo as u64, hi as u64) as usize;
            for _ in 0..reps {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}
