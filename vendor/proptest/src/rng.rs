//! SplitMix64-based deterministic RNG used for all generation.

/// Deterministic 64-bit generator. Identical seeds produce identical streams
/// on every platform, which is what makes failing-seed replay exact.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded rejection is overkill for test generation;
        // simple modulo bias is fine at these bound sizes.
        self.next_u64() % bound
    }

    /// Uniform in the inclusive span `[lo, hi]` over u64 arithmetic.
    pub fn span(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let width = hi - lo;
        if width == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(width + 1)
        }
    }
}

/// FNV-1a, used to derive a stable per-test base seed from its name.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
