//! The deterministic case runner behind `proptest!`.

use crate::rng::{fnv1a, TestRng};
use crate::strategy::Strategy;
use std::fmt;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the input is outside the property's domain.
    Reject(String),
    /// `prop_assert*!` failed: the property is false for this input.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

fn default_cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// `proptest-regressions/<test-file-stem>.txt` next to the crate manifest.
fn regression_path(manifest_dir: &str, file: &str) -> PathBuf {
    let stem = Path::new(file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

/// Parse recorded `"<name> seed=0x<hex>"` lines for this test.
fn recorded_seeds(path: &Path, name: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let (test, seed) = line.split_once(" seed=")?;
            if test.trim() != name {
                return None;
            }
            let seed = seed.trim().trim_start_matches("0x");
            u64::from_str_radix(seed, 16).ok()
        })
        .collect()
}

fn persist_failure(path: &Path, name: &str, seed: u64) {
    if recorded_seeds(path, name).contains(&seed) {
        return;
    }
    let _ = fs::create_dir_all(path.parent().unwrap());
    let header = if path.exists() {
        String::new()
    } else {
        "# Seeds for failure cases found by the proptest stand-in. It is\n\
         # recommended to check this file in to source control so that\n\
         # everyone who runs the test benefits from these saved cases.\n"
            .to_string()
    };
    let mut text = header;
    text.push_str(&format!("{name} seed=0x{seed:016x}\n"));
    use std::io::Write;
    if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = f.write_all(text.as_bytes());
    }
}

/// Run one property over its recorded regression seeds, then over
/// `PROPTEST_CASES` deterministic fresh cases.
pub fn run<S, F>(manifest_dir: &str, file: &str, name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let cases = default_cases();
    let reg_path = regression_path(manifest_dir, file);
    let base = fnv1a(format!("{file}::{name}").as_bytes());

    // Replay persisted regressions first, exactly once each, no reject retry.
    for seed in recorded_seeds(&reg_path, name) {
        match run_one(&strategy, &test, seed) {
            CaseOutcome::Pass | CaseOutcome::Reject(_) => {}
            CaseOutcome::Fail(msg) => {
                panic!("[{name}] persisted regression seed=0x{seed:016x} still fails: {msg}")
            }
        }
    }

    let mut rejects: u64 = 0;
    let max_rejects = cases.saturating_mul(32).max(1024);
    let mut case = 0u64;
    let mut attempt = 0u64;
    while case < cases {
        let seed = base
            .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .rotate_left(17);
        attempt += 1;
        match run_one(&strategy, &test, seed) {
            CaseOutcome::Pass => case += 1,
            CaseOutcome::Reject(_) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "[{name}] too many prop_assume! rejections \
                         ({rejects} rejects for {case}/{cases} cases)"
                    );
                }
            }
            CaseOutcome::Fail(msg) => {
                persist_failure(&reg_path, name, seed);
                panic!(
                    "[{name}] property failed at case {case} (seed=0x{seed:016x}, \
                     persisted to {}):\n{msg}",
                    reg_path.display()
                );
            }
        }
    }
}

enum CaseOutcome {
    Pass,
    Reject(#[allow(dead_code)] String),
    Fail(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_lines_parse_and_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pt-reg-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("properties.txt");

        assert!(recorded_seeds(&path, "my_test").is_empty());
        persist_failure(&path, "my_test", 0xDEAD_BEEF_0000_0001);
        persist_failure(&path, "my_test", 0xDEAD_BEEF_0000_0002);
        persist_failure(&path, "other_test", 0x1234);
        // Duplicate seeds are not re-recorded.
        persist_failure(&path, "my_test", 0xDEAD_BEEF_0000_0001);

        assert_eq!(
            recorded_seeds(&path, "my_test"),
            vec![0xDEAD_BEEF_0000_0001, 0xDEAD_BEEF_0000_0002]
        );
        assert_eq!(recorded_seeds(&path, "other_test"), vec![0x1234]);
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('#'), "header comment present:\n{text}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn comments_and_foreign_tests_are_ignored() {
        let dir = std::env::temp_dir().join(format!("pt-reg2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("properties.txt");
        fs::write(
            &path,
            "# comment\n\nalpha seed=0x10\nbeta seed=0x20\nalpha seed=0x30\nnot a seed line\n",
        )
        .unwrap();
        assert_eq!(recorded_seeds(&path, "alpha"), vec![0x10, 0x30]);
        assert_eq!(recorded_seeds(&path, "beta"), vec![0x20]);
        assert!(recorded_seeds(&path, "gamma").is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_property_panics_and_persists_its_seed() {
        let dir = std::env::temp_dir().join(format!("pt-reg3-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let manifest = dir.to_string_lossy().into_owned();

        let result = panic::catch_unwind(|| {
            run(
                &manifest,
                "tests/properties.rs",
                "always_fails",
                (0u64..10,),
                |(_n,)| Err(TestCaseError::fail("nope")),
            );
        });
        assert!(result.is_err(), "a failing property panics");
        let seeds = recorded_seeds(
            &dir.join("proptest-regressions").join("properties.txt"),
            "always_fails",
        );
        assert_eq!(seeds.len(), 1, "exactly one failing seed persisted");
        let _ = fs::remove_dir_all(&dir);
    }
}

fn run_one<S, F>(strategy: &S, test: &F, seed: u64) -> CaseOutcome
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(seed);
    let value = strategy.generate(&mut rng);
    match panic::catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(TestCaseError::Reject(m))) => CaseOutcome::Reject(m),
        Ok(Err(TestCaseError::Fail(m))) => CaseOutcome::Fail(m),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            CaseOutcome::Fail(format!("panicked: {msg}"))
        }
    }
}
