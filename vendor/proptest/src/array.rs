//! Fixed-size array strategies: `array::uniformN(element)`.

use crate::rng::TestRng;
use crate::strategy::Strategy;

pub struct ArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform {
    ($($name:ident => $n:literal),* $(,)?) => {$(
        pub fn $name<S: Strategy>(element: S) -> ArrayStrategy<S, $n> {
            ArrayStrategy { element }
        }
    )*};
}

uniform! {
    uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
    uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8,
    uniform16 => 16, uniform32 => 32,
}
