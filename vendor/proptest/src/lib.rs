//! Offline stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no network access, so the real
//! crates.io `proptest` cannot be vendored. This crate re-implements exactly
//! the subset of the API the workspace's property suites use:
//!
//! * the [`proptest!`] macro (with `pat in strategy` and `name: Type` params),
//! * [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`]/[`prop_assume!`],
//! * [`prop_oneof!`], [`strategy::Just`], [`Strategy::prop_map`],
//! * `any::<T>()` for the primitive types, `Option<T>`,
//! * [`collection::vec`], `array::uniform*`, and `&str` character-class
//!   patterns like `"[A-Z_]{1,16}"`.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic by default.** Case seeds derive from a hash of the test
//!   name, so every run of the suite generates the same inputs. Set
//!   `PROPTEST_CASES` to change the case count (default 64).
//! * **No shrinking.** A failure reports the case seed instead; replaying is
//!   exact because generation is deterministic in the seed.
//! * **Regression persistence.** Failing seeds are appended to
//!   `proptest-regressions/<test-file-stem>.txt` under the crate root, and any
//!   seeds already recorded there are replayed before the random cases — the
//!   same contract as real proptest's `.txt` regression files, with a
//!   different line format (`<test_name> seed=0x<hex>`).

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod rng;
pub mod runner;
pub mod strategy;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// `proptest! { #[test] fn name(a in strat, b: Type, ...) { body } ... }`
///
/// Each function becomes a `#[test]` that runs the body over generated inputs
/// via [`runner::run`]. Parameters are either `pattern in strategy` or
/// `ident: Type` (shorthand for `ident in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_parse!([] [] $($params)*, ; $name $body);
            }
        )*
    };
}

/// Internal: fold the parameter list into one tuple pattern + one tuple
/// strategy, then hand off to `__proptest_run!`. Not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_parse {
    // terminal: nothing left but stray commas
    ([$($pats:pat_param)*] [$($strats:expr,)*] $(,)* ; $name:ident $body:block) => {
        $crate::__proptest_run!([$($pats)*] [$($strats,)*] $name $body)
    };
    // `pattern in strategy`
    ([$($pats:pat_param)*] [$($strats:expr,)*] $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_parse!([$($pats)* $pat] [$($strats,)* $strat,] $($rest)*)
    };
    // `ident: Type` shorthand
    ([$($pats:pat_param)*] [$($strats:expr,)*] $id:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_parse!(
            [$($pats)* $id] [$($strats,)* $crate::arbitrary::any::<$ty>(),] $($rest)*
        )
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_run {
    ([$($pats:pat_param)*] [$($strats:expr,)*] $name:ident $body:block) => {
        $crate::runner::run(
            env!("CARGO_MANIFEST_DIR"),
            file!(),
            stringify!($name),
            ($($strats,)*),
            |($($pats,)*)| -> ::std::result::Result<(), $crate::runner::TestCaseError> {
                $body
                Ok(())
            },
        )
    };
}

/// Like `assert!` but fails the current case (reporting its seed) instead of
/// panicking bare.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (it counts as neither pass nor fail) when the
/// generated input does not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
