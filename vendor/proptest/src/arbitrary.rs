//! `any::<T>()` for the primitive types the suites generate.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Floats come from raw bits so infinities and NaNs do appear, as with real
// proptest's full-range float strategies; suites `prop_assume!` them away
// where they matter.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.below(8) == 0 {
            char::from_u32(rng.next_u32() % 0xD800).unwrap_or('\u{FFFD}')
        } else {
            (0x20u8 + rng.below(0x5F) as u8) as char
        }
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}
