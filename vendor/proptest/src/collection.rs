//! Collection strategies: `collection::vec(element, size)`.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Inclusive size span for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.span(self.size.lo as u64, self.size.hi as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
