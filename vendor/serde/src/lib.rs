//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize)]` as a marker on result
//! structs (nothing is actually serialized anywhere in-tree), so this crate
//! provides blanket-implemented marker traits and re-exports no-op derives
//! from `serde_derive`. If real serialization lands later, swap this vendor
//! crate for the real one.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
