//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the API the `capnet-bench` targets use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `throughput`,
//! `sample_size`, `iter`, `iter_with_setup`, `criterion_group!`,
//! `criterion_main!`, `black_box`). Instead of criterion's statistical
//! engine it runs a short warmup, then `sample_size` timed samples, and
//! prints mean time per iteration (plus throughput when set). Good enough to
//! regenerate the paper-facing numbers the benches print; swap in the real
//! crate when network access exists.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-sample iteration budget: keep each bench under roughly this long.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Anything usable as a bench id: a `&str` name or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };

        // Warmup and iteration-count calibration.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        // Smoke mode (CI's per-PR bench step): one iteration, one sample —
        // enough to execute every bench body (and emit its report numbers)
        // without paying for statistical confidence.
        let smoke = std::env::var_os("BENCH_SMOKE").is_some();
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample = if smoke {
            1
        } else {
            (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64
        };
        let sample_size = if smoke { 1 } else { self.sample_size };

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            total_iters += b.iters;
        }

        let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        let mut line = format!("{label:<56} {mean_ns:>12.1} ns/iter");
        if let Some(t) = self.throughput {
            let per_sec = 1e9 / mean_ns;
            match t {
                Throughput::Bytes(n) => {
                    let mib = per_sec * n as f64 / (1024.0 * 1024.0);
                    line.push_str(&format!("  {mib:>10.1} MiB/s"));
                }
                Throughput::Elements(n) => {
                    let elems = per_sec * n as f64;
                    line.push_str(&format!("  {elems:>12.0} elem/s"));
                }
            }
        }
        println!("{line}");
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    pub fn iter_with_setup<S, O, SF, RF>(&mut self, mut setup: SF, mut routine: RF)
    where
        SF: FnMut() -> S,
        RF: FnMut(S) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// `criterion_group!(name, target_a, target_b, ...)`
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group_a, group_b, ...)`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
