//! Pure window and profitability math of the sharded parallel `NetSim`.
//!
//! Everything here is deterministic integer arithmetic over plain data, so
//! the conservative-execution invariants are property-testable without
//! building a simulation (see `tests/parallel_determinism.rs`):
//!
//! * [`LookaheadMatrix`] — the per-shard-pair conservative lookahead. The
//!   old driver used one *global* minimum over all cut edges (1672 ns for
//!   any NIC-side cut under the Morello model), which throttled every
//!   shard to the tightest edge anywhere in the topology. The matrix
//!   keeps the minimum **per directed shard pair**, closed under min-plus
//!   composition, so a shard only waits on the paths that can actually
//!   reach it — star leaf shards, for instance, bound each other through
//!   the hub (1672 + 3672 ns) rather than at the raw 1672 ns floor.
//! * [`Profitability`] — the adaptive worker-selection model: estimated
//!   events per round (topology weight × window width) against the fixed
//!   host cost of driving a round, so small topologies transparently
//!   collapse to the single-engine loop instead of paying the sharding
//!   tax the committed `BENCH_parallel.json` exposed (0.88–0.93x at 8–32
//!   clients).

/// Saturating add where `u64::MAX` means "unreachable"/"no event".
#[inline]
fn sat(a: u64, b: u64) -> u64 {
    a.saturating_add(b)
}

/// The per-directed-shard-pair conservative lookahead of one shard plan.
///
/// `dist(q, s)` is a lower bound on the virtual time any causal chain
/// needs to travel from an event executing in shard `q` to an event it
/// causes in shard `s`: the minimum, over all shard paths `q → … → s`, of
/// the sum of per-edge latency floors ([`simkern::CostModel::link_floor_ns`])
/// of the cut edges along the way. Direct edges are fed in with
/// [`LookaheadMatrix::note_edge`]; [`LookaheadMatrix::close`] then takes
/// the min-plus (Floyd–Warshall) closure so relayed paths bound too.
#[derive(Debug, Clone)]
pub struct LookaheadMatrix {
    workers: usize,
    /// Row-major `dist[q * workers + s]`; `u64::MAX` = unreachable.
    dist: Vec<u64>,
    /// `round_trip[s]` = min over `q ≠ s` of `dist(s,q) + dist(q,s)` —
    /// the soonest one of `s`'s own events can echo back into `s`.
    round_trip: Vec<u64>,
    /// The tightest finite pair distance (`None` when no edge is cut).
    min_finite: Option<u64>,
}

impl LookaheadMatrix {
    /// An all-unreachable matrix for `workers` shards.
    pub fn new(workers: usize) -> Self {
        LookaheadMatrix {
            workers,
            dist: vec![u64::MAX; workers * workers],
            round_trip: vec![u64::MAX; workers],
            min_finite: None,
        }
    }

    /// Shard count this matrix was built for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Records a cut edge from shard `src` to shard `dst` with latency
    /// floor `lat` (keeps the per-pair minimum). Same-shard edges are not
    /// cuts and are ignored.
    pub fn note_edge(&mut self, src: usize, dst: usize, lat: u64) {
        if src == dst {
            return;
        }
        let d = &mut self.dist[src * self.workers + dst];
        *d = (*d).min(lat);
    }

    /// Min-plus closes the direct-edge minima (so multi-hop relay paths
    /// bound causality too) and derives the round-trip and scalar
    /// summaries. Must be called once, after the last `note_edge`.
    pub fn close(&mut self) {
        let w = self.workers;
        for via in 0..w {
            for a in 0..w {
                let d_avia = self.dist[a * w + via];
                if d_avia == u64::MAX {
                    continue;
                }
                for b in 0..w {
                    let through = sat(d_avia, self.dist[via * w + b]);
                    let d = &mut self.dist[a * w + b];
                    if through < *d {
                        *d = through;
                    }
                }
            }
        }
        let mut min_finite = u64::MAX;
        for q in 0..w {
            for s in 0..w {
                if q != s {
                    min_finite = min_finite.min(self.dist[q * w + s]);
                }
            }
        }
        self.min_finite = (min_finite != u64::MAX).then_some(min_finite);
        for s in 0..w {
            let mut rt = u64::MAX;
            for q in 0..w {
                if q != s {
                    rt = rt.min(sat(self.dist[s * w + q], self.dist[q * w + s]));
                }
            }
            self.round_trip[s] = rt;
        }
    }

    /// Lower bound on the virtual time a causal chain needs from shard
    /// `src` to shard `dst` (`u64::MAX` = cannot reach it at all).
    #[inline]
    pub fn dist(&self, src: usize, dst: usize) -> u64 {
        if src == dst {
            return 0;
        }
        self.dist[src * self.workers + dst]
    }

    /// The tightest finite pair lookahead — the scalar a single number
    /// must summarize the matrix as (reported as `lookahead_ns`), and a
    /// lower bound on every window the matrix will ever grant. `None`
    /// when the plan cuts no edge (shards are fully independent).
    pub fn min_finite(&self) -> Option<u64> {
        self.min_finite
    }

    /// Shard `me`'s safe execution bound for one round, given every
    /// shard's earliest pending instant (`u64::MAX` = idle; in the
    /// threaded driver these are *effective* nexts, folding in-flight
    /// mailbox minima into the published queue minima).
    ///
    /// Any event that could still appear in `me` descends from some shard
    /// `q`'s currently earliest event and must traverse at least
    /// `dist(q, me)` of virtual time to get here; a chain seeded by `me`'s
    /// *own* events must leave and come back, which costs at least the
    /// round trip. Events strictly before the returned bound are
    /// therefore complete and safe to execute.
    pub fn window_end(&self, nexts: &[u64], me: usize) -> u64 {
        debug_assert_eq!(nexts.len(), self.workers);
        let mut end = sat(nexts[me], self.round_trip[me]);
        for (q, &n) in nexts.iter().enumerate() {
            if q == me {
                continue;
            }
            let via = sat(n, self.dist[q * self.workers + me]);
            if via < end {
                end = via;
            }
        }
        end
    }
}

/// How much a rendezvous round costs the host, expressed in simulator
/// events: driving one round (window math, a barrier or mailbox sweep,
/// republished instants) costs roughly as much wall time as dispatching
/// this many calendar events, charged once per shard. Calibrated against
/// the committed `BENCH_parallel.json` baselines: the 8- and 32-client
/// stars (≤ ~180 estimated events/round) were slowdowns at every worker
/// count, the 128-client star (~700) was a win.
pub const ROUND_COST_EVENTS: u64 = 128;

/// The adaptive worker-selection verdict for one shard plan: sharding is
/// only worth its per-round overhead when each round amortizes enough
/// events. Pure integer math — byte-identical results are unaffected
/// either way; this only decides which identical-result path runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profitability {
    /// Estimated events dispatched per round across all shards:
    /// topology weight (≈ events per idle period) × window width, over
    /// the idle period.
    pub est_events_per_round: u64,
    /// Estimated host cost of one round, in event-equivalents
    /// ([`ROUND_COST_EVENTS`] per shard).
    pub round_cost_events: u64,
    /// `est_events_per_round >= round_cost_events`: run sharded.
    pub profitable: bool,
}

impl Profitability {
    /// Assesses a plan: `total_weight` is the sum of node weights (1 per
    /// node plus 1 per installed app — each weight unit produces roughly
    /// one event per `idle_period_ns`), `lookahead_ns` the tightest
    /// window the plan will run under ([`LookaheadMatrix::min_finite`];
    /// `None` = uncut plan, where one "round" covers the whole horizon
    /// and sharding is always profitable), `workers` the planned shard
    /// count.
    pub fn assess(
        total_weight: u64,
        lookahead_ns: Option<u64>,
        idle_period_ns: u64,
        workers: usize,
    ) -> Profitability {
        let round_cost_events = ROUND_COST_EVENTS.saturating_mul(workers as u64);
        let est_events_per_round = match lookahead_ns {
            None => u64::MAX,
            Some(l) => total_weight.saturating_mul(l) / idle_period_ns.max(1),
        };
        Profitability {
            est_events_per_round,
            round_cost_events,
            profitable: est_events_per_round >= round_cost_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-shard line `0 ↔ 1 ↔ 2` with asymmetric floors (NIC egress one
    /// way, switch egress the other), as a star partition produces.
    fn line3() -> LookaheadMatrix {
        let mut m = LookaheadMatrix::new(3);
        m.note_edge(0, 1, 1672);
        m.note_edge(1, 0, 3672);
        m.note_edge(1, 2, 3672);
        m.note_edge(2, 1, 1672);
        m.close();
        m
    }

    #[test]
    fn closure_composes_relay_paths() {
        let m = line3();
        assert_eq!(m.dist(0, 1), 1672);
        assert_eq!(m.dist(1, 0), 3672);
        // 0 reaches 2 only through 1.
        assert_eq!(m.dist(0, 2), 1672 + 3672);
        assert_eq!(m.dist(2, 0), 1672 + 3672);
        assert_eq!(m.dist(0, 0), 0);
        assert_eq!(m.min_finite(), Some(1672));
    }

    #[test]
    fn windows_grow_beyond_the_global_min() {
        let m = line3();
        // All shards pending at t=0: the old global-min driver granted
        // every shard exactly min_finite; the matrix grants each shard
        // the tightest *incoming* path instead.
        let nexts = [0, 0, 0];
        assert_eq!(m.window_end(&nexts, 0), 3672); // in via 1→0 only
        assert_eq!(m.window_end(&nexts, 1), 1672); // leaves feed the hub
        assert_eq!(m.window_end(&nexts, 2), 3672);
        for me in 0..3 {
            assert!(m.window_end(&nexts, me) >= m.min_finite().unwrap());
        }
    }

    #[test]
    fn idle_peers_grant_the_round_trip() {
        let m = line3();
        // Only shard 0 has work: its bound is its own echo path
        // (0→1→0 = 1672 + 3672), not 2 × global-min.
        let nexts = [100, u64::MAX, u64::MAX];
        assert_eq!(m.window_end(&nexts, 0), 100 + 1672 + 3672);
        // And everyone else is bounded by shard 0's outreach.
        assert_eq!(m.window_end(&nexts, 1), 100 + 1672);
        assert_eq!(m.window_end(&nexts, 2), 100 + 1672 + 3672);
    }

    #[test]
    fn uncut_matrix_grants_unbounded_windows() {
        let mut m = LookaheadMatrix::new(2);
        m.close();
        assert_eq!(m.min_finite(), None);
        assert_eq!(m.window_end(&[5, 7], 0), u64::MAX);
        assert_eq!(m.window_end(&[5, 7], 1), u64::MAX);
    }

    #[test]
    fn profitability_scales_with_weight_and_window() {
        // The committed bench shapes under the Morello model (idle period
        // 900 ns, tightest cut 1672 ns): 8- and 32-client stars collapse,
        // the 128-client star stays sharded.
        let star8 = Profitability::assess(25, Some(1672), 900, 4);
        assert!(!star8.profitable, "{star8:?}");
        let star32 = Profitability::assess(97, Some(1672), 900, 2);
        assert!(!star32.profitable, "{star32:?}");
        let star128 = Profitability::assess(385, Some(1672), 900, 4);
        assert!(star128.profitable, "{star128:?}");
        // Uncut plans (independent shards) are always profitable.
        assert!(Profitability::assess(1, None, 900, 8).profitable);
        // A zero-weight plan never is.
        assert!(!Profitability::assess(0, Some(1672), 900, 2).profitable);
    }
}
