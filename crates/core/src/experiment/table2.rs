//! Table II — TCP bandwidth in the three scenarios, server and client.
//!
//! Paper values (Mbit/s, efficiency = bandwidth / 1 Gbit/s per port):
//!
//! | Configuration | Server | Client |
//! |---|---|---|
//! | Baseline 2-proc, each port | 658 (65.8 %) | 757 (75.7 %) |
//! | Scenario 1, each cVM | 658 (65.8 %) | 757 (75.7 %) |
//! | Baseline 1-proc | 941 (94.1 %) | 941 (94.1 %) |
//! | Scenario 2 uncontended | 941 (94.1 %) | 941 (94.1 %) |
//! | Scenario 2 contended, per app | 470 / 470 | 531 / 410 |
//!
//! The dual-port rows are PCI-bus-limited; the single-port rows hit the
//! Ethernet TCP-goodput ceiling; the contended row shares one port between
//! two app cVMs (the paper notes the unbalance and attributes it to the
//! lack of fairness control).

use crate::netsim::AppSched;
use crate::scenario::{ScenarioKind, ScenarioSpec, TrafficMode};
use crate::CapnetError;
use serde::Serialize;
use simkern::cost::CostModel;
use simkern::time::SimDuration;
use std::fmt;

/// One measured cell of the table.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Row label (cVM1, cVM2, Baseline…).
    pub label: String,
    /// Measured bandwidth, Mbit/s.
    pub mbit: f64,
    /// Efficiency vs the 1 Gbit/s port.
    pub efficiency: f64,
}

/// One scenario block: server cells and client cells.
#[derive(Debug, Clone, Serialize)]
pub struct Block {
    /// Which scenario.
    pub scenario: String,
    /// DUT-side receiver measurements.
    pub server: Vec<Cell>,
    /// DUT-side sender measurements.
    pub client: Vec<Cell>,
}

/// The assembled table.
#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    /// One block per configuration, in paper order.
    pub blocks: Vec<Block>,
    /// Virtual seconds measured per cell.
    pub duration_s: f64,
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TABLE II: RESULTS OF TCP BENCHMARKS (Mbit/s; efficiency vs 1 Gbit/s/port)"
        )?;
        writeln!(
            f,
            "{:<28} {:>9} {:>11} {:>9} {:>11}",
            "Modes", "Server", "Efficiency", "Client", "Efficiency"
        )?;
        for b in &self.blocks {
            writeln!(f, "--- {} ---", b.scenario)?;
            let rows = b.server.len().max(b.client.len());
            for i in 0..rows {
                let (sl, sm, se) = b
                    .server
                    .get(i)
                    .map(|c| {
                        (
                            c.label.clone(),
                            format!("{:.0}", c.mbit),
                            format!("{:.1}%", c.efficiency * 100.0),
                        )
                    })
                    .unwrap_or_default();
                let (cl, cm, ce) = b
                    .client
                    .get(i)
                    .map(|c| {
                        (
                            c.label.clone(),
                            format!("{:.0}", c.mbit),
                            format!("{:.1}%", c.efficiency * 100.0),
                        )
                    })
                    .unwrap_or_default();
                let label = if sl.is_empty() { cl } else { sl };
                writeln!(f, "{label:<28} {sm:>9} {se:>11} {cm:>9} {ce:>11}")?;
            }
        }
        Ok(())
    }
}

/// Runs the full table (all scenarios, both traffic modes).
///
/// `duration` is the virtual measurement window per cell; the paper runs
/// seconds of iperf — 150–300 ms of virtual time is past TCP convergence
/// and keeps the harness quick.
///
/// # Errors
///
/// Propagates the first failing configuration.
pub fn run(duration: SimDuration, costs: CostModel) -> Result<Table2, CapnetError> {
    run_scenarios(&ScenarioKind::all(), duration, costs)
}

/// Runs a chosen subset of scenarios.
///
/// # Errors
///
/// Propagates the first failing configuration.
pub fn run_scenarios(
    kinds: &[ScenarioKind],
    duration: SimDuration,
    costs: CostModel,
) -> Result<Table2, CapnetError> {
    let mut blocks = Vec::new();
    for &kind in kinds {
        let mut block = Block {
            scenario: kind.label().to_string(),
            server: Vec::new(),
            client: Vec::new(),
        };
        for mode in [TrafficMode::Server, TrafficMode::Client] {
            // The contended row is measured under the paper-calibrated
            // barging scheduler, which is what makes the regenerated client
            // split come out 531/410 like the paper's testbed (the fair
            // round-robin alternative is the `fairness` example/bench).
            let sched = if kind == ScenarioKind::Scenario2Contended {
                AppSched::paper_barging()
            } else {
                AppSched::RoundRobin
            };
            let out = ScenarioSpec::paper(kind, mode)
                .duration(duration)
                .costs(costs.clone())
                .app_sched(sched)
                .run()?;
            // DUT-side apps are the reports whose labels start with "cVM"
            // or "Baseline" (peer hosts are labeled host*).
            let dut_reports = match mode {
                TrafficMode::Server => &out.servers,
                TrafficMode::Client => &out.clients,
            };
            for r in dut_reports {
                if !r.label.starts_with("host") {
                    let cell = Cell {
                        label: r.label.clone(),
                        mbit: r.mbit_per_sec(),
                        efficiency: r.efficiency(costs.link_bps),
                    };
                    match mode {
                        TrafficMode::Server => block.server.push(cell),
                        TrafficMode::Client => block.client.push(cell),
                    }
                }
            }
        }
        blocks.push(block);
    }
    Ok(Table2 {
        blocks,
        duration_s: duration.as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick-shape check: single-port rows ≈941, dual-port rows are
    /// PCI-limited below line rate, contended flows share one port.
    /// (Exact-value checks per scenario live in the integration tests.)
    #[test]
    fn table_has_paper_shape() {
        let t = run_scenarios(
            &[
                ScenarioKind::Scenario1,
                ScenarioKind::Scenario2Uncontended,
                ScenarioKind::Scenario2Contended,
            ],
            SimDuration::from_millis(120),
            CostModel::morello(),
        )
        .unwrap();
        assert_eq!(t.blocks.len(), 3);

        let s1 = &t.blocks[0];
        assert_eq!(s1.server.len(), 2);
        for c in &s1.server {
            assert!((c.mbit - 658.0).abs() < 40.0, "{}: {:.0}", c.label, c.mbit);
        }
        for c in &s1.client {
            assert!((c.mbit - 757.0).abs() < 40.0, "{}: {:.0}", c.label, c.mbit);
        }

        let s2u = &t.blocks[1];
        assert!(
            (s2u.server[0].mbit - 941.0).abs() < 25.0,
            "{:.0}",
            s2u.server[0].mbit
        );

        let s2c = &t.blocks[2];
        assert_eq!(s2c.server.len(), 2);
        let total: f64 = s2c.server.iter().map(|c| c.mbit).sum();
        assert!(
            (total - 941.0).abs() < 50.0,
            "contended flows share the port ceiling, sum {total:.0}"
        );
        let text = t.to_string();
        assert!(text.contains("TABLE II"), "{text}");
    }
}
