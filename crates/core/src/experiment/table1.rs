//! Table I — lines of code added/modified for the capability port.
//!
//! The paper reports that porting F-Stack to CheriBSD + capabilities took
//! **152 LoC, 0.99 %** of the library. Our F-Stack is written
//! capability-native, so the direct "diff against upstream" does not exist;
//! the faithful analog is to *measure how much of the library is
//! capability-specific*: the lines that mention capability types, checked
//! memory, or capability-fault errnos — exactly the lines a hybrid-mode
//! port would have had to add or touch. The analyzer walks the `fstack`
//! (and optionally `updk`) sources at run time and reports the same
//! `LoC / total / percent` row as the paper.

use serde::Serialize;
use std::fmt;
use std::path::{Path, PathBuf};

/// Markers identifying a capability-specific line.
const MARKERS: [&str; 7] = [
    "Capability",
    "CapFault",
    "TaggedMemory",
    "EFAULT",
    "data_cap",
    "buf_cap",
    "cheri::",
];

/// One library row of the table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LocRow {
    /// Library name.
    pub library: String,
    /// Capability-specific lines.
    pub cap_loc: usize,
    /// Total non-blank, non-comment-only lines.
    pub total_loc: usize,
}

impl LocRow {
    /// The percentage column.
    pub fn percent(&self) -> f64 {
        if self.total_loc == 0 {
            0.0
        } else {
            self.cap_loc as f64 * 100.0 / self.total_loc as f64
        }
    }
}

/// The assembled table.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// Rows, one per analyzed library.
    pub rows: Vec<LocRow>,
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE I: NUMBER OF LINES OF CODE ADDED/MODIFIED")?;
        writeln!(f, "{:<12} {:>8} {:>22}", "Library", "LoC", "in percentage")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>8} {:>21.2}%",
                r.library,
                r.cap_loc,
                r.percent()
            )?;
        }
        Ok(())
    }
}

/// Counts `(capability_lines, total_lines)` in one Rust source string.
pub fn count_source(src: &str) -> (usize, usize) {
    let mut cap = 0;
    let mut total = 0;
    for line in src.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        total += 1;
        if MARKERS.iter().any(|m| t.contains(m)) {
            cap += 1;
        }
    }
    (cap, total)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Analyzes a crate source directory into one row.
pub fn analyze_dir(library: &str, dir: &Path) -> LocRow {
    let mut files = Vec::new();
    walk_rs(dir, &mut files);
    files.sort();
    let (mut cap, mut total) = (0, 0);
    for f in files {
        if let Ok(src) = std::fs::read_to_string(&f) {
            let (c, t) = count_source(&src);
            cap += c;
            total += t;
        }
    }
    LocRow {
        library: library.to_string(),
        cap_loc: cap,
        total_loc: total,
    }
}

/// Builds the table by analyzing the in-repo `fstack` and `updk` sources.
///
/// Returns rows with zero totals when the sources are not on disk (e.g. an
/// installed binary run outside the repository).
pub fn run() -> Table1 {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let fstack = here.join("../fstack/src");
    let updk = here.join("../updk/src");
    Table1 {
        rows: vec![analyze_dir("F-Stack", &fstack), analyze_dir("DPDK", &updk)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_ignores_blanks_and_comments() {
        let src = "\n// comment\nlet x = Capability::root(0, 1, p);\nlet y = 2;\n";
        let (cap, total) = count_source(src);
        assert_eq!((cap, total), (1, 2));
    }

    #[test]
    fn in_repo_analysis_finds_the_port_surface() {
        let t = run();
        assert_eq!(t.rows.len(), 2);
        let fstack = &t.rows[0];
        assert!(fstack.total_loc > 1_000, "fstack is a real library");
        assert!(fstack.cap_loc > 10, "capability surface exists");
        // The paper's point: the port touches a small fraction.
        assert!(
            fstack.percent() < 15.0,
            "capability-specific share {:.1}% should be small",
            fstack.percent()
        );
    }

    #[test]
    fn display_matches_the_paper_format() {
        let t = Table1 {
            rows: vec![LocRow {
                library: "F-Stack".into(),
                cap_loc: 152,
                total_loc: 15_353,
            }],
        };
        let s = t.to_string();
        assert!(s.contains("TABLE I"), "{s}");
        assert!(s.contains("0.99%"), "{s}");
        assert!(s.contains("152"), "{s}");
    }

    #[test]
    fn empty_dir_yields_zero_row() {
        let r = analyze_dir("nothing", Path::new("/definitely/not/here"));
        assert_eq!(r.cap_loc, 0);
        assert_eq!(r.total_loc, 0);
        assert_eq!(r.percent(), 0.0);
    }
}
