//! Fig. 3 — applications accessing memory outside their boundaries cause
//! exceptions under CHERI.
//!
//! The paper verifies compartmentalization by modifying applications "to
//! access memory ranges outside their valid boundaries"; CHERI answers with
//! a CAP-out-of-bounds exception. This experiment stages exactly that: two
//! cVMs under one Intravisor, the victim holding a secret, the attacker
//! dereferencing the victim's address — plus a matrix of related violations
//! (permission stripping, sealed-capability misuse, tag forgery) for the
//! §IV "verified the effectiveness" claim.

use crate::CapnetError;
use cheri::{CapFault, FaultKind, Perms};
use intravisor::{CvmConfig, Intravisor};
use simkern::cost::CostModel;
use std::fmt;

/// The staged violation and its architectural verdict.
#[derive(Debug)]
pub struct Fig3Outcome {
    /// The out-of-bounds fault raised by the cross-compartment load.
    pub fault: CapFault,
    /// The secret the attacker failed to read (proof it was reachable by
    /// the victim itself).
    pub victim_could_read_own: bool,
    /// Verdicts of the companion violation matrix (fault kinds observed).
    pub matrix: Vec<(String, FaultKind)>,
    /// Total faults the Intravisor logged.
    pub faults_logged: usize,
}

impl fmt::Display for Fig3Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "$ ./attacker-cvm --probe-victim")?;
        writeln!(
            f,
            "In-address-space attack: pid 1234 (iperf3), jumping out of the DDC"
        )?;
        writeln!(f, "SIGPROT: {}", self.fault)?;
        writeln!(f, "child process exited with signal 34 (core dumped)")?;
        writeln!(f)?;
        writeln!(f, "violation matrix:")?;
        for (probe, verdict) in &self.matrix {
            writeln!(f, "  {probe:<42} -> {verdict}")?;
        }
        Ok(())
    }
}

/// Runs the Fig. 3 experiment.
///
/// # Errors
///
/// Configuration failures; the *intended* faults are part of the outcome,
/// not errors.
pub fn run() -> Result<Fig3Outcome, CapnetError> {
    let mut iv = Intravisor::new(1 << 20, CostModel::morello());
    let victim = iv.create_cvm(CvmConfig::new("victim-fstack").mem_size(128 * 1024))?;
    let attacker = iv.create_cvm(CvmConfig::new("attacker-iperf").mem_size(128 * 1024))?;

    // The victim stores a secret in its own region (allowed).
    let secret_buf = iv.cvm_alloc(victim, 64, 16)?;
    let secret_addr = secret_buf.base();
    iv.memory_mut().write(
        &secret_buf,
        secret_addr,
        b"drone telemetry encryption key!!",
    )?;
    let victim_could_read_own = iv.cvm_load(victim, secret_addr, 32).is_ok();

    // Fig. 3 proper: the attacker dereferences the victim's address.
    let fault = iv
        .cvm_load(attacker, secret_addr, 32)
        .expect_err("cross-compartment load must fault");

    // Companion matrix: every way a compartment might try to escape.
    let mut matrix = Vec::new();

    // (a) Store outside the DDC (into the Intravisor's reserved region).
    let e = iv
        .cvm_store(attacker, 0x100, &[0xEE; 16])
        .expect_err("store outside DDC");
    matrix.push(("store outside DDC (Intravisor region)".into(), e.kind()));

    // (b) Permission stripping is one-way: a read-only derivation cannot
    // be re-amplified to read/write.
    let own = iv.cvm_alloc(attacker, 64, 16)?;
    let ro = own.try_restrict_perms(Perms::read_only())?;
    let e = ro
        .try_restrict_perms(Perms::LOAD | Perms::STORE)
        .expect_err("amplification");
    matrix.push(("re-amplify read-only capability".into(), e.kind()));

    // (c) Writing through the stripped capability faults.
    let e = iv
        .memory_mut()
        .write(&ro, ro.base(), &[1])
        .expect_err("write via read-only cap");
    matrix.push(("store via read-only capability".into(), e.kind()));

    // (d) Forged capability: clearing the tag (as any byte-level forgery
    // would) makes it useless.
    let forged = own.without_tag();
    let e = iv
        .memory_mut()
        .read_vec(&forged, forged.base(), 8)
        .expect_err("untagged load");
    matrix.push(("load via forged (untagged) capability".into(), e.kind()));

    // (e) A sealed entry cannot be used as data.
    let sealed = *iv.cvm(victim).entry();
    let e = iv
        .memory_mut()
        .read_vec(&sealed, sealed.base(), 8)
        .expect_err("sealed deref");
    matrix.push(("dereference sealed entry capability".into(), e.kind()));

    // (f) Growing bounds back after restriction.
    let narrow = own.try_restrict(own.base(), 8)?;
    let e = narrow
        .try_restrict(own.base(), 64)
        .expect_err("bounds growth");
    matrix.push(("widen bounds of derived capability".into(), e.kind()));

    let faults_logged = iv.fault_log().len();
    Ok(Fig3Outcome {
        fault,
        victim_could_read_own,
        matrix,
        faults_logged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_the_exception() {
        let out = run().unwrap();
        assert!(out.fault.is_out_of_bounds());
        assert!(out.victim_could_read_own);
        assert!(out.faults_logged >= 2);
    }

    #[test]
    fn the_matrix_covers_distinct_fault_kinds() {
        let out = run().unwrap();
        assert_eq!(out.matrix.len(), 6);
        let kinds: std::collections::HashSet<_> = out.matrix.iter().map(|(_, k)| *k).collect();
        assert!(kinds.contains(&FaultKind::Bounds));
        assert!(kinds.contains(&FaultKind::Monotonicity));
        assert!(kinds.contains(&FaultKind::Tag));
        assert!(kinds.contains(&FaultKind::Seal));
        assert!(kinds.contains(&FaultKind::PermitStore));
    }

    #[test]
    fn display_reads_like_the_figure() {
        let out = run().unwrap();
        let text = out.to_string();
        assert!(text.contains("SIGPROT"), "{text}");
        assert!(text.contains("Out-of-Bounds"), "{text}");
    }
}
