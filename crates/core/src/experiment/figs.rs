//! Figs. 4–6 — `ff_write()` execution time across isolation designs.
//!
//! The paper's protocol (§IV): wrap each `ff_write` in
//! `clock_gettime(CLOCK_MONOTONIC_RAW)` reads, run 1 M iterations on a live
//! connection, remove IQR outliers (≈ 10 %), present box plots. Crucially,
//! "in cVMs we can't directly access the timers of the system, the
//! execution time always includes a cross-compartment jump to the
//! Intravisor, the execution of the syscall in CheriBSD, and the return" —
//! the clock path differs per scenario, and that is where Fig. 4's ≈ 125 ns
//! comes from.
//!
//! This harness runs a *real* connection between two [`fstack::FStack`]
//! instances (segments built, checksummed, delivered; the receiver drains),
//! while the *timing* of each call is composed on the virtual clock from
//! the calibrated cost model: trampolined or native `clock_gettime`,
//! `ff_write` work (fixed + per-byte copy + heavy-tail jitter), and for
//! Scenario 2 the sealed-pair cross-call plus the service mutex with its
//! background contenders (the F-Stack main loop, and in the contended
//! variant a second application cVM).

use crate::stats::{iqr_filter, Summary};
use crate::CapnetError;
use cheri::{Capability, Perms, TaggedMemory};
use chos::clock::ClockId;
use chos::syscall::{Kernel, Syscall};
use fstack::loop_::ServiceMutex;
use fstack::socket::SockType;
use fstack::{FStack, StackConfig};
use intravisor::{CvmConfig, CvmId, Intravisor, ServiceId};
use simkern::cost::CostModel;
use simkern::rng::SimRng;
use simkern::time::{SimDuration, SimTime};
use std::fmt;
use std::net::Ipv4Addr;
use updk::nic::MacAddr;

/// The isolation design under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyScenario {
    /// No CHERI, single process: native syscalls, intra-process `ff_write`.
    Baseline,
    /// Scenario 1: the stack lives with the app in one cVM — `ff_write` is
    /// a local call, but the measurement clock crosses the trampoline.
    Scenario1,
    /// Scenario 2 with one app cVM; inter-write gap enlarged per the paper.
    Scenario2Uncontended,
    /// Scenario 2 with the F-Stack loop busy and a second app contending.
    Scenario2Contended,
    /// Extension (paper future work (i)): DPDK split from F-Stack — one
    /// more sealed crossing on the write path (the packet hand-off rides a
    /// lock-free SPSC ring, so no second mutex).
    Scenario3,
    /// Extension (paper future work (ii)): the entire stack separated —
    /// app / F-Stack / DPDK / NIC-register proxy, three crossings total.
    Scenario4,
}

impl LatencyScenario {
    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            LatencyScenario::Baseline => "Baseline",
            LatencyScenario::Scenario1 => "Scenario 1",
            LatencyScenario::Scenario2Uncontended => "Scenario 2 (uncontended)",
            LatencyScenario::Scenario2Contended => "Scenario 2 (contended)",
            LatencyScenario::Scenario3 => "Scenario 3 (ext: DPDK split)",
            LatencyScenario::Scenario4 => "Scenario 4 (ext: full split)",
        }
    }

    /// Sealed cross-compartment hand-offs *inside* the service chain, past
    /// the app→service entry crossing (0 for the paper's scenarios).
    fn inner_crossings(&self) -> u64 {
        match self {
            LatencyScenario::Baseline
            | LatencyScenario::Scenario1
            | LatencyScenario::Scenario2Uncontended
            | LatencyScenario::Scenario2Contended => 0,
            LatencyScenario::Scenario3 => 1,
            LatencyScenario::Scenario4 => 2,
        }
    }
}

impl fmt::Display for LatencyScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The measured distribution for one scenario.
#[derive(Debug, Clone)]
pub struct FfWriteRun {
    /// Which design was measured.
    pub scenario: LatencyScenario,
    /// Iterations executed.
    pub iterations: usize,
    /// Box-plot summary after IQR outlier removal.
    pub summary: Summary,
    /// Fraction the IQR filter removed (paper: ≈ 10 %).
    pub removed_fraction: f64,
}

impl fmt::Display for FfWriteRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.summary;
        write!(
            f,
            "{:<26} mean={:>8.1}ns std={:>7.1}ns q1={:>7} med={:>7} q3={:>7} (n={}, {:.1}% outliers removed)",
            self.scenario.label(),
            s.mean,
            s.std,
            s.q1,
            s.median,
            s.q3,
            s.n,
            self.removed_fraction * 100.0
        )
    }
}

/// Payload per `ff_write` — one MSS, as the bulk path uses.
const WRITE_BYTES: u64 = 1448;

/// Background mutex contenders for the Scenario 2 variants.
struct Background {
    next_loop: SimTime,
    loop_hold_ns: u64,
    loop_gap_ns: u64,
    next_app: Option<SimTime>,
    app_hold_ns: u64,
    app_gap_ns: u64,
    rng: SimRng,
}

impl Background {
    /// Replays every background acquisition requested before `until`.
    /// Gaps and holds are jittered (real loop iterations vary with the
    /// frames they process), which is what gives Fig. 6's contended box
    /// its visible spread.
    fn replay(&mut self, mutex: &mut ServiceMutex, until: SimTime) {
        loop {
            let app_t = self.next_app.unwrap_or(SimTime::MAX);
            let (t, is_loop) = if self.next_loop <= app_t {
                (self.next_loop, true)
            } else {
                (app_t, false)
            };
            if t >= until {
                break;
            }
            let jitter = |rng: &mut SimRng, base: u64| -> u64 {
                if base == 0 {
                    0
                } else {
                    rng.range_inclusive(base / 2, base + base / 2)
                }
            };
            let hold = if is_loop {
                jitter(&mut self.rng, self.loop_hold_ns)
            } else {
                jitter(&mut self.rng, self.app_hold_ns)
            };
            let g = mutex.acquire(t, SimDuration::from_nanos(hold));
            if is_loop {
                let gap = jitter(&mut self.rng, self.loop_gap_ns);
                self.next_loop = g.released_at + SimDuration::from_nanos(gap);
            } else {
                let gap = jitter(&mut self.rng, self.app_gap_ns);
                self.next_app = Some(g.released_at + SimDuration::from_nanos(gap));
            }
        }
    }
}

/// Everything the measurement loop needs, per scenario.
struct Rig {
    mem: TaggedMemory,
    /// Present in the CHERI scenarios; carries kernel + cVMs.
    iv: Option<Intravisor>,
    /// Present in the Baseline; the direct kernel.
    kernel: Option<Kernel>,
    app_cvm: Option<CvmId>,
    service: Option<ServiceId>,
    sender: FStack,
    receiver: FStack,
    send_fd: chos::fdtable::Fd,
    recv_fd: chos::fdtable::Fd,
    payload: Capability,
    recv_buf: Capability,
    mutex: Option<ServiceMutex>,
    background: Option<Background>,
    costs: CostModel,
    rng: SimRng,
    /// Inter-iteration gap (enlarged for the uncontended S2 run).
    gap: SimDuration,
}

impl Rig {
    fn build(scenario: LatencyScenario, costs: CostModel, seed: u64) -> Result<Rig, CapnetError> {
        let cheri_mode = scenario != LatencyScenario::Baseline;
        let (mut mem, iv, kernel, app_cvm) = if cheri_mode {
            let mut iv = Intravisor::new(1 << 21, costs.clone());
            let app = iv.create_cvm(CvmConfig::new("iperf-app").mem_size(64 * 1024))?;
            (TaggedMemory::new(1 << 21), Some(iv), None, Some(app))
        } else {
            (
                TaggedMemory::new(1 << 21),
                None,
                Some(Kernel::new(costs.clone())),
                None,
            )
        };
        // NOTE: the stacks live in `mem` (the network data plane); the
        // Intravisor's own memory holds the cVM control plane. On the real
        // system both are one address space; splitting them here only
        // affects which arena the capability checks index.
        let mut iv = iv;
        let (payload, recv_buf) = if let (Some(iv), Some(app)) = (iv.as_mut(), app_cvm) {
            // App-owned buffers: capabilities bounded to the app cVM region.
            let p = iv.cvm_alloc(app, WRITE_BYTES, 16)?;
            let r = iv.cvm_alloc(app, WRITE_BYTES, 16)?;
            // The data plane copies happen in `mem`; mirror the buffers
            // there at the same addresses so the capability bounds apply.
            (
                mem.root_cap()
                    .try_restrict(p.base(), p.len())?
                    .try_restrict_perms(Perms::data())?,
                mem.root_cap()
                    .try_restrict(r.base(), r.len())?
                    .try_restrict_perms(Perms::data())?,
            )
        } else {
            let p = mem
                .root_cap()
                .try_restrict(0x1000, WRITE_BYTES)?
                .try_restrict_perms(Perms::data())?;
            let r = mem
                .root_cap()
                .try_restrict(0x2000, WRITE_BYTES)?
                .try_restrict_perms(Perms::data())?;
            (p, r)
        };
        mem.fill(&payload, payload.base(), WRITE_BYTES, 0x5A)?;

        // Two stacks, statically ARP'd, connected through direct frame
        // exchange (the NIC path is exercised by the Table II experiments;
        // here the network must simply be live and draining).
        let a_mac = MacAddr::local(21);
        let b_mac = MacAddr::local(22);
        let a_ip = Ipv4Addr::new(10, 9, 0, 1);
        let b_ip = Ipv4Addr::new(10, 9, 0, 2);
        let mut sender = FStack::new(StackConfig::new("app", a_mac, a_ip));
        let mut receiver = FStack::new(StackConfig::new("peer", b_mac, b_ip));
        sender.arp_cache_mut().insert_static(b_ip, b_mac);
        receiver.arp_cache_mut().insert_static(a_ip, a_mac);

        let lfd = receiver.ff_socket(SockType::Stream)?;
        receiver.ff_bind(lfd, 5201)?;
        receiver.ff_listen(lfd, 4)?;
        let send_fd = sender.ff_socket(SockType::Stream)?;
        sender.ff_connect(send_fd, (b_ip, 5201), SimTime::ZERO)?;
        // Pump the handshake.
        let mut now = SimTime::from_micros(1);
        for _ in 0..16 {
            for f in sender.poll_tx(now) {
                receiver.input_buf(now, &f);
            }
            for f in receiver.poll_tx(now) {
                sender.input_buf(now, &f);
            }
            now += SimDuration::from_micros(20);
        }
        let recv_fd = receiver.ff_accept(lfd)?;

        // Scenario 2 machinery.
        let (service, mutex, background, gap) = match scenario {
            LatencyScenario::Baseline | LatencyScenario::Scenario1 => {
                (None, None, None, SimDuration::from_micros(2))
            }
            LatencyScenario::Scenario2Uncontended
            | LatencyScenario::Scenario3
            | LatencyScenario::Scenario4 => {
                let iv_ref = iv.as_mut().expect("cheri mode");
                let svc_cvm =
                    iv_ref.create_cvm(CvmConfig::new("fstack-svc").mem_size(128 * 1024))?;
                // The deeper splits get their own service compartments; the
                // write path crosses into them via SPSC rings (costed as
                // inner crossings in the measurement loop).
                if scenario.inner_crossings() >= 1 {
                    let _updk =
                        iv_ref.create_cvm(CvmConfig::new("updk-svc").mem_size(128 * 1024))?;
                }
                if scenario.inner_crossings() >= 2 {
                    let _nic =
                        iv_ref.create_cvm(CvmConfig::new("nic-proxy").mem_size(64 * 1024))?;
                }
                let svc = iv_ref.register_service(svc_cvm, "ff-api")?;
                // The service loop is nearly idle: brief lock holds, long
                // period — and the measured app enlarges its inter-write
                // gap, per the paper's protocol.
                let bg = Background {
                    next_loop: SimTime::ZERO,
                    loop_hold_ns: 150,
                    loop_gap_ns: 20_000,
                    next_app: None,
                    app_hold_ns: 0,
                    app_gap_ns: 0,
                    rng: SimRng::seed_from_u64(seed ^ 0xB6),
                };
                (
                    Some(svc),
                    Some(ServiceMutex::new(&costs)),
                    Some(bg),
                    SimDuration::from_micros(30),
                )
            }
            LatencyScenario::Scenario2Contended => {
                let iv_ref = iv.as_mut().expect("cheri mode");
                let svc_cvm =
                    iv_ref.create_cvm(CvmConfig::new("fstack-svc").mem_size(128 * 1024))?;
                let _third =
                    iv_ref.create_cvm(CvmConfig::new("iperf-app-2").mem_size(64 * 1024))?;
                let svc = iv_ref.register_service(svc_cvm, "ff-api")?;
                // The loop is saturated serving two flows and the second
                // app writes back-to-back: long holds, short gaps.
                let bg = Background {
                    next_loop: SimTime::ZERO,
                    loop_hold_ns: costs.s2_loop_hold_ns,
                    loop_gap_ns: 900,
                    next_app: Some(SimTime::from_nanos(300)),
                    app_hold_ns: costs.ff_write_fixed_ns + costs.copy_cost(WRITE_BYTES).as_nanos(),
                    app_gap_ns: 2_600,
                    rng: SimRng::seed_from_u64(seed ^ 0xB7),
                };
                (
                    Some(svc),
                    Some(ServiceMutex::new(&costs)),
                    Some(bg),
                    SimDuration::from_micros(2),
                )
            }
        };

        Ok(Rig {
            mem,
            iv,
            kernel,
            app_cvm,
            service,
            sender,
            receiver,
            send_fd,
            recv_fd,
            payload,
            recv_buf,
            mutex,
            background,
            costs,
            rng: SimRng::seed_from_u64(seed),
            gap,
        })
    }

    /// One `clock_gettime` through the scenario's path:
    /// returns `(reading, completion_instant)`.
    fn clock(&mut self, now: SimTime) -> (SimTime, SimTime) {
        if let (Some(iv), Some(app)) = (self.iv.as_mut(), self.app_cvm) {
            iv.cvm_clock_gettime(app, now)
        } else {
            let k = self.kernel.as_mut().expect("baseline kernel");
            let out = k.syscall(now, Syscall::ClockGettime(ClockId::MonotonicRaw));
            (
                SimTime::from_nanos(out.result.expect("clock_gettime succeeds")),
                out.completed_at,
            )
        }
    }

    /// The CPU work of `ff_write` itself (fixed + copy + occasional jitter).
    fn ff_work(&mut self) -> SimDuration {
        let mut ns = self.costs.ff_write_fixed_ns + self.costs.copy_cost(WRITE_BYTES).as_nanos();
        if self.rng.chance_per_mille(self.costs.jitter_per_mille) {
            ns += self.rng.heavy_tail_ns(self.costs.jitter_ns);
        }
        SimDuration::from_nanos(ns)
    }

    /// Drains the connection so the send buffer never fills (the receiver
    /// runs on another core / cVM; its time is not part of the sample).
    fn drain(&mut self, now: SimTime) {
        for _ in 0..4 {
            let mut moved = false;
            for f in self.sender.poll_tx(now) {
                moved = true;
                self.receiver.input_buf(now, &f);
            }
            loop {
                match self.receiver.ff_read(
                    &mut self.mem,
                    self.recv_fd,
                    &self.recv_buf,
                    WRITE_BYTES,
                ) {
                    Ok(n) if n > 0 => moved = true,
                    _ => break,
                }
            }
            for f in self.receiver.poll_tx(now) {
                moved = true;
                self.sender.input_buf(now, &f);
            }
            if !moved {
                break;
            }
        }
    }
}

/// Measures the `ff_write` distribution for `scenario`.
///
/// # Errors
///
/// Propagates configuration failures; measurement itself is infallible.
pub fn measure(
    scenario: LatencyScenario,
    iterations: usize,
    costs: CostModel,
    seed: u64,
) -> Result<FfWriteRun, CapnetError> {
    let mut rig = Rig::build(scenario, costs, seed)?;
    let mut samples = Vec::with_capacity(iterations);
    let mut now = SimTime::from_millis(10);

    for i in 0..iterations {
        // t0 = clock_gettime(...)
        let (reading0, t) = rig.clock(now);

        // ff_write(fd, buf, nbytes) — timing path per scenario…
        let work = rig.ff_work();
        let t_done = match scenario {
            LatencyScenario::Baseline | LatencyScenario::Scenario1 => t + work,
            LatencyScenario::Scenario2Uncontended
            | LatencyScenario::Scenario2Contended
            | LatencyScenario::Scenario3
            | LatencyScenario::Scenario4 => {
                let iv = rig.iv.as_mut().expect("cheri mode");
                let svc = rig.service.expect("service registered");
                let app = rig.app_cvm.expect("app cvm");
                let grant = iv.xcall(app, svc, t)?;
                let entered = grant.entered_at;
                let mutex = rig.mutex.as_mut().expect("s2 mutex");
                if let Some(bg) = rig.background.as_mut() {
                    bg.replay(mutex, entered);
                }
                let g = mutex.acquire(entered, work);
                // Deeper splits hand the payload onward through sealed
                // SPSC crossings before ff_write can return.
                let inner =
                    SimDuration::from_nanos(rig.costs.xcall_ns * scenario.inner_crossings());
                // Return crossing mirrors the entry crossing.
                g.released_at + inner + grant.crossing
            }
        };
        // …and the real call, for correctness of the data path.
        match rig
            .sender
            .ff_write(&mut rig.mem, rig.send_fd, &rig.payload, WRITE_BYTES)
        {
            Ok(_) => {}
            Err(chos::Errno::EAGAIN) => {
                rig.drain(now);
                // Retry once after draining; a second failure is a bug.
                rig.sender
                    .ff_write(&mut rig.mem, rig.send_fd, &rig.payload, WRITE_BYTES)?;
            }
            Err(e) => return Err(e.into()),
        }

        // t1 = clock_gettime(...)
        let (reading1, t_after) = rig.clock(t_done);
        samples.push(reading1.saturating_duration_since(reading0).as_nanos());

        now = t_after + rig.gap;
        if i % 16 == 0 {
            rig.drain(now);
        }
    }
    rig.drain(now);

    let filtered = iqr_filter(&samples);
    Ok(FfWriteRun {
        scenario,
        iterations,
        summary: Summary::of(&filtered.kept),
        removed_fraction: filtered.removed_fraction(),
    })
}

/// Runs Figs. 4–6 in one sweep (shared iteration count and seed).
///
/// # Errors
///
/// Propagates the first scenario failure.
pub fn run_all(
    iterations: usize,
    costs: CostModel,
    seed: u64,
) -> Result<Vec<FfWriteRun>, CapnetError> {
    [
        LatencyScenario::Baseline,
        LatencyScenario::Scenario1,
        LatencyScenario::Scenario2Uncontended,
        LatencyScenario::Scenario2Contended,
    ]
    .into_iter()
    .map(|s| measure(s, iterations, costs.clone(), seed))
    .collect()
}

/// Measures the extension scenarios (paper §VI future work): Scenario 3
/// (DPDK split) and Scenario 4 (full stack separation).
///
/// # Errors
///
/// Propagates the first scenario failure.
pub fn run_extensions(
    iterations: usize,
    costs: CostModel,
    seed: u64,
) -> Result<Vec<FfWriteRun>, CapnetError> {
    [LatencyScenario::Scenario3, LatencyScenario::Scenario4]
        .into_iter()
        .map(|s| measure(s, iterations, costs.clone(), seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ITERS: usize = 4_000;

    fn run(s: LatencyScenario) -> FfWriteRun {
        measure(s, ITERS, CostModel::morello(), 42).unwrap()
    }

    #[test]
    fn fig4_scenario1_costs_about_125ns_more_than_baseline() {
        let base = run(LatencyScenario::Baseline);
        let s1 = run(LatencyScenario::Scenario1);
        let delta = s1.summary.mean - base.summary.mean;
        assert!(
            (delta - 125.0).abs() < 45.0,
            "S1-Baseline delta {delta:.0}ns (paper: ≈125ns)"
        );
    }

    #[test]
    fn fig5_s2_uncontended_adds_about_200ns_over_s1() {
        let s1 = run(LatencyScenario::Scenario1);
        let s2 = run(LatencyScenario::Scenario2Uncontended);
        let delta = s2.summary.mean - s1.summary.mean;
        assert!(
            (delta - 200.0).abs() < 80.0,
            "S2u-S1 delta {delta:.0}ns (paper: ≈200ns)"
        );
    }

    #[test]
    fn fig6_contention_costs_tens_of_microseconds() {
        let s2u = run(LatencyScenario::Scenario2Uncontended);
        let s2c = run(LatencyScenario::Scenario2Contended);
        let overhead = s2c.summary.mean - s2u.summary.mean;
        assert!(
            (12_000.0..30_000.0).contains(&overhead),
            "contended overhead {overhead:.0}ns (paper: ≈19,000ns)"
        );
    }

    #[test]
    fn boxes_collapse_for_fast_scenarios() {
        // The paper: >50% identical results, p25 = p75 for Baseline/S1.
        let base = run(LatencyScenario::Baseline);
        assert!(
            base.summary.q3 - base.summary.q1 <= 50,
            "baseline IQR {} should be tiny",
            base.summary.iqr()
        );
    }

    #[test]
    fn scenario3_adds_one_inner_crossing_over_s2() {
        let costs = CostModel::morello();
        let s2 = run(LatencyScenario::Scenario2Uncontended);
        let s3 = run(LatencyScenario::Scenario3);
        let delta = s3.summary.mean - s2.summary.mean;
        let expect = costs.xcall_ns as f64;
        assert!(
            (delta - expect).abs() < 60.0,
            "S3-S2u delta {delta:.0}ns (one crossing ≈ {expect:.0}ns)"
        );
    }

    #[test]
    fn scenario4_adds_two_inner_crossings_over_s2() {
        let costs = CostModel::morello();
        let s2 = run(LatencyScenario::Scenario2Uncontended);
        let s4 = run(LatencyScenario::Scenario4);
        let delta = s4.summary.mean - s2.summary.mean;
        let expect = 2.0 * costs.xcall_ns as f64;
        assert!(
            (delta - expect).abs() < 90.0,
            "S4-S2u delta {delta:.0}ns (two crossings ≈ {expect:.0}ns)"
        );
    }

    #[test]
    fn deeper_splits_stay_ordered() {
        // Isolation depth must cost monotonically: S2u ≤ S3 ≤ S4, and all
        // of them far below the contended S2 (isolation is cheap next to
        // contention — the paper's central quantitative message).
        let s2u = run(LatencyScenario::Scenario2Uncontended);
        let s3 = run(LatencyScenario::Scenario3);
        let s4 = run(LatencyScenario::Scenario4);
        let s2c = run(LatencyScenario::Scenario2Contended);
        assert!(s2u.summary.mean <= s3.summary.mean);
        assert!(s3.summary.mean <= s4.summary.mean);
        assert!(s4.summary.mean < s2c.summary.mean / 4.0);
    }

    #[test]
    fn outlier_fraction_is_paperlike() {
        let s1 = run(LatencyScenario::Scenario1);
        assert!(
            s1.removed_fraction < 0.2,
            "removed {:.1}%",
            s1.removed_fraction * 100.0
        );
    }
}
