//! One module per paper artifact.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table I — LoC added/modified to port F-Stack |
//! | [`table2`] | Table II — TCP bandwidth in all scenarios |
//! | [`fig3`] | Fig. 3 — capability out-of-bounds exception |
//! | [`figs`] | Figs. 4–6 — `ff_write()` execution-time box plots |

pub mod fig3;
pub mod figs;
pub mod table1;
pub mod table2;
