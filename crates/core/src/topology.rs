//! Switched N-node topology builders on [`NetSim`].
//!
//! The paper's testbed is two hosts on a cable; these builders use the
//! [`updk::switch::LinkFabric`] learning switch to assemble the three
//! canonical multi-node shapes the scenario layer (and the `many_nodes`
//! bench) measure:
//!
//! * **star** — N leaf hosts and one hub host on a single switch; every
//!   leaf→hub flow shares the hub's one uplink port, the bottleneck;
//! * **chain** — two hosts separated by K switches in a row; each hop adds
//!   store-and-forward latency and another serialization;
//! * **dumbbell** — N client/server pairs on two switches joined by one
//!   trunk; all pairs contend for the trunk, the classic fairness shape.
//!
//! Builders only wire devices, nodes and cables; callers install iperf
//! apps on the returned [`NodeId`]s (see `scenario::run_star_iperf` and
//! `scenario::run_dumbbell_fairness`).

use crate::netsim::{DevId, IsolationProfile, NetSim, NodeId, SwitchId};
use crate::CapnetError;
use std::net::Ipv4Addr;
use updk::nic::NicModel;

/// Most hosts a builder places in one subnet (IP allocation limit).
const MAX_HOSTS: usize = 90;

/// Depth of **each** egress queue for a fabric with `ports` ports:
/// `64 × ports` frames, i.e. 64 frames (≈ one 64 KiB no-window-scale TCP
/// send window of MTU segments) per *potential sender*. A bottleneck port
/// can then absorb a full fan-in of window-limited flows from every other
/// port without tail loss — TCP self-clocks against queueing delay
/// instead of RTO-collapsing — while the bound still drops pathological
/// overload. Build topologies with `NetSim::add_switch_with_queue`
/// directly to study the shallow-buffer (loss-driven) regime.
fn fabric_queue(ports: usize) -> usize {
    64 * ports
}

fn add_fabric(sim: &mut NetSim, ports: usize) -> Result<SwitchId, CapnetError> {
    sim.add_switch_with_queue(ports, fabric_queue(ports))
}

fn host_on_switch(
    sim: &mut NetSim,
    name: String,
    ip: Ipv4Addr,
    sw: SwitchId,
    sw_port: usize,
) -> Result<(NodeId, DevId), CapnetError> {
    let dev = sim.add_dev(NicModel::Host)?;
    sim.attach(dev, 0, sw, sw_port)?;
    let node = sim.add_node(name, dev, 0, ip, IsolationProfile::default())?;
    Ok((node, dev))
}

/// A star built by [`build_star`].
#[derive(Debug)]
pub struct Star {
    /// The central fabric (`leaves + 1` ports; port 0 is the hub's).
    pub switch: SwitchId,
    /// The hub host (the shared-uplink side; iperf server in scenarios).
    pub hub: NodeId,
    /// The hub's address.
    pub hub_ip: Ipv4Addr,
    /// Leaf hosts, port `i + 1` each.
    pub leaves: Vec<NodeId>,
    /// Leaf addresses, same order as [`Star::leaves`].
    pub leaf_ips: Vec<Ipv4Addr>,
}

/// Builds a star: `leaves` hosts and one hub on a `leaves + 1`-port
/// switch, all in `10.1.0.0/24`. Every leaf-to-hub flow serializes
/// through the switch's port 0 — one shared 1 Gbit/s bottleneck.
///
/// # Errors
///
/// [`CapnetError::Config`] if `leaves` is 0 or exceeds the subnet
/// allocation; propagated wiring failures otherwise.
pub fn build_star(sim: &mut NetSim, leaves: usize) -> Result<Star, CapnetError> {
    if leaves == 0 || leaves > MAX_HOSTS {
        return Err(CapnetError::Config(format!(
            "star supports 1..={MAX_HOSTS} leaves, got {leaves}"
        )));
    }
    let switch = add_fabric(sim, leaves + 1)?;
    let hub_ip = Ipv4Addr::new(10, 1, 0, 100);
    let (hub, _) = host_on_switch(sim, "hub".into(), hub_ip, switch, 0)?;
    let mut nodes = Vec::with_capacity(leaves);
    let mut ips = Vec::with_capacity(leaves);
    for i in 0..leaves {
        let ip = Ipv4Addr::new(10, 1, 0, (i + 1) as u8);
        let (node, _) = host_on_switch(sim, format!("leaf{i}"), ip, switch, i + 1)?;
        nodes.push(node);
        ips.push(ip);
    }
    Ok(Star {
        switch,
        hub,
        hub_ip,
        leaves: nodes,
        leaf_ips: ips,
    })
}

/// A chain built by [`build_chain`].
#[derive(Debug)]
pub struct Chain {
    /// The switches, end host `a` on the first, `b` on the last.
    pub switches: Vec<SwitchId>,
    /// The host on the first switch.
    pub a: NodeId,
    /// `a`'s address.
    pub a_ip: Ipv4Addr,
    /// The host on the last switch.
    pub b: NodeId,
    /// `b`'s address.
    pub b_ip: Ipv4Addr,
}

/// Builds a chain: host A — switch₀ — … — switch₍ₖ₋₁₎ — host B in
/// `10.3.0.0/24`. Every frame pays `hops` store-and-forward latencies and
/// serializations end to end.
///
/// # Errors
///
/// [`CapnetError::Config`] if `hops` is 0; propagated wiring failures.
pub fn build_chain(sim: &mut NetSim, hops: usize) -> Result<Chain, CapnetError> {
    if hops == 0 {
        return Err(CapnetError::Config(
            "a chain needs at least 1 switch".into(),
        ));
    }
    let switches: Vec<SwitchId> = (0..hops)
        .map(|_| add_fabric(sim, 4))
        .collect::<Result<_, _>>()?;
    for w in switches.windows(2) {
        // Port 3 of each switch trunks forward into port 2 of the next.
        sim.link_switches(w[0], 3, w[1], 2)?;
    }
    let a_ip = Ipv4Addr::new(10, 3, 0, 1);
    let b_ip = Ipv4Addr::new(10, 3, 0, 2);
    let (a, _) = host_on_switch(sim, "chain-a".into(), a_ip, switches[0], 0)?;
    let (b, _) = host_on_switch(sim, "chain-b".into(), b_ip, switches[hops - 1], 1)?;
    Ok(Chain {
        switches,
        a,
        a_ip,
        b,
        b_ip,
    })
}

/// A dumbbell built by [`build_dumbbell`].
#[derive(Debug)]
pub struct Dumbbell {
    /// The client-side switch (trunk on port 0).
    pub left: SwitchId,
    /// The server-side switch (trunk on port 0).
    pub right: SwitchId,
    /// Client hosts, one per pair.
    pub clients: Vec<NodeId>,
    /// Client addresses.
    pub client_ips: Vec<Ipv4Addr>,
    /// Server hosts, one per pair.
    pub servers: Vec<NodeId>,
    /// Server addresses.
    pub server_ips: Vec<Ipv4Addr>,
}

/// Builds a dumbbell: `pairs` clients on a left switch, `pairs` servers
/// on a right switch, one trunk between them, all in `10.2.0.0/24`.
/// Every pair's flow crosses the single 1 Gbit/s trunk — the canonical
/// shared-bottleneck fairness topology.
///
/// # Errors
///
/// [`CapnetError::Config`] if `pairs` is 0 or exceeds the subnet
/// allocation; propagated wiring failures otherwise.
pub fn build_dumbbell(sim: &mut NetSim, pairs: usize) -> Result<Dumbbell, CapnetError> {
    if pairs == 0 || pairs > MAX_HOSTS {
        return Err(CapnetError::Config(format!(
            "dumbbell supports 1..={MAX_HOSTS} pairs, got {pairs}"
        )));
    }
    let left = add_fabric(sim, pairs + 1)?;
    let right = add_fabric(sim, pairs + 1)?;
    sim.link_switches(left, 0, right, 0)?;
    let mut clients = Vec::with_capacity(pairs);
    let mut client_ips = Vec::with_capacity(pairs);
    let mut servers = Vec::with_capacity(pairs);
    let mut server_ips = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let cip = Ipv4Addr::new(10, 2, 0, (i + 1) as u8);
        let (c, _) = host_on_switch(sim, format!("cli{i}"), cip, left, i + 1)?;
        clients.push(c);
        client_ips.push(cip);
        let sip = Ipv4Addr::new(10, 2, 0, (100 + i) as u8);
        let (s, _) = host_on_switch(sim, format!("srv{i}"), sip, right, i + 1)?;
        servers.push(s);
        server_ips.push(sip);
    }
    Ok(Dumbbell {
        left,
        right,
        clients,
        client_ips,
        servers,
        server_ips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkern::cost::CostModel;

    #[test]
    fn builders_validate_sizes() {
        let mut sim = NetSim::new(CostModel::morello());
        assert!(build_star(&mut sim, 0).is_err());
        assert!(build_star(&mut sim, MAX_HOSTS + 1).is_err());
        let mut sim = NetSim::new(CostModel::morello());
        assert!(build_chain(&mut sim, 0).is_err());
        let mut sim = NetSim::new(CostModel::morello());
        assert!(build_dumbbell(&mut sim, 0).is_err());
    }

    #[test]
    fn star_allocates_distinct_addresses() {
        let mut sim = NetSim::new(CostModel::morello());
        let star = build_star(&mut sim, 8).unwrap();
        assert_eq!(star.leaves.len(), 8);
        let mut ips = star.leaf_ips.clone();
        ips.push(star.hub_ip);
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 9, "no duplicate addresses");
    }

    #[test]
    fn dumbbell_wires_both_sides() {
        let mut sim = NetSim::new(CostModel::morello());
        let d = build_dumbbell(&mut sim, 3).unwrap();
        assert_eq!(d.clients.len(), 3);
        assert_eq!(d.servers.len(), 3);
        assert_ne!(d.left, d.right);
    }
}
