//! Switched N-node topology builders on [`NetSim`].
//!
//! The paper's testbed is two hosts on a cable; these builders use the
//! [`updk::switch::LinkFabric`] learning switch to assemble the three
//! canonical multi-node shapes the scenario layer (and the `many_nodes`
//! bench) measure:
//!
//! * **star** — N leaf hosts and one hub host on a single switch; every
//!   leaf→hub flow shares the hub's one uplink port, the bottleneck;
//! * **chain** — two hosts separated by K switches in a row; each hop adds
//!   store-and-forward latency and another serialization;
//! * **dumbbell** — N client/server pairs on two switches joined by one
//!   trunk; all pairs contend for the trunk, the classic fairness shape.
//!
//! Builders only wire devices, nodes and cables; callers install iperf
//! apps on the returned [`NodeId`]s (see `scenario::run_star_iperf` and
//! `scenario::run_dumbbell_fairness`).

use crate::netsim::{DevId, IsolationProfile, NetSim, NodeId, SwitchId};
use crate::CapnetError;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use updk::nic::NicModel;

/// Most hosts a builder places in one topology (IP allocation limit; hosts
/// beyond the first /24's worth spill into sibling /24s, see
/// [`paged_ip`]).
const MAX_HOSTS: usize = 250;

/// Hosts addressed out of the first /24 page. Host `i < FIRST_PAGE` keeps
/// the historical `10.x.0.(base + i)` address — the pinned trace digests
/// depend on small topologies addressing exactly as they always did —
/// while `i >= FIRST_PAGE` pages into `10.x.(page).(i - FIRST_PAGE + 1)`.
const FIRST_PAGE: usize = 90;

/// The address of host `i` in net `10.net.0.0/16`: the historical
/// `10.net.0.(base+i)` for the first [`FIRST_PAGE`] hosts, then paged into
/// `10.net.page.(offset+1)` (every page leaves octet values `> 0` and
/// `< 255`, and page 0 is reserved for the historical range, so addresses
/// never collide across pages).
fn paged_ip(net: u8, page0: u8, base: u8, i: usize) -> Ipv4Addr {
    if i < FIRST_PAGE {
        Ipv4Addr::new(10, net, 0, base + i as u8)
    } else {
        let j = i - FIRST_PAGE;
        Ipv4Addr::new(10, net, page0 + (j / 200) as u8, 1 + (j % 200) as u8)
    }
}

/// Depth of **each** egress queue for a fabric with `ports` ports:
/// `64 × ports` frames, i.e. 64 frames (≈ one 64 KiB no-window-scale TCP
/// send window of MTU segments) per *potential sender*. A bottleneck port
/// can then absorb a full fan-in of window-limited flows from every other
/// port without tail loss — TCP self-clocks against queueing delay
/// instead of RTO-collapsing — while the bound still drops pathological
/// overload. Build topologies with `NetSim::add_switch_with_queue`
/// directly to study the shallow-buffer (loss-driven) regime.
fn fabric_queue(ports: usize) -> usize {
    64 * ports
}

fn add_fabric(sim: &mut NetSim, ports: usize) -> Result<SwitchId, CapnetError> {
    sim.add_switch_with_queue(ports, fabric_queue(ports))
}

fn host_on_switch(
    sim: &mut NetSim,
    name: String,
    ip: Ipv4Addr,
    sw: SwitchId,
    sw_port: usize,
) -> Result<(NodeId, DevId), CapnetError> {
    let dev = sim.add_dev(NicModel::Host)?;
    sim.attach(dev, 0, sw, sw_port)?;
    let node = sim.add_node(name, dev, 0, ip, IsolationProfile::default())?;
    Ok((node, dev))
}

/// A star built by [`build_star`].
#[derive(Debug)]
pub struct Star {
    /// The central fabric (`leaves + 1` ports; port 0 is the hub's).
    pub switch: SwitchId,
    /// The hub host (the shared-uplink side; iperf server in scenarios).
    pub hub: NodeId,
    /// The hub's address.
    pub hub_ip: Ipv4Addr,
    /// Leaf hosts, port `i + 1` each.
    pub leaves: Vec<NodeId>,
    /// Leaf addresses, same order as [`Star::leaves`].
    pub leaf_ips: Vec<Ipv4Addr>,
}

/// Builds a star: `leaves` hosts and one hub on a `leaves + 1`-port
/// switch, all in `10.1.0.0/24`. Every leaf-to-hub flow serializes
/// through the switch's port 0 — one shared 1 Gbit/s bottleneck.
///
/// # Errors
///
/// [`CapnetError::Config`] if `leaves` is 0 or exceeds the subnet
/// allocation; propagated wiring failures otherwise.
pub fn build_star(sim: &mut NetSim, leaves: usize) -> Result<Star, CapnetError> {
    if leaves == 0 || leaves > MAX_HOSTS {
        return Err(CapnetError::Config(format!(
            "star supports 1..={MAX_HOSTS} leaves, got {leaves}"
        )));
    }
    let switch = add_fabric(sim, leaves + 1)?;
    let hub_ip = Ipv4Addr::new(10, 1, 0, 100);
    let (hub, _) = host_on_switch(sim, "hub".into(), hub_ip, switch, 0)?;
    let mut nodes = Vec::with_capacity(leaves);
    let mut ips = Vec::with_capacity(leaves);
    for i in 0..leaves {
        let ip = paged_ip(1, 1, 1, i);
        let (node, _) = host_on_switch(sim, format!("leaf{i}"), ip, switch, i + 1)?;
        nodes.push(node);
        ips.push(ip);
    }
    Ok(Star {
        switch,
        hub,
        hub_ip,
        leaves: nodes,
        leaf_ips: ips,
    })
}

/// A chain built by [`build_chain`].
#[derive(Debug)]
pub struct Chain {
    /// The switches, end host `a` on the first, `b` on the last.
    pub switches: Vec<SwitchId>,
    /// The host on the first switch.
    pub a: NodeId,
    /// `a`'s address.
    pub a_ip: Ipv4Addr,
    /// The host on the last switch.
    pub b: NodeId,
    /// `b`'s address.
    pub b_ip: Ipv4Addr,
}

/// Builds a chain: host A — switch₀ — … — switch₍ₖ₋₁₎ — host B in
/// `10.3.0.0/24`. Every frame pays `hops` store-and-forward latencies and
/// serializations end to end.
///
/// # Errors
///
/// [`CapnetError::Config`] if `hops` is 0; propagated wiring failures.
pub fn build_chain(sim: &mut NetSim, hops: usize) -> Result<Chain, CapnetError> {
    if hops == 0 {
        return Err(CapnetError::Config(
            "a chain needs at least 1 switch".into(),
        ));
    }
    let switches: Vec<SwitchId> = (0..hops)
        .map(|_| add_fabric(sim, 4))
        .collect::<Result<_, _>>()?;
    for w in switches.windows(2) {
        // Port 3 of each switch trunks forward into port 2 of the next.
        sim.link_switches(w[0], 3, w[1], 2)?;
    }
    let a_ip = Ipv4Addr::new(10, 3, 0, 1);
    let b_ip = Ipv4Addr::new(10, 3, 0, 2);
    let (a, _) = host_on_switch(sim, "chain-a".into(), a_ip, switches[0], 0)?;
    let (b, _) = host_on_switch(sim, "chain-b".into(), b_ip, switches[hops - 1], 1)?;
    Ok(Chain {
        switches,
        a,
        a_ip,
        b,
        b_ip,
    })
}

/// A dumbbell built by [`build_dumbbell`].
#[derive(Debug)]
pub struct Dumbbell {
    /// The client-side switch (trunk on port 0).
    pub left: SwitchId,
    /// The server-side switch (trunk on port 0).
    pub right: SwitchId,
    /// Client hosts, one per pair.
    pub clients: Vec<NodeId>,
    /// Client addresses.
    pub client_ips: Vec<Ipv4Addr>,
    /// Server hosts, one per pair.
    pub servers: Vec<NodeId>,
    /// Server addresses.
    pub server_ips: Vec<Ipv4Addr>,
}

/// Builds a dumbbell: `pairs` clients on a left switch, `pairs` servers
/// on a right switch, one trunk between them, all in `10.2.0.0/24`.
/// Every pair's flow crosses the single 1 Gbit/s trunk — the canonical
/// shared-bottleneck fairness topology.
///
/// # Errors
///
/// [`CapnetError::Config`] if `pairs` is 0 or exceeds the subnet
/// allocation; propagated wiring failures otherwise.
pub fn build_dumbbell(sim: &mut NetSim, pairs: usize) -> Result<Dumbbell, CapnetError> {
    if pairs == 0 || pairs > MAX_HOSTS {
        return Err(CapnetError::Config(format!(
            "dumbbell supports 1..={MAX_HOSTS} pairs, got {pairs}"
        )));
    }
    let left = add_fabric(sim, pairs + 1)?;
    let right = add_fabric(sim, pairs + 1)?;
    sim.link_switches(left, 0, right, 0)?;
    let mut clients = Vec::with_capacity(pairs);
    let mut client_ips = Vec::with_capacity(pairs);
    let mut servers = Vec::with_capacity(pairs);
    let mut server_ips = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let cip = paged_ip(2, 1, 1, i);
        let (c, _) = host_on_switch(sim, format!("cli{i}"), cip, left, i + 1)?;
        clients.push(c);
        client_ips.push(cip);
        let sip = paged_ip(2, 2, 100, i);
        let (s, _) = host_on_switch(sim, format!("srv{i}"), sip, right, i + 1)?;
        servers.push(s);
        server_ips.push(sip);
    }
    Ok(Dumbbell {
        left,
        right,
        clients,
        client_ips,
        servers,
        server_ips,
    })
}

// ---------------------------------------------------------------------
// Shard partitioning (the parallel NetSim's topology-aware planner)
// ---------------------------------------------------------------------

/// The cabling-and-constraint view of a simulation that the shard
/// partitioner works on — pure data, so it is property-testable without
/// building devices or stacks.
#[derive(Debug, Clone, Default)]
pub struct ShardGraph {
    /// Number of host nodes.
    pub nodes: usize,
    /// Number of switching fabrics.
    pub switches: usize,
    /// Relative work weight per node (e.g. `1 + installed apps`); a zero
    /// weight is treated as 1.
    pub node_weight: Vec<u64>,
    /// Node-to-switch cables.
    pub attachments: Vec<(usize, usize)>,
    /// Direct node-to-node cables (pairwise topologies).
    pub node_links: Vec<(usize, usize)>,
    /// Switch-to-switch trunks.
    pub trunks: Vec<(usize, usize)>,
    /// Groups of nodes that must share a shard: nodes on the same
    /// multi-port device, and every participant of the S2 service mutex.
    pub bind_groups: Vec<Vec<usize>>,
}

/// A shard assignment produced by [`partition_shards`]: every node and
/// every switch is covered exactly once.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Number of shards actually used (≤ the requested worker count).
    pub workers: usize,
    /// `node_shard[n]` = owning shard of node `n`.
    pub node_shard: Vec<usize>,
    /// `switch_shard[s]` = owning shard of switch `s`.
    pub switch_shard: Vec<usize>,
}

/// Minimal union-find over node indices.
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        let mut r = x;
        while self.0[r] != r {
            r = self.0[r];
        }
        let mut c = x;
        while self.0[c] != r {
            let next = self.0[c];
            self.0[c] = r;
            c = next;
        }
        r
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra] = rb;
        }
    }
}

/// Partitions a topology into at most `workers` shards for parallel
/// execution, keeping each switch with its heaviest-attached nodes.
///
/// Constraint handling and placement policy:
///
/// * nodes in a [`ShardGraph::bind_groups`] group, and nodes joined by a
///   direct cable ([`ShardGraph::node_links`] — co-locating the two ends
///   keeps pairwise traffic off the barrier path), are merged into one
///   *atom* that is placed as a unit;
/// * switches are placed heaviest-first onto the least-loaded shard, and
///   each switch pulls its attached atoms with it — heaviest atoms first —
///   until the shard reaches the balance target, spilling only the
///   lightest attachments to other shards (the star hub therefore always
///   lands with its switch);
/// * a pure transit switch (no hosts of its own) follows an
///   already-placed trunk peer instead of fragmenting a chain across
///   shards; host-bearing trunked switches still spread out — a cut
///   trunk is often the best cut, carrying the largest lookahead;
/// * leftover atoms (pure pairwise worlds) fill the lightest shards;
/// * empty shards are compacted away, so [`ShardPlan::workers`] is the
///   number of shards actually populated.
///
/// The plan is a pure function of the graph, so every worker count yields
/// the same plan on every run — a precondition for the byte-identical
/// determinism contract of the sharded `NetSim`.
pub fn partition_shards(graph: &ShardGraph, workers: usize) -> ShardPlan {
    let workers = workers.max(1);
    let n = graph.nodes;
    let weight_of = |i: usize| -> u64 { graph.node_weight.get(i).copied().unwrap_or(1).max(1) };

    // 1. Merge must-co-locate nodes into atoms.
    let mut dsu = Dsu::new(n);
    for group in &graph.bind_groups {
        for w in group.windows(2) {
            if w[0] < n && w[1] < n {
                dsu.union(w[0], w[1]);
            }
        }
    }
    for &(a, b) in &graph.node_links {
        if a < n && b < n {
            dsu.union(a, b);
        }
    }
    // Atom id = DSU root, compacted in node order (deterministic).
    let mut atom_of_node = Vec::with_capacity(n);
    let mut atoms: Vec<(u64, Vec<usize>)> = Vec::new(); // (weight, members)
    let mut atom_of_root: HashMap<usize, usize> = HashMap::new();
    for node in 0..n {
        let root = dsu.find(node);
        let atom = *atom_of_root.entry(root).or_insert_with(|| {
            atoms.push((0, Vec::new()));
            atoms.len() - 1
        });
        atom_of_node.push(atom);
        atoms[atom].0 += weight_of(node);
        atoms[atom].1.push(node);
    }

    // 2. Switch weights: the sum of attached atom weights (an atom counts
    //    once per switch even when several members attach).
    let mut sw_atoms: Vec<Vec<usize>> = vec![Vec::new(); graph.switches];
    for &(node, sw) in &graph.attachments {
        if node < n && sw < graph.switches {
            let atom = atom_of_node[node];
            if !sw_atoms[sw].contains(&atom) {
                sw_atoms[sw].push(atom);
            }
        }
    }
    let sw_weight: Vec<u64> = sw_atoms
        .iter()
        .map(|ats| 1 + ats.iter().map(|&a| atoms[a].0).sum::<u64>())
        .collect();
    let total: u64 = (0..n).map(weight_of).sum::<u64>() + graph.switches as u64;
    let target = total.div_ceil(workers as u64).max(1);

    // 3. Greedy placement.
    let mut load = vec![0u64; workers];
    let mut node_shard = vec![usize::MAX; n];
    let mut switch_shard = vec![usize::MAX; graph.switches];
    let mut atom_shard = vec![usize::MAX; atoms.len()];
    let lightest = |load: &[u64]| -> usize {
        let mut best = 0;
        for s in 1..load.len() {
            if load[s] < load[best] {
                best = s;
            }
        }
        best
    };
    let place_atom = |atom: usize,
                      shard: usize,
                      load: &mut Vec<u64>,
                      atom_shard: &mut Vec<usize>,
                      node_shard: &mut Vec<usize>| {
        atom_shard[atom] = shard;
        load[shard] += atoms[atom].0;
        for &m in &atoms[atom].1 {
            node_shard[m] = shard;
        }
    };
    let mut trunk_peers: Vec<Vec<usize>> = vec![Vec::new(); graph.switches];
    for &(a, b) in &graph.trunks {
        if a < graph.switches && b < graph.switches && a != b {
            trunk_peers[a].push(b);
            trunk_peers[b].push(a);
        }
    }
    let mut sw_order: Vec<usize> = (0..graph.switches).collect();
    sw_order.sort_by_key(|&s| (std::cmp::Reverse(sw_weight[s]), s));
    for &sw in &sw_order {
        // A pure transit switch (no attached hosts of its own, e.g. the
        // middle of a chain) follows an already-placed trunk peer instead
        // of fragmenting onto whichever shard happens to be lightest; a
        // switch with its own hosts still goes to the lightest shard —
        // cutting a trunk is often the *best* cut, since the trunk
        // traversal carries the largest lookahead.
        let placed_peer = if sw_atoms[sw].is_empty() {
            trunk_peers[sw]
                .iter()
                .copied()
                .filter(|&p| switch_shard[p] != usize::MAX)
                .min_by_key(|&p| (load[switch_shard[p]], p))
                .map(|p| switch_shard[p])
        } else {
            None
        };
        let home = placed_peer.unwrap_or_else(|| lightest(&load));
        switch_shard[sw] = home;
        load[home] += 1;
        let mut pending: Vec<usize> = sw_atoms[sw]
            .iter()
            .copied()
            .filter(|&a| atom_shard[a] == usize::MAX)
            .collect();
        pending.sort_by_key(|&a| (std::cmp::Reverse(atoms[a].0), a));
        for (rank, atom) in pending.into_iter().enumerate() {
            // The heaviest attachment always stays with its switch; later
            // ones stay only while the shard is under the balance target.
            let shard = if rank == 0 || load[home] < target {
                home
            } else {
                lightest(&load)
            };
            place_atom(atom, shard, &mut load, &mut atom_shard, &mut node_shard);
        }
    }
    // 4. Leftover atoms (no switch attachment): fill the lightest shards.
    for atom in 0..atoms.len() {
        if atom_shard[atom] == usize::MAX {
            let shard = lightest(&load);
            place_atom(atom, shard, &mut load, &mut atom_shard, &mut node_shard);
        }
    }
    // 5. Compact away empty shards (more workers requested than the
    //    topology has placeable units): renumber used shards in ascending
    //    order so the runner builds no idle worlds or worker threads.
    let mut remap = vec![usize::MAX; workers];
    for s in node_shard.iter().chain(switch_shard.iter()) {
        remap[*s] = 0; // mark as used; final ids assigned in shard order
    }
    let mut next_id = 0;
    for slot in remap.iter_mut() {
        if *slot != usize::MAX {
            *slot = next_id;
            next_id += 1;
        }
    }
    for s in node_shard.iter_mut().chain(switch_shard.iter_mut()) {
        *s = remap[*s];
    }
    ShardPlan {
        workers: next_id.max(1),
        node_shard,
        switch_shard,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkern::cost::CostModel;

    #[test]
    fn builders_validate_sizes() {
        let mut sim = NetSim::new(CostModel::morello());
        assert!(build_star(&mut sim, 0).is_err());
        assert!(build_star(&mut sim, MAX_HOSTS + 1).is_err());
        let mut sim = NetSim::new(CostModel::morello());
        assert!(build_chain(&mut sim, 0).is_err());
        let mut sim = NetSim::new(CostModel::morello());
        assert!(build_dumbbell(&mut sim, 0).is_err());
    }

    #[test]
    fn star_allocates_distinct_addresses() {
        let mut sim = NetSim::new(CostModel::morello());
        let star = build_star(&mut sim, 8).unwrap();
        assert_eq!(star.leaves.len(), 8);
        let mut ips = star.leaf_ips.clone();
        ips.push(star.hub_ip);
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 9, "no duplicate addresses");
    }

    #[test]
    fn dumbbell_wires_both_sides() {
        let mut sim = NetSim::new(CostModel::morello());
        let d = build_dumbbell(&mut sim, 3).unwrap();
        assert_eq!(d.clients.len(), 3);
        assert_eq!(d.servers.len(), 3);
        assert_ne!(d.left, d.right);
    }

    #[test]
    fn large_star_pages_addresses_without_collisions() {
        let mut sim = NetSim::new(CostModel::morello());
        let star = build_star(&mut sim, 128).unwrap();
        let mut ips = star.leaf_ips.clone();
        // The first page keeps the historical addressing.
        assert_eq!(ips[0], Ipv4Addr::new(10, 1, 0, 1));
        assert_eq!(ips[89], Ipv4Addr::new(10, 1, 0, 90));
        assert_eq!(ips[90], Ipv4Addr::new(10, 1, 1, 1));
        ips.push(star.hub_ip);
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 129, "no duplicate addresses at 128 leaves");
    }

    /// A star's shard plan keeps the heavy hub with its switch and covers
    /// every node exactly once.
    #[test]
    fn star_partition_keeps_hub_with_switch() {
        let leaves = 12;
        let mut g = ShardGraph {
            nodes: leaves + 1,
            switches: 1,
            node_weight: vec![2; leaves + 1],
            ..ShardGraph::default()
        };
        g.node_weight[0] = 1 + leaves as u64; // the hub runs every server
        for i in 0..=leaves {
            g.attachments.push((i, 0));
        }
        let plan = partition_shards(&g, 4);
        assert_eq!(plan.workers, 4);
        assert_eq!(plan.node_shard.len(), leaves + 1);
        assert!(plan.node_shard.iter().all(|&s| s < 4));
        assert_eq!(
            plan.node_shard[0], plan.switch_shard[0],
            "the heaviest-attached node stays with its switch"
        );
        // Every shard got some work (the leaves spread out).
        let mut used = [false; 4];
        for &s in &plan.node_shard {
            used[s] = true;
        }
        assert!(used.iter().all(|&u| u), "leaves spread over all shards");
    }

    /// Bind groups (shared device, S2 mutex) and direct cables co-shard.
    #[test]
    fn partition_respects_bind_groups_and_direct_cables() {
        let g = ShardGraph {
            nodes: 6,
            switches: 0,
            node_weight: vec![1; 6],
            node_links: vec![(0, 1), (2, 3)],
            bind_groups: vec![vec![3, 4]],
            ..ShardGraph::default()
        };
        let plan = partition_shards(&g, 3);
        assert_eq!(plan.node_shard[0], plan.node_shard[1]);
        assert_eq!(plan.node_shard[2], plan.node_shard[3]);
        assert_eq!(plan.node_shard[3], plan.node_shard[4]);
        assert!(plan.node_shard.iter().all(|&s| s < plan.workers));
    }

    /// workers=1 puts everything in shard 0 regardless of shape.
    #[test]
    fn single_worker_plan_is_trivial() {
        let g = ShardGraph {
            nodes: 5,
            switches: 2,
            node_weight: vec![1; 5],
            attachments: vec![(0, 0), (1, 0), (2, 1), (3, 1)],
            trunks: vec![(0, 1)],
            ..ShardGraph::default()
        };
        let plan = partition_shards(&g, 1);
        assert!(plan.node_shard.iter().all(|&s| s == 0));
        assert!(plan.switch_shard.iter().all(|&s| s == 0));
    }
}
