//! Measurement statistics: quantiles, IQR outlier removal, box plots.
//!
//! The paper's methodology (§IV): 1 M timed iterations per configuration,
//! "outliers (≈ 10 % of the iterations) are removed with a standard IQR
//! strategy", results presented as box plots with averages and standard
//! deviations. This module is that pipeline.

use serde::Serialize;

/// Five-number summary + moments of a sample, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Sample size (after any filtering).
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: u64,
    /// 25th percentile.
    pub q1: u64,
    /// Median.
    pub median: u64,
    /// 75th percentile.
    pub q3: u64,
    /// Maximum.
    pub max: u64,
}

impl Summary {
    /// Summarizes `samples` (need not be sorted).
    ///
    /// # Panics
    ///
    /// Panics on an empty sample — an experiment that produced no data is a
    /// harness bug, not a statistic.
    pub fn of(samples: &[u64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let mean = sorted.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted
                .iter()
                .map(|&x| (x as f64 - mean).powi(2))
                .sum::<f64>()
                / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.50),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[n - 1],
        }
    }

    /// The inter-quartile range.
    pub fn iqr(&self) -> u64 {
        self.q3 - self.q1
    }

    /// Half-width of the 95 % confidence interval of the mean (normal
    /// approximation, `1.96·σ/√n`). Zero for a single sample: one
    /// measurement carries no spread information, not infinite spread.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std / (self.n as f64).sqrt()
        }
    }

    /// The 95 % confidence interval of the mean as `(lo, hi)`.
    pub fn ci95(&self) -> (f64, f64) {
        let hw = self.ci95_half_width();
        (self.mean - hw, self.mean + hw)
    }
}

/// The `p`-quantile of an ascending-sorted slice (nearest-rank).
pub fn quantile_sorted(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&p));
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The outcome of IQR filtering.
#[derive(Debug, Clone)]
pub struct IqrFiltered {
    /// The retained samples.
    pub kept: Vec<u64>,
    /// How many samples the filter removed.
    pub removed: usize,
}

impl IqrFiltered {
    /// Fraction of the input removed (the paper observes ≈ 10 %).
    pub fn removed_fraction(&self) -> f64 {
        let total = self.kept.len() + self.removed;
        if total == 0 {
            0.0
        } else {
            self.removed as f64 / total as f64
        }
    }
}

/// Standard IQR outlier removal: keep `x ∈ [q1 − 1.5·IQR, q3 + 1.5·IQR]`.
pub fn iqr_filter(samples: &[u64]) -> IqrFiltered {
    if samples.is_empty() {
        return IqrFiltered {
            kept: Vec::new(),
            removed: 0,
        };
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let q1 = quantile_sorted(&sorted, 0.25) as f64;
    let q3 = quantile_sorted(&sorted, 0.75) as f64;
    let iqr = q3 - q1;
    let lo = q1 - 1.5 * iqr;
    let hi = q3 + 1.5 * iqr;
    let kept: Vec<u64> = samples
        .iter()
        .copied()
        .filter(|&x| (x as f64) >= lo && (x as f64) <= hi)
        .collect();
    let removed = samples.len() - kept.len();
    IqrFiltered { kept, removed }
}

/// Renders an ASCII box plot of `summary` on a `[lo, hi]` ns axis of
/// `width` characters — the repo's terminal stand-in for Figs. 4–6.
pub fn ascii_boxplot(summary: &Summary, lo: u64, hi: u64, width: usize) -> String {
    assert!(hi > lo && width >= 10);
    let scale = |v: u64| -> usize {
        let v = v.clamp(lo, hi);
        ((v - lo) as f64 / (hi - lo) as f64 * (width - 1) as f64).round() as usize
    };
    let mut row = vec![' '; width];
    let (w_min, w_q1, w_med, w_q3, w_max) = (
        scale(summary.min),
        scale(summary.q1),
        scale(summary.median),
        scale(summary.q3),
        scale(summary.max),
    );
    for c in row.iter_mut().take(w_q1).skip(w_min) {
        *c = '-';
    }
    for c in row.iter_mut().take(w_max + 1).skip(w_q3) {
        *c = '-';
    }
    for c in row.iter_mut().take(w_q3 + 1).skip(w_q1) {
        *c = '=';
    }
    row[w_q1] = '[';
    row[w_q3.max(w_q1)] = ']';
    row[w_med.clamp(w_q1, w_q3)] = '|';
    row.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(s.n, 9);
        assert_eq!(s.median, 5);
        assert_eq!(s.q1, 3);
        assert_eq!(s.q3, 7);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert_eq!(s.iqr(), 4);
    }

    #[test]
    fn degenerate_box_when_values_identical() {
        // The paper's p25 = p75 observation: constant samples collapse.
        let s = Summary::of(&[100; 50]);
        assert_eq!(s.q1, s.q3);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.iqr(), 0);
    }

    #[test]
    fn iqr_filter_removes_the_tail() {
        let mut samples = vec![100u64; 900];
        samples.extend(vec![10_000u64; 100]); // 10% detours
        let f = iqr_filter(&samples);
        assert_eq!(f.kept.len(), 900);
        assert!((f.removed_fraction() - 0.10).abs() < 1e-9);
        let s = Summary::of(&f.kept);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn iqr_filter_keeps_clean_samples() {
        let samples: Vec<u64> = (100..200).collect();
        let f = iqr_filter(&samples);
        assert_eq!(f.removed, 0);
        assert_eq!(f.kept.len(), 100);
        assert!(iqr_filter(&[]).kept.is_empty());
    }

    #[test]
    fn boxplot_renders_markers() {
        let s = Summary::of(&[10, 20, 30, 40, 50, 60, 70, 80, 90]);
        let plot = ascii_boxplot(&s, 0, 100, 40);
        assert_eq!(plot.len(), 40);
        assert!(plot.contains('['));
        assert!(plot.contains(']'));
        assert!(plot.contains('|'));
    }

    #[test]
    fn quantiles_clamp_to_ends() {
        let sorted = vec![5, 10, 15];
        assert_eq!(quantile_sorted(&sorted, 0.0), 5);
        assert_eq!(quantile_sorted(&sorted, 1.0), 15);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_summary_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn single_sample_collapses_cleanly() {
        let s = Summary::of(&[42]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std, 0.0, "one sample has no spread, not NaN spread");
        assert_eq!((s.min, s.q1, s.median, s.q3, s.max), (42, 42, 42, 42, 42));
        assert_eq!(s.iqr(), 0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(s.ci95(), (42.0, 42.0));
    }

    #[test]
    fn extreme_values_stay_nan_free() {
        // u64::MAX as f64 squares to ~3.4e38 — far inside f64 range, but a
        // careless implementation (f32, or sum-of-squares overflow paths)
        // would go infinite/NaN. Lock the guarantee down.
        for sample in [
            vec![u64::MAX],
            vec![0, u64::MAX],
            vec![u64::MAX; 3],
            vec![0, 1, u64::MAX - 1, u64::MAX],
        ] {
            let s = Summary::of(&sample);
            assert!(s.mean.is_finite(), "mean finite for {sample:?}");
            assert!(s.std.is_finite(), "std finite for {sample:?}");
            assert!(s.ci95_half_width().is_finite());
            let (lo, hi) = s.ci95();
            assert!(lo.is_finite() && hi.is_finite());
            assert!(lo <= s.mean && s.mean <= hi);
        }
    }

    #[test]
    fn ci95_shrinks_with_sample_size() {
        // Same alternating spread, 100× the samples → ~10× tighter interval
        // (exact up to the Bessel n−1 correction).
        let small: Vec<u64> = (0..10).map(|i| 100 + (i % 2) * 10).collect();
        let large: Vec<u64> = (0..1000).map(|i| 100 + (i % 2) * 10).collect();
        let (s, l) = (Summary::of(&small), Summary::of(&large));
        assert!(s.ci95_half_width() > 0.0);
        assert!(l.ci95_half_width() < s.ci95_half_width());
        let shrink = s.ci95_half_width() / l.ci95_half_width();
        assert!((shrink - 10.0).abs() < 0.6, "√n scaling, got {shrink}");
    }

    #[test]
    fn ci95_matches_hand_computation() {
        // [10, 20]: mean 15, sample std √50, hw = 1.96·√50/√2 = 9.8.
        let s = Summary::of(&[10, 20]);
        assert!((s.ci95_half_width() - 9.8).abs() < 1e-9);
        let (lo, hi) = s.ci95();
        assert!((lo - 5.2).abs() < 1e-9 && (hi - 24.8).abs() < 1e-9);
    }

    #[test]
    fn percentiles_interior_points() {
        // Nearest-rank on 4 points: idx = round(3p).
        let sorted = vec![10, 20, 30, 40];
        assert_eq!(quantile_sorted(&sorted, 0.25), 20);
        assert_eq!(quantile_sorted(&sorted, 0.5), 30);
        assert_eq!(quantile_sorted(&sorted, 0.75), 30);
    }

    #[test]
    fn iqr_filter_single_and_pair_keep_everything() {
        for sample in [vec![7u64], vec![1u64, 1_000_000]] {
            let f = iqr_filter(&sample);
            assert_eq!(f.removed, 0, "small samples define their own spread");
            assert_eq!(f.kept, sample);
            assert_eq!(f.removed_fraction(), 0.0);
        }
    }

    #[test]
    fn removed_fraction_of_empty_is_zero_not_nan() {
        let f = iqr_filter(&[]);
        assert_eq!(f.removed_fraction(), 0.0);
        assert!(!f.removed_fraction().is_nan());
    }
}
