//! The end-to-end network simulation driver.
//!
//! Wires [`updk::EthDev`] devices, [`fstack::FStack`] instances and
//! [`iperf`] applications into a discrete-event run on a
//! [`simkern::Engine`]. One `NetSim` is one Table II measurement: the
//! device under test (the dual-port 82576 behind its PCI bus), the remote
//! measurement hosts, the cables between them, and the per-scenario
//! isolation charges (trampolines, cross-cVM wrappers, the Scenario 2
//! service mutex).

use crate::parallel::{LookaheadMatrix, Profitability};
use crate::topology::{partition_shards, ShardGraph, ShardPlan};
use crate::CapnetError;
use capnet_chaos::{ChaosApp, ChaosConfig, ChaosReport};
use capnet_httpd::{
    FleetApp, FleetConfig, FleetReport, HttpServerApp, HttpServerConfig, HttpServerReport,
    StepOutcome as HttpStepOutcome,
};
use cheri::{Capability, TaggedMemory};
use fstack::loop_::{rx_phase, tx_phase, ServiceMutex};
use fstack::{CcAlgo, FStack, StackConfig};
use iperf::{BandwidthReport, ClientApp, ServerApp, StepOutcome};
use simkern::cost::CostModel;
use simkern::engine::{Engine, EventHandle, OrderKey, World};
use simkern::rng::SimRng;
use simkern::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use updk::ethdev::EthDev;
use updk::kmod::{BindingRegistry, PciAddress};
use updk::nic::{MacAddr, NicModel};
use updk::switch::{LinkFabric, SwitchStats};
use updk::wire::{Frame, ImpairmentStats, Impairments, Wire, MIN_FRAME, WIRE_OVERHEAD};

/// Handle to a node in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Handle to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevId(pub(crate) usize);

/// Handle to a switching fabric added with [`NetSim::add_switch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchId(usize);

/// One cable endpoint: a NIC port or a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Ep {
    Dev(usize, usize),
    Sw(usize, usize),
}

impl std::fmt::Display for Ep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ep::Dev(d, p) => write!(f, "device {d} port {p}"),
            Ep::Sw(s, p) => write!(f, "switch {s} port {p}"),
        }
    }
}

/// The typed event vocabulary of the simulation — every event the engine
/// dispatches in steady state is one of these small inline values, so the
/// hot path schedules without boxing (the witness is
/// [`EventCounters::boxed_events`] staying zero across a run).
#[derive(Debug)]
pub enum NetEvent {
    /// One main-loop iteration of a node's poll loop.
    LoopIter {
        /// Node index.
        node: usize,
    },
    /// A parked node's scheduled wake tick (at a poll-lattice instant).
    /// Stale wakes — the node was woken earlier by a frame delivery, or
    /// re-parked since — are recognized by `epoch` and ignored.
    Wake {
        /// Node index.
        node: usize,
        /// The park generation this wake was scheduled for.
        epoch: u64,
    },
    /// A frame arriving at a NIC port at instant `at` (folded into the
    /// trace digest, then DMA'd toward the RX ring).
    Deliver {
        /// Destination device index.
        dev: usize,
        /// Destination port on that device.
        port: usize,
        /// Nominal arrival instant (the digest timestamps with this).
        at: SimTime,
        /// The frame (a shared buffer; cloning is a refcount bump).
        frame: Frame,
    },
    /// A frame arriving at a switch ingress port: run the fabric's
    /// forwarding decision and propagate the surviving egress copies.
    SwitchHop {
        /// Switch index.
        sw: usize,
        /// Ingress port on that switch.
        port: usize,
        /// Arrival instant at the ingress port.
        at: SimTime,
        /// The frame.
        frame: Frame,
    },
    /// A scheduled infrastructure fault firing: entry `idx` of the
    /// resolved fault plan. Scheduled on **every** shard at boot (the
    /// plan is replicated, so keys and instants match at any worker
    /// count); each shard applies the slice of the fault it owns, plus
    /// the shared link-state view every transmitter needs.
    Fault {
        /// Index into the resolved fault plan.
        idx: usize,
    },
}

/// A schedulable infrastructure fault, in scenario-facing terms: the
/// entity it names plus the direction of the transition. Schedule with
/// [`NetSim::add_fault`]; resolution against the cabling happens at
/// [`NetSim::run`] start (so an impossible target is a configuration
/// error, not a silent no-op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Administratively downs the cable on `node`'s NIC port: every frame
    /// either end would transmit onto that cable is blackholed at its TX
    /// hop (counted in [`ImpairmentStats::blackholed`]) until a matching
    /// [`Fault::LinkUp`]. Frames already in flight still deliver.
    LinkDown {
        /// The node whose uplink cable goes down.
        node: NodeId,
    },
    /// Restores the cable downed by [`Fault::LinkDown`].
    LinkUp {
        /// The node whose uplink cable comes back.
        node: NodeId,
    },
    /// Fails a switching fabric: every ingress frame is dropped (counted
    /// in [`updk::switch::SwitchStats::fail_drops`]) until recovery.
    SwitchFail {
        /// The failed switch.
        sw: SwitchId,
    },
    /// Recovers a failed switch. Its MAC table is flushed — the fabric
    /// comes back cold and re-floods until it re-learns stations, exactly
    /// like a rebooted switch.
    SwitchRecover {
        /// The recovering switch.
        sw: SwitchId,
    },
    /// Crashes a node: its stack (every TCB, listener, ARP entry) and all
    /// its applications vanish, its poll loop stops, and frames arriving
    /// at its NIC while dead are discarded (counted in
    /// [`FaultStats::frames_to_dead`]). Peers discover the death the way
    /// real peers do: retransmission give-up (`ETIMEDOUT`), or an RST
    /// when the restarted incarnation receives a segment for a
    /// connection it never heard of. Reports of the crashed incarnation's
    /// apps are discarded with it.
    NodeCrash {
        /// The node to crash.
        node: NodeId,
    },
    /// Restarts a crashed node: a fresh stack with the same interface
    /// config (cc/SACK knobs included), every app rebuilt from its
    /// install-time blueprint — listeners re-established, fleets
    /// re-launched on their original seed — and the poll loop rescheduled.
    NodeRestart {
        /// The node to restart.
        node: NodeId,
    },
}

/// A fault resolved against the cabling at run start: link faults carry
/// both cable endpoints (the TX-hop blackhole check tests the local
/// endpoint on whichever shard transmits) plus the device whose owning
/// shard tallies the event exactly once.
#[derive(Debug, Clone, Copy)]
enum ResolvedFault {
    LinkDown { a: Ep, b: Ep, dev: usize },
    LinkUp { a: Ep, b: Ep, dev: usize },
    SwitchFail { sw: usize },
    SwitchRecover { sw: usize },
    NodeCrash { node: usize },
    NodeRestart { node: usize },
}

/// Per-run fault-plan tallies: what the scheduled faults did. Applied
/// exactly once per fault regardless of worker count (each counter bumps
/// only on the shard owning the faulted entity), so these are part of the
/// byte-identical outcome surface the determinism tests compare.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// `LinkDown` events applied.
    pub link_down_events: u64,
    /// `LinkUp` events applied.
    pub link_up_events: u64,
    /// `SwitchFail` events applied.
    pub switch_fail_events: u64,
    /// `SwitchRecover` events applied.
    pub switch_recover_events: u64,
    /// `NodeCrash` events applied.
    pub node_crashes: u64,
    /// `NodeRestart` events applied.
    pub node_restarts: u64,
    /// Frames that arrived at a crashed node's NIC and were discarded
    /// (the wire carried them; nobody was home).
    pub frames_to_dead: u64,
}

impl FaultStats {
    /// Accumulates another tally into this one (shard merge).
    fn absorb(&mut self, o: FaultStats) {
        self.link_down_events += o.link_down_events;
        self.link_up_events += o.link_up_events;
        self.switch_fail_events += o.switch_fail_events;
        self.switch_recover_events += o.switch_recover_events;
        self.node_crashes += o.node_crashes;
        self.node_restarts += o.node_restarts;
        self.frames_to_dead += o.frames_to_dead;
    }
}

/// The install-time blueprint of one application, recorded by the
/// `add_*` installers so [`Fault::NodeRestart`] can rebuild the node's
/// apps from scratch — same labels, same configs, same seeds, same
/// (persistent) memory-arena buffers.
enum AppSpec {
    Server {
        label: String,
        port: u16,
        buf: Capability,
    },
    Client {
        label: String,
        remote: (Ipv4Addr, u16),
        duration: SimDuration,
        write_gap: SimDuration,
        buf: Capability,
    },
    Http {
        label: String,
        port: u16,
        cfg: HttpServerConfig,
        buf: Capability,
    },
    Fleet {
        label: String,
        cfg: FleetConfig,
        seed: u64,
        buf: Capability,
    },
    Chaos {
        label: String,
        cfg: ChaosConfig,
        seed: u64,
    },
}

/// Per-kind event counters for one run: the *why* behind `events_per_sec`
/// moving across PRs. Emitted into `BENCH_*.json` by the bench targets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Main-loop iterations executed (scheduled polls plus honored wakes).
    pub loop_polls: u64,
    /// Iterations that did no work (no RX, no TX, no app progress).
    pub idle_polls: u64,
    /// Frame deliveries into NIC ports.
    pub deliveries: u64,
    /// Switch ingress/forwarding events.
    pub switch_hops: u64,
    /// Honored timer wakes: a parked node reaching a known deadline
    /// (stack retransmit/delayed-ACK/TIME_WAIT timer or an app's
    /// write-gap/stop instant).
    pub timer_wakes: u64,
    /// Wake events that arrived after the node had already been woken (or
    /// re-parked); recognized by epoch and dropped.
    pub stale_wakes: u64,
    /// Times a quiescent node parked instead of rescheduling its poll.
    pub parks: u64,
    /// Parked nodes woken early by a frame delivery to their port.
    pub wakes: u64,
    /// Boxed closure events scheduled on the engine — zero in steady state
    /// (every hot-path event is a typed [`NetEvent`]).
    pub boxed_events: u64,
}

/// Per-run tallies of the sharded driver itself — rendezvous rounds,
/// cross-shard traffic and rehoming copies. Deliberately **not** part of
/// [`EventCounters`]: simulation counters are asserted byte-identical
/// across worker counts, while these describe the driver that happened to
/// run (all zero for a plain single-engine run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundCounters {
    /// Rendezvous rounds driven (max across shards — rounds are lockstep).
    pub rounds: u64,
    /// Rounds in which a shard's window contained no event to execute.
    pub empty_rounds: u64,
    /// Frames handed across a shard boundary (deliveries + switch hops).
    pub xshard_frames: u64,
    /// Bytes actually copied to rehome frames across threads — zero when
    /// shards are multiplexed on one thread (shared handoff) and zero per
    /// relay once a frame is already an `Arc`-backed page.
    pub rehome_bytes: u64,
}

/// A rolling digest over every frame delivery of a run: the
/// `harness_determinism`-style trace identity witness, cheap enough to keep
/// always-on. Two runs with identical construction and seed must produce
/// identical digests; any divergence in delivery instant, destination or
/// payload bytes changes the FNV-1a fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDigest {
    /// FNV-1a over `(at_ns, dev, port, len, bytes)` of every delivery.
    pub digest: u64,
    /// Deliveries folded in.
    pub frames: u64,
    /// Frame bytes folded in.
    pub bytes: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        TraceDigest {
            digest: 0xCBF2_9CE4_8422_2325, // FNV-1a offset basis
            frames: 0,
            bytes: 0,
        }
    }
}

impl TraceDigest {
    #[inline]
    fn fold(digest: u64, b: u8) -> u64 {
        (digest ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    }

    fn record(&mut self, at: SimTime, dev: usize, port: usize, frame: &[u8]) {
        // Fold through a local so the per-byte chain (this runs once per
        // delivered frame byte) stays in a register instead of bouncing
        // through `self`.
        let mut d = self.digest;
        for b in at.as_nanos().to_le_bytes() {
            d = Self::fold(d, b);
        }
        d = Self::fold(d, dev as u8);
        d = Self::fold(d, port as u8);
        for b in (frame.len() as u32).to_le_bytes() {
            d = Self::fold(d, b);
        }
        for &b in frame {
            d = Self::fold(d, b);
        }
        self.digest = d;
        self.frames += 1;
        self.bytes += frame.len() as u64;
    }
}

/// How contending app cVMs are scheduled against the Scenario 2 service
/// loop.
///
/// The paper's contended Table II rows are *unbalanced* on the client side
/// (531 vs 410 Mbit/s), which the authors attribute to "the lack of
/// mechanisms for fairness control" — their service mutex lets whichever
/// cVM retries first barge ahead. [`AppSched::Barging`] models that
/// testbed behavior; [`AppSched::RoundRobin`] (the default here) is the
/// fairness-control fix the paper defers to future work, under which the
/// contended flows split the port evenly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AppSched {
    /// Every app cVM steps once per service-loop turn (FIFO-fair).
    #[default]
    RoundRobin,
    /// The first app cVM runs every turn; each later cVM is only granted
    /// `grant` of every `period` turns, as when an unfair mutex plus the
    /// OS scheduler systematically favor one waiter.
    Barging {
        /// Turns (out of `period`) in which a non-first cVM may step.
        grant: u32,
        /// The scheduling period in loop turns.
        period: u32,
    },
    /// Explicit QoS (the paper's deferred future work, via
    /// [`updk::qos`]-style weighted service): the second app cVM steps in
    /// proportion `weight_rest / weight_first` of the first's turns, in
    /// starvation-free convoys. `Weighted { 1, 1 }` behaves like
    /// [`AppSched::RoundRobin`]; `Weighted { 2, 1 }` gives the first cVM
    /// twice the client bandwidth.
    Weighted {
        /// Service weight of the first app cVM.
        weight_first: u32,
        /// Service weight of every other app cVM.
        weight_rest: u32,
    },
}

impl AppSched {
    /// The paper's testbed asymmetry, calibrated so the contended client
    /// split lands near Table II's 531/410 Mbit/s.
    ///
    /// The denial windows must be *convoys* (hundreds of loop turns), not
    /// per-turn interleaving: TCP's send buffer rides out short denials,
    /// so only a starvation burst long enough to drain the buffer (≈130 µs
    /// at line rate) shifts bandwidth — which is exactly how a mutex convoy
    /// plus an unfair scheduler starve a waiter in the real system.
    pub fn paper_barging() -> Self {
        AppSched::Barging {
            grant: 950,
            period: 2_000,
        }
    }

    /// Whether app index `idx` gets to step on loop turn `turn`.
    fn allows(&self, idx: usize, turn: u64) -> bool {
        match *self {
            AppSched::RoundRobin => true,
            AppSched::Barging { grant, period } => {
                idx == 0 || (turn % u64::from(period.max(1))) < u64::from(grant)
            }
            AppSched::Weighted {
                weight_first,
                weight_rest,
            } => {
                // Time-division service in convoys of QUANTUM turns per
                // weight point: long enough that the active flow's TCP
                // pipeline saturates the port during its window, so the
                // bandwidth split equals the weight ratio.
                const QUANTUM: u64 = 500;
                let wf = u64::from(weight_first.max(1)) * QUANTUM;
                let wr = u64::from(weight_rest.max(1)) * QUANTUM;
                let pos = turn % (wf + wr);
                if idx == 0 {
                    pos < wf
                } else {
                    pos >= wf
                }
            }
        }
    }
}

/// Per-node isolation charges for the active scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct IsolationProfile {
    /// Extra nanoseconds charged per application `ff_*` call (0 for
    /// Baseline and Scenario 1 — their `ff_*` calls stay inside one
    /// protection domain; Scenario 2 charges the wrapper cross-call).
    pub per_ff_call_ns: u64,
    /// This node's main loop serializes on the Scenario 2 service mutex.
    pub s2_service: bool,
}

/// Declarative per-node protocol configuration for
/// [`NetSim::configure_node`]: `None` fields keep the stack's current
/// setting, so one struct update can adjust a single knob or several at
/// once. Replaces the accreting `set_node_*` setter family (which now
/// delegate here).
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeConfig {
    /// TCP congestion-control algorithm for connections opened or
    /// accepted from now on.
    pub cc: Option<CcAlgo>,
    /// SACK negotiation for connections opened or accepted from now on
    /// (both ends must enable it to be active on a connection).
    pub sack: Option<bool>,
}

struct Node {
    name: String,
    dev: usize,
    port: usize,
    mem: usize,
    stack: FStack,
    servers: Vec<Option<ServerApp>>,
    clients: Vec<Option<ClientApp>>,
    /// HTTP serving-plane apps (stepped after the iperf apps, so adding
    /// them to a scenario never perturbs an existing iperf-only digest).
    https: Vec<Option<HttpServerApp>>,
    fleets: Vec<Option<FleetApp>>,
    /// Fault-injection campaigns (stepped after every serving app, so a
    /// chaos-free scenario's digest is untouched by this slot existing).
    chaos: Vec<Option<ChaosApp>>,
    profile: IsolationProfile,
    turns: u64,
    /// `true` when app steps are gated on the stack's dirty-fd set (ideal
    /// measurement hosts only — nodes with per-call isolation charges or
    /// the S2 service mutex step every app every turn, since their skipped
    /// `ff_*` calls would change the accounted iteration cost). Resolved
    /// at `run()` start.
    gated: bool,
    /// fd → app slot (servers first, then clients) for dirty-fd routing.
    app_of_fd: Vec<Option<u32>>,
    /// Per-app-slot "a step could progress" flags.
    runnable: Vec<bool>,
    /// Scratch for draining the stack's dirty-fd set (no per-turn alloc).
    fd_scratch: Vec<chos::fdtable::Fd>,
    /// What this node's port is cabled to, resolved once at `run()` start
    /// so the TX hot path never touches the topology `HashMap`.
    cabled: Option<Ep>,
    /// `true` while the node's poll loop is parked (quiescent, no event
    /// scheduled except possibly a [`NetEvent::Wake`] at a known deadline).
    parked: bool,
    /// Park generation; bumped on every park and wake. Scheduled wakes are
    /// cancelled in place when superseded, so a dispatched wake must always
    /// match — the epoch survives as the debug assertion of that invariant.
    epoch: u64,
    /// The handle of the pending scheduled [`NetEvent::Wake`], if any, so a
    /// superseding wake (an early frame delivery) cancels it in place
    /// instead of leaving it to dispatch stale.
    wake: Option<EventHandle>,
    /// While parked: the instant the next poll iteration *would* have run.
    /// Wakes land on this lattice (`anchor + k·mainloop_idle_ns`), so a
    /// woken loop observes the world at exactly the instants the
    /// unconditional polling loop would have — wire behavior is preserved
    /// bit for bit.
    anchor: SimTime,
    /// `true` between a [`Fault::NodeCrash`] and its restart: the poll
    /// loop is dead, the stack is an empty husk, and arriving frames are
    /// discarded at the NIC.
    crashed: bool,
    /// Install-time app blueprints, in installation order, for
    /// [`Fault::NodeRestart`] reconstruction.
    specs: Vec<AppSpec>,
}

/// A cross-shard frame payload — never a byte-for-byte rebuild.
///
/// When the shards are multiplexed on a single thread there is only one
/// buffer pool, so the handoff is a plain refcount bump
/// ([`XPayload::Shared`]). Between worker *threads* the frame travels as
/// an immutable Arc-backed pool page ([`XPayload::Page`], built by
/// [`Frame::to_page`]): at most one copy at the sending boundary (zero
/// for a relayed frame that already is a page), and the destination shard
/// uses the page in place instead of re-materializing it into its own
/// pool as the old `Vec<u8>` handoff did.
enum XPayload {
    /// A shared thread-local frame (single-thread multiplexed handoff).
    Shared(Frame),
    /// An immutable Arc-backed page (thread-crossing handoff).
    Page(Frame),
}

impl XPayload {
    fn into_frame(self) -> Frame {
        match self {
            XPayload::Shared(f) | XPayload::Page(f) => f,
        }
    }
}

/// One cross-shard event in flight between lookahead windows: a frame
/// delivery or switch hop whose destination lives in another shard. The
/// [`OrderKey`] built by the sending engine makes the injected event sort
/// exactly where the single-engine run would have dispatched it.
struct XEvent {
    at: SimTime,
    key: OrderKey,
    /// `true`: a [`NetEvent::SwitchHop`] to switch `obj`; `false`: a
    /// [`NetEvent::Deliver`] to device `obj`.
    to_switch: bool,
    obj: u32,
    port: u32,
    payload: XPayload,
}

// SAFETY: the only non-`Send` content is [`XPayload::Shared`], which is
// constructed exclusively when every shard is multiplexed on one thread
// ([`ShardCtx::same_thread`]); threaded runs always rehome payloads to
// [`XPayload::Page`] — an immutable `Arc`-backed pool page
// ([`Frame::to_page`]) whose storage is never aliased by any `Rc` — so an
// `XEvent` that actually crosses a thread boundary never holds
// thread-local state.
unsafe impl Send for XEvent {}

/// One deferred trace-digest fold of a sharded run: the delivery's
/// identity plus the dispatch key it sorted under. Folding the merged,
/// key-sorted log reproduces the byte-exact digest of the single-engine
/// run (which folds inline, in dispatch order).
struct DeliveryRecord {
    at: SimTime,
    key: OrderKey,
    dev: u32,
    port: u32,
    frame: Frame,
}

/// Per-shard execution context, present only while a sharded run drives
/// this `NetSim` as one of its shard worlds.
struct ShardCtx {
    /// This shard's id.
    id: u32,
    /// Owning shard per node / per device / per switch (global indices).
    node_shard: Vec<u32>,
    dev_shard: Vec<u32>,
    sw_shard: Vec<u32>,
    /// `true` while the shards are multiplexed on one thread, enabling the
    /// shared-frame handoff ([`XPayload::Shared`]).
    same_thread: bool,
    /// Cross-shard events generated this window, per destination shard;
    /// exchanged at the window barrier.
    outbox: Vec<Vec<XEvent>>,
    /// Driver tallies for this shard (merged into
    /// [`SimOutcome::rounds`] at the end of the run).
    rounds: RoundCounters,
    /// Deferred digest folds, in this shard's execution order (so the
    /// front is always the oldest). The sequential driver drains and
    /// folds finalized entries every round — bounding retained frames to
    /// roughly one window's deliveries — while the threaded driver folds
    /// everything at merge time (worker threads cannot share the digest
    /// accumulator mid-run without another serialization point).
    log: std::collections::VecDeque<DeliveryRecord>,
}

/// A shard world paired with its engine — the unit a worker thread owns.
///
/// # Safety
///
/// `NetSim` is not `Send` (frames are `Rc`-backed and pools are
/// thread-local). The sharded runner upholds the invariant that makes the
/// move sound anyway: every `Rc` reference graph is closed within one
/// shard — frames cross shards only as immutable `Arc`-backed pool pages
/// ([`XEvent::payload`], see [`Frame::to_page`]) — so a `ShardRun` moves
/// between threads only as a whole, with no thread-local reference left
/// behind. Storage freed on a foreign thread simply recycles into that
/// thread's pool.
struct ShardRun {
    sim: NetSim,
    engine: Engine<NetSim>,
}

unsafe impl Send for ShardRun {}

/// Coordination state shared by the worker threads of a threaded sharded
/// run, under the single-rendezvous protocol: each round ends in exactly
/// **one** barrier wait, with every exchange slot double-buffered by round
/// parity (`round & 1`). A worker writes the slot the *next* round will
/// read (mailbox flush, outbox minima, its published next instant) before
/// the barrier, and reads the current round's slot after it; because a
/// worker can never be a full round ahead of a peer (the barrier is
/// lockstep), the two parities never alias.
struct ShardShared {
    barrier: Barrier,
    /// `mailbox[p][src][dst]`: cross-shard events flushed by `src` for
    /// `dst`, to be injected at the start of the round with parity `p`.
    mailbox: [Vec<Vec<Mutex<Vec<XEvent>>>>; 2],
    /// `next_at[p][s]`: shard `s`'s earliest pending instant (`u64::MAX`
    /// = idle) as published for the round with parity `p` — *excluding*
    /// the mailbox events it has not injected yet.
    next_at: [Vec<AtomicU64>; 2],
    /// `out_min[p][src][dst]`: the minimum timestamp `src` flushed into
    /// `mailbox[p][src][dst]` (`u64::MAX` = nothing, and the reader skips
    /// that mailbox lock entirely). Folding these into `next_at` gives
    /// every worker the same *effective* next instants the sequential
    /// driver reads off its engines after injection — which is what lets
    /// windows be derived before anyone has actually injected.
    out_min: [Vec<Vec<AtomicU64>>; 2],
    stop: u64,
}

/// The assembled simulation world (driven by [`Engine`] events).
pub struct NetSim {
    costs: CostModel,
    devs: Vec<EthDev>,
    mems: Vec<TaggedMemory>,
    mem_bump: Vec<u64>,
    nodes: Vec<Node>,
    links: HashMap<Ep, Ep>,
    switches: Vec<LinkFabric>,
    trace: TraceDigest,
    wire: Wire,
    impairments: Impairments,
    impairment_stats: ImpairmentStats,
    app_sched: AppSched,
    s2_mutex: Option<ServiceMutex>,
    stop_at: SimTime,
    /// Master seed; per-destination-port impairment streams derive from it
    /// at `run()` start (see [`NetSim::port_rng`]).
    seed: u64,
    /// Per-`(dev, port)` impairment RNG streams, derived from the master
    /// seed at `run()` start. Every delivery toward a given NIC port draws
    /// from that port's own stream; since all deliveries to a port come
    /// from its single cabled peer, the draw order is a pure function of
    /// that peer's (deterministic) execution — which is what keeps lossy
    /// runs byte-identical at any worker count.
    port_rng: Vec<Vec<SimRng>>,
    kmod: BindingRegistry,
    next_pci: u8,
    counters: EventCounters,
    /// `(dev, port)` → owning node index, resolved at `run()` start so a
    /// delivery can wake the parked loop that polls that port.
    dev_owner: Vec<Vec<Option<usize>>>,
    /// Switch egress cables (`sw_cabled[sw][port]`), resolved at `run()`
    /// start for the forwarding hot path.
    sw_cabled: Vec<Vec<Option<Ep>>>,
    /// The idle poll period (from the cost model): the lattice step parked
    /// nodes wake on.
    idle_period: u64,
    /// Requested worker (shard) count for [`NetSim::run`]; 1 = the classic
    /// single-engine loop.
    workers: usize,
    /// `true` (the default): [`NetSim::run`] consults the
    /// [`Profitability`] model and transparently collapses an
    /// unprofitable shard plan to the single-engine loop. `false` forces
    /// the requested worker count (tests use this to actually exercise
    /// the sharded drivers on small topologies).
    adaptive_workers: bool,
    /// Explicit window-driver choice (`Some(true)` = worker threads,
    /// `Some(false)` = single-thread multiplexing, `None` = auto).
    worker_threads: Option<bool>,
    /// Present while this instance is one shard of a sharded run.
    shard_ctx: Option<Box<ShardCtx>>,
    /// The scheduled fault plan as built ([`NetSim::add_fault`] order).
    fault_plan: Vec<(SimTime, Fault)>,
    /// The plan resolved against the cabling at `run()` start, replicated
    /// verbatim into every shard so fault event keys match everywhere.
    faults: Vec<(SimTime, ResolvedFault)>,
    /// Cable endpoints currently administratively down: a TX hop whose
    /// local endpoint is in this set blackholes the frame.
    link_down: std::collections::HashSet<Ep>,
    /// What the fault plan did (each fault tallied on its owner shard).
    fault_stats: FaultStats,
}

impl std::fmt::Debug for NetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetSim")
            .field("nodes", &self.nodes.len())
            .field("devs", &self.devs.len())
            .finish()
    }
}

/// Default per-node memory arena.
const NODE_MEM: u64 = 4 << 20;
/// Packet pool region per port.
const POOL_BYTES: u64 = 1 << 20;
/// App buffer size (per ff_read/ff_write call).
const APP_BUF: u64 = 16 * 1024;

impl NetSim {
    /// Creates an empty simulation with the given cost model.
    pub fn new(costs: CostModel) -> Self {
        let idle_period = costs.mainloop_idle_ns.max(1);
        NetSim {
            costs,
            devs: Vec::new(),
            mems: Vec::new(),
            mem_bump: Vec::new(),
            nodes: Vec::new(),
            links: HashMap::new(),
            switches: Vec::new(),
            trace: TraceDigest::default(),
            wire: Wire::new(SimDuration::from_nanos(1_000)),
            impairments: Impairments::default(),
            impairment_stats: ImpairmentStats::default(),
            app_sched: AppSched::default(),
            s2_mutex: None,
            stop_at: SimTime::MAX,
            seed: 0xCAB1E,
            port_rng: Vec::new(),
            kmod: BindingRegistry::new(),
            next_pci: 3,
            counters: EventCounters::default(),
            dev_owner: Vec::new(),
            sw_cabled: Vec::new(),
            idle_period,
            workers: 1,
            adaptive_workers: true,
            worker_threads: None,
            shard_ctx: None,
            fault_plan: Vec::new(),
            faults: Vec::new(),
            link_down: std::collections::HashSet::new(),
            fault_stats: FaultStats::default(),
        }
    }

    /// Sets the worker (shard) count for [`NetSim::run`].
    ///
    /// At `n > 1` the topology is partitioned into up to `n` shards, each
    /// driven by its own engine in conservative lookahead windows, with
    /// cross-shard frames exchanged at window barriers. Wire behavior is
    /// **byte-identical at any worker count** — same trace digest, same
    /// reports, same counters; `n = 1` (the default) is exactly the classic
    /// single-engine loop. Shards run on worker threads when the host has
    /// more than one CPU, and are multiplexed on the calling thread
    /// otherwise (identical results either way; `CAPNET_SHARD_THREADS=0/1`
    /// overrides the choice).
    pub fn set_workers(&mut self, n: usize) {
        self.workers = n.max(1);
    }

    /// Enables/disables adaptive worker selection (default: enabled).
    ///
    /// When enabled, a sharded run first asks the [`Profitability`] model
    /// whether the plan's estimated events per rendezvous round cover the
    /// host cost of driving a round; if not, the run transparently
    /// collapses to the single-engine loop ([`SimOutcome::workers`]
    /// reports `1`). Results are byte-identical either way — this knob
    /// only decides which identical-result execution path runs, and
    /// exists so tests and benchmarks can force small topologies through
    /// the sharded drivers.
    pub fn set_adaptive_workers(&mut self, adaptive: bool) {
        self.adaptive_workers = adaptive;
    }

    /// Overrides the sharded-run window driver: `Some(true)` forces
    /// worker threads, `Some(false)` forces single-thread multiplexing,
    /// `None` (the default) picks threads when the host has more than one
    /// CPU (the `CAPNET_SHARD_THREADS` environment variable, when set,
    /// takes the place of the auto choice). Either driver produces
    /// byte-identical results; this knob only exists for tests and for
    /// pinning the execution mode on unusual hosts.
    pub fn set_worker_threads(&mut self, threaded: Option<bool>) {
        self.worker_threads = threaded;
    }

    /// Adds a NIC of `model` (kernel-detached and ready to configure).
    pub fn add_dev(&mut self, model: NicModel) -> Result<DevId, CapnetError> {
        let addr = PciAddress::new(0, self.next_pci, 0);
        self.next_pci += 1;
        self.kmod
            .discover(addr, "Intel 82576 Gigabit Network Connection");
        self.kmod.bind_userspace(addr)?;
        self.devs.push(EthDev::new(addr, model, self.costs.clone()));
        Ok(DevId(self.devs.len() - 1))
    }

    /// Cables `(a, port_a)` to `(b, port_b)` (full duplex).
    ///
    /// # Errors
    ///
    /// [`CapnetError::Config`] if a port index is out of range for its
    /// device, if both endpoints are the same port, or if either port is
    /// already cabled (to a device or a switch) — a port holds one cable.
    pub fn link(
        &mut self,
        a: DevId,
        port_a: usize,
        b: DevId,
        port_b: usize,
    ) -> Result<(), CapnetError> {
        let ea = self.dev_ep(a, port_a)?;
        let eb = self.dev_ep(b, port_b)?;
        self.connect(ea, eb)
    }

    /// Adds an N-port [`LinkFabric`] learning switch with the default
    /// egress queue depth ([`LinkFabric::DEFAULT_QUEUE`]).
    ///
    /// # Errors
    ///
    /// [`CapnetError::Config`] if `ports < 2`.
    pub fn add_switch(&mut self, ports: usize) -> Result<SwitchId, CapnetError> {
        self.add_switch_with_queue(ports, LinkFabric::DEFAULT_QUEUE)
    }

    /// [`NetSim::add_switch`] with an explicit per-port egress queue depth
    /// (frames); shallow queues drop earlier under convergence, deep queues
    /// trade drops for latency.
    ///
    /// # Errors
    ///
    /// [`CapnetError::Config`] if `ports < 2` or `queue == 0`.
    pub fn add_switch_with_queue(
        &mut self,
        ports: usize,
        queue: usize,
    ) -> Result<SwitchId, CapnetError> {
        if ports < 2 {
            return Err(CapnetError::Config(format!(
                "a switch needs at least 2 ports, got {ports}"
            )));
        }
        if queue == 0 {
            return Err(CapnetError::Config(
                "switch egress queue depth must be nonzero".into(),
            ));
        }
        self.switches.push(LinkFabric::new(ports, queue));
        Ok(SwitchId(self.switches.len() - 1))
    }

    /// Cables NIC port `(dev, dev_port)` into switch port `(sw, sw_port)`.
    ///
    /// # Errors
    ///
    /// [`CapnetError::Config`] on out-of-range ports or already-cabled
    /// endpoints.
    pub fn attach(
        &mut self,
        dev: DevId,
        dev_port: usize,
        sw: SwitchId,
        sw_port: usize,
    ) -> Result<(), CapnetError> {
        let ed = self.dev_ep(dev, dev_port)?;
        let es = self.sw_ep(sw, sw_port)?;
        self.connect(ed, es)
    }

    /// Trunks two switches together: `(a, port_a)` to `(b, port_b)`. The
    /// resulting graph must stay loop-free (tree topologies: star, chain,
    /// dumbbell) — there is no spanning-tree protocol, so a cycle floods
    /// forever.
    ///
    /// # Errors
    ///
    /// [`CapnetError::Config`] on out-of-range ports, a self-trunk, or
    /// already-cabled endpoints.
    pub fn link_switches(
        &mut self,
        a: SwitchId,
        port_a: usize,
        b: SwitchId,
        port_b: usize,
    ) -> Result<(), CapnetError> {
        let ea = self.sw_ep(a, port_a)?;
        let eb = self.sw_ep(b, port_b)?;
        self.connect(ea, eb)
    }

    fn dev_ep(&self, dev: DevId, port: usize) -> Result<Ep, CapnetError> {
        let ports = self
            .devs
            .get(dev.0)
            .ok_or_else(|| CapnetError::Config(format!("no such device {}", dev.0)))?
            .port_count();
        if port >= ports {
            return Err(CapnetError::Config(format!(
                "device {} has {ports} port(s), no port {port}",
                dev.0
            )));
        }
        Ok(Ep::Dev(dev.0, port))
    }

    fn sw_ep(&self, sw: SwitchId, port: usize) -> Result<Ep, CapnetError> {
        let ports = self
            .switches
            .get(sw.0)
            .ok_or_else(|| CapnetError::Config(format!("no such switch {}", sw.0)))?
            .port_count();
        if port >= ports {
            return Err(CapnetError::Config(format!(
                "switch {} has {ports} port(s), no port {port}",
                sw.0
            )));
        }
        Ok(Ep::Sw(sw.0, port))
    }

    fn connect(&mut self, a: Ep, b: Ep) -> Result<(), CapnetError> {
        if a == b {
            return Err(CapnetError::Config(format!("cannot cable {a} to itself")));
        }
        for ep in [a, b] {
            if let Some(peer) = self.links.get(&ep) {
                return Err(CapnetError::Config(format!(
                    "{ep} is already cabled to {peer}"
                )));
            }
        }
        self.links.insert(a, b);
        self.links.insert(b, a);
        Ok(())
    }

    /// Degrades frame delivery with `imp` (loss, corruption, duplication,
    /// reordering, jitter). The default is the ideal cabling of the paper's
    /// testbed. Impairments are applied **once per end-to-end path**, on
    /// the final hop into the destination NIC — on a pairwise link that is
    /// the cable itself; on a switched path the switch hops stay clean and
    /// the last switch-to-NIC cable degrades (loss does *not* compound
    /// with hop count). Decisions are drawn from the simulation's
    /// deterministic RNG, so runs stay reproducible.
    pub fn set_impairments(&mut self, imp: Impairments) {
        self.impairments = imp;
    }

    /// Selects how contending app cVMs are scheduled (see [`AppSched`]).
    pub fn set_app_sched(&mut self, sched: AppSched) {
        self.app_sched = sched;
    }

    /// Reseeds the simulation's deterministic RNG (which drives impairment
    /// draws). Two simulations built identically and seeded identically
    /// produce identical outcomes; without a call the fixed default seed
    /// applies, so unseeded runs are already reproducible.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// The per-destination-port impairment stream: the master seed mixed
    /// with the port's identity, so each cable's draws are independent of
    /// every other cable's — and of how the simulation is sharded.
    fn derive_port_rng(seed: u64, dev: usize, port: usize) -> SimRng {
        let mix = seed
            ^ (dev as u64 + 1).wrapping_mul(0x0000_0100_0000_01B3)
            ^ (port as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(mix)
    }

    /// Creates a node: its own memory arena, a stack on `(dev, port)` with
    /// address `ip`, and the given isolation profile.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        dev: DevId,
        port: usize,
        ip: Ipv4Addr,
        profile: IsolationProfile,
    ) -> Result<NodeId, CapnetError> {
        let name = name.into();
        let mem_idx = self.mems.len();
        let mut mem = TaggedMemory::new(NODE_MEM);
        // Carve the packet pool ("correct permission flags") and configure.
        let region = mem
            .root_cap()
            .try_restrict(4096, POOL_BYTES)?
            .try_restrict_perms(cheri::Perms::data())?;
        self.devs[dev.0].configure_port(port, &mut mem, region, 512)?;
        let mac = self.devs[dev.0].mac(port);
        let stack = FStack::new(StackConfig::new(name.clone(), mac, ip));
        self.mems.push(mem);
        self.mem_bump.push(4096 + POOL_BYTES);
        if profile.s2_service && self.s2_mutex.is_none() {
            self.s2_mutex = Some(ServiceMutex::new(&self.costs));
        }
        self.nodes.push(Node {
            name,
            dev: dev.0,
            port,
            mem: mem_idx,
            stack,
            servers: Vec::new(),
            clients: Vec::new(),
            https: Vec::new(),
            fleets: Vec::new(),
            chaos: Vec::new(),
            profile,
            turns: 0,
            gated: false,
            app_of_fd: Vec::new(),
            runnable: Vec::new(),
            fd_scratch: Vec::new(),
            cabled: None,
            parked: false,
            epoch: 0,
            wake: None,
            anchor: SimTime::ZERO,
            crashed: false,
            specs: Vec::new(),
        });
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Replaces `node`'s isolation profile. Profiles are only read when
    /// the run starts (loop gating, per-call charges), so any point
    /// between [`Self::add_node`] and [`Self::run`] works — scenario
    /// builders use this to re-cost prebuilt topologies.
    pub fn set_node_profile(&mut self, node: NodeId, profile: IsolationProfile) {
        if profile.s2_service && self.s2_mutex.is_none() {
            self.s2_mutex = Some(ServiceMutex::new(&self.costs));
        }
        self.nodes[node.0].profile = profile;
    }

    /// Applies a [`NodeConfig`] to `node`'s stack: each `Some` field is
    /// set, each `None` leaves the current value. Call between
    /// [`Self::add_node`] and app installation — clients connect the
    /// moment they are installed, so a later change won't touch them.
    pub fn configure_node(&mut self, node: NodeId, cfg: NodeConfig) {
        let stack = &mut self.nodes[node.0].stack;
        if let Some(cc) = cfg.cc {
            stack.set_cc(cc);
        }
        if let Some(sack) = cfg.sack {
            stack.set_sack(sack);
        }
    }

    /// Selects the TCP congestion-control algorithm for connections this
    /// node opens or accepts from now on. Same ordering rule as
    /// [`Self::configure_node`], which this delegates to.
    pub fn set_node_cc(&mut self, node: NodeId, cc: CcAlgo) {
        self.configure_node(
            node,
            NodeConfig {
                cc: Some(cc),
                ..NodeConfig::default()
            },
        );
    }

    /// Enables (or disables) SACK negotiation for connections this node
    /// opens or accepts from now on. Both ends must enable it for SACK to
    /// be active on a connection. Same ordering rule as
    /// [`Self::configure_node`], which this delegates to.
    pub fn set_node_sack(&mut self, node: NodeId, sack: bool) {
        self.configure_node(
            node,
            NodeConfig {
                sack: Some(sack),
                ..NodeConfig::default()
            },
        );
    }

    fn carve_app_buf(&mut self, node: NodeId, fill: Option<u8>) -> Result<Capability, CapnetError> {
        let mem_idx = self.nodes[node.0].mem;
        let base = self.mem_bump[mem_idx].next_multiple_of(16);
        self.mem_bump[mem_idx] = base + APP_BUF;
        let cap = self.mems[mem_idx]
            .root_cap()
            .try_restrict(base, APP_BUF)?
            .try_restrict_perms(cheri::Perms::data())?;
        if let Some(b) = fill {
            self.mems[mem_idx].fill(&cap, base, APP_BUF, b)?;
        }
        Ok(cap)
    }

    /// Installs an iperf server (receiver) on `node` listening at `port`.
    pub fn add_server(
        &mut self,
        node: NodeId,
        label: impl Into<String>,
        port: u16,
    ) -> Result<(), CapnetError> {
        let label = label.into();
        let buf = self.carve_app_buf(node, None)?;
        let n = &mut self.nodes[node.0];
        let app = ServerApp::start(&mut n.stack, label.clone(), port, buf)?;
        n.servers.push(Some(app));
        n.specs.push(AppSpec::Server { label, port, buf });
        Ok(())
    }

    /// Installs an iperf client (sender) on `node`, targeting
    /// `remote:port`, sending for `duration` once connected.
    pub fn add_client(
        &mut self,
        node: NodeId,
        label: impl Into<String>,
        remote: (Ipv4Addr, u16),
        duration: SimDuration,
        write_gap: SimDuration,
    ) -> Result<(), CapnetError> {
        let label = label.into();
        let buf = self.carve_app_buf(node, Some(0xA5))?;
        let n = &mut self.nodes[node.0];
        let mut app = ClientApp::start(
            &mut n.stack,
            label.clone(),
            remote,
            buf,
            duration,
            SimTime::ZERO,
        )?;
        app.set_write_gap(write_gap);
        n.clients.push(Some(app));
        n.specs.push(AppSpec::Client {
            label,
            remote,
            duration,
            write_gap,
            buf,
        });
        Ok(())
    }

    /// Installs an HTTP static server (the serving plane) on `node`,
    /// listening at `port` with the given server policy.
    pub fn add_http_server(
        &mut self,
        node: NodeId,
        label: impl Into<String>,
        port: u16,
        cfg: HttpServerConfig,
    ) -> Result<(), CapnetError> {
        let label = label.into();
        let buf = self.carve_app_buf(node, None)?;
        let n = &mut self.nodes[node.0];
        let app = HttpServerApp::start(&mut n.stack, label.clone(), port, buf, cfg.clone())?;
        n.https.push(Some(app));
        n.specs.push(AppSpec::Http {
            label,
            port,
            cfg,
            buf,
        });
        Ok(())
    }

    /// Installs an open-loop HTTP client fleet on `node`. Its RNG stream
    /// derives from the scenario seed, the node index and the fleet's
    /// slot, so parallel fleets draw independently and a run is a pure
    /// function of [`Self::set_seed`].
    pub fn add_http_fleet(
        &mut self,
        node: NodeId,
        label: impl Into<String>,
        cfg: FleetConfig,
    ) -> Result<(), CapnetError> {
        let buf = self.carve_app_buf(node, Some(0x5A))?;
        let slot = self.nodes[node.0].fleets.len();
        let seed = self.seed
            ^ (node.0 as u64 + 1).wrapping_mul(0x0000_0100_0000_01B3)
            ^ (slot as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ 0x4854_5450; // "HTTP": keep fleet streams off the port-RNG streams
        let label = label.into();
        let n = &mut self.nodes[node.0];
        let app = FleetApp::start(
            label.clone(),
            &mut n.stack,
            buf,
            cfg.clone(),
            seed,
            SimTime::ZERO,
        );
        n.fleets.push(Some(app));
        n.specs.push(AppSpec::Fleet {
            label,
            cfg,
            seed,
            buf,
        });
        Ok(())
    }

    /// Installs a fault-injection campaign on `node`. The campaign's RNG
    /// streams derive from the scenario seed, the node index and the
    /// campaign slot (same scheme as [`Self::add_http_fleet`]), so a run
    /// is a pure function of [`Self::set_seed`]. Wire chaos transmits
    /// through the node's own stack; the capability walker and bit-flip
    /// injector own private arenas and never touch workload memory.
    pub fn add_chaos(
        &mut self,
        node: NodeId,
        label: impl Into<String>,
        cfg: ChaosConfig,
    ) -> Result<(), CapnetError> {
        let slot = self.nodes[node.0].chaos.len();
        let seed = self.seed
            ^ (node.0 as u64 + 1).wrapping_mul(0x0000_0100_0000_01B3)
            ^ (slot as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ 0x4348_414F; // "CHAO": keep chaos streams off the fleet/port streams
        let label = label.into();
        let n = &mut self.nodes[node.0];
        let (mac, ip) = (n.stack.config().mac, n.stack.config().ip);
        let app = ChaosApp::new(label.clone(), cfg.clone(), seed, mac, ip);
        n.chaos.push(Some(app));
        n.specs.push(AppSpec::Chaos { label, cfg, seed });
        Ok(())
    }

    /// Schedules an infrastructure fault at virtual instant `at`. Faults
    /// are resolved against the cabling when the run starts and executed
    /// as first-class engine events, so an identical plan produces
    /// byte-identical runs at any worker count; an empty plan leaves the
    /// run untouched (no events, no draws, no digest change).
    pub fn add_fault(&mut self, at: SimTime, fault: Fault) {
        self.fault_plan.push((at, fault));
    }

    /// Resolves the built fault plan against the cabling: link faults pin
    /// both endpoints of the target cable (the TX blackhole check is
    /// local to whichever side transmits), node/switch faults validate
    /// their targets exist. Runs on the parent simulation **before**
    /// sharding — shadow nodes carry no cabling to resolve against.
    fn resolve_faults(&mut self) -> Result<(), CapnetError> {
        self.faults.clear();
        for &(at, fault) in &self.fault_plan {
            let resolved = match fault {
                Fault::LinkDown { node } | Fault::LinkUp { node } => {
                    let n = self
                        .nodes
                        .get(node.0)
                        .ok_or_else(|| CapnetError::Config(format!("no such node {}", node.0)))?;
                    let a = Ep::Dev(n.dev, n.port);
                    let b = *self.links.get(&a).ok_or_else(|| {
                        CapnetError::Config(format!(
                            "link fault on node {} ({a}), which is not cabled",
                            node.0
                        ))
                    })?;
                    let dev = n.dev;
                    if matches!(fault, Fault::LinkDown { .. }) {
                        ResolvedFault::LinkDown { a, b, dev }
                    } else {
                        ResolvedFault::LinkUp { a, b, dev }
                    }
                }
                Fault::SwitchFail { sw } => {
                    if sw.0 >= self.switches.len() {
                        return Err(CapnetError::Config(format!("no such switch {}", sw.0)));
                    }
                    ResolvedFault::SwitchFail { sw: sw.0 }
                }
                Fault::SwitchRecover { sw } => {
                    if sw.0 >= self.switches.len() {
                        return Err(CapnetError::Config(format!("no such switch {}", sw.0)));
                    }
                    ResolvedFault::SwitchRecover { sw: sw.0 }
                }
                Fault::NodeCrash { node } => {
                    if node.0 >= self.nodes.len() {
                        return Err(CapnetError::Config(format!("no such node {}", node.0)));
                    }
                    ResolvedFault::NodeCrash { node: node.0 }
                }
                Fault::NodeRestart { node } => {
                    if node.0 >= self.nodes.len() {
                        return Err(CapnetError::Config(format!("no such node {}", node.0)));
                    }
                    ResolvedFault::NodeRestart { node: node.0 }
                }
            };
            self.faults.push((at, resolved));
        }
        Ok(())
    }

    /// Starts every device.
    fn start_devices(&mut self) -> Result<(), CapnetError> {
        for dev in &mut self.devs {
            dev.start(&self.kmod)?;
        }
        Ok(())
    }

    /// Runs the simulation for `duration` of virtual time and returns the
    /// application reports, in node/app installation order.
    ///
    /// # Errors
    ///
    /// Configuration errors (unstarted devices, bad links); datapath
    /// capability faults abort the run as errors.
    pub fn run(mut self, duration: SimDuration) -> Result<SimOutcome, CapnetError> {
        self.start_devices()?;
        self.stop_at = SimTime::ZERO + duration;
        self.resolve_caches();
        self.resolve_faults()?;
        if self.workers > 1 {
            self.run_sharded()
        } else {
            let hint = self.would_be_lookahead();
            self.run_single(hint)
        }
    }

    /// The tightest window a 2-shard plan of this topology would run
    /// under — reported by single-engine runs as
    /// [`SimOutcome::lookahead_ns`], so bench output shows the would-be
    /// window width even for runs that never shard (`0` when a 2-way
    /// plan does not exist or cuts no cable).
    fn would_be_lookahead(&self) -> u64 {
        let graph = self.shard_graph();
        let plan = partition_shards(&graph, 2);
        if plan.workers < 2 {
            return 0;
        }
        let dev_shard = self.dev_shards(&plan);
        let sw_shard: Vec<u32> = plan.switch_shard.iter().map(|&s| s as u32).collect();
        self.lookahead_matrix(&dev_shard, &sw_shard, plan.workers)
            .min_finite()
            .unwrap_or(0)
    }

    /// Resolves the topology once: each node's cabled endpoint, each
    /// switch port's cable, which node owns each NIC port (so deliveries
    /// can wake parked loops), the per-port impairment RNG streams, and
    /// the dirty-fd app routing. The event hot path never touches the
    /// `links` HashMap again.
    fn resolve_caches(&mut self) {
        self.dev_owner = self
            .devs
            .iter()
            .map(|d| vec![None; d.port_count()])
            .collect();
        for i in 0..self.nodes.len() {
            let (d, p) = (self.nodes[i].dev, self.nodes[i].port);
            self.nodes[i].cabled = self.links.get(&Ep::Dev(d, p)).copied();
            self.dev_owner[d][p] = Some(i);
            // Dirty-fd app gating (ideal hosts): seed everything runnable
            // and map each app's fds so stack changes route to their app.
            let node = &mut self.nodes[i];
            node.gated = node.profile.per_ff_call_ns == 0 && !node.profile.s2_service;
            let slots = node.servers.len()
                + node.clients.len()
                + node.https.len()
                + node.fleets.len()
                + node.chaos.len();
            node.runnable = vec![true; slots];
            for (si, s) in node.servers.iter().enumerate() {
                if let Some(app) = s {
                    Self::note_app_fd(&mut node.app_of_fd, app.listen_fd(), si as u32);
                    for &fd in app.conn_fds() {
                        Self::note_app_fd(&mut node.app_of_fd, fd, si as u32);
                    }
                }
            }
            let base = node.servers.len() as u32;
            for (ci, c) in node.clients.iter().enumerate() {
                if let Some(app) = c {
                    Self::note_app_fd(&mut node.app_of_fd, app.sock_fd(), base + ci as u32);
                }
            }
            let base = base + node.clients.len() as u32;
            for (hi, h) in node.https.iter_mut().enumerate() {
                if let Some(app) = h {
                    Self::note_app_fd(&mut node.app_of_fd, app.listen_fd(), base + hi as u32);
                    for &fd in app.conn_fds() {
                        Self::note_app_fd(&mut node.app_of_fd, fd, base + hi as u32);
                    }
                }
            }
            let base = base + node.https.len() as u32;
            for (fi, f) in node.fleets.iter_mut().enumerate() {
                if let Some(app) = f {
                    for &fd in app.conn_fds() {
                        Self::note_app_fd(&mut node.app_of_fd, fd, base + fi as u32);
                    }
                }
            }
        }
        self.sw_cabled = self
            .switches
            .iter()
            .enumerate()
            .map(|(s, sw)| {
                (0..sw.port_count())
                    .map(|p| self.links.get(&Ep::Sw(s, p)).copied())
                    .collect()
            })
            .collect();
        let seed = self.seed;
        self.port_rng = self
            .devs
            .iter()
            .enumerate()
            .map(|(d, dev)| {
                (0..dev.port_count())
                    .map(|p| Self::derive_port_rng(seed, d, p))
                    .collect()
            })
            .collect();
    }

    /// Schedules every node's staggered first loop iteration (the hosts
    /// boot independently, so iterations do not run in lockstep). A shard
    /// schedules only the nodes it owns; the init origin and global node
    /// indices keep the keys consistent with the single-engine run.
    fn schedule_boot(&self, engine: &mut Engine<NetSim>) {
        let init_origin = self.init_origin();
        for i in 0..self.nodes.len() {
            if let Some(ctx) = &self.shard_ctx {
                if ctx.node_shard[i] != ctx.id {
                    continue;
                }
            }
            let at = SimTime::from_nanos(97 * (i as u64 + 1));
            engine.schedule_from(init_origin, at, NetEvent::LoopIter { node: i });
        }
        // The fault plan is scheduled on EVERY shard, in plan order from
        // a dedicated origin: identical keys and instants everywhere, so
        // each shard observes the same fault lattice the single-engine
        // run does and applies the locally-owned slice of each fault.
        let fault_origin = self.fault_origin();
        for (idx, &(at, _)) in self.faults.iter().enumerate() {
            engine.schedule_from(fault_origin, at, NetEvent::Fault { idx });
        }
    }

    /// The classic single-engine run (`workers == 1`): one calendar, one
    /// loop — the path the pinned trace digests prove unchanged.
    /// `lookahead_hint` is purely informational: the window width a shard
    /// plan of this topology would run (or would have run) under.
    fn run_single(mut self, lookahead_hint: u64) -> Result<SimOutcome, CapnetError> {
        let mut engine: Engine<NetSim> = Engine::new();
        self.schedule_boot(&mut engine);
        let stop = self.stop_at;
        engine.run_until(&mut self, stop);
        let end = engine.now();
        let events = engine.executed();
        self.counters.boxed_events = engine.boxed_scheduled();

        // Collect reports.
        let mut servers = Vec::new();
        let mut clients = Vec::new();
        let mut http_servers = Vec::new();
        let mut http_fleets = Vec::new();
        let mut chaos = Vec::new();
        let mut mutex_stats = None;
        for node in &mut self.nodes {
            for s in node.servers.iter_mut() {
                if let Some(app) = s.take() {
                    servers.push(app.report(end));
                }
            }
            for c in node.clients.iter_mut() {
                if let Some(app) = c.take() {
                    clients.push(app.report(end));
                }
            }
            for h in node.https.iter_mut() {
                if let Some(app) = h.take() {
                    http_servers.push(app.report(end));
                }
            }
            for f in node.fleets.iter_mut() {
                if let Some(app) = f.take() {
                    http_fleets.push(app.report(end));
                }
            }
            for c in node.chaos.iter_mut() {
                if let Some(app) = c.take() {
                    chaos.push(app.report());
                }
            }
        }
        if let Some(m) = &self.s2_mutex {
            mutex_stats = Some((m.acquisitions(), m.contentions(), m.total_wait()));
        }
        let mut port_stats = Vec::new();
        let mut stack_stats = Vec::new();
        for node in &self.nodes {
            port_stats.push((node.name.clone(), self.devs[node.dev].stats(node.port)));
            stack_stats.push((node.name.clone(), node.stack.stats()));
        }
        let switch_stats = self.switches.iter().map(LinkFabric::stats).collect();
        Ok(SimOutcome {
            servers,
            clients,
            http_servers,
            http_fleets,
            chaos,
            ended_at: end,
            horizon: stop,
            events,
            counters: self.counters,
            port_stats,
            stack_stats,
            switch_stats,
            mutex_stats,
            impairment_stats: self.impairment_stats,
            fault_stats: self.fault_stats,
            trace: self.trace,
            workers: 1,
            lookahead_ns: lookahead_hint,
            rounds: RoundCounters::default(),
        })
    }

    /// The topology/constraint view the shard partitioner plans over.
    fn shard_graph(&self) -> ShardGraph {
        let mut g = ShardGraph {
            nodes: self.nodes.len(),
            switches: self.switches.len(),
            node_weight: self
                .nodes
                .iter()
                .map(|n| {
                    1 + (n.servers.len()
                        + n.clients.len()
                        + n.https.len()
                        + n.fleets.len()
                        + n.chaos.len()) as u64
                })
                .collect(),
            ..ShardGraph::default()
        };
        for (i, node) in self.nodes.iter().enumerate() {
            match node.cabled {
                Some(Ep::Sw(sw, _)) => g.attachments.push((i, sw)),
                Some(Ep::Dev(d, p)) => {
                    // Direct cable: co-locate the two ends (zero barrier
                    // traffic); record once per pair.
                    if let Some(j) = self.dev_owner[d][p] {
                        if i < j {
                            g.node_links.push((i, j));
                        }
                    }
                }
                None => {}
            }
        }
        for (s, ports) in self.sw_cabled.iter().enumerate() {
            for ep in ports.iter().flatten() {
                if let Ep::Sw(s2, _) = *ep {
                    if s < s2 {
                        g.trunks.push((s, s2));
                    }
                }
            }
        }
        // Nodes sharing a multi-port device must co-shard (they share its
        // rings and PCI bus model); iterate devices in index order so the
        // plan is deterministic.
        for owners in &self.dev_owner {
            let group: Vec<usize> = owners.iter().flatten().copied().collect();
            if group.len() > 1 {
                g.bind_groups.push(group);
            }
        }
        // Scenario hosts (per-call isolation charges, the S2 service
        // mutex) interact through shared state — keep them together.
        let scenario: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.profile.s2_service || n.profile.per_ff_call_ns > 0)
            .map(|(i, _)| i)
            .collect();
        if scenario.len() > 1 {
            g.bind_groups.push(scenario);
        }
        g
    }

    /// Owning shard per device: a device follows its owning node(s); an
    /// unowned device (a cable endpoint without a stack) follows its peer.
    fn dev_shards(&self, plan: &ShardPlan) -> Vec<u32> {
        let mut dev_shard = vec![u32::MAX; self.devs.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            dev_shard[n.dev] = plan.node_shard[i] as u32;
        }
        for d in 0..self.devs.len() {
            if dev_shard[d] != u32::MAX {
                continue;
            }
            let mut shard = 0;
            for p in 0..self.devs[d].port_count() {
                match self.links.get(&Ep::Dev(d, p)) {
                    Some(Ep::Sw(sw, _)) => {
                        shard = plan.switch_shard[*sw] as u32;
                        break;
                    }
                    Some(Ep::Dev(pd, _)) if dev_shard[*pd] != u32::MAX => {
                        shard = dev_shard[*pd];
                        break;
                    }
                    _ => {}
                }
            }
            dev_shard[d] = shard;
        }
        dev_shard
    }

    /// The conservative lookahead of a shard plan, per **directed shard
    /// pair**: every cut-cable traversal pays at least its link class's
    /// floor ([`CostModel::link_floor_ns`] — minimum-frame serialization,
    /// NIC- or switch-side, plus propagation), so a shard only waits on
    /// the cut paths that can actually reach it rather than on the single
    /// tightest edge anywhere in the topology (what the old scalar
    /// lookahead throttled every window to). The nominal model floor is
    /// clamped by the cable actually in use, in case a model claims more
    /// propagation than the wire delivers.
    fn lookahead_matrix(
        &self,
        dev_shard: &[u32],
        sw_shard: &[u32],
        workers: usize,
    ) -> LookaheadMatrix {
        let min_wire = MIN_FRAME as u64 + WIRE_OVERHEAD;
        let cable = self.wire.latency().as_nanos() + self.costs.wire_cost(min_wire).as_nanos();
        let floor = |from_switch: bool| {
            let extra = if from_switch {
                self.costs.switch_latency_ns
            } else {
                0
            };
            self.costs
                .link_floor_ns(min_wire, from_switch)
                .min(cable + extra)
        };
        let shard_of = |ep: &Ep| match *ep {
            Ep::Dev(d, _) => dev_shard[d] as usize,
            Ep::Sw(s, _) => sw_shard[s] as usize,
        };
        let mut matrix = LookaheadMatrix::new(workers);
        for (a, b) in &self.links {
            // `links` stores both directions, so `a` is the emitting side.
            matrix.note_edge(shard_of(a), shard_of(b), floor(matches!(a, Ep::Sw(..))));
        }
        matrix.close();
        matrix
    }

    /// A placeholder for a foreign (other-shard) node slot: shard worlds
    /// keep full-length, globally indexed vectors so every handler keeps
    /// using global ids, and these slots are never touched.
    fn shadow_node(i: usize) -> Node {
        Node {
            name: String::new(),
            dev: 0,
            port: 0,
            mem: 0,
            stack: FStack::with_socket_capacity(
                StackConfig::new(
                    format!("shadow{i}"),
                    MacAddr::local(0),
                    Ipv4Addr::UNSPECIFIED,
                ),
                0, // never opens a socket; size no per-fd bookkeeping
            ),
            servers: Vec::new(),
            clients: Vec::new(),
            https: Vec::new(),
            fleets: Vec::new(),
            chaos: Vec::new(),
            profile: IsolationProfile::default(),
            turns: 0,
            gated: false,
            app_of_fd: Vec::new(),
            runnable: Vec::new(),
            fd_scratch: Vec::new(),
            cabled: None,
            parked: false,
            epoch: 0,
            wake: None,
            anchor: SimTime::ZERO,
            crashed: false,
            specs: Vec::new(),
        }
    }

    /// Splits this simulation into shard worlds per `plan` and runs them
    /// in conservative lookahead windows, merging an outcome that is
    /// byte-identical to the single-engine run's.
    fn run_sharded(mut self) -> Result<SimOutcome, CapnetError> {
        let graph = self.shard_graph();
        let plan = partition_shards(&graph, self.workers);
        let dev_shard = self.dev_shards(&plan);
        let sw_shard: Vec<u32> = plan.switch_shard.iter().map(|&s| s as u32).collect();
        let matrix = self.lookahead_matrix(&dev_shard, &sw_shard, plan.workers);
        if matrix.min_finite() == Some(0) {
            // Degenerate cost model (zero-latency cut edges): no window
            // width is conservative, so run single-engine.
            return self.run_single(0);
        }
        if self.adaptive_workers {
            let total_weight: u64 = graph.node_weight.iter().sum();
            let fit = Profitability::assess(
                total_weight,
                matrix.min_finite(),
                self.idle_period,
                plan.workers,
            );
            if !fit.profitable {
                // The plan's windows are too narrow for its event density:
                // each rendezvous round would cost more host time than the
                // events it amortizes (the committed BENCH_parallel.json
                // showed 0.88–0.93x on exactly such plans). Collapse to
                // the byte-identical single-engine loop, still reporting
                // the window the plan would have run under.
                let hint = matrix.min_finite().unwrap_or(0);
                return self.run_single(hint);
            }
        }
        let stop = self.stop_at;
        let workers = plan.workers;
        // Worker threads when the host has the cores for it, multiplexed
        // on this thread otherwise — identical results by construction
        // (same windows, same sorted injections).
        let threaded = self.worker_threads.unwrap_or_else(|| {
            match std::env::var("CAPNET_SHARD_THREADS").ok().as_deref() {
                Some("0") => false,
                Some("1") => true,
                // Unset or unrecognized: pick by available cores.
                _ => std::thread::available_parallelism().map_or(1, usize::from) > 1,
            }
        });

        // Build the shard worlds: every vector keeps its global length,
        // with foreign slots replaced by untouched placeholders; real
        // state MOVES to its owning shard.
        let mut cells: Vec<ShardRun> = (0..workers)
            .map(|sid| ShardRun {
                sim: NetSim {
                    costs: self.costs.clone(),
                    devs: Vec::with_capacity(self.devs.len()),
                    mems: Vec::with_capacity(self.mems.len()),
                    mem_bump: Vec::new(),
                    nodes: Vec::with_capacity(self.nodes.len()),
                    links: HashMap::new(),
                    switches: Vec::with_capacity(self.switches.len()),
                    trace: TraceDigest::default(),
                    wire: self.wire.clone(),
                    impairments: self.impairments,
                    impairment_stats: ImpairmentStats::default(),
                    app_sched: self.app_sched,
                    s2_mutex: None,
                    stop_at: stop,
                    seed: self.seed,
                    port_rng: self.port_rng.clone(),
                    kmod: BindingRegistry::new(),
                    next_pci: 0,
                    counters: EventCounters::default(),
                    dev_owner: self.dev_owner.clone(),
                    sw_cabled: self.sw_cabled.clone(),
                    idle_period: self.idle_period,
                    workers: 1,
                    adaptive_workers: true,
                    worker_threads: None,
                    shard_ctx: Some(Box::new(ShardCtx {
                        id: sid as u32,
                        node_shard: plan.node_shard.iter().map(|&s| s as u32).collect(),
                        dev_shard: dev_shard.clone(),
                        sw_shard: sw_shard.clone(),
                        same_thread: !threaded,
                        outbox: (0..workers).map(|_| Vec::new()).collect(),
                        rounds: RoundCounters::default(),
                        log: std::collections::VecDeque::new(),
                    })),
                    fault_plan: Vec::new(),
                    faults: self.faults.clone(),
                    link_down: std::collections::HashSet::new(),
                    fault_stats: FaultStats::default(),
                },
                engine: Engine::new(),
            })
            .collect();
        let costs = self.costs.clone();
        let s2_owner = self
            .nodes
            .iter()
            .position(|n| n.profile.s2_service)
            .map_or(0, |i| plan.node_shard[i]);
        for (i, node) in self.nodes.drain(..).enumerate() {
            let owner = plan.node_shard[i];
            for (sid, cell) in cells.iter_mut().enumerate() {
                if sid != owner {
                    cell.sim.nodes.push(Self::shadow_node(i));
                }
            }
            cells[owner].sim.nodes.push(node);
        }
        for (i, mem) in self.mems.drain(..).enumerate() {
            let owner = plan.node_shard[i];
            for (sid, cell) in cells.iter_mut().enumerate() {
                if sid != owner {
                    cell.sim.mems.push(TaggedMemory::new(16));
                }
            }
            cells[owner].sim.mems.push(mem);
        }
        for (d, dev) in self.devs.drain(..).enumerate() {
            let owner = dev_shard[d] as usize;
            for (sid, cell) in cells.iter_mut().enumerate() {
                if sid != owner {
                    cell.sim.devs.push(EthDev::new(
                        PciAddress::new(0, 0, 0),
                        NicModel::Host,
                        costs.clone(),
                    ));
                }
            }
            cells[owner].sim.devs.push(dev);
        }
        for (s, sw) in self.switches.drain(..).enumerate() {
            let owner = plan.switch_shard[s];
            for (sid, cell) in cells.iter_mut().enumerate() {
                if sid != owner {
                    cell.sim.switches.push(LinkFabric::new(2, 1));
                }
            }
            cells[owner].sim.switches.push(sw);
        }
        if let Some(m) = self.s2_mutex.take() {
            cells[s2_owner].sim.s2_mutex = Some(m);
        }
        for cell in cells.iter_mut() {
            let ShardRun { sim, engine } = cell;
            sim.schedule_boot(engine);
        }

        let mut trace = TraceDigest::default();
        if threaded {
            Self::drive_windows_threaded(&mut cells, stop, &matrix);
        } else {
            Self::drive_windows_sequential(&mut cells, stop, &matrix, &mut trace);
        }
        Ok(Self::merge_outcome(
            cells,
            &plan,
            stop,
            matrix.min_finite().unwrap_or(0),
            trace,
        ))
    }

    /// One-thread window multiplexing: each round runs every shard up to
    /// its safe bound ([`LookaheadMatrix::window_end`]), then exchanges
    /// and injects the cross-shard events generated in it — skipping the
    /// exchange sweep entirely on rounds where no shard produced any.
    /// Deferred digest entries older than every shard's next event are
    /// final, so they fold into `trace` as the run goes — retained frames
    /// stay bounded by a round's deliveries instead of the whole run's.
    fn drive_windows_sequential(
        cells: &mut [ShardRun],
        stop: SimTime,
        matrix: &LookaheadMatrix,
        trace: &mut TraceDigest,
    ) {
        let workers = cells.len();
        let mut inject: Vec<Vec<XEvent>> = (0..workers).map(|_| Vec::new()).collect();
        let mut nexts = vec![u64::MAX; workers];
        let mut final_folds: Vec<DeliveryRecord> = Vec::new();
        loop {
            for (cell, next) in cells.iter_mut().zip(nexts.iter_mut()) {
                *next = cell
                    .engine
                    .next_event_at()
                    .map_or(u64::MAX, |t| t.as_nanos());
            }
            let min_next = nexts.iter().copied().min().unwrap_or(u64::MAX);
            // No shard can execute anything before `min_next`, so every
            // logged delivery strictly older than it is final: fold those
            // now, in merged key order, and release their frames.
            if min_next > 0 {
                for cell in cells.iter_mut() {
                    let log = &mut cell.sim.shard_ctx.as_mut().expect("shard ctx").log;
                    while log.front().is_some_and(|r| r.at.as_nanos() < min_next) {
                        final_folds.push(log.pop_front().expect("checked front"));
                    }
                }
                if !final_folds.is_empty() {
                    final_folds.sort_unstable_by_key(|r| (r.at, r.key));
                    for r in final_folds.drain(..) {
                        trace.record(r.at, r.dev as usize, r.port as usize, r.frame.bytes());
                    }
                }
            }
            if min_next == u64::MAX || min_next > stop.as_nanos() {
                break;
            }
            let mut any_out = false;
            for (me, cell) in cells.iter_mut().enumerate() {
                let ctx = cell.sim.shard_ctx.as_mut().expect("shard ctx");
                ctx.rounds.rounds += 1;
                let end = matrix.window_end(&nexts, me);
                if nexts[me] >= end {
                    ctx.rounds.empty_rounds += 1;
                    continue; // nothing due inside this shard's bound
                }
                let ShardRun { sim, engine } = cell;
                if end > stop.as_nanos() {
                    engine.run_until(sim, stop);
                } else {
                    engine.run_window(sim, SimTime::from_nanos(end));
                }
                any_out = any_out
                    || sim
                        .shard_ctx
                        .as_ref()
                        .expect("shard ctx")
                        .outbox
                        .iter()
                        .any(|o| !o.is_empty());
            }
            if !any_out {
                continue;
            }
            for cell in cells.iter_mut() {
                let ctx = cell.sim.shard_ctx.as_mut().expect("shard ctx");
                for (dst, outgoing) in ctx.outbox.iter_mut().enumerate() {
                    if !outgoing.is_empty() {
                        inject[dst].append(outgoing);
                    }
                }
            }
            for (cell, incoming) in cells.iter_mut().zip(inject.iter_mut()) {
                Self::inject_sorted(cell, incoming);
            }
        }
    }

    /// Threaded window driver: one worker thread per shard, **one**
    /// barrier wait per round (see [`ShardShared`] for the parity
    /// double-buffered exchange protocol that replaced the old
    /// flush-then-vote pair of barriers).
    fn drive_windows_threaded(cells: &mut Vec<ShardRun>, stop: SimTime, matrix: &LookaheadMatrix) {
        let workers = cells.len();
        let slot = || -> Vec<Vec<Mutex<Vec<XEvent>>>> {
            (0..workers)
                .map(|_| (0..workers).map(|_| Mutex::new(Vec::new())).collect())
                .collect()
        };
        let nexts =
            || -> Vec<AtomicU64> { (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect() };
        let mins = || -> Vec<Vec<AtomicU64>> {
            (0..workers)
                .map(|_| (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect())
                .collect()
        };
        let shared = ShardShared {
            barrier: Barrier::new(workers),
            mailbox: [slot(), slot()],
            next_at: [nexts(), nexts()],
            out_min: [mins(), mins()],
            stop: stop.as_nanos(),
        };
        let finished = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (id, cell) in cells.drain(..).enumerate() {
                let shared = &shared;
                handles.push(scope.spawn(move || Self::shard_worker(cell, id, shared, matrix)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect::<Vec<_>>()
        });
        *cells = finished;
    }

    /// The per-thread loop of [`NetSim::drive_windows_threaded`] —
    /// byte-identical to the sequential driver round for round, at one
    /// rendezvous per round.
    ///
    /// Each round with parity `p` *reads* slot `p` (published instants,
    /// mailbox minima, mailboxes) and *writes* slot `p ^ 1` for the next
    /// round, then waits on the single barrier. The lockstep barrier
    /// means no worker can be a full round ahead, so the slot a worker
    /// writes is never the slot a straggler is still reading. The
    /// *effective* next instant of a peer folds its published engine
    /// minimum with the minima of mailboxes it has yet to inject
    /// ([`ShardShared::out_min`]) — exactly the post-injection instants
    /// the sequential driver reads off its engines — so every worker
    /// derives identical windows from identical data with no coordinator.
    fn shard_worker(
        mut cell: ShardRun,
        id: usize,
        shared: &ShardShared,
        matrix: &LookaheadMatrix,
    ) -> ShardRun {
        let workers = shared.next_at[0].len();
        // Publish the boot-schedule instants into round 0's slot; one
        // initial rendezvous makes them visible to every worker.
        let next = cell
            .engine
            .next_event_at()
            .map_or(u64::MAX, |t| t.as_nanos());
        shared.next_at[0][id].store(next, Ordering::SeqCst);
        shared.barrier.wait();
        let mut round: u64 = 0;
        let mut incoming = Vec::new();
        loop {
            let p = (round & 1) as usize;
            // Effective next instants: published engine minima folded
            // with the not-yet-injected mailbox minima. Identical on
            // every worker, so the break decision needs no barrier.
            let mut nexts = vec![u64::MAX; workers];
            for (s, next) in nexts.iter_mut().enumerate() {
                let mut n = shared.next_at[p][s].load(Ordering::SeqCst);
                for src in 0..workers {
                    n = n.min(shared.out_min[p][src][s].load(Ordering::SeqCst));
                }
                *next = n;
            }
            let start = nexts.iter().copied().min().unwrap_or(u64::MAX);
            if start == u64::MAX || start > shared.stop {
                break;
            }
            // Drain this round's mailboxes (the out_min sentinel makes
            // empty ones lock-free to skip) and inject. Readers never
            // write out_min — peers are still reading this whole slot to
            // derive their own windows; the flush phase below overwrites
            // each row unconditionally for the slot's next reuse.
            for src in 0..workers {
                if shared.out_min[p][src][id].load(Ordering::SeqCst) == u64::MAX {
                    continue;
                }
                incoming.append(&mut shared.mailbox[p][src][id].lock().expect("mailbox poisoned"));
            }
            Self::inject_sorted(&mut cell, &mut incoming);
            {
                let ctx = cell.sim.shard_ctx.as_mut().expect("shard ctx");
                ctx.rounds.rounds += 1;
            }
            let end = matrix.window_end(&nexts, id);
            if nexts[id] < end {
                let ShardRun { sim, engine } = &mut cell;
                if end > shared.stop {
                    engine.run_until(sim, SimTime::from_nanos(shared.stop));
                } else {
                    engine.run_window(sim, SimTime::from_nanos(end));
                }
            } else {
                let ctx = cell.sim.shard_ctx.as_mut().expect("shard ctx");
                ctx.rounds.empty_rounds += 1;
            }
            // Write the next round's slot: flush the outbox and publish
            // this worker's full out_min row — unconditionally, MAX for
            // destinations it sent nothing, so the row needs no reader-
            // side reset — then the engine's new minimum, then rendezvous.
            let q = p ^ 1;
            {
                let ctx = cell.sim.shard_ctx.as_mut().expect("shard ctx");
                for (dst, outgoing) in ctx.outbox.iter_mut().enumerate() {
                    let min = outgoing.iter().map(|x| x.at.as_nanos()).min();
                    if let Some(min) = min {
                        shared.mailbox[q][id][dst]
                            .lock()
                            .expect("mailbox poisoned")
                            .append(outgoing);
                        shared.out_min[q][id][dst].store(min, Ordering::SeqCst);
                    } else {
                        shared.out_min[q][id][dst].store(u64::MAX, Ordering::SeqCst);
                    }
                }
            }
            let next = cell
                .engine
                .next_event_at()
                .map_or(u64::MAX, |t| t.as_nanos());
            shared.next_at[q][id].store(next, Ordering::SeqCst);
            shared.barrier.wait();
            round += 1;
        }
        cell
    }

    /// Sorts a window's incoming cross-shard events by `(at, key)` — the
    /// single-engine dispatch order — and schedules them. Payloads are
    /// used in place (a shared frame or an `Arc`-backed page), never
    /// re-materialized.
    fn inject_sorted(cell: &mut ShardRun, incoming: &mut Vec<XEvent>) {
        if incoming.is_empty() {
            return;
        }
        incoming.sort_unstable_by_key(|x| (x.at, x.key));
        for x in incoming.drain(..) {
            let frame = x.payload.into_frame();
            let ev = if x.to_switch {
                NetEvent::SwitchHop {
                    sw: x.obj as usize,
                    port: x.port as usize,
                    at: x.at,
                    frame,
                }
            } else {
                NetEvent::Deliver {
                    dev: x.obj as usize,
                    port: x.port as usize,
                    at: x.at,
                    frame,
                }
            };
            cell.engine.schedule_injected(x.at, x.key, ev);
        }
    }

    /// Merges the shard worlds back into one [`SimOutcome`]: counters and
    /// stats sum, reports collect in global installation order, and the
    /// deferred delivery log folds into the trace digest in `(at, key)`
    /// order — the exact order the single-engine run folded inline.
    fn merge_outcome(
        mut cells: Vec<ShardRun>,
        plan: &ShardPlan,
        stop: SimTime,
        lookahead_ns: u64,
        mut trace: TraceDigest,
    ) -> SimOutcome {
        let end = cells
            .iter()
            .map(|c| c.engine.now())
            .max()
            .unwrap_or(SimTime::ZERO);
        let events = cells.iter().map(|c| c.engine.executed()).sum();
        let mut counters = EventCounters::default();
        let mut rounds = RoundCounters::default();
        let mut impairment_stats = ImpairmentStats::default();
        let mut fault_stats = FaultStats::default();
        for cell in &cells {
            let c = cell.sim.counters;
            counters.loop_polls += c.loop_polls;
            counters.idle_polls += c.idle_polls;
            counters.deliveries += c.deliveries;
            counters.switch_hops += c.switch_hops;
            counters.timer_wakes += c.timer_wakes;
            counters.stale_wakes += c.stale_wakes;
            counters.parks += c.parks;
            counters.wakes += c.wakes;
            counters.boxed_events += cell.engine.boxed_scheduled();
            let r = cell.sim.shard_ctx.as_ref().expect("shard ctx").rounds;
            // Rounds are lockstep across shards (max, not sum); the
            // traffic tallies genuinely accumulate.
            rounds.rounds = rounds.rounds.max(r.rounds);
            rounds.empty_rounds += r.empty_rounds;
            rounds.xshard_frames += r.xshard_frames;
            rounds.rehome_bytes += r.rehome_bytes;
            impairment_stats.absorb(cell.sim.impairment_stats);
            fault_stats.absorb(cell.sim.fault_stats);
        }
        // The deferred digest: whatever the driver has not already folded
        // incrementally (everything, for the threaded driver), appended in
        // global dispatch order on top of the accumulated fold.
        let mut log: Vec<DeliveryRecord> = Vec::new();
        for cell in cells.iter_mut() {
            let ctx = cell.sim.shard_ctx.as_mut().expect("shard ctx");
            log.extend(ctx.log.drain(..));
        }
        log.sort_unstable_by_key(|r| (r.at, r.key));
        for r in &log {
            trace.record(r.at, r.dev as usize, r.port as usize, r.frame.bytes());
        }
        drop(log);

        let mut servers = Vec::new();
        let mut clients = Vec::new();
        let mut http_servers = Vec::new();
        let mut http_fleets = Vec::new();
        let mut chaos = Vec::new();
        let mut port_stats = Vec::new();
        let mut stack_stats = Vec::new();
        for i in 0..plan.node_shard.len() {
            let sim = &mut cells[plan.node_shard[i]].sim;
            {
                let node = &mut sim.nodes[i];
                for s in node.servers.iter_mut() {
                    if let Some(app) = s.take() {
                        servers.push(app.report(end));
                    }
                }
                for c in node.clients.iter_mut() {
                    if let Some(app) = c.take() {
                        clients.push(app.report(end));
                    }
                }
                for h in node.https.iter_mut() {
                    if let Some(app) = h.take() {
                        http_servers.push(app.report(end));
                    }
                }
                for f in node.fleets.iter_mut() {
                    if let Some(app) = f.take() {
                        http_fleets.push(app.report(end));
                    }
                }
                for c in node.chaos.iter_mut() {
                    if let Some(app) = c.take() {
                        chaos.push(app.report());
                    }
                }
            }
            let (name, dev, port) = {
                let n = &sim.nodes[i];
                (n.name.clone(), n.dev, n.port)
            };
            port_stats.push((name.clone(), sim.devs[dev].stats(port)));
            stack_stats.push((name, sim.nodes[i].stack.stats()));
        }
        let switch_stats = (0..plan.switch_shard.len())
            .map(|s| cells[plan.switch_shard[s]].sim.switches[s].stats())
            .collect();
        let mutex_stats = cells.iter().find_map(|c| {
            c.sim
                .s2_mutex
                .as_ref()
                .map(|m| (m.acquisitions(), m.contentions(), m.total_wait()))
        });
        SimOutcome {
            servers,
            clients,
            http_servers,
            http_fleets,
            chaos,
            ended_at: end,
            horizon: stop,
            events,
            counters,
            port_stats,
            stack_stats,
            switch_stats,
            mutex_stats,
            impairment_stats,
            fault_stats,
            trace,
            workers: plan.workers,
            lookahead_ns,
            rounds,
        }
    }

    /// Records that `fd` belongs to app `slot` on its node (dirty-fd
    /// routing table; grown on demand, entries overwritten on fd reuse).
    fn note_app_fd(app_of_fd: &mut Vec<Option<u32>>, fd: chos::fdtable::Fd, slot: u32) {
        let idx = fd as usize;
        if idx >= app_of_fd.len() {
            app_of_fd.resize(idx + 1, None);
        }
        app_of_fd[idx] = Some(slot);
    }

    /// Stable [`simkern::engine::OrderKey`] origin of node `i`'s handlers.
    ///
    /// The origin space is global and identical at any worker count —
    /// nodes first, then switches, then the pre-run initializer — so the
    /// keys built by a sharded run match the single-engine run's exactly.
    fn node_origin(i: usize) -> u32 {
        i as u32
    }

    /// Stable order-key origin of switch `sw`'s forwarding handler.
    fn switch_origin(&self, sw: usize) -> u32 {
        (self.nodes.len() + sw) as u32
    }

    /// Order-key origin of the pre-run initializer (the staggered start-up
    /// loop-iteration schedules).
    fn init_origin(&self) -> u32 {
        (self.nodes.len() + self.switches.len()) as u32
    }

    /// Order-key origin of the fault plan (one origin after the
    /// initializer; its counter advances identically on every shard
    /// because the whole plan is scheduled everywhere, in plan order).
    fn fault_origin(&self) -> u32 {
        (self.nodes.len() + self.switches.len() + 1) as u32
    }

    /// `true` when node `i` is handled by this world.
    #[inline]
    fn local_node(&self, i: usize) -> bool {
        match &self.shard_ctx {
            None => true,
            Some(ctx) => ctx.node_shard[i] == ctx.id,
        }
    }

    /// `true` when device `dev` is handled by this world (always, outside
    /// a sharded run).
    #[inline]
    fn local_dev(&self, dev: usize) -> bool {
        match &self.shard_ctx {
            None => true,
            Some(ctx) => ctx.dev_shard[dev] == ctx.id,
        }
    }

    /// `true` when switch `sw` is handled by this world.
    #[inline]
    fn local_sw(&self, sw: usize) -> bool {
        match &self.shard_ctx {
            None => true,
            Some(ctx) => ctx.sw_shard[sw] == ctx.id,
        }
    }

    /// Applies resolved fault `idx` (event handler). Every shard
    /// dispatches every fault event; link state is shared knowledge (the
    /// TX blackhole check runs wherever the transmitter lives), while
    /// node/switch mutations and the tallies land only on the owner
    /// shard — so the merged [`FaultStats`] counts each fault once.
    fn apply_fault(&mut self, idx: usize, engine: &mut Engine<NetSim>) {
        let (_, fault) = self.faults[idx];
        match fault {
            ResolvedFault::LinkDown { a, b, dev } => {
                self.link_down.insert(a);
                self.link_down.insert(b);
                if self.local_dev(dev) {
                    self.fault_stats.link_down_events += 1;
                }
            }
            ResolvedFault::LinkUp { a, b, dev } => {
                self.link_down.remove(&a);
                self.link_down.remove(&b);
                if self.local_dev(dev) {
                    self.fault_stats.link_up_events += 1;
                }
            }
            ResolvedFault::SwitchFail { sw } => {
                if self.local_sw(sw) {
                    self.switches[sw].fail();
                    self.fault_stats.switch_fail_events += 1;
                }
            }
            ResolvedFault::SwitchRecover { sw } => {
                if self.local_sw(sw) {
                    self.switches[sw].recover();
                    self.fault_stats.switch_recover_events += 1;
                }
            }
            ResolvedFault::NodeCrash { node } => {
                if self.local_node(node) {
                    self.crash_node(node, engine);
                    self.fault_stats.node_crashes += 1;
                }
            }
            ResolvedFault::NodeRestart { node } => {
                if self.local_node(node) {
                    self.restart_node(node, engine);
                    self.fault_stats.node_restarts += 1;
                }
            }
        }
    }

    /// [`Fault::NodeCrash`]: volatile state vanishes. Every app is
    /// dropped (its report with it), the stack is replaced by an empty
    /// husk (every TCB, listener and ARP entry gone — peers get no FIN,
    /// exactly like a real power loss), the poll loop stops, and frames
    /// arriving at the NIC are discarded until restart. Idempotent.
    fn crash_node(&mut self, i: usize, engine: &mut Engine<NetSim>) {
        let node = &mut self.nodes[i];
        if node.crashed {
            return;
        }
        node.crashed = true;
        // A parked wake is cancelled in place; a pending LoopIter
        // dispatches into the crashed guard and dies there.
        if let Some(stale) = node.wake.take() {
            engine.cancel(stale);
        }
        node.parked = false;
        node.epoch += 1;
        node.servers.clear();
        node.clients.clear();
        node.https.clear();
        node.fleets.clear();
        node.chaos.clear();
        node.app_of_fd.clear();
        node.runnable.clear();
        node.fd_scratch.clear();
        let cfg = node.stack.config().clone();
        node.stack = FStack::with_socket_capacity(cfg, 0);
    }

    /// [`Fault::NodeRestart`]: a fresh stack with the same interface
    /// config, every app rebuilt from its install-time blueprint (same
    /// labels, configs, seeds and arena buffers — listeners come back,
    /// fleets re-launch their schedule from `now`), and the poll loop
    /// boots again shortly after. A no-op unless the node is crashed.
    fn restart_node(&mut self, i: usize, engine: &mut Engine<NetSim>) {
        let now = engine.now();
        let node = &mut self.nodes[i];
        if !node.crashed {
            return;
        }
        node.crashed = false;
        let cfg = node.stack.config().clone();
        node.stack = FStack::new(cfg);
        node.turns = 0;
        node.parked = false;
        node.epoch += 1;
        node.anchor = now;
        let specs = std::mem::take(&mut node.specs);
        for spec in &specs {
            match spec {
                AppSpec::Server { label, port, buf } => {
                    node.servers
                        .push(ServerApp::start(&mut node.stack, label.clone(), *port, *buf).ok());
                }
                AppSpec::Client {
                    label,
                    remote,
                    duration,
                    write_gap,
                    buf,
                } => {
                    let app = ClientApp::start(
                        &mut node.stack,
                        label.clone(),
                        *remote,
                        *buf,
                        *duration,
                        now,
                    )
                    .map(|mut app| {
                        app.set_write_gap(*write_gap);
                        app
                    });
                    node.clients.push(app.ok());
                }
                AppSpec::Http {
                    label,
                    port,
                    cfg,
                    buf,
                } => {
                    node.https.push(
                        HttpServerApp::start(
                            &mut node.stack,
                            label.clone(),
                            *port,
                            *buf,
                            cfg.clone(),
                        )
                        .ok(),
                    );
                }
                AppSpec::Fleet {
                    label,
                    cfg,
                    seed,
                    buf,
                } => {
                    node.fleets.push(Some(FleetApp::start(
                        label.clone(),
                        &mut node.stack,
                        *buf,
                        cfg.clone(),
                        *seed,
                        now,
                    )));
                }
                AppSpec::Chaos { label, cfg, seed } => {
                    let (mac, ip) = (node.stack.config().mac, node.stack.config().ip);
                    node.chaos.push(Some(ChaosApp::new(
                        label.clone(),
                        cfg.clone(),
                        *seed,
                        mac,
                        ip,
                    )));
                }
            }
        }
        node.specs = specs;
        // Rebuild the dirty-fd routing exactly as `resolve_caches` did.
        let slots = node.servers.len()
            + node.clients.len()
            + node.https.len()
            + node.fleets.len()
            + node.chaos.len();
        node.runnable = vec![true; slots];
        for (si, s) in node.servers.iter().enumerate() {
            if let Some(app) = s {
                Self::note_app_fd(&mut node.app_of_fd, app.listen_fd(), si as u32);
            }
        }
        let base = node.servers.len() as u32;
        for (ci, c) in node.clients.iter().enumerate() {
            if let Some(app) = c {
                Self::note_app_fd(&mut node.app_of_fd, app.sock_fd(), base + ci as u32);
            }
        }
        let base = base + node.clients.len() as u32;
        for (hi, h) in node.https.iter_mut().enumerate() {
            if let Some(app) = h {
                Self::note_app_fd(&mut node.app_of_fd, app.listen_fd(), base + hi as u32);
            }
        }
        // The reborn host boots like the originals did: first poll
        // iteration a beat after the restart instant.
        engine.schedule_from(
            Self::node_origin(i),
            now + SimDuration::from_nanos(97),
            NetEvent::LoopIter { node: i },
        );
    }

    /// Rehomes a frame for a cross-shard handoff and tallies the traffic:
    /// a refcount bump when the shards share a thread, an `Arc`-backed
    /// pool page otherwise — copied at most once, and not at all when the
    /// frame (e.g. one being relayed onward) already is a page.
    fn rehome(ctx: &mut ShardCtx, frame: &Frame) -> XPayload {
        ctx.rounds.xshard_frames += 1;
        if ctx.same_thread {
            XPayload::Shared(frame.clone())
        } else {
            if !frame.is_page() {
                ctx.rounds.rehome_bytes += frame.bytes().len() as u64;
            }
            XPayload::Page(frame.to_page())
        }
    }

    /// Queues a cross-shard frame delivery for the window barrier: the
    /// payload is rehomed by [`NetSim::rehome`] and the order key is
    /// drawn from this engine's origin counter, exactly as a local
    /// schedule would have.
    fn outbox_deliver(
        &mut self,
        engine: &mut Engine<NetSim>,
        origin: u32,
        dev: usize,
        port: usize,
        at: SimTime,
        frame: &Frame,
    ) {
        let key = engine.make_key(origin);
        let ctx = self.shard_ctx.as_mut().expect("cross-shard send has a ctx");
        let dst = ctx.dev_shard[dev] as usize;
        let payload = Self::rehome(ctx, frame);
        ctx.outbox[dst].push(XEvent {
            at,
            key,
            to_switch: false,
            obj: dev as u32,
            port: port as u32,
            payload,
        });
    }

    /// Queues a cross-shard switch hop for the window barrier.
    fn outbox_hop(
        &mut self,
        engine: &mut Engine<NetSim>,
        origin: u32,
        sw: usize,
        port: usize,
        at: SimTime,
        frame: &Frame,
    ) {
        let key = engine.make_key(origin);
        let ctx = self.shard_ctx.as_mut().expect("cross-shard send has a ctx");
        let dst = ctx.sw_shard[sw] as usize;
        let payload = Self::rehome(ctx, frame);
        ctx.outbox[dst].push(XEvent {
            at,
            key,
            to_switch: true,
            obj: sw as u32,
            port: port as u32,
            payload,
        });
    }

    /// The first poll-lattice instant at or after `at`: `anchor + k·period`
    /// with the smallest `k ≥ 0` such that the tick is `≥ at`. Parked nodes
    /// wake on this lattice so their iterations land exactly where the
    /// unconditional polling loop's would have.
    fn lattice_tick(anchor: SimTime, at: SimTime, period: u64) -> SimTime {
        if at <= anchor {
            return anchor;
        }
        let gap = at.as_nanos() - anchor.as_nanos();
        anchor + SimDuration::from_nanos(gap.div_ceil(period) * period)
    }

    /// One main-loop iteration of node `i` (event handler).
    fn loop_iter(&mut self, i: usize, engine: &mut Engine<NetSim>) {
        if self.nodes[i].crashed {
            // The host is dead: its loop stops (no reschedule) until a
            // [`Fault::NodeRestart`] boots a fresh iteration.
            return;
        }
        self.counters.loop_polls += 1;
        let now = engine.now();
        if now >= self.stop_at {
            return;
        }
        let (di, pi, mi) = {
            let n = &self.nodes[i];
            (n.dev, n.port, n.mem)
        };
        // Split-borrow the distinct world fields.
        let node = &mut self.nodes[i];
        let dev = &mut self.devs[di];
        let mem = &mut self.mems[mi];

        // (i) RX ring → stack.
        let rx = rx_phase(&mut node.stack, dev, pi, mem, now).unwrap_or(0);

        // (ii) the user-defined function: application steps, gated by the
        // app-cVM scheduling policy (RoundRobin steps everyone; Barging
        // starves non-first cVMs on a fraction of turns). The policy is a
        // property of the DUT's service mutex, so it only applies to app
        // cVMs behind the Scenario 2 service node — never to the ideal
        // measurement hosts.
        let sched = if node.profile.s2_service {
            self.app_sched
        } else {
            AppSched::RoundRobin
        };
        let turn = node.turns;
        node.turns += 1;
        let mut ff_calls: u64 = 0;
        let mut progressed = false;
        // Route the stack's changed fds to their owning apps. On a gated
        // (ideal) host only runnable apps step: an app with no changed fd
        // and no due deadline would repeat its previous no-op step, so
        // skipping it is behaviourally invisible — the hub of an N-client
        // star steps O(frames received) server apps per poll instead of
        // all N. Charged hosts (per-call isolation, the S2 service loop)
        // step everything, because even a no-op step's ff_* calls carry an
        // accounted cost there.
        let Node {
            stack,
            servers,
            clients,
            https,
            fleets,
            chaos,
            gated,
            app_of_fd,
            runnable,
            fd_scratch,
            ..
        } = node;
        let gated = *gated;
        if gated {
            fd_scratch.clear();
            stack.take_dirty_fds(fd_scratch);
            for &fd in fd_scratch.iter() {
                if let Some(&Some(slot)) = app_of_fd.get(fd as usize) {
                    runnable[slot as usize] = true;
                }
            }
        }
        let n_servers = servers.len();
        // Servers always step when ungated: the convoy forms on the write
        // path (ff_write holds the service mutex against the main loop),
        // while reads of already-sorted RX data are short — which is why
        // the paper's server rows stay even (470/470) on the same testbed
        // whose client rows split 531/410.
        for (si, s) in servers.iter_mut().enumerate() {
            let Some(app) = s else { continue };
            if gated && !runnable[si] {
                continue;
            }
            runnable[si] = false;
            if let Ok(StepOutcome {
                ff_calls: calls,
                progressed: moved,
                ..
            }) = app.step(stack, mem, now)
            {
                ff_calls += u64::from(calls);
                progressed |= moved;
                if moved {
                    // Accepts may have added connections: refresh routing.
                    Self::note_app_fd(app_of_fd, app.listen_fd(), si as u32);
                    for &fd in app.conn_fds() {
                        Self::note_app_fd(app_of_fd, fd, si as u32);
                    }
                }
            }
        }
        for (ci, c) in clients.iter_mut().enumerate() {
            if !sched.allows(ci, turn) {
                continue;
            }
            let Some(app) = c else { continue };
            let slot = n_servers + ci;
            if gated && !runnable[slot] && !app.due(now) {
                continue;
            }
            runnable[slot] = false;
            if let Ok(StepOutcome {
                ff_calls: calls,
                progressed: moved,
                ..
            }) = app.step(stack, mem, now)
            {
                ff_calls += u64::from(calls);
                progressed |= moved;
            }
        }
        // The HTTP serving plane steps after the iperf apps — appending
        // slots keeps the step order (and so every pinned digest) of
        // iperf-only scenarios untouched.
        let base_http = n_servers + clients.len();
        for (hi, h) in https.iter_mut().enumerate() {
            let Some(app) = h else { continue };
            let slot = base_http + hi;
            // `due` lets the idle reaper fire on a gated host with no
            // stack events pending (false whenever the knob is off).
            if gated && !runnable[slot] && !app.due(now) {
                continue;
            }
            runnable[slot] = false;
            if let Ok(HttpStepOutcome {
                ff_calls: calls,
                progressed: moved,
                ..
            }) = app.step(stack, mem, now)
            {
                ff_calls += u64::from(calls);
                progressed |= moved;
                if moved {
                    // Accepts may have added connections: refresh routing.
                    Self::note_app_fd(app_of_fd, app.listen_fd(), slot as u32);
                    for &fd in app.conn_fds() {
                        Self::note_app_fd(app_of_fd, fd, slot as u32);
                    }
                }
            }
        }
        let base_fleet = base_http + https.len();
        for (fi, f) in fleets.iter_mut().enumerate() {
            let Some(app) = f else { continue };
            let slot = base_fleet + fi;
            if gated && !runnable[slot] && !app.due(now) {
                continue;
            }
            runnable[slot] = false;
            if let Ok(HttpStepOutcome {
                ff_calls: calls,
                progressed: moved,
                ..
            }) = app.step(stack, mem, now)
            {
                ff_calls += u64::from(calls);
                progressed |= moved;
                if moved {
                    // Arrivals opened connections: refresh fd routing.
                    for &fd in app.conn_fds() {
                        Self::note_app_fd(app_of_fd, fd, slot as u32);
                    }
                }
            }
        }
        // Fault-injection campaigns step last: their wire volleys go out
        // through the node's normal TX path, and appending the slot keeps
        // chaos-free scenarios' step order (and digests) untouched. The
        // step is infallible — injected frames cannot raise an Errno.
        let base_chaos = base_fleet + fleets.len();
        for (xi, x) in chaos.iter_mut().enumerate() {
            let Some(app) = x else { continue };
            let slot = base_chaos + xi;
            if gated && !runnable[slot] && !app.due(now) {
                continue;
            }
            runnable[slot] = false;
            let o = app.step(stack, now);
            ff_calls += u64::from(o.ff_calls);
            progressed |= o.progressed;
        }

        // (iii) stack timers + TX ring.
        let tx = tx_phase(&mut node.stack, dev, pi, mem, now).unwrap_or_default();

        // Wire propagation to whatever the port is cabled to (a peer NIC
        // directly, or a switch that forwards hop by hop). The endpoint was
        // resolved once at run() start — no topology lookup per iteration.
        let n_tx = tx.len();
        if n_tx > 0 && !self.link_down.is_empty() && self.link_down.contains(&Ep::Dev(di, pi)) {
            // The uplink cable is administratively down: every frame is
            // blackholed at this TX hop. No impairment draws happen — the
            // wire never sees the frame, so a healed link's RNG streams
            // are exactly where a fault-free run's would be minus the
            // frames that never crossed.
            self.impairment_stats.blackholed += n_tx as u64;
        } else if n_tx > 0 {
            let origin = Self::node_origin(i);
            match self.nodes[i].cabled {
                Some(Ep::Dev(pd, pp)) => {
                    for (frame, departure) in tx {
                        let arrival = self.wire.propagate(departure);
                        self.schedule_delivery(engine, origin, pd, pp, arrival, frame);
                    }
                }
                Some(Ep::Sw(sw, sp)) => {
                    for (frame, departure) in tx {
                        let arrival = self.wire.propagate(departure);
                        if self.local_sw(sw) {
                            engine.schedule_from(
                                origin,
                                arrival,
                                NetEvent::SwitchHop {
                                    sw,
                                    port: sp,
                                    at: arrival,
                                    frame,
                                },
                            );
                        } else {
                            self.outbox_hop(engine, origin, sw, sp, arrival, &frame);
                        }
                    }
                }
                None => {}
            }
        }

        // Iteration cost: loop work + per-call isolation charges.
        let work = self.costs.mainloop_idle_ns
            + self.costs.mainloop_per_frame_ns * (rx as u64 + n_tx as u64)
            + self.nodes[i].profile.per_ff_call_ns * ff_calls;
        let work = SimDuration::from_nanos(work);
        // Scenario 2: the service loop holds the F-Stack mutex for its
        // iteration; app calls contend (their wait shows up as lock delay
        // on the next loop turn).
        let next = if self.nodes[i].profile.s2_service {
            let m = self.s2_mutex.as_mut().expect("s2 mutex exists");
            let grant = m.acquire(now, work);
            grant.released_at
        } else {
            now + work
        };

        // Quiescence: an iteration that did no work and owes the wire
        // nothing parks the loop instead of rescheduling it. Eligibility is
        // strict so behavior is provably identical to polling:
        //  * the iteration was a no-op (no RX, no TX, no app progress), so
        //    replaying it at every tick until something external happens
        //    would change nothing;
        //  * no frame is queued mid-DMA on the port (it would become
        //    readable without a further delivery event);
        //  * the node carries no per-call isolation charge and no service
        //    mutex, so its idle tick period is exactly `mainloop_idle_ns`
        //    and the poll lattice is predictable from `next` alone.
        // The node wakes on the first lattice tick at/after a frame
        // delivery to its port, or at/after the earliest known deadline
        // (stack timers, app write-gap/stop instants).
        let idle = rx == 0 && n_tx == 0 && !progressed;
        if idle {
            self.counters.idle_polls += 1;
        }
        let node = &self.nodes[i];
        let parkable = idle
            && !node.profile.s2_service
            && node.profile.per_ff_call_ns == 0
            && self.devs[di].rx_pending(pi) == 0;
        if parkable {
            let node = &mut self.nodes[i];
            let mut deadline = node.stack.next_timer_deadline();
            for c in node.clients.iter().flatten() {
                if let Some(d) = c.next_deadline(now) {
                    deadline = Some(deadline.map_or(d, |m| m.min(d)));
                }
            }
            // Fleet clocks (pending arrival, think timers), the HTTP
            // server's idle-connection reaper and chaos round clocks must
            // all wake a parked node; everything else the server does is
            // input-driven.
            for f in node.fleets.iter().flatten() {
                if let Some(d) = f.next_deadline(now) {
                    deadline = Some(deadline.map_or(d, |m| m.min(d)));
                }
            }
            for h in node.https.iter().flatten() {
                if let Some(d) = h.next_deadline(now) {
                    deadline = Some(deadline.map_or(d, |m| m.min(d)));
                }
            }
            for x in node.chaos.iter().flatten() {
                if let Some(d) = x.next_deadline(now) {
                    deadline = Some(deadline.map_or(d, |m| m.min(d)));
                }
            }
            let period = self.idle_period;
            let node = &mut self.nodes[i];
            node.parked = true;
            node.epoch += 1;
            node.anchor = next;
            self.counters.parks += 1;
            debug_assert!(node.wake.is_none(), "parking with a wake still scheduled");
            if let Some(d) = deadline {
                let tick = Self::lattice_tick(next, d, period);
                let epoch = node.epoch;
                let handle = engine.schedule_last_from(
                    Self::node_origin(i),
                    tick,
                    NetEvent::Wake { node: i, epoch },
                );
                self.nodes[i].wake = Some(handle);
            }
        } else {
            engine.schedule_from(Self::node_origin(i), next, NetEvent::LoopIter { node: i });
        }
    }

    /// One switch hop: run the fabric's forwarding decision for a frame
    /// arriving on `(sw, sp)` at `now`, then propagate every surviving
    /// egress copy down its cable — to a NIC (final hop, impairments
    /// apply) or into the next switch of a chain.
    fn switch_ingress(
        &mut self,
        sw: usize,
        sp: usize,
        now: SimTime,
        frame: Frame,
        engine: &mut Engine<NetSim>,
    ) {
        let outputs = self.switches[sw].ingress(sp, now, frame, &self.costs);
        let origin = self.switch_origin(sw);
        for tx in outputs {
            if !self.link_down.is_empty() && self.link_down.contains(&Ep::Sw(sw, tx.port)) {
                // This egress cable is administratively down: the copy is
                // blackholed at the switch's TX hop.
                self.impairment_stats.blackholed += 1;
                continue;
            }
            match self.sw_cabled[sw][tx.port] {
                Some(Ep::Dev(pd, pp)) => {
                    let arrival = self.wire.propagate(tx.departure);
                    self.schedule_delivery(engine, origin, pd, pp, arrival, tx.frame);
                }
                Some(Ep::Sw(sw2, sp2)) => {
                    let arrival = self.wire.propagate(tx.departure);
                    if self.local_sw(sw2) {
                        engine.schedule_from(
                            origin,
                            arrival,
                            NetEvent::SwitchHop {
                                sw: sw2,
                                port: sp2,
                                at: arrival,
                                frame: tx.frame,
                            },
                        );
                    } else {
                        self.outbox_hop(engine, origin, sw2, sp2, arrival, &tx.frame);
                    }
                }
                None => { /* unattached switch port: the copy goes nowhere */ }
            }
        }
    }

    /// Schedules delivery of `frame` to NIC `(dev, port)` at nominal
    /// instant `at`, applying the configured cable impairments (loss,
    /// corruption, duplication, reordering, jitter) on this final hop.
    fn schedule_delivery(
        &mut self,
        engine: &mut Engine<NetSim>,
        origin: u32,
        dev: usize,
        port: usize,
        at: SimTime,
        frame: Frame,
    ) {
        let local = self.local_dev(dev);
        if self.impairments.is_ideal() {
            if local {
                engine.schedule_from(
                    origin,
                    at,
                    NetEvent::Deliver {
                        dev,
                        port,
                        at,
                        frame,
                    },
                );
            } else {
                self.outbox_deliver(engine, origin, dev, port, at, &frame);
            }
            return;
        }
        // Impairments are drawn on the sending side from the destination
        // port's own stream — all deliveries to a port come from its one
        // cabled peer, so the draw order is that peer's deterministic
        // emission order, independent of sharding.
        let rng = &mut self.port_rng[dev][port];
        let plan = self.impairments.plan(rng, at);
        self.impairment_stats.absorb(plan.stats);
        for (at, corrupt) in plan.deliveries {
            let copy = if corrupt {
                frame.corrupted(&mut self.port_rng[dev][port])
            } else {
                frame.clone()
            };
            if local {
                engine.schedule_from(
                    origin,
                    at,
                    NetEvent::Deliver {
                        dev,
                        port,
                        at,
                        frame: copy,
                    },
                );
            } else {
                self.outbox_deliver(engine, origin, dev, port, at, &copy);
            }
        }
    }

    /// Folds the delivery into the run's [`TraceDigest`], hands the frame
    /// to the NIC, and wakes the port's owning node if its loop is parked:
    /// the wake lands on the first tick of the node's poll lattice at or
    /// after the arrival, which is exactly when the polling loop would have
    /// seen the frame.
    fn record_and_deliver(
        &mut self,
        dev: usize,
        port: usize,
        at: SimTime,
        frame: Frame,
        engine: &mut Engine<NetSim>,
    ) {
        if let Some(ctx) = &mut self.shard_ctx {
            // Sharded runs defer the digest: folds must happen in the
            // *merged* dispatch order across all shards, not this shard's
            // arrival order, so the delivery is logged under its dispatch
            // key and folded at merge time.
            ctx.log.push_back(DeliveryRecord {
                at,
                key: engine.current_key(),
                dev: dev as u32,
                port: port as u32,
                frame: frame.clone(),
            });
        } else {
            self.trace.record(at, dev, port, frame.bytes());
        }
        if self.dev_owner[dev][port].is_some_and(|ni| self.nodes[ni].crashed) {
            // The wire carried the frame (it is in the digest), but the
            // host is dead: the NIC discards it instead of ringing DMA
            // into a stack that no longer exists.
            self.fault_stats.frames_to_dead += 1;
            return;
        }
        self.devs[dev].deliver(port, at, frame);
        if let Some(ni) = self.dev_owner[dev][port] {
            let node = &mut self.nodes[ni];
            if node.parked {
                node.parked = false;
                node.epoch += 1;
                self.counters.wakes += 1;
                // Supersede the parked deadline wake in place: cancelling it
                // is what keeps `ev_stale_wakes` at zero (the epoch check on
                // dispatch survives as a debug assertion of this invariant).
                if let Some(stale) = node.wake.take() {
                    engine.cancel(stale);
                }
                let epoch = node.epoch;
                let tick = Self::lattice_tick(node.anchor, engine.now(), self.idle_period);
                let handle = engine.schedule_last_from(
                    Self::node_origin(ni),
                    tick,
                    NetEvent::Wake { node: ni, epoch },
                );
                self.nodes[ni].wake = Some(handle);
            }
        }
    }
}

impl World for NetSim {
    type Event = NetEvent;

    fn handle(&mut self, ev: NetEvent, engine: &mut Engine<NetSim>) {
        match ev {
            NetEvent::LoopIter { node } => self.loop_iter(node, engine),
            NetEvent::Wake { node, epoch } => {
                // Superseded wakes are cancelled in place and never
                // dispatch; a mismatched epoch here would mean a
                // cancellation was missed.
                debug_assert_eq!(
                    self.nodes[node].epoch, epoch,
                    "stale wake leaked past cancellation"
                );
                if self.nodes[node].epoch != epoch {
                    // Release-mode safety net (kept for robustness; the
                    // counter stays visible in BENCH json as the witness
                    // that cancellation works).
                    self.counters.stale_wakes += 1;
                    return;
                }
                self.nodes[node].wake = None;
                if self.nodes[node].parked {
                    // A parked node reaching its scheduled deadline.
                    self.nodes[node].parked = false;
                    self.counters.timer_wakes += 1;
                }
                self.loop_iter(node, engine);
            }
            NetEvent::Deliver {
                dev,
                port,
                at,
                frame,
            } => {
                self.counters.deliveries += 1;
                self.record_and_deliver(dev, port, at, frame, engine);
            }
            NetEvent::SwitchHop {
                sw,
                port,
                at,
                frame,
            } => {
                self.counters.switch_hops += 1;
                self.switch_ingress(sw, port, at, frame, engine);
            }
            NetEvent::Fault { idx } => self.apply_fault(idx, engine),
        }
    }
}

/// The results of one simulation run.
#[derive(Debug)]
pub struct SimOutcome {
    /// Server (receiver) reports, in installation order.
    pub servers: Vec<BandwidthReport>,
    /// Client (sender) reports, in installation order.
    pub clients: Vec<BandwidthReport>,
    /// HTTP serving-plane server reports, in installation order.
    pub http_servers: Vec<HttpServerReport>,
    /// HTTP open-loop fleet reports, in installation order.
    pub http_fleets: Vec<FleetReport>,
    /// Fault-injection campaign reports, in installation order.
    pub chaos: Vec<ChaosReport>,
    /// The virtual instant the last event executed. With the
    /// quiescence-aware engine this can be well before [`SimOutcome::horizon`]:
    /// once every node is parked with nothing pending, the remaining virtual
    /// time passes without a single event.
    pub ended_at: SimTime,
    /// The virtual instant the run was asked to simulate to ([`NetSim::run`]'s
    /// `duration`). The whole `[0, horizon]` span *is* simulated — an empty
    /// calendar tail is the engine being fast, not the run being short — so
    /// host-speed metrics (`host_ns_per_sim_sec`) divide by this, keeping
    /// them comparable with pre-parking baselines whose polling filled the
    /// tail with idle events.
    pub horizon: SimTime,
    /// Discrete events the engine executed — the denominator of the
    /// events-per-second speed metric in the perf trajectory.
    pub events: u64,
    /// Per-kind event counters: why `events` is what it is (loop polls vs
    /// deliveries vs switch hops vs wakes), and the zero-boxed-events
    /// steady-state witness.
    pub counters: EventCounters,
    /// `(node name, port hardware stats)`.
    pub port_stats: Vec<(String, updk::ethdev::PortStats)>,
    /// `(node name, protocol stack counters)`.
    pub stack_stats: Vec<(String, fstack::StackStats)>,
    /// Per-fabric forwarding counters, in [`NetSim::add_switch`] order.
    pub switch_stats: Vec<SwitchStats>,
    /// `(acquisitions, contentions, total wait)` of the S2 mutex, if any.
    pub mutex_stats: Option<(u64, u64, SimDuration)>,
    /// What the (possibly impaired) cables did over the run.
    pub impairment_stats: ImpairmentStats,
    /// What the scheduled fault plan did over the run (all zero for a
    /// fault-free run — an empty plan schedules no events at all).
    pub fault_stats: FaultStats,
    /// The run's delivery-trace digest (the determinism witness) —
    /// byte-identical at any [`SimOutcome::workers`] count.
    pub trace: TraceDigest,
    /// Shards the run actually used (1 = the classic single-engine loop).
    pub workers: usize,
    /// The tightest conservative lookahead of the run's shard plan, in
    /// nanoseconds ([`crate::parallel::LookaheadMatrix::min_finite`]; per-pair
    /// windows are at least this wide). Single-engine runs report the
    /// window a 2-shard plan *would* run under (0 when no such plan cuts
    /// a cable), so the would-be width shows up in bench output too.
    pub lookahead_ns: u64,
    /// Sharded-driver tallies (rendezvous rounds, cross-shard frames,
    /// rehoming copies). All zero for single-engine runs; unlike
    /// [`SimOutcome::counters`], these describe the driver rather than
    /// the simulation, so they legitimately vary across worker counts.
    pub rounds: RoundCounters,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_allows_everyone_always() {
        let s = AppSched::RoundRobin;
        for turn in 0..100 {
            for idx in 0..4 {
                assert!(s.allows(idx, turn));
            }
        }
    }

    #[test]
    fn barging_never_gates_the_first_cvm() {
        let s = AppSched::paper_barging();
        for turn in 0..10_000 {
            assert!(s.allows(0, turn));
        }
    }

    #[test]
    fn barging_grant_fraction_matches_parameters() {
        let AppSched::Barging { grant, period } = AppSched::paper_barging() else {
            panic!("paper_barging is Barging");
        };
        let s = AppSched::paper_barging();
        let allowed = (0..u64::from(period)).filter(|&t| s.allows(1, t)).count();
        assert_eq!(allowed as u32, grant);
        // And the denial is one contiguous convoy, not interleaved.
        let first_denied = (0..u64::from(period)).find(|&t| !s.allows(1, t)).unwrap();
        assert!((first_denied..u64::from(period)).all(|t| !s.allows(1, t)));
    }

    #[test]
    fn weighted_windows_partition_every_turn() {
        let s = AppSched::Weighted {
            weight_first: 2,
            weight_rest: 1,
        };
        let mut first = 0u64;
        let mut rest = 0u64;
        for turn in 0..3_000 {
            let a0 = s.allows(0, turn);
            let a1 = s.allows(1, turn);
            assert!(a0 ^ a1, "exactly one side owns each turn");
            if a0 {
                first += 1;
            } else {
                rest += 1;
            }
        }
        // One full period (3 × 500 turns): 2:1 exactly.
        assert_eq!(first, 2_000);
        assert_eq!(rest, 1_000);
    }

    #[test]
    fn weighted_tolerates_zero_weights_defensively() {
        let s = AppSched::Weighted {
            weight_first: 0,
            weight_rest: 0,
        };
        // max(1) clamping: no panic, both sides get turns over a period.
        let first = (0..1_000u64).filter(|&t| s.allows(0, t)).count();
        assert!(first > 0 && first < 1_000);
    }

    /// A port holds one cable: re-linking a connected port must fail
    /// loudly instead of silently overwriting the topology.
    #[test]
    fn linking_a_connected_port_is_an_error() {
        let mut sim = NetSim::new(CostModel::morello());
        let a = sim.add_dev(NicModel::Host).unwrap();
        let b = sim.add_dev(NicModel::Host).unwrap();
        let c = sim.add_dev(NicModel::Host).unwrap();
        sim.link(a, 0, b, 0).unwrap();
        let err = sim.link(a, 0, c, 0).unwrap_err();
        assert!(
            matches!(&err, CapnetError::Config(m) if m.contains("already cabled")),
            "got {err}"
        );
        // The same port cannot be attached to a switch either.
        let sw = sim.add_switch(2).unwrap();
        assert!(sim.attach(a, 0, sw, 0).is_err());
        // A fresh port attaches fine; its switch port is then taken too.
        sim.attach(c, 0, sw, 0).unwrap();
        let d = sim.add_dev(NicModel::Host).unwrap();
        assert!(sim.attach(d, 0, sw, 0).is_err());
        sim.attach(d, 0, sw, 1).unwrap();
    }

    #[test]
    fn link_validates_port_ranges_and_self_links() {
        let mut sim = NetSim::new(CostModel::morello());
        let a = sim.add_dev(NicModel::Host).unwrap();
        let b = sim.add_dev(NicModel::Host).unwrap();
        assert!(sim.link(a, 1, b, 0).is_err(), "Host NIC has one port");
        assert!(sim.link(a, 0, a, 0).is_err(), "self-link rejected");
        assert!(sim.add_switch(1).is_err(), "one-port switch rejected");
        assert!(sim.add_switch_with_queue(2, 0).is_err(), "zero queue");
        let sw = sim.add_switch(2).unwrap();
        assert!(sim.attach(a, 0, sw, 7).is_err(), "switch port range");
        let sw2 = sim.add_switch(2).unwrap();
        assert!(sim.link_switches(sw, 0, sw, 0).is_err(), "self-trunk");
        sim.link_switches(sw, 0, sw2, 0).unwrap();
        assert!(sim.link_switches(sw, 0, sw2, 1).is_err(), "trunk port busy");
    }

    /// A single 1 Gbit/s flow between two ideal hosts must reach the
    /// 941 Mbit/s TCP goodput ceiling — the physics check underneath all of
    /// Table II.
    #[test]
    fn single_flow_hits_941() {
        let costs = CostModel::morello();
        let mut sim = NetSim::new(costs);
        let a = sim.add_dev(NicModel::Host).unwrap();
        let b = sim.add_dev(NicModel::Host).unwrap();
        sim.link(a, 0, b, 0).unwrap();
        let srv = sim
            .add_node(
                "srv",
                a,
                0,
                Ipv4Addr::new(10, 0, 0, 1),
                IsolationProfile::default(),
            )
            .unwrap();
        let cli = sim
            .add_node(
                "cli",
                b,
                0,
                Ipv4Addr::new(10, 0, 0, 2),
                IsolationProfile::default(),
            )
            .unwrap();
        sim.add_server(srv, "srv", 5201).unwrap();
        sim.add_client(
            cli,
            "cli",
            (Ipv4Addr::new(10, 0, 0, 1), 5201),
            SimDuration::from_millis(180),
            SimDuration::ZERO,
        )
        .unwrap();
        let out = sim.run(SimDuration::from_millis(200)).unwrap();
        let bw = out.servers[0].mbit_per_sec();
        assert!(
            (bw - 941.0).abs() < 15.0,
            "single flow should reach ≈941 Mbit/s, got {bw:.0}"
        );
    }
}
