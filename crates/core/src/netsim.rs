//! The end-to-end network simulation driver.
//!
//! Wires [`updk::EthDev`] devices, [`fstack::FStack`] instances and
//! [`iperf`] applications into a discrete-event run on a
//! [`simkern::Engine`]. One `NetSim` is one Table II measurement: the
//! device under test (the dual-port 82576 behind its PCI bus), the remote
//! measurement hosts, the cables between them, and the per-scenario
//! isolation charges (trampolines, cross-cVM wrappers, the Scenario 2
//! service mutex).

use crate::CapnetError;
use cheri::{Capability, TaggedMemory};
use fstack::loop_::{rx_phase, tx_phase, ServiceMutex};
use fstack::{FStack, StackConfig};
use iperf::{BandwidthReport, ClientApp, ServerApp, StepOutcome};
use simkern::cost::CostModel;
use simkern::engine::{Engine, World};
use simkern::rng::SimRng;
use simkern::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use updk::ethdev::EthDev;
use updk::kmod::{BindingRegistry, PciAddress};
use updk::nic::NicModel;
use updk::switch::{LinkFabric, SwitchStats};
use updk::wire::{Frame, ImpairmentStats, Impairments, Wire};

/// Handle to a node in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Handle to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevId(pub(crate) usize);

/// Handle to a switching fabric added with [`NetSim::add_switch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchId(usize);

/// One cable endpoint: a NIC port or a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Ep {
    Dev(usize, usize),
    Sw(usize, usize),
}

impl std::fmt::Display for Ep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ep::Dev(d, p) => write!(f, "device {d} port {p}"),
            Ep::Sw(s, p) => write!(f, "switch {s} port {p}"),
        }
    }
}

/// The typed event vocabulary of the simulation — every event the engine
/// dispatches in steady state is one of these small inline values, so the
/// hot path schedules without boxing (the witness is
/// [`EventCounters::boxed_events`] staying zero across a run).
#[derive(Debug)]
pub enum NetEvent {
    /// One main-loop iteration of a node's poll loop.
    LoopIter {
        /// Node index.
        node: usize,
    },
    /// A parked node's scheduled wake tick (at a poll-lattice instant).
    /// Stale wakes — the node was woken earlier by a frame delivery, or
    /// re-parked since — are recognized by `epoch` and ignored.
    Wake {
        /// Node index.
        node: usize,
        /// The park generation this wake was scheduled for.
        epoch: u64,
    },
    /// A frame arriving at a NIC port at instant `at` (folded into the
    /// trace digest, then DMA'd toward the RX ring).
    Deliver {
        /// Destination device index.
        dev: usize,
        /// Destination port on that device.
        port: usize,
        /// Nominal arrival instant (the digest timestamps with this).
        at: SimTime,
        /// The frame (a shared buffer; cloning is a refcount bump).
        frame: Frame,
    },
    /// A frame arriving at a switch ingress port: run the fabric's
    /// forwarding decision and propagate the surviving egress copies.
    SwitchHop {
        /// Switch index.
        sw: usize,
        /// Ingress port on that switch.
        port: usize,
        /// Arrival instant at the ingress port.
        at: SimTime,
        /// The frame.
        frame: Frame,
    },
}

/// Per-kind event counters for one run: the *why* behind `events_per_sec`
/// moving across PRs. Emitted into `BENCH_*.json` by the bench targets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Main-loop iterations executed (scheduled polls plus honored wakes).
    pub loop_polls: u64,
    /// Iterations that did no work (no RX, no TX, no app progress).
    pub idle_polls: u64,
    /// Frame deliveries into NIC ports.
    pub deliveries: u64,
    /// Switch ingress/forwarding events.
    pub switch_hops: u64,
    /// Honored timer wakes: a parked node reaching a known deadline
    /// (stack retransmit/delayed-ACK/TIME_WAIT timer or an app's
    /// write-gap/stop instant).
    pub timer_wakes: u64,
    /// Wake events that arrived after the node had already been woken (or
    /// re-parked); recognized by epoch and dropped.
    pub stale_wakes: u64,
    /// Times a quiescent node parked instead of rescheduling its poll.
    pub parks: u64,
    /// Parked nodes woken early by a frame delivery to their port.
    pub wakes: u64,
    /// Boxed closure events scheduled on the engine — zero in steady state
    /// (every hot-path event is a typed [`NetEvent`]).
    pub boxed_events: u64,
}

/// A rolling digest over every frame delivery of a run: the
/// `harness_determinism`-style trace identity witness, cheap enough to keep
/// always-on. Two runs with identical construction and seed must produce
/// identical digests; any divergence in delivery instant, destination or
/// payload bytes changes the FNV-1a fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDigest {
    /// FNV-1a over `(at_ns, dev, port, len, bytes)` of every delivery.
    pub digest: u64,
    /// Deliveries folded in.
    pub frames: u64,
    /// Frame bytes folded in.
    pub bytes: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        TraceDigest {
            digest: 0xCBF2_9CE4_8422_2325, // FNV-1a offset basis
            frames: 0,
            bytes: 0,
        }
    }
}

impl TraceDigest {
    #[inline]
    fn fold(digest: u64, b: u8) -> u64 {
        (digest ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    }

    fn record(&mut self, at: SimTime, dev: usize, port: usize, frame: &[u8]) {
        // Fold through a local so the per-byte chain (this runs once per
        // delivered frame byte) stays in a register instead of bouncing
        // through `self`.
        let mut d = self.digest;
        for b in at.as_nanos().to_le_bytes() {
            d = Self::fold(d, b);
        }
        d = Self::fold(d, dev as u8);
        d = Self::fold(d, port as u8);
        for b in (frame.len() as u32).to_le_bytes() {
            d = Self::fold(d, b);
        }
        for &b in frame {
            d = Self::fold(d, b);
        }
        self.digest = d;
        self.frames += 1;
        self.bytes += frame.len() as u64;
    }
}

/// How contending app cVMs are scheduled against the Scenario 2 service
/// loop.
///
/// The paper's contended Table II rows are *unbalanced* on the client side
/// (531 vs 410 Mbit/s), which the authors attribute to "the lack of
/// mechanisms for fairness control" — their service mutex lets whichever
/// cVM retries first barge ahead. [`AppSched::Barging`] models that
/// testbed behavior; [`AppSched::RoundRobin`] (the default here) is the
/// fairness-control fix the paper defers to future work, under which the
/// contended flows split the port evenly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AppSched {
    /// Every app cVM steps once per service-loop turn (FIFO-fair).
    #[default]
    RoundRobin,
    /// The first app cVM runs every turn; each later cVM is only granted
    /// `grant` of every `period` turns, as when an unfair mutex plus the
    /// OS scheduler systematically favor one waiter.
    Barging {
        /// Turns (out of `period`) in which a non-first cVM may step.
        grant: u32,
        /// The scheduling period in loop turns.
        period: u32,
    },
    /// Explicit QoS (the paper's deferred future work, via
    /// [`updk::qos`]-style weighted service): the second app cVM steps in
    /// proportion `weight_rest / weight_first` of the first's turns, in
    /// starvation-free convoys. `Weighted { 1, 1 }` behaves like
    /// [`AppSched::RoundRobin`]; `Weighted { 2, 1 }` gives the first cVM
    /// twice the client bandwidth.
    Weighted {
        /// Service weight of the first app cVM.
        weight_first: u32,
        /// Service weight of every other app cVM.
        weight_rest: u32,
    },
}

impl AppSched {
    /// The paper's testbed asymmetry, calibrated so the contended client
    /// split lands near Table II's 531/410 Mbit/s.
    ///
    /// The denial windows must be *convoys* (hundreds of loop turns), not
    /// per-turn interleaving: TCP's send buffer rides out short denials,
    /// so only a starvation burst long enough to drain the buffer (≈130 µs
    /// at line rate) shifts bandwidth — which is exactly how a mutex convoy
    /// plus an unfair scheduler starve a waiter in the real system.
    pub fn paper_barging() -> Self {
        AppSched::Barging {
            grant: 950,
            period: 2_000,
        }
    }

    /// Whether app index `idx` gets to step on loop turn `turn`.
    fn allows(&self, idx: usize, turn: u64) -> bool {
        match *self {
            AppSched::RoundRobin => true,
            AppSched::Barging { grant, period } => {
                idx == 0 || (turn % u64::from(period.max(1))) < u64::from(grant)
            }
            AppSched::Weighted {
                weight_first,
                weight_rest,
            } => {
                // Time-division service in convoys of QUANTUM turns per
                // weight point: long enough that the active flow's TCP
                // pipeline saturates the port during its window, so the
                // bandwidth split equals the weight ratio.
                const QUANTUM: u64 = 500;
                let wf = u64::from(weight_first.max(1)) * QUANTUM;
                let wr = u64::from(weight_rest.max(1)) * QUANTUM;
                let pos = turn % (wf + wr);
                if idx == 0 {
                    pos < wf
                } else {
                    pos >= wf
                }
            }
        }
    }
}

/// Per-node isolation charges for the active scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct IsolationProfile {
    /// Extra nanoseconds charged per application `ff_*` call (0 for
    /// Baseline and Scenario 1 — their `ff_*` calls stay inside one
    /// protection domain; Scenario 2 charges the wrapper cross-call).
    pub per_ff_call_ns: u64,
    /// This node's main loop serializes on the Scenario 2 service mutex.
    pub s2_service: bool,
}

struct Node {
    name: String,
    dev: usize,
    port: usize,
    mem: usize,
    stack: FStack,
    servers: Vec<Option<ServerApp>>,
    clients: Vec<Option<ClientApp>>,
    profile: IsolationProfile,
    turns: u64,
    /// What this node's port is cabled to, resolved once at `run()` start
    /// so the TX hot path never touches the topology `HashMap`.
    cabled: Option<Ep>,
    /// `true` while the node's poll loop is parked (quiescent, no event
    /// scheduled except possibly a [`NetEvent::Wake`] at a known deadline).
    parked: bool,
    /// Park generation; bumped on every park and wake so stale scheduled
    /// wakes are recognized and dropped.
    epoch: u64,
    /// While parked: the instant the next poll iteration *would* have run.
    /// Wakes land on this lattice (`anchor + k·mainloop_idle_ns`), so a
    /// woken loop observes the world at exactly the instants the
    /// unconditional polling loop would have — wire behavior is preserved
    /// bit for bit.
    anchor: SimTime,
}

/// The assembled simulation world (driven by [`Engine`] events).
pub struct NetSim {
    costs: CostModel,
    devs: Vec<EthDev>,
    mems: Vec<TaggedMemory>,
    mem_bump: Vec<u64>,
    nodes: Vec<Node>,
    links: HashMap<Ep, Ep>,
    switches: Vec<LinkFabric>,
    trace: TraceDigest,
    wire: Wire,
    impairments: Impairments,
    impairment_stats: ImpairmentStats,
    app_sched: AppSched,
    s2_mutex: Option<ServiceMutex>,
    stop_at: SimTime,
    rng: SimRng,
    kmod: BindingRegistry,
    next_pci: u8,
    counters: EventCounters,
    /// `(dev, port)` → owning node index, resolved at `run()` start so a
    /// delivery can wake the parked loop that polls that port.
    dev_owner: Vec<Vec<Option<usize>>>,
    /// Switch egress cables (`sw_cabled[sw][port]`), resolved at `run()`
    /// start for the forwarding hot path.
    sw_cabled: Vec<Vec<Option<Ep>>>,
    /// The idle poll period (from the cost model): the lattice step parked
    /// nodes wake on.
    idle_period: u64,
}

impl std::fmt::Debug for NetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetSim")
            .field("nodes", &self.nodes.len())
            .field("devs", &self.devs.len())
            .finish()
    }
}

/// Default per-node memory arena.
const NODE_MEM: u64 = 4 << 20;
/// Packet pool region per port.
const POOL_BYTES: u64 = 1 << 20;
/// App buffer size (per ff_read/ff_write call).
const APP_BUF: u64 = 16 * 1024;

impl NetSim {
    /// Creates an empty simulation with the given cost model.
    pub fn new(costs: CostModel) -> Self {
        let idle_period = costs.mainloop_idle_ns.max(1);
        NetSim {
            costs,
            devs: Vec::new(),
            mems: Vec::new(),
            mem_bump: Vec::new(),
            nodes: Vec::new(),
            links: HashMap::new(),
            switches: Vec::new(),
            trace: TraceDigest::default(),
            wire: Wire::new(SimDuration::from_nanos(1_000)),
            impairments: Impairments::default(),
            impairment_stats: ImpairmentStats::default(),
            app_sched: AppSched::default(),
            s2_mutex: None,
            stop_at: SimTime::MAX,
            rng: SimRng::seed_from_u64(0xCAB1E),
            kmod: BindingRegistry::new(),
            next_pci: 3,
            counters: EventCounters::default(),
            dev_owner: Vec::new(),
            sw_cabled: Vec::new(),
            idle_period,
        }
    }

    /// Adds a NIC of `model` (kernel-detached and ready to configure).
    pub fn add_dev(&mut self, model: NicModel) -> Result<DevId, CapnetError> {
        let addr = PciAddress::new(0, self.next_pci, 0);
        self.next_pci += 1;
        self.kmod
            .discover(addr, "Intel 82576 Gigabit Network Connection");
        self.kmod.bind_userspace(addr)?;
        self.devs.push(EthDev::new(addr, model, self.costs.clone()));
        Ok(DevId(self.devs.len() - 1))
    }

    /// Cables `(a, port_a)` to `(b, port_b)` (full duplex).
    ///
    /// # Errors
    ///
    /// [`CapnetError::Config`] if a port index is out of range for its
    /// device, if both endpoints are the same port, or if either port is
    /// already cabled (to a device or a switch) — a port holds one cable.
    pub fn link(
        &mut self,
        a: DevId,
        port_a: usize,
        b: DevId,
        port_b: usize,
    ) -> Result<(), CapnetError> {
        let ea = self.dev_ep(a, port_a)?;
        let eb = self.dev_ep(b, port_b)?;
        self.connect(ea, eb)
    }

    /// Adds an N-port [`LinkFabric`] learning switch with the default
    /// egress queue depth ([`LinkFabric::DEFAULT_QUEUE`]).
    ///
    /// # Errors
    ///
    /// [`CapnetError::Config`] if `ports < 2`.
    pub fn add_switch(&mut self, ports: usize) -> Result<SwitchId, CapnetError> {
        self.add_switch_with_queue(ports, LinkFabric::DEFAULT_QUEUE)
    }

    /// [`NetSim::add_switch`] with an explicit per-port egress queue depth
    /// (frames); shallow queues drop earlier under convergence, deep queues
    /// trade drops for latency.
    ///
    /// # Errors
    ///
    /// [`CapnetError::Config`] if `ports < 2` or `queue == 0`.
    pub fn add_switch_with_queue(
        &mut self,
        ports: usize,
        queue: usize,
    ) -> Result<SwitchId, CapnetError> {
        if ports < 2 {
            return Err(CapnetError::Config(format!(
                "a switch needs at least 2 ports, got {ports}"
            )));
        }
        if queue == 0 {
            return Err(CapnetError::Config(
                "switch egress queue depth must be nonzero".into(),
            ));
        }
        self.switches.push(LinkFabric::new(ports, queue));
        Ok(SwitchId(self.switches.len() - 1))
    }

    /// Cables NIC port `(dev, dev_port)` into switch port `(sw, sw_port)`.
    ///
    /// # Errors
    ///
    /// [`CapnetError::Config`] on out-of-range ports or already-cabled
    /// endpoints.
    pub fn attach(
        &mut self,
        dev: DevId,
        dev_port: usize,
        sw: SwitchId,
        sw_port: usize,
    ) -> Result<(), CapnetError> {
        let ed = self.dev_ep(dev, dev_port)?;
        let es = self.sw_ep(sw, sw_port)?;
        self.connect(ed, es)
    }

    /// Trunks two switches together: `(a, port_a)` to `(b, port_b)`. The
    /// resulting graph must stay loop-free (tree topologies: star, chain,
    /// dumbbell) — there is no spanning-tree protocol, so a cycle floods
    /// forever.
    ///
    /// # Errors
    ///
    /// [`CapnetError::Config`] on out-of-range ports, a self-trunk, or
    /// already-cabled endpoints.
    pub fn link_switches(
        &mut self,
        a: SwitchId,
        port_a: usize,
        b: SwitchId,
        port_b: usize,
    ) -> Result<(), CapnetError> {
        let ea = self.sw_ep(a, port_a)?;
        let eb = self.sw_ep(b, port_b)?;
        self.connect(ea, eb)
    }

    fn dev_ep(&self, dev: DevId, port: usize) -> Result<Ep, CapnetError> {
        let ports = self
            .devs
            .get(dev.0)
            .ok_or_else(|| CapnetError::Config(format!("no such device {}", dev.0)))?
            .port_count();
        if port >= ports {
            return Err(CapnetError::Config(format!(
                "device {} has {ports} port(s), no port {port}",
                dev.0
            )));
        }
        Ok(Ep::Dev(dev.0, port))
    }

    fn sw_ep(&self, sw: SwitchId, port: usize) -> Result<Ep, CapnetError> {
        let ports = self
            .switches
            .get(sw.0)
            .ok_or_else(|| CapnetError::Config(format!("no such switch {}", sw.0)))?
            .port_count();
        if port >= ports {
            return Err(CapnetError::Config(format!(
                "switch {} has {ports} port(s), no port {port}",
                sw.0
            )));
        }
        Ok(Ep::Sw(sw.0, port))
    }

    fn connect(&mut self, a: Ep, b: Ep) -> Result<(), CapnetError> {
        if a == b {
            return Err(CapnetError::Config(format!("cannot cable {a} to itself")));
        }
        for ep in [a, b] {
            if let Some(peer) = self.links.get(&ep) {
                return Err(CapnetError::Config(format!(
                    "{ep} is already cabled to {peer}"
                )));
            }
        }
        self.links.insert(a, b);
        self.links.insert(b, a);
        Ok(())
    }

    /// Degrades frame delivery with `imp` (loss, corruption, duplication,
    /// reordering, jitter). The default is the ideal cabling of the paper's
    /// testbed. Impairments are applied **once per end-to-end path**, on
    /// the final hop into the destination NIC — on a pairwise link that is
    /// the cable itself; on a switched path the switch hops stay clean and
    /// the last switch-to-NIC cable degrades (loss does *not* compound
    /// with hop count). Decisions are drawn from the simulation's
    /// deterministic RNG, so runs stay reproducible.
    pub fn set_impairments(&mut self, imp: Impairments) {
        self.impairments = imp;
    }

    /// Selects how contending app cVMs are scheduled (see [`AppSched`]).
    pub fn set_app_sched(&mut self, sched: AppSched) {
        self.app_sched = sched;
    }

    /// Reseeds the simulation's deterministic RNG (which drives impairment
    /// draws). Two simulations built identically and seeded identically
    /// produce identical outcomes; without a call the fixed default seed
    /// applies, so unseeded runs are already reproducible.
    pub fn set_seed(&mut self, seed: u64) {
        self.rng = SimRng::seed_from_u64(seed);
    }

    /// Creates a node: its own memory arena, a stack on `(dev, port)` with
    /// address `ip`, and the given isolation profile.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        dev: DevId,
        port: usize,
        ip: Ipv4Addr,
        profile: IsolationProfile,
    ) -> Result<NodeId, CapnetError> {
        let name = name.into();
        let mem_idx = self.mems.len();
        let mut mem = TaggedMemory::new(NODE_MEM);
        // Carve the packet pool ("correct permission flags") and configure.
        let region = mem
            .root_cap()
            .try_restrict(4096, POOL_BYTES)?
            .try_restrict_perms(cheri::Perms::data())?;
        self.devs[dev.0].configure_port(port, &mut mem, region, 512)?;
        let mac = self.devs[dev.0].mac(port);
        let stack = FStack::new(StackConfig::new(name.clone(), mac, ip));
        self.mems.push(mem);
        self.mem_bump.push(4096 + POOL_BYTES);
        if profile.s2_service && self.s2_mutex.is_none() {
            self.s2_mutex = Some(ServiceMutex::new(&self.costs));
        }
        self.nodes.push(Node {
            name,
            dev: dev.0,
            port,
            mem: mem_idx,
            stack,
            servers: Vec::new(),
            clients: Vec::new(),
            profile,
            turns: 0,
            cabled: None,
            parked: false,
            epoch: 0,
            anchor: SimTime::ZERO,
        });
        Ok(NodeId(self.nodes.len() - 1))
    }

    fn carve_app_buf(&mut self, node: NodeId, fill: Option<u8>) -> Result<Capability, CapnetError> {
        let mem_idx = self.nodes[node.0].mem;
        let base = self.mem_bump[mem_idx].next_multiple_of(16);
        self.mem_bump[mem_idx] = base + APP_BUF;
        let cap = self.mems[mem_idx]
            .root_cap()
            .try_restrict(base, APP_BUF)?
            .try_restrict_perms(cheri::Perms::data())?;
        if let Some(b) = fill {
            self.mems[mem_idx].fill(&cap, base, APP_BUF, b)?;
        }
        Ok(cap)
    }

    /// Installs an iperf server (receiver) on `node` listening at `port`.
    pub fn add_server(
        &mut self,
        node: NodeId,
        label: impl Into<String>,
        port: u16,
    ) -> Result<(), CapnetError> {
        let buf = self.carve_app_buf(node, None)?;
        let n = &mut self.nodes[node.0];
        let app = ServerApp::start(&mut n.stack, label, port, buf)?;
        n.servers.push(Some(app));
        Ok(())
    }

    /// Installs an iperf client (sender) on `node`, targeting
    /// `remote:port`, sending for `duration` once connected.
    pub fn add_client(
        &mut self,
        node: NodeId,
        label: impl Into<String>,
        remote: (Ipv4Addr, u16),
        duration: SimDuration,
        write_gap: SimDuration,
    ) -> Result<(), CapnetError> {
        let buf = self.carve_app_buf(node, Some(0xA5))?;
        let n = &mut self.nodes[node.0];
        let mut app = ClientApp::start(&mut n.stack, label, remote, buf, duration, SimTime::ZERO)?;
        app.set_write_gap(write_gap);
        n.clients.push(Some(app));
        Ok(())
    }

    /// Starts every device.
    fn start_devices(&mut self) -> Result<(), CapnetError> {
        for dev in &mut self.devs {
            dev.start(&self.kmod)?;
        }
        Ok(())
    }

    /// Runs the simulation for `duration` of virtual time and returns the
    /// application reports, in node/app installation order.
    ///
    /// # Errors
    ///
    /// Configuration errors (unstarted devices, bad links); datapath
    /// capability faults abort the run as errors.
    pub fn run(mut self, duration: SimDuration) -> Result<SimOutcome, CapnetError> {
        self.start_devices()?;
        self.stop_at = SimTime::ZERO + duration;
        // Resolve the topology once: each node's cabled endpoint, each
        // switch port's cable, and which node owns each NIC port (so
        // deliveries can wake parked loops). The event hot path never
        // touches the `links` HashMap again.
        self.dev_owner = self
            .devs
            .iter()
            .map(|d| vec![None; d.port_count()])
            .collect();
        for i in 0..self.nodes.len() {
            let (d, p) = (self.nodes[i].dev, self.nodes[i].port);
            self.nodes[i].cabled = self.links.get(&Ep::Dev(d, p)).copied();
            self.dev_owner[d][p] = Some(i);
        }
        self.sw_cabled = self
            .switches
            .iter()
            .enumerate()
            .map(|(s, sw)| {
                (0..sw.port_count())
                    .map(|p| self.links.get(&Ep::Sw(s, p)).copied())
                    .collect()
            })
            .collect();
        let mut engine: Engine<NetSim> = Engine::new();
        for i in 0..self.nodes.len() {
            // Stagger start-up a little so iterations do not run in
            // lockstep (the hosts boot independently).
            let at = SimTime::from_nanos(97 * (i as u64 + 1));
            engine.schedule(at, NetEvent::LoopIter { node: i });
        }
        let stop = self.stop_at;
        engine.run_until(&mut self, stop);
        let end = engine.now();
        let events = engine.executed();
        self.counters.boxed_events = engine.boxed_scheduled();

        // Collect reports.
        let mut servers = Vec::new();
        let mut clients = Vec::new();
        let mut mutex_stats = None;
        for node in &mut self.nodes {
            for s in node.servers.iter_mut() {
                if let Some(app) = s.take() {
                    servers.push(app.report(end));
                }
            }
            for c in node.clients.iter_mut() {
                if let Some(app) = c.take() {
                    clients.push(app.report(end));
                }
            }
        }
        if let Some(m) = &self.s2_mutex {
            mutex_stats = Some((m.acquisitions(), m.contentions(), m.total_wait()));
        }
        let mut port_stats = Vec::new();
        let mut stack_stats = Vec::new();
        for node in &self.nodes {
            port_stats.push((node.name.clone(), self.devs[node.dev].stats(node.port)));
            stack_stats.push((node.name.clone(), node.stack.stats()));
        }
        let switch_stats = self.switches.iter().map(LinkFabric::stats).collect();
        Ok(SimOutcome {
            servers,
            clients,
            ended_at: end,
            horizon: stop,
            events,
            counters: self.counters,
            port_stats,
            stack_stats,
            switch_stats,
            mutex_stats,
            impairment_stats: self.impairment_stats,
            trace: self.trace,
        })
    }

    /// The first poll-lattice instant at or after `at`: `anchor + k·period`
    /// with the smallest `k ≥ 0` such that the tick is `≥ at`. Parked nodes
    /// wake on this lattice so their iterations land exactly where the
    /// unconditional polling loop's would have.
    fn lattice_tick(anchor: SimTime, at: SimTime, period: u64) -> SimTime {
        if at <= anchor {
            return anchor;
        }
        let gap = at.as_nanos() - anchor.as_nanos();
        anchor + SimDuration::from_nanos(gap.div_ceil(period) * period)
    }

    /// One main-loop iteration of node `i` (event handler).
    fn loop_iter(&mut self, i: usize, engine: &mut Engine<NetSim>) {
        self.counters.loop_polls += 1;
        let now = engine.now();
        if now >= self.stop_at {
            return;
        }
        let (di, pi, mi) = {
            let n = &self.nodes[i];
            (n.dev, n.port, n.mem)
        };
        // Split-borrow the distinct world fields.
        let node = &mut self.nodes[i];
        let dev = &mut self.devs[di];
        let mem = &mut self.mems[mi];

        // (i) RX ring → stack.
        let rx = rx_phase(&mut node.stack, dev, pi, mem, now).unwrap_or(0);

        // (ii) the user-defined function: application steps, gated by the
        // app-cVM scheduling policy (RoundRobin steps everyone; Barging
        // starves non-first cVMs on a fraction of turns). The policy is a
        // property of the DUT's service mutex, so it only applies to app
        // cVMs behind the Scenario 2 service node — never to the ideal
        // measurement hosts.
        let sched = if node.profile.s2_service {
            self.app_sched
        } else {
            AppSched::RoundRobin
        };
        let turn = node.turns;
        node.turns += 1;
        let mut ff_calls: u64 = 0;
        let mut progressed = false;
        let mut step_all = |stack: &mut FStack, mem: &mut TaggedMemory| -> (u64, bool) {
            let mut calls = 0u64;
            let mut moved = false;
            // Servers always step: the convoy forms on the write path
            // (ff_write holds the service mutex against the main loop),
            // while reads of already-sorted RX data are short — which is
            // why the paper's server rows stay even (470/470) on the same
            // testbed whose client rows split 531/410.
            for s in node.servers.iter_mut().flatten() {
                if let Ok(StepOutcome {
                    ff_calls,
                    progressed,
                    ..
                }) = s.step(stack, mem, now)
                {
                    calls += u64::from(ff_calls);
                    moved |= progressed;
                }
            }
            for (i, c) in node.clients.iter_mut().enumerate() {
                if !sched.allows(i, turn) {
                    continue;
                }
                if let Some(c) = c {
                    if let Ok(StepOutcome {
                        ff_calls,
                        progressed,
                        ..
                    }) = c.step(stack, mem, now)
                    {
                        calls += u64::from(ff_calls);
                        moved |= progressed;
                    }
                }
            }
            (calls, moved)
        };
        let (calls, moved) = step_all(&mut node.stack, mem);
        ff_calls += calls;
        progressed |= moved;

        // (iii) stack timers + TX ring.
        let tx = tx_phase(&mut node.stack, dev, pi, mem, now).unwrap_or_default();

        // Wire propagation to whatever the port is cabled to (a peer NIC
        // directly, or a switch that forwards hop by hop). The endpoint was
        // resolved once at run() start — no topology lookup per iteration.
        let n_tx = tx.len();
        if n_tx > 0 {
            match self.nodes[i].cabled {
                Some(Ep::Dev(pd, pp)) => {
                    for (frame, departure) in tx {
                        let arrival = self.wire.propagate(departure);
                        self.schedule_delivery(engine, pd, pp, arrival, frame);
                    }
                }
                Some(Ep::Sw(sw, sp)) => {
                    for (frame, departure) in tx {
                        let arrival = self.wire.propagate(departure);
                        engine.schedule(
                            arrival,
                            NetEvent::SwitchHop {
                                sw,
                                port: sp,
                                at: arrival,
                                frame,
                            },
                        );
                    }
                }
                None => {}
            }
        }

        // Iteration cost: loop work + per-call isolation charges.
        let work = self.costs.mainloop_idle_ns
            + self.costs.mainloop_per_frame_ns * (rx as u64 + n_tx as u64)
            + self.nodes[i].profile.per_ff_call_ns * ff_calls;
        let work = SimDuration::from_nanos(work);
        // Scenario 2: the service loop holds the F-Stack mutex for its
        // iteration; app calls contend (their wait shows up as lock delay
        // on the next loop turn).
        let next = if self.nodes[i].profile.s2_service {
            let m = self.s2_mutex.as_mut().expect("s2 mutex exists");
            let grant = m.acquire(now, work);
            grant.released_at
        } else {
            now + work
        };

        // Quiescence: an iteration that did no work and owes the wire
        // nothing parks the loop instead of rescheduling it. Eligibility is
        // strict so behavior is provably identical to polling:
        //  * the iteration was a no-op (no RX, no TX, no app progress), so
        //    replaying it at every tick until something external happens
        //    would change nothing;
        //  * no frame is queued mid-DMA on the port (it would become
        //    readable without a further delivery event);
        //  * the node carries no per-call isolation charge and no service
        //    mutex, so its idle tick period is exactly `mainloop_idle_ns`
        //    and the poll lattice is predictable from `next` alone.
        // The node wakes on the first lattice tick at/after a frame
        // delivery to its port, or at/after the earliest known deadline
        // (stack timers, app write-gap/stop instants).
        let idle = rx == 0 && n_tx == 0 && !progressed;
        if idle {
            self.counters.idle_polls += 1;
        }
        let node = &self.nodes[i];
        let parkable = idle
            && !node.profile.s2_service
            && node.profile.per_ff_call_ns == 0
            && self.devs[di].rx_pending(pi) == 0;
        if parkable {
            let node = &self.nodes[i];
            let mut deadline = node.stack.next_timer_deadline();
            for c in node.clients.iter().flatten() {
                if let Some(d) = c.next_deadline(now) {
                    deadline = Some(deadline.map_or(d, |m| m.min(d)));
                }
            }
            let period = self.idle_period;
            let node = &mut self.nodes[i];
            node.parked = true;
            node.epoch += 1;
            node.anchor = next;
            self.counters.parks += 1;
            if let Some(d) = deadline {
                let tick = Self::lattice_tick(next, d, period);
                engine.schedule_last(
                    tick,
                    NetEvent::Wake {
                        node: i,
                        epoch: node.epoch,
                    },
                );
            }
        } else {
            engine.schedule(next, NetEvent::LoopIter { node: i });
        }
    }

    /// One switch hop: run the fabric's forwarding decision for a frame
    /// arriving on `(sw, sp)` at `now`, then propagate every surviving
    /// egress copy down its cable — to a NIC (final hop, impairments
    /// apply) or into the next switch of a chain.
    fn switch_ingress(
        &mut self,
        sw: usize,
        sp: usize,
        now: SimTime,
        frame: Frame,
        engine: &mut Engine<NetSim>,
    ) {
        let outputs = self.switches[sw].ingress(sp, now, frame, &self.costs);
        for tx in outputs {
            match self.sw_cabled[sw][tx.port] {
                Some(Ep::Dev(pd, pp)) => {
                    let arrival = self.wire.propagate(tx.departure);
                    self.schedule_delivery(engine, pd, pp, arrival, tx.frame);
                }
                Some(Ep::Sw(sw2, sp2)) => {
                    let arrival = self.wire.propagate(tx.departure);
                    engine.schedule(
                        arrival,
                        NetEvent::SwitchHop {
                            sw: sw2,
                            port: sp2,
                            at: arrival,
                            frame: tx.frame,
                        },
                    );
                }
                None => { /* unattached switch port: the copy goes nowhere */ }
            }
        }
    }

    /// Schedules delivery of `frame` to NIC `(dev, port)` at nominal
    /// instant `at`, applying the configured cable impairments (loss,
    /// corruption, duplication, reordering, jitter) on this final hop.
    fn schedule_delivery(
        &mut self,
        engine: &mut Engine<NetSim>,
        dev: usize,
        port: usize,
        at: SimTime,
        frame: Frame,
    ) {
        if self.impairments.is_ideal() {
            engine.schedule(at, NetEvent::Deliver {
                dev,
                port,
                at,
                frame,
            });
            return;
        }
        let plan = self.impairments.plan(&mut self.rng, at);
        self.impairment_stats.absorb(plan.stats);
        for (at, corrupt) in plan.deliveries {
            let copy = if corrupt {
                frame.corrupted(&mut self.rng)
            } else {
                frame.clone()
            };
            engine.schedule(at, NetEvent::Deliver {
                dev,
                port,
                at,
                frame: copy,
            });
        }
    }

    /// Folds the delivery into the run's [`TraceDigest`], hands the frame
    /// to the NIC, and wakes the port's owning node if its loop is parked:
    /// the wake lands on the first tick of the node's poll lattice at or
    /// after the arrival, which is exactly when the polling loop would have
    /// seen the frame.
    fn record_and_deliver(
        &mut self,
        dev: usize,
        port: usize,
        at: SimTime,
        frame: Frame,
        engine: &mut Engine<NetSim>,
    ) {
        self.trace.record(at, dev, port, frame.bytes());
        self.devs[dev].deliver(port, at, frame);
        if let Some(ni) = self.dev_owner[dev][port] {
            let node = &mut self.nodes[ni];
            if node.parked {
                node.parked = false;
                node.epoch += 1;
                self.counters.wakes += 1;
                let tick = Self::lattice_tick(node.anchor, engine.now(), self.idle_period);
                engine.schedule_last(
                    tick,
                    NetEvent::Wake {
                        node: ni,
                        epoch: node.epoch,
                    },
                );
            }
        }
    }
}

impl World for NetSim {
    type Event = NetEvent;

    fn handle(&mut self, ev: NetEvent, engine: &mut Engine<NetSim>) {
        match ev {
            NetEvent::LoopIter { node } => self.loop_iter(node, engine),
            NetEvent::Wake { node, epoch } => {
                if self.nodes[node].epoch == epoch {
                    if self.nodes[node].parked {
                        // A parked node reaching its scheduled deadline.
                        self.nodes[node].parked = false;
                        self.counters.timer_wakes += 1;
                    }
                    self.loop_iter(node, engine);
                } else {
                    self.counters.stale_wakes += 1;
                }
            }
            NetEvent::Deliver {
                dev,
                port,
                at,
                frame,
            } => {
                self.counters.deliveries += 1;
                self.record_and_deliver(dev, port, at, frame, engine);
            }
            NetEvent::SwitchHop {
                sw,
                port,
                at,
                frame,
            } => {
                self.counters.switch_hops += 1;
                self.switch_ingress(sw, port, at, frame, engine);
            }
        }
    }
}

/// The results of one simulation run.
#[derive(Debug)]
pub struct SimOutcome {
    /// Server (receiver) reports, in installation order.
    pub servers: Vec<BandwidthReport>,
    /// Client (sender) reports, in installation order.
    pub clients: Vec<BandwidthReport>,
    /// The virtual instant the last event executed. With the
    /// quiescence-aware engine this can be well before [`SimOutcome::horizon`]:
    /// once every node is parked with nothing pending, the remaining virtual
    /// time passes without a single event.
    pub ended_at: SimTime,
    /// The virtual instant the run was asked to simulate to ([`NetSim::run`]'s
    /// `duration`). The whole `[0, horizon]` span *is* simulated — an empty
    /// calendar tail is the engine being fast, not the run being short — so
    /// host-speed metrics (`host_ns_per_sim_sec`) divide by this, keeping
    /// them comparable with pre-parking baselines whose polling filled the
    /// tail with idle events.
    pub horizon: SimTime,
    /// Discrete events the engine executed — the denominator of the
    /// events-per-second speed metric in the perf trajectory.
    pub events: u64,
    /// Per-kind event counters: why `events` is what it is (loop polls vs
    /// deliveries vs switch hops vs wakes), and the zero-boxed-events
    /// steady-state witness.
    pub counters: EventCounters,
    /// `(node name, port hardware stats)`.
    pub port_stats: Vec<(String, updk::ethdev::PortStats)>,
    /// `(node name, protocol stack counters)`.
    pub stack_stats: Vec<(String, fstack::StackStats)>,
    /// Per-fabric forwarding counters, in [`NetSim::add_switch`] order.
    pub switch_stats: Vec<SwitchStats>,
    /// `(acquisitions, contentions, total wait)` of the S2 mutex, if any.
    pub mutex_stats: Option<(u64, u64, SimDuration)>,
    /// What the (possibly impaired) cables did over the run.
    pub impairment_stats: ImpairmentStats,
    /// The run's delivery-trace digest (the determinism witness).
    pub trace: TraceDigest,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_allows_everyone_always() {
        let s = AppSched::RoundRobin;
        for turn in 0..100 {
            for idx in 0..4 {
                assert!(s.allows(idx, turn));
            }
        }
    }

    #[test]
    fn barging_never_gates_the_first_cvm() {
        let s = AppSched::paper_barging();
        for turn in 0..10_000 {
            assert!(s.allows(0, turn));
        }
    }

    #[test]
    fn barging_grant_fraction_matches_parameters() {
        let AppSched::Barging { grant, period } = AppSched::paper_barging() else {
            panic!("paper_barging is Barging");
        };
        let s = AppSched::paper_barging();
        let allowed = (0..u64::from(period)).filter(|&t| s.allows(1, t)).count();
        assert_eq!(allowed as u32, grant);
        // And the denial is one contiguous convoy, not interleaved.
        let first_denied = (0..u64::from(period)).find(|&t| !s.allows(1, t)).unwrap();
        assert!((first_denied..u64::from(period)).all(|t| !s.allows(1, t)));
    }

    #[test]
    fn weighted_windows_partition_every_turn() {
        let s = AppSched::Weighted {
            weight_first: 2,
            weight_rest: 1,
        };
        let mut first = 0u64;
        let mut rest = 0u64;
        for turn in 0..3_000 {
            let a0 = s.allows(0, turn);
            let a1 = s.allows(1, turn);
            assert!(a0 ^ a1, "exactly one side owns each turn");
            if a0 {
                first += 1;
            } else {
                rest += 1;
            }
        }
        // One full period (3 × 500 turns): 2:1 exactly.
        assert_eq!(first, 2_000);
        assert_eq!(rest, 1_000);
    }

    #[test]
    fn weighted_tolerates_zero_weights_defensively() {
        let s = AppSched::Weighted {
            weight_first: 0,
            weight_rest: 0,
        };
        // max(1) clamping: no panic, both sides get turns over a period.
        let first = (0..1_000u64).filter(|&t| s.allows(0, t)).count();
        assert!(first > 0 && first < 1_000);
    }

    /// A port holds one cable: re-linking a connected port must fail
    /// loudly instead of silently overwriting the topology.
    #[test]
    fn linking_a_connected_port_is_an_error() {
        let mut sim = NetSim::new(CostModel::morello());
        let a = sim.add_dev(NicModel::Host).unwrap();
        let b = sim.add_dev(NicModel::Host).unwrap();
        let c = sim.add_dev(NicModel::Host).unwrap();
        sim.link(a, 0, b, 0).unwrap();
        let err = sim.link(a, 0, c, 0).unwrap_err();
        assert!(
            matches!(&err, CapnetError::Config(m) if m.contains("already cabled")),
            "got {err}"
        );
        // The same port cannot be attached to a switch either.
        let sw = sim.add_switch(2).unwrap();
        assert!(sim.attach(a, 0, sw, 0).is_err());
        // A fresh port attaches fine; its switch port is then taken too.
        sim.attach(c, 0, sw, 0).unwrap();
        let d = sim.add_dev(NicModel::Host).unwrap();
        assert!(sim.attach(d, 0, sw, 0).is_err());
        sim.attach(d, 0, sw, 1).unwrap();
    }

    #[test]
    fn link_validates_port_ranges_and_self_links() {
        let mut sim = NetSim::new(CostModel::morello());
        let a = sim.add_dev(NicModel::Host).unwrap();
        let b = sim.add_dev(NicModel::Host).unwrap();
        assert!(sim.link(a, 1, b, 0).is_err(), "Host NIC has one port");
        assert!(sim.link(a, 0, a, 0).is_err(), "self-link rejected");
        assert!(sim.add_switch(1).is_err(), "one-port switch rejected");
        assert!(sim.add_switch_with_queue(2, 0).is_err(), "zero queue");
        let sw = sim.add_switch(2).unwrap();
        assert!(sim.attach(a, 0, sw, 7).is_err(), "switch port range");
        let sw2 = sim.add_switch(2).unwrap();
        assert!(sim.link_switches(sw, 0, sw, 0).is_err(), "self-trunk");
        sim.link_switches(sw, 0, sw2, 0).unwrap();
        assert!(sim.link_switches(sw, 0, sw2, 1).is_err(), "trunk port busy");
    }

    /// A single 1 Gbit/s flow between two ideal hosts must reach the
    /// 941 Mbit/s TCP goodput ceiling — the physics check underneath all of
    /// Table II.
    #[test]
    fn single_flow_hits_941() {
        let costs = CostModel::morello();
        let mut sim = NetSim::new(costs);
        let a = sim.add_dev(NicModel::Host).unwrap();
        let b = sim.add_dev(NicModel::Host).unwrap();
        sim.link(a, 0, b, 0).unwrap();
        let srv = sim
            .add_node(
                "srv",
                a,
                0,
                Ipv4Addr::new(10, 0, 0, 1),
                IsolationProfile::default(),
            )
            .unwrap();
        let cli = sim
            .add_node(
                "cli",
                b,
                0,
                Ipv4Addr::new(10, 0, 0, 2),
                IsolationProfile::default(),
            )
            .unwrap();
        sim.add_server(srv, "srv", 5201).unwrap();
        sim.add_client(
            cli,
            "cli",
            (Ipv4Addr::new(10, 0, 0, 1), 5201),
            SimDuration::from_millis(180),
            SimDuration::ZERO,
        )
        .unwrap();
        let out = sim.run(SimDuration::from_millis(200)).unwrap();
        let bw = out.servers[0].mbit_per_sec();
        assert!(
            (bw - 941.0).abs() < 15.0,
            "single flow should reach ≈941 Mbit/s, got {bw:.0}"
        );
    }
}
