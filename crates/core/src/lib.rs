//! # capnet — the CHERI compartmentalized network stack (paper core)
//!
//! This crate assembles the substrates — [`cheri`] (capability machine),
//! [`chos`] (CheriBSD-like kernel), [`intravisor`] (CAP-VM compartments),
//! [`updk`] (DPDK-like poll-mode NIC layer), [`fstack`] (TCP/IP + `ff_*`
//! API) and [`iperf`] (bandwidth app) — into the paper's three system
//! designs and regenerates its entire evaluation:
//!
//! * [`scenario`] — Baseline (MMU processes, no CHERI), **Scenario 1**
//!   (full stack replicated per cVM), **Scenario 2** (apps split from the
//!   F-Stack/DPDK service cVM, uncontended and contended), plus the
//!   future-work **Scenario 3** (DPDK split from F-Stack) as an extension.
//! * [`netsim`] — the discrete-event driver that cables simulated 82576
//!   ports to measurement hosts and runs iperf over real TCP.
//! * [`topology`] — switched N-node topology builders (star, chain,
//!   dumbbell) over `updk`'s LinkFabric learning switch, opening the
//!   scenario space beyond the paper's two-hosts-on-a-cable testbed.
//! * [`parallel`] — the pure window/profitability math underneath the
//!   sharded parallel driver (per-pair lookahead matrix, adaptive worker
//!   selection), property-tested in isolation.
//! * [`experiment`] — one module per paper artifact: Table I, Table II,
//!   Fig. 3 (capability violation), Figs. 4–6 (`ff_write` latency).
//! * [`stats`] — the measurement pipeline (1 M iterations, IQR outlier
//!   removal, box plots) the paper describes in §IV.
//!
//! # Example
//!
//! ```
//! use capnet::experiment::fig3;
//!
//! // Reproduce the paper's Fig. 3: a compartmentalized application
//! // dereferencing memory outside its DDC dies with a capability
//! // out-of-bounds exception.
//! let outcome = fig3::run().expect("experiment runs");
//! assert!(outcome.fault.is_out_of_bounds());
//! ```

pub mod experiment;
pub mod netsim;
pub mod parallel;
pub mod scenario;
pub mod stats;
pub mod topology;

pub use fstack::CcAlgo;
pub use netsim::{
    EventCounters, Fault, FaultStats, IsolationProfile, NetEvent, NetSim, NodeConfig,
    RoundCounters, SimOutcome, SwitchId, TraceDigest,
};
pub use scenario::{FaultOp, FaultPlan, FaultTarget, ScenarioKind, ScenarioSpec};

use std::fmt;

/// Errors of the scenario/experiment layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum CapnetError {
    /// A capability fault escaped to the harness (configuration bug or an
    /// intentional security probe).
    Cap(cheri::CapFault),
    /// A socket-layer error.
    Errno(chos::Errno),
    /// A driver error.
    Updk(updk::UpdkError),
    /// Harness-level misconfiguration.
    Config(String),
}

impl fmt::Display for CapnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapnetError::Cap(e) => write!(f, "capability fault: {e}"),
            CapnetError::Errno(e) => write!(f, "socket error: {e}"),
            CapnetError::Updk(e) => write!(f, "driver error: {e}"),
            CapnetError::Config(s) => write!(f, "configuration error: {s}"),
        }
    }
}

impl std::error::Error for CapnetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CapnetError::Cap(e) => Some(e),
            CapnetError::Errno(e) => Some(e),
            CapnetError::Updk(e) => Some(e),
            CapnetError::Config(_) => None,
        }
    }
}

impl From<cheri::CapFault> for CapnetError {
    fn from(e: cheri::CapFault) -> Self {
        CapnetError::Cap(e)
    }
}

impl From<chos::Errno> for CapnetError {
    fn from(e: chos::Errno) -> Self {
        CapnetError::Errno(e)
    }
}

impl From<updk::UpdkError> for CapnetError {
    fn from(e: updk::UpdkError) -> Self {
        CapnetError::Updk(e)
    }
}
