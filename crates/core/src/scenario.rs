//! The paper's system designs (§III) as runnable simulation topologies.
//!
//! * **Baseline** — no CHERI: MMU-isolated processes. Two-process form
//!   (compared against Scenario 1) and single-process form (compared
//!   against Scenario 2).
//! * **Scenario 1** — the whole stack (iperf + F-Stack + DPDK) replicated
//!   into two cVMs, one per Ethernet port; the only crossings are musl
//!   syscall trampolines.
//! * **Scenario 2** — applications split from one F-Stack/DPDK service
//!   cVM; every `ff_*` call crosses compartments and takes the service
//!   mutex. Evaluated uncontended (one app cVM) and contended (two).
//! * **Scenario 3** *(paper future work (i), implemented as an extension)* —
//!   DPDK split from F-Stack as well: two service crossings per call.
//!
//! Traffic always runs against ideal measurement hosts cabled to the DUT's
//! 82576 ports, mirroring the paper's server (receiver) and client (sender)
//! iperf runs.

use crate::netsim::{
    AppSched, Fault, IsolationProfile, NetSim, NodeConfig, NodeId, SimOutcome, SwitchId,
};
use crate::CapnetError;
use capnet_chaos::ChaosConfig;
use capnet_httpd::{FleetConfig, HttpServerConfig, HTTPD_PORT};
use fstack::CcAlgo;
use simkern::cost::CostModel;
use simkern::time::{SimDuration, SimTime};
use std::fmt;
use std::net::Ipv4Addr;
use updk::nic::NicModel;
use updk::wire::Impairments;

/// Which §III design to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Two MMU-isolated processes, each owning one port (no CHERI).
    BaselineTwoProcess,
    /// One process, one port (no CHERI).
    BaselineSingleProcess,
    /// Full stack replicated per cVM (two cVMs, two ports).
    Scenario1,
    /// App cVM + F-Stack/DPDK service cVM, one app (uncontended).
    Scenario2Uncontended,
    /// Two app cVMs contending on the service mutex.
    Scenario2Contended,
    /// Extension: app + F-Stack cVM + DPDK cVM (three-way split).
    Scenario3,
    /// Extension (paper future work (ii), "separation of the entire
    /// stack"): app, F-Stack, DPDK and the NIC-register proxy each in
    /// their own cVM — three crossings on every `ff_*` call path.
    Scenario4,
}

impl ScenarioKind {
    /// All scenarios in Table II order (the extensions last).
    pub fn all() -> [ScenarioKind; 7] {
        [
            ScenarioKind::BaselineTwoProcess,
            ScenarioKind::Scenario1,
            ScenarioKind::BaselineSingleProcess,
            ScenarioKind::Scenario2Uncontended,
            ScenarioKind::Scenario2Contended,
            ScenarioKind::Scenario3,
            ScenarioKind::Scenario4,
        ]
    }

    /// The label used in Table II.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::BaselineTwoProcess => "Baseline (two processes)",
            ScenarioKind::BaselineSingleProcess => "Baseline (single process)",
            ScenarioKind::Scenario1 => "Scenario 1",
            ScenarioKind::Scenario2Uncontended => "Scenario 2 (uncontended)",
            ScenarioKind::Scenario2Contended => "Scenario 2 (contended)",
            ScenarioKind::Scenario3 => "Scenario 3 (extension)",
            ScenarioKind::Scenario4 => "Scenario 4 (extension: full split)",
        }
    }

    /// `true` when both Ethernet ports of the 82576 are in use.
    pub fn dual_port(&self) -> bool {
        matches!(
            self,
            ScenarioKind::BaselineTwoProcess | ScenarioKind::Scenario1
        )
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which side of the iperf pair the DUT plays (Table II columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficMode {
    /// The DUT receives (iperf server mode).
    Server,
    /// The DUT sends (iperf client mode).
    Client,
}

impl fmt::Display for TrafficMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrafficMode::Server => "Server",
            TrafficMode::Client => "Client",
        })
    }
}

const DUT_IP: [Ipv4Addr; 2] = [Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 1, 1)];
const PEER_IP: [Ipv4Addr; 2] = [Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(10, 0, 1, 2)];

/// The shape of the network a [`ScenarioSpec`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Topology {
    /// The paper's two-hosts-on-a-cable testbed, in one of its §III
    /// compartmentalization designs.
    Paper(ScenarioKind, TrafficMode),
    /// N leaves and a hub host on one learning switch.
    Star(usize),
    /// N client/server pairs on two switches joined by a trunk.
    Dumbbell(usize),
}

/// The traffic a [`ScenarioSpec`] drives over its topology.
#[derive(Debug, Clone)]
enum Workload {
    /// Bulk TCP transfer (the paper's measurement).
    Iperf,
    /// The HTTP serving plane: a static server at the receiving end of
    /// each flow path, an open-loop client fleet at the sending end.
    Httpd {
        server: HttpServerConfig,
        fleet: FleetConfig,
    },
}

/// What a scheduled fault does to its target.
///
/// Paired with a [`FaultTarget`] and a virtual-time offset in a
/// [`FaultPlan`] entry. The `*Down`/`*Fail`/`Crash` ops have matching
/// `*Up`/`*Recover`/`Restart` inverses; a plan that never heals a fault
/// simply leaves the domain dark for the rest of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Blackhole the target host's access link (both directions).
    LinkDown,
    /// Heal a previous [`FaultOp::LinkDown`] on the same host.
    LinkUp,
    /// Fail the target switch: every ingress frame is dropped.
    SwitchFail,
    /// Recover the target switch; its MAC table restarts cold.
    SwitchRecover,
    /// Power-cycle the target host down: stack and apps are destroyed,
    /// in-flight frames to it die on the wire.
    NodeCrash,
    /// Boot the crashed host back up: a factory-fresh stack plus every
    /// app the scenario originally installed (listeners re-established,
    /// fleets restarted with their original seeds).
    NodeRestart,
}

/// Who a scheduled fault hits, in topology-relative terms.
///
/// Resolved to concrete node/switch ids when [`ScenarioSpec::run`] builds
/// the topology, so one plan is portable across sizes of the same shape.
/// `Hub`/`Leaf` only exist on the star; `Client`/`Server` only on the
/// dumbbell; `Switch(0)` is the star's single fabric or the dumbbell's
/// left switch (`Switch(1)` its right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The star's hub host.
    Hub,
    /// Star leaf `i`.
    Leaf(usize),
    /// Dumbbell client `i` (left side).
    Client(usize),
    /// Dumbbell server `i` (right side).
    Server(usize),
    /// Switch `i` in topology construction order.
    Switch(usize),
}

/// A deterministic fault schedule: virtual-time-stamped link, switch and
/// node faults executed as first-class simulation events.
///
/// Offsets are relative to boot ([`SimTime::ZERO`]). The plan is part of
/// the scenario's input tuple: the same spec (plan included) produces a
/// byte-identical [`SimOutcome::trace`] at any [`ScenarioSpec::workers`]
/// count, and an **empty plan schedules nothing** — a fault-free run's
/// digest is provably unchanged by this subsystem existing.
///
/// ```no_run
/// # use capnet::scenario::{FaultPlan, FaultTarget, ScenarioSpec};
/// # use simkern::time::SimDuration;
/// let ms = SimDuration::from_millis;
/// let out = ScenarioSpec::star(4)
///     .faults(
///         FaultPlan::new()
///             .link_down(ms(20), FaultTarget::Hub)
///             .link_up(ms(35), FaultTarget::Hub)
///             .node_crash(ms(50), FaultTarget::Leaf(2))
///             .node_restart(ms(70), FaultTarget::Leaf(2)),
///     )
///     .run();
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<(SimDuration, FaultOp, FaultTarget)>,
}

impl FaultPlan {
    /// An empty plan (schedules nothing; digest-free).
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Schedules `op` against `target` at boot-relative offset `at`.
    #[must_use]
    pub fn event(mut self, at: SimDuration, op: FaultOp, target: FaultTarget) -> Self {
        self.events.push((at, op, target));
        self
    }

    /// Blackholes `target`'s access link at `at`.
    #[must_use]
    pub fn link_down(self, at: SimDuration, target: FaultTarget) -> Self {
        self.event(at, FaultOp::LinkDown, target)
    }

    /// Heals `target`'s access link at `at`.
    #[must_use]
    pub fn link_up(self, at: SimDuration, target: FaultTarget) -> Self {
        self.event(at, FaultOp::LinkUp, target)
    }

    /// Fails switch `target` at `at`.
    #[must_use]
    pub fn switch_fail(self, at: SimDuration, target: FaultTarget) -> Self {
        self.event(at, FaultOp::SwitchFail, target)
    }

    /// Recovers switch `target` at `at` (MAC table cold).
    #[must_use]
    pub fn switch_recover(self, at: SimDuration, target: FaultTarget) -> Self {
        self.event(at, FaultOp::SwitchRecover, target)
    }

    /// Crashes host `target` at `at`.
    #[must_use]
    pub fn node_crash(self, at: SimDuration, target: FaultTarget) -> Self {
        self.event(at, FaultOp::NodeCrash, target)
    }

    /// Restarts host `target` at `at` with its original apps.
    #[must_use]
    pub fn node_restart(self, at: SimDuration, target: FaultTarget) -> Self {
        self.event(at, FaultOp::NodeRestart, target)
    }
}

/// A [`FaultTarget`] resolved against a built topology.
#[derive(Debug, Clone, Copy)]
enum ResolvedTarget {
    Node(NodeId),
    Switch(SwitchId),
}

/// Combines an op with its resolved target, rejecting host ops aimed at
/// switches and switch ops aimed at hosts.
fn fault_event(
    op: FaultOp,
    target: FaultTarget,
    resolved: ResolvedTarget,
) -> Result<Fault, CapnetError> {
    match (op, resolved) {
        (FaultOp::LinkDown, ResolvedTarget::Node(node)) => Ok(Fault::LinkDown { node }),
        (FaultOp::LinkUp, ResolvedTarget::Node(node)) => Ok(Fault::LinkUp { node }),
        (FaultOp::NodeCrash, ResolvedTarget::Node(node)) => Ok(Fault::NodeCrash { node }),
        (FaultOp::NodeRestart, ResolvedTarget::Node(node)) => Ok(Fault::NodeRestart { node }),
        (FaultOp::SwitchFail, ResolvedTarget::Switch(sw)) => Ok(Fault::SwitchFail { sw }),
        (FaultOp::SwitchRecover, ResolvedTarget::Switch(sw)) => Ok(Fault::SwitchRecover { sw }),
        (FaultOp::SwitchFail | FaultOp::SwitchRecover, ResolvedTarget::Node(_)) => Err(
            CapnetError::Config(format!("{op:?} needs a switch target, got {target:?}")),
        ),
        (_, ResolvedTarget::Switch(_)) => Err(CapnetError::Config(format!(
            "{op:?} needs a host target, got {target:?}"
        ))),
    }
}

/// A declarative scenario: **one builder, one [`ScenarioSpec::run`]** —
/// the redesigned entry point that replaced the accreting `run_*`
/// function family (now thin deprecated wrappers over this type).
///
/// Pick a topology with one of the constructors ([`ScenarioSpec::paper`],
/// [`ScenarioSpec::star`], [`ScenarioSpec::dumbbell`]), chain the knobs
/// you care about, and call [`ScenarioSpec::run`]. Every knob has the
/// same default the old positional functions used, so a spec names only
/// what it changes. The outcome is a pure function of the spec: the
/// returned [`SimOutcome::trace`] digest is byte-identical at any
/// [`ScenarioSpec::workers`] count.
///
/// # Migration from the `run_*` family
///
/// Each positional argument became a named builder call — this
/// `run_star_iperf_custom` invocation:
///
/// ```no_run
/// # use capnet::scenario::run_star_iperf_custom;
/// # use simkern::cost::CostModel;
/// # use simkern::time::SimDuration;
/// # use updk::wire::Impairments;
/// # use fstack::CcAlgo;
/// # #[allow(deprecated)]
/// let out = run_star_iperf_custom(
///     4,
///     SimDuration::from_millis(80),
///     CostModel::morello(),
///     7,
///     Impairments::default(),
///     2,
///     CcAlgo::Cubic,
///     true,
/// );
/// ```
///
/// is now:
///
/// ```no_run
/// # use capnet::scenario::ScenarioSpec;
/// # use simkern::cost::CostModel;
/// # use simkern::time::SimDuration;
/// # use fstack::CcAlgo;
/// let out = ScenarioSpec::star(4)
///     .duration(SimDuration::from_millis(80))
///     .costs(CostModel::morello())
///     .seed(7)
///     .workers(2)
///     .congestion(CcAlgo::Cubic)
///     .sack(true)
///     .run();
/// ```
///
/// The HTTP serving plane only exists through this API — there is no
/// legacy wrapper for it:
///
/// ```no_run
/// # use capnet::scenario::ScenarioSpec;
/// # use capnet_httpd::{FleetConfig, HttpServerConfig};
/// let out = ScenarioSpec::star(4)
///     .http(
///         HttpServerConfig::default(),
///         FleetConfig {
///             rate_per_sec: 3000,
///             keep_alive_per_mille: 300,
///             ..FleetConfig::default()
///         },
///     )
///     .run();
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    topology: Topology,
    workload: Workload,
    duration: SimDuration,
    costs: CostModel,
    seed: Option<u64>,
    impairments: Impairments,
    workers: usize,
    adaptive_workers: bool,
    cc: Option<CcAlgo>,
    sack: Option<bool>,
    pair_cc: Vec<CcAlgo>,
    sched: AppSched,
    chaos: Option<ChaosConfig>,
    isolation_ns: u64,
    faults: FaultPlan,
}

impl ScenarioSpec {
    fn new(topology: Topology) -> Self {
        ScenarioSpec {
            topology,
            workload: Workload::Iperf,
            duration: SimDuration::from_millis(100),
            costs: CostModel::morello(),
            seed: None,
            impairments: Impairments::default(),
            workers: 1,
            adaptive_workers: true,
            cc: None,
            sack: None,
            pair_cc: Vec::new(),
            sched: AppSched::RoundRobin,
            chaos: None,
            isolation_ns: 0,
            faults: FaultPlan::new(),
        }
    }

    /// The paper's two-hosts-on-a-cable testbed running design `kind`
    /// with the DUT on the `mode` side of the transfer.
    pub fn paper(kind: ScenarioKind, mode: TrafficMode) -> Self {
        Self::new(Topology::Paper(kind, mode))
    }

    /// An N-leaf star: `leaves` hosts and a hub on one learning switch,
    /// every flow sharing the hub-facing egress port.
    pub fn star(leaves: usize) -> Self {
        Self::new(Topology::Star(leaves))
    }

    /// A dumbbell: `pairs` client/server pairs on two switches joined by
    /// one shared trunk.
    pub fn dumbbell(pairs: usize) -> Self {
        Self::new(Topology::Dumbbell(pairs))
    }

    /// The measured traffic window (default 100 ms). The simulation runs
    /// 30 ms longer for handshakes before and FIN/TIME_WAIT drains after.
    #[must_use]
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// The calibrated host cost model (default [`CostModel::morello`]).
    #[must_use]
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Seeds every deterministic random stream (impairment draws, fleet
    /// arrivals). Unset, the simulation keeps [`NetSim`]'s default seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Degrades every cable with loss/corruption/duplication/reordering/
    /// jitter (default: ideal cables).
    #[must_use]
    pub fn impairments(mut self, impairments: Impairments) -> Self {
        self.impairments = impairments;
        self
    }

    /// Shards the run over `workers` engines (default 1). The outcome is
    /// byte-identical at any count; only wall time changes.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables/disables adaptive worker selection (default: enabled — an
    /// unprofitable shard plan transparently collapses to the
    /// single-engine loop; see [`NetSim::set_adaptive_workers`]). Tests
    /// and benchmarks pass `false` to force small topologies through the
    /// sharded drivers.
    #[must_use]
    pub fn adaptive_workers(mut self, adaptive: bool) -> Self {
        self.adaptive_workers = adaptive;
        self
    }

    /// TCP congestion control for **every** host (default: the stack's
    /// Reno). On the dumbbell, [`ScenarioSpec::pair_cc`] overrides this
    /// per sender.
    #[must_use]
    pub fn congestion(mut self, cc: CcAlgo) -> Self {
        self.cc = Some(cc);
        self
    }

    /// SACK negotiation at every host (default: the stack's off). Both
    /// ends must offer it for a connection to use it.
    #[must_use]
    pub fn sack(mut self, sack: bool) -> Self {
        self.sack = Some(sack);
        self
    }

    /// Dumbbell only: pair `i`'s sender runs `algos[i % algos.len()]`
    /// (an empty slice keeps [`ScenarioSpec::congestion`]'s choice).
    #[must_use]
    pub fn pair_cc(mut self, algos: &[CcAlgo]) -> Self {
        self.pair_cc = algos.to_vec();
        self
    }

    /// Paper topology only: the app-cVM scheduling policy of the
    /// Scenario 2 service mutex (default round-robin;
    /// [`AppSched::paper_barging`] reproduces Table II's contended split).
    #[must_use]
    pub fn app_sched(mut self, sched: AppSched) -> Self {
        self.sched = sched;
        self
    }

    /// Switches the workload from bulk iperf transfer to the HTTP
    /// serving plane: a static server behind each flow path's receiving
    /// host, an open-loop client fleet on each sending host. The fleet's
    /// `target` and `open_for` fields are overwritten by the spec (the
    /// hub/server address and [`ScenarioSpec::duration`] respectively).
    #[must_use]
    pub fn http(mut self, server: HttpServerConfig, fleet: FleetConfig) -> Self {
        self.workload = Workload::Httpd { server, fleet };
        self
    }

    /// Star/dumbbell only: installs a fault-injection campaign beside the
    /// workload — on the first leaf (star) or the first client (dumbbell).
    /// Its wire adversary, if enabled, is retargeted at the workload's
    /// server address; the capability walker and bit-flip injector run in
    /// their own arenas. The campaign RNG derives from
    /// [`ScenarioSpec::seed`], so runs stay byte-identical at any
    /// [`ScenarioSpec::workers`] count.
    #[must_use]
    pub fn chaos(mut self, cfg: ChaosConfig) -> Self {
        self.chaos = Some(cfg);
        self
    }

    /// Star/dumbbell only: installs a deterministic fault schedule — link
    /// blackholes, switch failures, host crash/restart cycles — executed
    /// as first-class simulation events at the plan's virtual-time
    /// offsets. Targets are resolved against the built topology (a
    /// [`FaultTarget::Hub`] plan on a dumbbell is a configuration error).
    /// An empty plan (the default) schedules nothing and leaves the run's
    /// digest untouched.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Star/dumbbell only: charges every host `ns` nanoseconds per
    /// application `ff_*` call — the cross-compartment trampoline cost of
    /// full isolation (default 0: intra-domain calls). The isolation
    /// bench sweeps this knob to price capability enforcement under load.
    #[must_use]
    pub fn isolation_cost(mut self, ns: u64) -> Self {
        self.isolation_ns = ns;
        self
    }

    /// Builds the topology and runs it to completion.
    ///
    /// # Errors
    ///
    /// Configuration errors (an HTTP workload on the paper's testbed,
    /// bad topology parameters) and datapath capability faults.
    pub fn run(self) -> Result<SimOutcome, CapnetError> {
        match self.topology {
            Topology::Paper(kind, mode) => self.run_paper(kind, mode),
            Topology::Star(leaves) => self.run_star(leaves),
            Topology::Dumbbell(pairs) => self.run_dumbbell(pairs),
        }
    }

    /// The per-host protocol configuration this spec asks for.
    fn node_config(&self) -> NodeConfig {
        NodeConfig {
            cc: self.cc,
            sack: self.sack,
        }
    }

    /// A fleet configuration retargeted at `(ip, HTTPD_PORT)` with its
    /// open window pinned to the spec's duration.
    fn fleet_for(&self, fleet: &FleetConfig, ip: Ipv4Addr) -> FleetConfig {
        FleetConfig {
            target: (ip, HTTPD_PORT),
            open_for: self.duration,
            ..fleet.clone()
        }
    }

    /// Resolves the fault plan through `resolve` (topology-relative
    /// target → concrete host/switch) and schedules every event.
    fn schedule_faults(
        &self,
        sim: &mut NetSim,
        resolve: impl Fn(FaultTarget) -> Result<ResolvedTarget, CapnetError>,
    ) -> Result<(), CapnetError> {
        for &(at, op, target) in &self.faults.events {
            let fault = fault_event(op, target, resolve(target)?)?;
            sim.add_fault(SimTime::ZERO + at, fault);
        }
        Ok(())
    }

    /// The chaos campaign retargeted at `ip`: the wire adversary (when
    /// enabled) fuzzes the workload's server address, and the TCP forger
    /// impersonates the real client at `peer` against `ip`'s listener;
    /// the other injector families carry no network target.
    fn chaos_for(&self, cfg: &ChaosConfig, ip: Ipv4Addr, peer: Ipv4Addr) -> ChaosConfig {
        let mut cfg = cfg.clone();
        if let Some(wire) = &mut cfg.wire {
            wire.target_ip = ip;
        }
        if let Some(forge) = &mut cfg.forge {
            forge.victim_ip = ip;
            forge.victim_port = HTTPD_PORT;
            forge.client_ip = peer;
        }
        cfg
    }

    /// The paper testbed (§III): construction order mirrors the original
    /// `run_bandwidth_full` exactly, so the wrappers stay byte-identical.
    fn run_paper(self, kind: ScenarioKind, mode: TrafficMode) -> Result<SimOutcome, CapnetError> {
        if matches!(self.workload, Workload::Httpd { .. }) {
            return Err(CapnetError::Config(
                "the HTTP serving plane runs on star/dumbbell topologies; \
                 the paper testbed measures bulk transfer"
                    .into(),
            ));
        }
        if !self.faults.is_empty() {
            return Err(CapnetError::Config(
                "fault plans run on star/dumbbell topologies; the paper \
                 testbed has no topology-relative fault targets"
                    .into(),
            ));
        }
        let costs = self.costs.clone();
        let mut sim = NetSim::new(costs.clone());
        if let Some(seed) = self.seed {
            sim.set_seed(seed);
        }
        sim.set_impairments(self.impairments);
        sim.set_app_sched(self.sched);
        if self.workers > 1 {
            sim.set_workers(self.workers);
        }
        sim.set_adaptive_workers(self.adaptive_workers);
        let dut_dev = sim.add_dev(NicModel::Dual82576)?;
        let traffic = self.duration;
        // Leave room for handshakes before and FIN drains after the timed
        // part.
        let run_for = self.duration + SimDuration::from_millis(30);

        // Per-`ff_*`-call crossing charge for the scenario.
        let per_call = match kind {
            ScenarioKind::BaselineTwoProcess
            | ScenarioKind::BaselineSingleProcess
            | ScenarioKind::Scenario1 => 0,
            ScenarioKind::Scenario2Uncontended | ScenarioKind::Scenario2Contended => {
                costs.xcall_ns + costs.mutex_fast_ns
            }
            // The deeper splits add crossings but no further mutexes: the
            // compartment-to-compartment packet hand-offs ride single-
            // producer/single-consumer rings (as DPDK's do), which need no
            // lock.
            ScenarioKind::Scenario3 => 2 * costs.xcall_ns + costs.mutex_fast_ns,
            ScenarioKind::Scenario4 => 3 * costs.xcall_ns + costs.mutex_fast_ns,
        };
        let s2_service = matches!(
            kind,
            ScenarioKind::Scenario2Uncontended
                | ScenarioKind::Scenario2Contended
                | ScenarioKind::Scenario3
                | ScenarioKind::Scenario4
        );
        let profile = IsolationProfile {
            per_ff_call_ns: per_call,
            s2_service,
        };

        let ports: usize = if kind.dual_port() { 2 } else { 1 };
        let flows: usize = match kind {
            ScenarioKind::Scenario2Contended => 2,
            _ => 1,
        };

        for port in 0..ports {
            let peer_dev = sim.add_dev(NicModel::Host)?;
            sim.link(dut_dev, port, peer_dev, 0)?;
            let dut = sim.add_node(
                format!("cVM{}", port + 1),
                dut_dev,
                port,
                DUT_IP[port],
                profile,
            )?;
            let peer = sim.add_node(
                format!("host{}", port + 1),
                peer_dev,
                0,
                PEER_IP[port],
                IsolationProfile::default(),
            )?;
            sim.configure_node(dut, self.node_config());
            sim.configure_node(peer, self.node_config());
            for flow in 0..flows {
                let svc_port = 5201 + flow as u16;
                let dut_label = match kind {
                    ScenarioKind::Scenario2Contended => format!("cVM{}", flow + 2),
                    ScenarioKind::Scenario2Uncontended => "cVM2".to_string(),
                    ScenarioKind::BaselineSingleProcess => "Baseline".to_string(),
                    _ => format!("cVM{}", port + 1),
                };
                match mode {
                    TrafficMode::Server => {
                        sim.add_server(dut, dut_label, svc_port)?;
                        sim.add_client(
                            peer,
                            format!("host{}-tx{}", port + 1, flow),
                            (DUT_IP[port], svc_port),
                            traffic,
                            SimDuration::ZERO,
                        )?;
                    }
                    TrafficMode::Client => {
                        sim.add_server(peer, format!("host{}-rx{}", port + 1, flow), svc_port)?;
                        sim.add_client(
                            dut,
                            dut_label,
                            (PEER_IP[port], svc_port),
                            traffic,
                            SimDuration::ZERO,
                        )?;
                    }
                }
            }
        }
        sim.run(run_for)
    }

    /// The N-leaf star: construction order mirrors the original
    /// `run_star_iperf_custom` exactly.
    fn run_star(self, leaves: usize) -> Result<SimOutcome, CapnetError> {
        let mut sim = NetSim::new(self.costs.clone());
        if let Some(seed) = self.seed {
            sim.set_seed(seed);
        }
        sim.set_impairments(self.impairments);
        sim.set_workers(self.workers);
        sim.set_adaptive_workers(self.adaptive_workers);
        let star = crate::topology::build_star(&mut sim, leaves)?;
        sim.configure_node(star.hub, self.node_config());
        for &leaf in &star.leaves {
            sim.configure_node(leaf, self.node_config());
        }
        match &self.workload {
            Workload::Iperf => {
                for (i, &leaf) in star.leaves.iter().enumerate() {
                    let port = STAR_PORT + i as u16;
                    sim.add_server(star.hub, format!("hub-rx{i}"), port)?;
                    sim.add_client(
                        leaf,
                        format!("leaf-tx{i}"),
                        (star.hub_ip, port),
                        self.duration,
                        SimDuration::ZERO,
                    )?;
                }
            }
            Workload::Httpd { server, fleet } => {
                // One serving plane, many users: a single hub server,
                // every leaf an independent open-loop fleet against it.
                sim.add_http_server(star.hub, "hub-httpd", HTTPD_PORT, server.clone())?;
                for (i, &leaf) in star.leaves.iter().enumerate() {
                    let cfg = self.fleet_for(fleet, star.hub_ip);
                    sim.add_http_fleet(leaf, format!("leaf-fleet{i}"), cfg)?;
                }
            }
        }
        if let Some(chaos) = &self.chaos {
            let peer = *star.leaf_ips.last().expect("star has at least one leaf");
            let cfg = self.chaos_for(chaos, star.hub_ip, peer);
            sim.add_chaos(star.leaves[0], "star-chaos", cfg)?;
        }
        self.schedule_faults(&mut sim, |target| match target {
            FaultTarget::Hub => Ok(ResolvedTarget::Node(star.hub)),
            FaultTarget::Leaf(i) => {
                star.leaves
                    .get(i)
                    .copied()
                    .map(ResolvedTarget::Node)
                    .ok_or(CapnetError::Config(format!(
                        "star has {leaves} leaves, no Leaf({i})"
                    )))
            }
            FaultTarget::Switch(0) => Ok(ResolvedTarget::Switch(star.switch)),
            FaultTarget::Switch(i) => Err(CapnetError::Config(format!(
                "star has one switch, no Switch({i})"
            ))),
            FaultTarget::Client(_) | FaultTarget::Server(_) => Err(CapnetError::Config(format!(
                "{target:?} is a dumbbell target; the star addresses Hub/Leaf(i)"
            ))),
        })?;
        if self.isolation_ns > 0 {
            let profile = IsolationProfile {
                per_ff_call_ns: self.isolation_ns,
                s2_service: false,
            };
            sim.set_node_profile(star.hub, profile);
            for &leaf in &star.leaves {
                sim.set_node_profile(leaf, profile);
            }
        }
        // Room for ARP + handshakes before and FIN drains after the timed
        // part.
        sim.run(self.duration + SimDuration::from_millis(30))
    }

    /// The dumbbell: construction order mirrors the original
    /// `run_dumbbell_cc_impaired` exactly.
    fn run_dumbbell(self, pairs: usize) -> Result<SimOutcome, CapnetError> {
        let mut sim = NetSim::new(self.costs.clone());
        if let Some(seed) = self.seed {
            sim.set_seed(seed);
        }
        sim.set_impairments(self.impairments);
        if self.workers > 1 {
            sim.set_workers(self.workers);
        }
        sim.set_adaptive_workers(self.adaptive_workers);
        let bell = crate::topology::build_dumbbell(&mut sim, pairs)?;
        for i in 0..pairs {
            sim.configure_node(bell.servers[i], self.node_config());
            sim.configure_node(bell.clients[i], self.node_config());
            if !self.pair_cc.is_empty() {
                sim.set_node_cc(bell.clients[i], self.pair_cc[i % self.pair_cc.len()]);
            }
            match &self.workload {
                Workload::Iperf => {
                    let port = DUMBBELL_PORT + i as u16;
                    sim.add_server(bell.servers[i], format!("srv-rx{i}"), port)?;
                    sim.add_client(
                        bell.clients[i],
                        format!("cli-tx{i}"),
                        (bell.server_ips[i], port),
                        self.duration,
                        SimDuration::ZERO,
                    )?;
                }
                Workload::Httpd { server, fleet } => {
                    // Per-pair serving planes: each right-side host serves
                    // its left-side fleet across the shared trunk.
                    sim.add_http_server(
                        bell.servers[i],
                        format!("srv-httpd{i}"),
                        HTTPD_PORT,
                        server.clone(),
                    )?;
                    let cfg = self.fleet_for(fleet, bell.server_ips[i]);
                    sim.add_http_fleet(bell.clients[i], format!("cli-fleet{i}"), cfg)?;
                }
            }
        }
        if let Some(chaos) = &self.chaos {
            let peer = *bell
                .client_ips
                .last()
                .expect("dumbbell has at least one client");
            let cfg = self.chaos_for(chaos, bell.server_ips[0], peer);
            sim.add_chaos(bell.clients[0], "bell-chaos", cfg)?;
        }
        self.schedule_faults(&mut sim, |target| match target {
            FaultTarget::Client(i) => bell
                .clients
                .get(i)
                .copied()
                .map(ResolvedTarget::Node)
                .ok_or(CapnetError::Config(format!(
                    "dumbbell has {pairs} pairs, no Client({i})"
                ))),
            FaultTarget::Server(i) => bell
                .servers
                .get(i)
                .copied()
                .map(ResolvedTarget::Node)
                .ok_or(CapnetError::Config(format!(
                    "dumbbell has {pairs} pairs, no Server({i})"
                ))),
            FaultTarget::Switch(0) => Ok(ResolvedTarget::Switch(bell.left)),
            FaultTarget::Switch(1) => Ok(ResolvedTarget::Switch(bell.right)),
            FaultTarget::Switch(i) => Err(CapnetError::Config(format!(
                "dumbbell has two switches, no Switch({i})"
            ))),
            FaultTarget::Hub | FaultTarget::Leaf(_) => Err(CapnetError::Config(format!(
                "{target:?} is a star target; the dumbbell addresses Client(i)/Server(i)"
            ))),
        })?;
        if self.isolation_ns > 0 {
            let profile = IsolationProfile {
                per_ff_call_ns: self.isolation_ns,
                s2_service: false,
            };
            for i in 0..pairs {
                sim.set_node_profile(bell.servers[i], profile);
                sim.set_node_profile(bell.clients[i], profile);
            }
        }
        sim.run(self.duration + SimDuration::from_millis(30))
    }
}

/// Builds and runs `kind` in `mode` for `duration`, returning per-flow
/// reports labeled the way Table II labels its rows.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[deprecated(note = "build a `ScenarioSpec` with `ScenarioSpec::paper(kind, mode)` instead")]
pub fn run_bandwidth(
    kind: ScenarioKind,
    mode: TrafficMode,
    duration: SimDuration,
    costs: CostModel,
) -> Result<SimOutcome, CapnetError> {
    ScenarioSpec::paper(kind, mode)
        .duration(duration)
        .costs(costs)
        .run()
}

/// [`run_bandwidth`] over degraded cables: every wire in the topology is
/// subjected to `impairments` (loss, corruption, duplication, reordering,
/// jitter). Used by the loss-sweep experiment to show F-Stack's TCP
/// recovery machinery keeping the paper's scenarios functional on the lossy
/// links real edge deployments see.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[deprecated(note = "build a `ScenarioSpec` with `.impairments(...)` instead")]
pub fn run_bandwidth_impaired(
    kind: ScenarioKind,
    mode: TrafficMode,
    duration: SimDuration,
    costs: CostModel,
    impairments: Impairments,
) -> Result<SimOutcome, CapnetError> {
    ScenarioSpec::paper(kind, mode)
        .duration(duration)
        .costs(costs)
        .impairments(impairments)
        .run()
}

/// The fully parameterized [`run_bandwidth`]: degraded cables *and* an
/// app-cVM scheduling policy. [`AppSched::paper_barging`] reproduces the
/// paper's unbalanced contended client split (Table II's 531/410 Mbit/s);
/// the default round-robin is the fairness fix the paper defers to future
/// work.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[deprecated(
    note = "build a `ScenarioSpec` with `.impairments(...)` and `.app_sched(...)` instead"
)]
pub fn run_bandwidth_full(
    kind: ScenarioKind,
    mode: TrafficMode,
    duration: SimDuration,
    costs: CostModel,
    impairments: Impairments,
    sched: AppSched,
) -> Result<SimOutcome, CapnetError> {
    ScenarioSpec::paper(kind, mode)
        .duration(duration)
        .costs(costs)
        .impairments(impairments)
        .app_sched(sched)
        .run()
}

/// Port base for the star scenario's per-leaf flows.
const STAR_PORT: u16 = 5301;
/// Port base for the dumbbell scenario's per-pair flows.
const DUMBBELL_PORT: u16 = 5401;

/// Runs the **N-client iperf star**: `clients` leaf hosts all sending TCP
/// to one hub host across a single [`updk::switch::LinkFabric`], so every
/// flow shares the switch's one hub-facing egress port — a 1 Gbit/s
/// bottleneck the senders must divide. Ideal cables; see
/// [`run_star_iperf_impaired`] to degrade them.
///
/// The run is a pure function of `(clients, duration, costs, seed)`: the
/// returned [`SimOutcome::trace`] digest is byte-exact reproducible.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[deprecated(note = "build a `ScenarioSpec` with `ScenarioSpec::star(clients)` instead")]
pub fn run_star_iperf(
    clients: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
) -> Result<SimOutcome, CapnetError> {
    ScenarioSpec::star(clients)
        .duration(duration)
        .costs(costs)
        .seed(seed)
        .congestion(CcAlgo::Reno)
        .sack(false)
        .run()
}

/// [`run_star_iperf`] over degraded cables: each delivery is subject to
/// `impairments` once on its final switch-to-host hop (see
/// [`NetSim::set_impairments`] for the exact model), drawn
/// deterministically from `seed`.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[deprecated(note = "build a `ScenarioSpec` with `.impairments(...)` instead")]
pub fn run_star_iperf_impaired(
    clients: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    impairments: Impairments,
) -> Result<SimOutcome, CapnetError> {
    ScenarioSpec::star(clients)
        .duration(duration)
        .costs(costs)
        .seed(seed)
        .impairments(impairments)
        .congestion(CcAlgo::Reno)
        .sack(false)
        .run()
}

/// [`run_star_iperf_impaired`] on a sharded simulation:
/// [`NetSim::set_workers`] is set to `workers` before the run. The outcome
/// — trace digest, counters, reports — is byte-identical for every worker
/// count (the contract `tests/parallel_determinism.rs` locks in); only
/// host-side wall time may differ.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[deprecated(note = "build a `ScenarioSpec` with `.workers(...)` instead")]
pub fn run_star_iperf_sharded(
    clients: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    impairments: Impairments,
    workers: usize,
) -> Result<SimOutcome, CapnetError> {
    ScenarioSpec::star(clients)
        .duration(duration)
        .costs(costs)
        .seed(seed)
        .impairments(impairments)
        .workers(workers)
        .congestion(CcAlgo::Reno)
        .sack(false)
        .run()
}

/// The fully parameterized star: on top of
/// [`run_star_iperf_sharded`]'s knobs, selects the TCP congestion-control
/// algorithm and SACK negotiation for **every** host (hub and leaves — SACK
/// only activates when both ends offer it). Same determinism contract: the
/// outcome is a pure function of the argument tuple, byte-identical at any
/// `workers` count.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[allow(clippy::too_many_arguments)]
#[deprecated(note = "build a `ScenarioSpec` with `.congestion(...)` and `.sack(...)` instead")]
pub fn run_star_iperf_custom(
    clients: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    impairments: Impairments,
    workers: usize,
    cc: CcAlgo,
    sack: bool,
) -> Result<SimOutcome, CapnetError> {
    ScenarioSpec::star(clients)
        .duration(duration)
        .costs(costs)
        .seed(seed)
        .impairments(impairments)
        .workers(workers)
        .congestion(cc)
        .sack(sack)
        .run()
}

/// The **lossy-WAN goodput experiment**: a 2-leaf star whose final hops
/// drop `loss_per_mille` ‰ of frames, with SACK on or off at every host.
/// Comparing the two SACK settings at the same seed isolates the goodput
/// recovered by scoreboard-driven retransmission versus plain
/// RTO/fast-retransmit recovery.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[deprecated(note = "build a `ScenarioSpec` with `.impairments(...)` and `.sack(...)` instead")]
pub fn run_lossy_wan(
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    loss_per_mille: u16,
    sack: bool,
) -> Result<SimOutcome, CapnetError> {
    ScenarioSpec::star(2)
        .duration(duration)
        .costs(costs)
        .seed(seed)
        .impairments(Impairments {
            loss_per_mille,
            ..Default::default()
        })
        .congestion(CcAlgo::Reno)
        .sack(sack)
        .run()
}

/// Runs the **dumbbell fairness scenario**: `pairs` client/server pairs on
/// two switches joined by one trunk, every pair's TCP flow crossing the
/// shared 1 Gbit/s trunk. With the switch's FIFO egress queue and
/// identical flows, the bandwidth split is the fairness measurement the
/// paper defers to future work — quantify it with
/// [`fairness_index`] over the returned server reports.
///
/// Deterministic in `(pairs, duration, costs, seed)` like the star.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[deprecated(note = "build a `ScenarioSpec` with `ScenarioSpec::dumbbell(pairs)` instead")]
pub fn run_dumbbell_fairness(
    pairs: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
) -> Result<SimOutcome, CapnetError> {
    ScenarioSpec::dumbbell(pairs)
        .duration(duration)
        .costs(costs)
        .seed(seed)
        .run()
}

/// [`run_dumbbell_fairness`] with a congestion-control algorithm per pair:
/// pair `i`'s **sender** runs `algos[i % algos.len()]` (an empty slice
/// means every sender keeps the default Reno). Mixing `[Reno, Cubic]`
/// across the shared trunk is the classic inter-algorithm fairness
/// experiment — score the split with [`fairness_index`].
///
/// Deterministic in `(pairs, duration, costs, seed, algos)`.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[deprecated(note = "build a `ScenarioSpec` with `.pair_cc(...)` instead")]
pub fn run_dumbbell_cc(
    pairs: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    algos: &[CcAlgo],
) -> Result<SimOutcome, CapnetError> {
    ScenarioSpec::dumbbell(pairs)
        .duration(duration)
        .costs(costs)
        .seed(seed)
        .pair_cc(algos)
        .run()
}

/// [`run_dumbbell_cc`] over degraded cables. On the drop-free dumbbell the
/// flows are receiver-window-limited and never leave slow start, so the
/// algorithm choice is inert (the classic pinned digest holds for every
/// `algos`); add loss and the recovery/regrowth behavior — where Reno and
/// CUBIC genuinely differ — governs each sender's share of the trunk.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[deprecated(note = "build a `ScenarioSpec` with `.pair_cc(...)` and `.impairments(...)` instead")]
pub fn run_dumbbell_cc_impaired(
    pairs: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    algos: &[CcAlgo],
    impairments: Impairments,
) -> Result<SimOutcome, CapnetError> {
    ScenarioSpec::dumbbell(pairs)
        .duration(duration)
        .costs(costs)
        .seed(seed)
        .pair_cc(algos)
        .impairments(impairments)
        .run()
}

/// Jain's fairness index over per-flow throughputs: `1.0` is a perfectly
/// even split, `1/n` is total starvation of all but one flow. Empty input
/// returns `0.0`.
pub fn fairness_index(mbits: &[f64]) -> f64 {
    if mbits.is_empty() {
        return 0.0;
    }
    let sum: f64 = mbits.iter().sum();
    let sq_sum: f64 = mbits.iter().map(|m| m * m).sum();
    if sq_sum == 0.0 {
        return 0.0;
    }
    sum * sum / (mbits.len() as f64 * sq_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_port_counts() {
        assert!(ScenarioKind::Scenario1.dual_port());
        assert!(ScenarioKind::BaselineTwoProcess.dual_port());
        assert!(!ScenarioKind::Scenario2Contended.dual_port());
        assert!(!ScenarioKind::Scenario4.dual_port());
        assert_eq!(ScenarioKind::all().len(), 7);
        assert!(ScenarioKind::Scenario1.to_string().contains("Scenario 1"));
        assert_eq!(TrafficMode::Server.to_string(), "Server");
    }

    /// Scenario 2 uncontended, server side: the single flow must reach the
    /// 941 Mbit/s ceiling despite the service-cVM charges — the paper's
    /// headline "maximum bandwidth possible with our hardware".
    #[test]
    fn s2_uncontended_server_hits_941() {
        let out = ScenarioSpec::paper(ScenarioKind::Scenario2Uncontended, TrafficMode::Server)
            .duration(SimDuration::from_millis(150))
            .run()
            .unwrap();
        let bw = out.servers[0].mbit_per_sec();
        assert!((bw - 941.0).abs() < 20.0, "got {bw:.0} Mbit/s");
    }

    #[test]
    fn fairness_index_behaves() {
        assert_eq!(fairness_index(&[]), 0.0);
        assert_eq!(fairness_index(&[0.0, 0.0]), 0.0);
        assert!((fairness_index(&[500.0, 500.0]) - 1.0).abs() < 1e-12);
        // One of two flows starved: index is 1/2.
        assert!((fairness_index(&[900.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    /// Two leaves sharing the star's hub uplink split the 941 Mbit/s
    /// goodput ceiling; the switch's single egress port is the bottleneck.
    #[test]
    fn star_two_clients_share_the_uplink() {
        let out = ScenarioSpec::star(2)
            .duration(SimDuration::from_millis(120))
            .seed(0xA11CE)
            .run()
            .unwrap();
        assert_eq!(out.servers.len(), 2);
        let total: f64 = out.servers.iter().map(|r| r.mbit_per_sec()).sum();
        assert!(
            (total - 941.0).abs() < 45.0,
            "aggregate {total:.0} Mbit/s through the shared uplink"
        );
        assert_eq!(out.switch_stats.len(), 1);
        assert!(out.switch_stats[0].forwarded > 0);
        assert!(out.trace.frames > 0);
    }

    /// The serving plane end to end: a 2-leaf star with modest open-loop
    /// fleets must complete requests, and the paper testbed must refuse
    /// the HTTP workload.
    #[test]
    fn httpd_star_serves_requests() {
        let out = ScenarioSpec::star(2)
            .duration(SimDuration::from_millis(60))
            .seed(0xBEEF)
            .http(
                HttpServerConfig::default(),
                FleetConfig {
                    rate_per_sec: 2_000,
                    ..FleetConfig::default()
                },
            )
            .run()
            .unwrap();
        assert_eq!(out.http_servers.len(), 1);
        assert_eq!(out.http_fleets.len(), 2);
        let ok: u64 = out.http_fleets.iter().map(|f| f.requests_ok).sum();
        let served: u64 = out.http_servers.iter().map(|s| s.ok).sum();
        assert!(ok > 0, "fleets completed no requests");
        assert_eq!(ok, served, "server 200s must match fleet 200s");

        let err = ScenarioSpec::paper(ScenarioKind::Scenario1, TrafficMode::Server)
            .http(HttpServerConfig::default(), FleetConfig::default())
            .run();
        assert!(matches!(err, Err(CapnetError::Config(_))));
    }

    /// Fault plans resolve against the topology they name: star targets
    /// on a dumbbell (and vice versa), out-of-range indices, op/target
    /// kind mismatches and any plan on the paper testbed are
    /// configuration errors.
    #[test]
    fn fault_plan_validation() {
        let ms = SimDuration::from_millis;
        let cases: [(ScenarioSpec, FaultPlan); 5] = [
            (
                ScenarioSpec::dumbbell(2),
                FaultPlan::new().link_down(ms(5), FaultTarget::Hub),
            ),
            (
                ScenarioSpec::star(2),
                FaultPlan::new().node_crash(ms(5), FaultTarget::Leaf(2)),
            ),
            (
                ScenarioSpec::star(2),
                FaultPlan::new().switch_fail(ms(5), FaultTarget::Switch(1)),
            ),
            (
                ScenarioSpec::star(2),
                FaultPlan::new().switch_fail(ms(5), FaultTarget::Hub),
            ),
            (
                ScenarioSpec::paper(ScenarioKind::Scenario1, TrafficMode::Server),
                FaultPlan::new().link_down(ms(5), FaultTarget::Hub),
            ),
        ];
        for (spec, plan) in cases {
            let err = spec.duration(ms(10)).faults(plan.clone()).run();
            assert!(
                matches!(err, Err(CapnetError::Config(_))),
                "plan {plan:?} should be rejected"
            );
        }
    }

    /// End-to-end fault execution: flap the hub uplink and crash/restart
    /// a leaf mid-run. The run completes, every fault is counted once,
    /// and the blackholed window plus the dead leaf cost traffic.
    #[test]
    fn star_survives_link_flap_and_leaf_crash() {
        let ms = SimDuration::from_millis;
        let out = ScenarioSpec::star(3)
            .duration(ms(60))
            .seed(0xFA17)
            .http(
                HttpServerConfig::default(),
                FleetConfig {
                    rate_per_sec: 2_000,
                    ..FleetConfig::default()
                },
            )
            .faults(
                FaultPlan::new()
                    .link_down(ms(20), FaultTarget::Hub)
                    .link_up(ms(30), FaultTarget::Hub)
                    .node_crash(ms(15), FaultTarget::Leaf(2))
                    .node_restart(ms(40), FaultTarget::Leaf(2)),
            )
            .run()
            .unwrap();
        assert_eq!(out.fault_stats.link_down_events, 1);
        assert_eq!(out.fault_stats.link_up_events, 1);
        assert_eq!(out.fault_stats.node_crashes, 1);
        assert_eq!(out.fault_stats.node_restarts, 1);
        assert!(
            out.impairment_stats.blackholed > 0,
            "the downed uplink must blackhole frames"
        );
        let ok: u64 = out.http_fleets.iter().map(|f| f.requests_ok).sum();
        assert!(ok > 0, "surviving fleets must keep completing requests");
    }

    /// Scenario 1 server side: both ports receiving share the PCI bus,
    /// ≈658 Mbit/s each (Table II).
    #[test]
    fn s1_server_is_pci_limited() {
        let out = ScenarioSpec::paper(ScenarioKind::Scenario1, TrafficMode::Server)
            .duration(SimDuration::from_millis(150))
            .run()
            .unwrap();
        assert_eq!(out.servers.len(), 2);
        for r in &out.servers {
            let bw = r.mbit_per_sec();
            assert!((bw - 658.0).abs() < 30.0, "{}: {bw:.0} Mbit/s", r.label);
        }
    }
}
