//! The paper's system designs (§III) as runnable simulation topologies.
//!
//! * **Baseline** — no CHERI: MMU-isolated processes. Two-process form
//!   (compared against Scenario 1) and single-process form (compared
//!   against Scenario 2).
//! * **Scenario 1** — the whole stack (iperf + F-Stack + DPDK) replicated
//!   into two cVMs, one per Ethernet port; the only crossings are musl
//!   syscall trampolines.
//! * **Scenario 2** — applications split from one F-Stack/DPDK service
//!   cVM; every `ff_*` call crosses compartments and takes the service
//!   mutex. Evaluated uncontended (one app cVM) and contended (two).
//! * **Scenario 3** *(paper future work (i), implemented as an extension)* —
//!   DPDK split from F-Stack as well: two service crossings per call.
//!
//! Traffic always runs against ideal measurement hosts cabled to the DUT's
//! 82576 ports, mirroring the paper's server (receiver) and client (sender)
//! iperf runs.

use crate::netsim::{AppSched, IsolationProfile, NetSim, SimOutcome};
use crate::CapnetError;
use fstack::CcAlgo;
use simkern::cost::CostModel;
use simkern::time::SimDuration;
use std::fmt;
use std::net::Ipv4Addr;
use updk::nic::NicModel;

/// Which §III design to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Two MMU-isolated processes, each owning one port (no CHERI).
    BaselineTwoProcess,
    /// One process, one port (no CHERI).
    BaselineSingleProcess,
    /// Full stack replicated per cVM (two cVMs, two ports).
    Scenario1,
    /// App cVM + F-Stack/DPDK service cVM, one app (uncontended).
    Scenario2Uncontended,
    /// Two app cVMs contending on the service mutex.
    Scenario2Contended,
    /// Extension: app + F-Stack cVM + DPDK cVM (three-way split).
    Scenario3,
    /// Extension (paper future work (ii), "separation of the entire
    /// stack"): app, F-Stack, DPDK and the NIC-register proxy each in
    /// their own cVM — three crossings on every `ff_*` call path.
    Scenario4,
}

impl ScenarioKind {
    /// All scenarios in Table II order (the extensions last).
    pub fn all() -> [ScenarioKind; 7] {
        [
            ScenarioKind::BaselineTwoProcess,
            ScenarioKind::Scenario1,
            ScenarioKind::BaselineSingleProcess,
            ScenarioKind::Scenario2Uncontended,
            ScenarioKind::Scenario2Contended,
            ScenarioKind::Scenario3,
            ScenarioKind::Scenario4,
        ]
    }

    /// The label used in Table II.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::BaselineTwoProcess => "Baseline (two processes)",
            ScenarioKind::BaselineSingleProcess => "Baseline (single process)",
            ScenarioKind::Scenario1 => "Scenario 1",
            ScenarioKind::Scenario2Uncontended => "Scenario 2 (uncontended)",
            ScenarioKind::Scenario2Contended => "Scenario 2 (contended)",
            ScenarioKind::Scenario3 => "Scenario 3 (extension)",
            ScenarioKind::Scenario4 => "Scenario 4 (extension: full split)",
        }
    }

    /// `true` when both Ethernet ports of the 82576 are in use.
    pub fn dual_port(&self) -> bool {
        matches!(
            self,
            ScenarioKind::BaselineTwoProcess | ScenarioKind::Scenario1
        )
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which side of the iperf pair the DUT plays (Table II columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficMode {
    /// The DUT receives (iperf server mode).
    Server,
    /// The DUT sends (iperf client mode).
    Client,
}

impl fmt::Display for TrafficMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrafficMode::Server => "Server",
            TrafficMode::Client => "Client",
        })
    }
}

const DUT_IP: [Ipv4Addr; 2] = [Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 1, 1)];
const PEER_IP: [Ipv4Addr; 2] = [Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(10, 0, 1, 2)];

/// Builds and runs `kind` in `mode` for `duration`, returning per-flow
/// reports labeled the way Table II labels its rows.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
pub fn run_bandwidth(
    kind: ScenarioKind,
    mode: TrafficMode,
    duration: SimDuration,
    costs: CostModel,
) -> Result<SimOutcome, CapnetError> {
    run_bandwidth_impaired(
        kind,
        mode,
        duration,
        costs,
        updk::wire::Impairments::default(),
    )
}

/// [`run_bandwidth`] over degraded cables: every wire in the topology is
/// subjected to `impairments` (loss, corruption, duplication, reordering,
/// jitter). Used by the loss-sweep experiment to show F-Stack's TCP
/// recovery machinery keeping the paper's scenarios functional on the lossy
/// links real edge deployments see.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
pub fn run_bandwidth_impaired(
    kind: ScenarioKind,
    mode: TrafficMode,
    duration: SimDuration,
    costs: CostModel,
    impairments: updk::wire::Impairments,
) -> Result<SimOutcome, CapnetError> {
    run_bandwidth_full(
        kind,
        mode,
        duration,
        costs,
        impairments,
        AppSched::RoundRobin,
    )
}

/// The fully parameterized [`run_bandwidth`]: degraded cables *and* an
/// app-cVM scheduling policy. [`AppSched::paper_barging`] reproduces the
/// paper's unbalanced contended client split (Table II's 531/410 Mbit/s);
/// the default round-robin is the fairness fix the paper defers to future
/// work.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
pub fn run_bandwidth_full(
    kind: ScenarioKind,
    mode: TrafficMode,
    duration: SimDuration,
    costs: CostModel,
    impairments: updk::wire::Impairments,
    sched: AppSched,
) -> Result<SimOutcome, CapnetError> {
    let mut sim = NetSim::new(costs.clone());
    sim.set_impairments(impairments);
    sim.set_app_sched(sched);
    let dut_dev = sim.add_dev(NicModel::Dual82576)?;
    let traffic = duration;
    // Leave room for handshakes before and FIN drains after the timed part.
    let run_for = duration + SimDuration::from_millis(30);

    // Per-`ff_*`-call crossing charge for the scenario.
    let per_call = match kind {
        ScenarioKind::BaselineTwoProcess
        | ScenarioKind::BaselineSingleProcess
        | ScenarioKind::Scenario1 => 0,
        ScenarioKind::Scenario2Uncontended | ScenarioKind::Scenario2Contended => {
            costs.xcall_ns + costs.mutex_fast_ns
        }
        // The deeper splits add crossings but no further mutexes: the
        // compartment-to-compartment packet hand-offs ride single-producer/
        // single-consumer rings (as DPDK's do), which need no lock.
        ScenarioKind::Scenario3 => 2 * costs.xcall_ns + costs.mutex_fast_ns,
        ScenarioKind::Scenario4 => 3 * costs.xcall_ns + costs.mutex_fast_ns,
    };
    let s2_service = matches!(
        kind,
        ScenarioKind::Scenario2Uncontended
            | ScenarioKind::Scenario2Contended
            | ScenarioKind::Scenario3
            | ScenarioKind::Scenario4
    );
    let profile = IsolationProfile {
        per_ff_call_ns: per_call,
        s2_service,
    };

    let ports: usize = if kind.dual_port() { 2 } else { 1 };
    let flows: usize = match kind {
        ScenarioKind::Scenario2Contended => 2,
        _ => 1,
    };

    for port in 0..ports {
        let peer_dev = sim.add_dev(NicModel::Host)?;
        sim.link(dut_dev, port, peer_dev, 0)?;
        let dut = sim.add_node(
            format!("cVM{}", port + 1),
            dut_dev,
            port,
            DUT_IP[port],
            profile,
        )?;
        let peer = sim.add_node(
            format!("host{}", port + 1),
            peer_dev,
            0,
            PEER_IP[port],
            IsolationProfile::default(),
        )?;
        for flow in 0..flows {
            let svc_port = 5201 + flow as u16;
            let dut_label = match kind {
                ScenarioKind::Scenario2Contended => format!("cVM{}", flow + 2),
                ScenarioKind::Scenario2Uncontended => "cVM2".to_string(),
                ScenarioKind::BaselineSingleProcess => "Baseline".to_string(),
                _ => format!("cVM{}", port + 1),
            };
            match mode {
                TrafficMode::Server => {
                    sim.add_server(dut, dut_label, svc_port)?;
                    sim.add_client(
                        peer,
                        format!("host{}-tx{}", port + 1, flow),
                        (DUT_IP[port], svc_port),
                        traffic,
                        SimDuration::ZERO,
                    )?;
                }
                TrafficMode::Client => {
                    sim.add_server(peer, format!("host{}-rx{}", port + 1, flow), svc_port)?;
                    sim.add_client(
                        dut,
                        dut_label,
                        (PEER_IP[port], svc_port),
                        traffic,
                        SimDuration::ZERO,
                    )?;
                }
            }
        }
    }
    sim.run(run_for)
}

/// Port base for the star scenario's per-leaf flows.
const STAR_PORT: u16 = 5301;
/// Port base for the dumbbell scenario's per-pair flows.
const DUMBBELL_PORT: u16 = 5401;

/// Runs the **N-client iperf star**: `clients` leaf hosts all sending TCP
/// to one hub host across a single [`updk::switch::LinkFabric`], so every
/// flow shares the switch's one hub-facing egress port — a 1 Gbit/s
/// bottleneck the senders must divide. Ideal cables; see
/// [`run_star_iperf_impaired`] to degrade them.
///
/// The run is a pure function of `(clients, duration, costs, seed)`: the
/// returned [`SimOutcome::trace`] digest is byte-exact reproducible.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
pub fn run_star_iperf(
    clients: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
) -> Result<SimOutcome, CapnetError> {
    run_star_iperf_impaired(
        clients,
        duration,
        costs,
        seed,
        updk::wire::Impairments::default(),
    )
}

/// [`run_star_iperf`] over degraded cables: each delivery is subject to
/// `impairments` once on its final switch-to-host hop (see
/// [`NetSim::set_impairments`] for the exact model), drawn
/// deterministically from `seed`.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
pub fn run_star_iperf_impaired(
    clients: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    impairments: updk::wire::Impairments,
) -> Result<SimOutcome, CapnetError> {
    run_star_iperf_sharded(clients, duration, costs, seed, impairments, 1)
}

/// [`run_star_iperf_impaired`] on a sharded simulation:
/// [`NetSim::set_workers`] is set to `workers` before the run. The outcome
/// — trace digest, counters, reports — is byte-identical for every worker
/// count (the contract `tests/parallel_determinism.rs` locks in); only
/// host-side wall time may differ.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
pub fn run_star_iperf_sharded(
    clients: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    impairments: updk::wire::Impairments,
    workers: usize,
) -> Result<SimOutcome, CapnetError> {
    run_star_iperf_custom(
        clients,
        duration,
        costs,
        seed,
        impairments,
        workers,
        CcAlgo::Reno,
        false,
    )
}

/// The fully parameterized star: on top of
/// [`run_star_iperf_sharded`]'s knobs, selects the TCP congestion-control
/// algorithm and SACK negotiation for **every** host (hub and leaves — SACK
/// only activates when both ends offer it). Same determinism contract: the
/// outcome is a pure function of the argument tuple, byte-identical at any
/// `workers` count.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
#[allow(clippy::too_many_arguments)]
pub fn run_star_iperf_custom(
    clients: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    impairments: updk::wire::Impairments,
    workers: usize,
    cc: CcAlgo,
    sack: bool,
) -> Result<SimOutcome, CapnetError> {
    let mut sim = NetSim::new(costs);
    sim.set_seed(seed);
    sim.set_impairments(impairments);
    sim.set_workers(workers);
    let star = crate::topology::build_star(&mut sim, clients)?;
    sim.set_node_cc(star.hub, cc);
    sim.set_node_sack(star.hub, sack);
    for &leaf in &star.leaves {
        sim.set_node_cc(leaf, cc);
        sim.set_node_sack(leaf, sack);
    }
    for (i, &leaf) in star.leaves.iter().enumerate() {
        let port = STAR_PORT + i as u16;
        sim.add_server(star.hub, format!("hub-rx{i}"), port)?;
        sim.add_client(
            leaf,
            format!("leaf-tx{i}"),
            (star.hub_ip, port),
            duration,
            SimDuration::ZERO,
        )?;
    }
    // Room for ARP + handshakes before and FIN drains after the timed part.
    sim.run(duration + SimDuration::from_millis(30))
}

/// The **lossy-WAN goodput experiment**: a 2-leaf star whose final hops
/// drop `loss_per_mille` ‰ of frames, with SACK on or off at every host.
/// Comparing the two SACK settings at the same seed isolates the goodput
/// recovered by scoreboard-driven retransmission versus plain
/// RTO/fast-retransmit recovery.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
pub fn run_lossy_wan(
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    loss_per_mille: u16,
    sack: bool,
) -> Result<SimOutcome, CapnetError> {
    let impairments = updk::wire::Impairments {
        loss_per_mille,
        ..Default::default()
    };
    run_star_iperf_custom(2, duration, costs, seed, impairments, 1, CcAlgo::Reno, sack)
}

/// Runs the **dumbbell fairness scenario**: `pairs` client/server pairs on
/// two switches joined by one trunk, every pair's TCP flow crossing the
/// shared 1 Gbit/s trunk. With the switch's FIFO egress queue and
/// identical flows, the bandwidth split is the fairness measurement the
/// paper defers to future work — quantify it with
/// [`fairness_index`] over the returned server reports.
///
/// Deterministic in `(pairs, duration, costs, seed)` like the star.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
pub fn run_dumbbell_fairness(
    pairs: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
) -> Result<SimOutcome, CapnetError> {
    run_dumbbell_cc(pairs, duration, costs, seed, &[])
}

/// [`run_dumbbell_fairness`] with a congestion-control algorithm per pair:
/// pair `i`'s **sender** runs `algos[i % algos.len()]` (an empty slice
/// means every sender keeps the default Reno). Mixing `[Reno, Cubic]`
/// across the shared trunk is the classic inter-algorithm fairness
/// experiment — score the split with [`fairness_index`].
///
/// Deterministic in `(pairs, duration, costs, seed, algos)`.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
pub fn run_dumbbell_cc(
    pairs: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    algos: &[CcAlgo],
) -> Result<SimOutcome, CapnetError> {
    run_dumbbell_cc_impaired(
        pairs,
        duration,
        costs,
        seed,
        algos,
        updk::wire::Impairments::default(),
    )
}

/// [`run_dumbbell_cc`] over degraded cables. On the drop-free dumbbell the
/// flows are receiver-window-limited and never leave slow start, so the
/// algorithm choice is inert (the classic pinned digest holds for every
/// `algos`); add loss and the recovery/regrowth behavior — where Reno and
/// CUBIC genuinely differ — governs each sender's share of the trunk.
///
/// # Errors
///
/// Propagates configuration and datapath failures.
pub fn run_dumbbell_cc_impaired(
    pairs: usize,
    duration: SimDuration,
    costs: CostModel,
    seed: u64,
    algos: &[CcAlgo],
    impairments: updk::wire::Impairments,
) -> Result<SimOutcome, CapnetError> {
    let mut sim = NetSim::new(costs);
    sim.set_seed(seed);
    sim.set_impairments(impairments);
    let bell = crate::topology::build_dumbbell(&mut sim, pairs)?;
    for i in 0..pairs {
        if !algos.is_empty() {
            sim.set_node_cc(bell.clients[i], algos[i % algos.len()]);
        }
        let port = DUMBBELL_PORT + i as u16;
        sim.add_server(bell.servers[i], format!("srv-rx{i}"), port)?;
        sim.add_client(
            bell.clients[i],
            format!("cli-tx{i}"),
            (bell.server_ips[i], port),
            duration,
            SimDuration::ZERO,
        )?;
    }
    sim.run(duration + SimDuration::from_millis(30))
}

/// Jain's fairness index over per-flow throughputs: `1.0` is a perfectly
/// even split, `1/n` is total starvation of all but one flow. Empty input
/// returns `0.0`.
pub fn fairness_index(mbits: &[f64]) -> f64 {
    if mbits.is_empty() {
        return 0.0;
    }
    let sum: f64 = mbits.iter().sum();
    let sq_sum: f64 = mbits.iter().map(|m| m * m).sum();
    if sq_sum == 0.0 {
        return 0.0;
    }
    sum * sum / (mbits.len() as f64 * sq_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_port_counts() {
        assert!(ScenarioKind::Scenario1.dual_port());
        assert!(ScenarioKind::BaselineTwoProcess.dual_port());
        assert!(!ScenarioKind::Scenario2Contended.dual_port());
        assert!(!ScenarioKind::Scenario4.dual_port());
        assert_eq!(ScenarioKind::all().len(), 7);
        assert!(ScenarioKind::Scenario1.to_string().contains("Scenario 1"));
        assert_eq!(TrafficMode::Server.to_string(), "Server");
    }

    /// Scenario 2 uncontended, server side: the single flow must reach the
    /// 941 Mbit/s ceiling despite the service-cVM charges — the paper's
    /// headline "maximum bandwidth possible with our hardware".
    #[test]
    fn s2_uncontended_server_hits_941() {
        let out = run_bandwidth(
            ScenarioKind::Scenario2Uncontended,
            TrafficMode::Server,
            SimDuration::from_millis(150),
            CostModel::morello(),
        )
        .unwrap();
        let bw = out.servers[0].mbit_per_sec();
        assert!((bw - 941.0).abs() < 20.0, "got {bw:.0} Mbit/s");
    }

    #[test]
    fn fairness_index_behaves() {
        assert_eq!(fairness_index(&[]), 0.0);
        assert_eq!(fairness_index(&[0.0, 0.0]), 0.0);
        assert!((fairness_index(&[500.0, 500.0]) - 1.0).abs() < 1e-12);
        // One of two flows starved: index is 1/2.
        assert!((fairness_index(&[900.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    /// Two leaves sharing the star's hub uplink split the 941 Mbit/s
    /// goodput ceiling; the switch's single egress port is the bottleneck.
    #[test]
    fn star_two_clients_share_the_uplink() {
        let out = run_star_iperf(
            2,
            SimDuration::from_millis(120),
            CostModel::morello(),
            0xA11CE,
        )
        .unwrap();
        assert_eq!(out.servers.len(), 2);
        let total: f64 = out.servers.iter().map(|r| r.mbit_per_sec()).sum();
        assert!(
            (total - 941.0).abs() < 45.0,
            "aggregate {total:.0} Mbit/s through the shared uplink"
        );
        assert_eq!(out.switch_stats.len(), 1);
        assert!(out.switch_stats[0].forwarded > 0);
        assert!(out.trace.frames > 0);
    }

    /// Scenario 1 server side: both ports receiving share the PCI bus,
    /// ≈658 Mbit/s each (Table II).
    #[test]
    fn s1_server_is_pci_limited() {
        let out = run_bandwidth(
            ScenarioKind::Scenario1,
            TrafficMode::Server,
            SimDuration::from_millis(150),
            CostModel::morello(),
        )
        .unwrap();
        assert_eq!(out.servers.len(), 2);
        for r in &out.servers {
            let bw = r.mbit_per_sec();
            assert!((bw - 658.0).abs() < 30.0, "{}: {bw:.0} Mbit/s", r.label);
        }
    }
}
