//! MAVLink-v1-style wire framing.
//!
//! Layout (as in MAVLink 1.0, the format PX4 still speaks for legacy GCS
//! links):
//!
//! ```text
//! offset  0    1    2    3      4       5      6..6+len   6+len..8+len
//!         STX  len  seq  sysid  compid  msgid  payload    crc16 (LE)
//! ```
//!
//! The CRC is MCRF4XX (the X.25 CRC-16 variant MAVLink uses) over bytes
//! `1..6+len` followed by the per-message *CRC extra* byte, which seals the
//! message schema into the checksum.

use crate::msg::{Message, MsgId};
use crate::MavError;

/// Start-of-frame marker (MAVLink 1.0's `0xFE`).
pub const STX: u8 = 0xFE;

/// Header (6) + CRC (2) bytes around the payload.
pub const FRAME_OVERHEAD: usize = 8;

/// Largest payload a frame can declare (the `len` field is one byte, but
/// MAVLink caps payloads at 255 anyway).
pub const MAX_PAYLOAD: usize = 255;

/// CRC-16/MCRF4XX update (the MAVLink `crc_accumulate` function).
fn crc_accumulate(mut crc: u16, byte: u8) -> u16 {
    let mut tmp = byte ^ (crc as u8);
    tmp ^= tmp << 4;
    crc = (crc >> 8) ^ (u16::from(tmp) << 8) ^ (u16::from(tmp) << 3) ^ (u16::from(tmp) >> 4);
    crc
}

/// The MCRF4XX CRC over `bytes`, then `extra`, from the standard init value.
pub fn crc16(bytes: &[u8], extra: u8) -> u16 {
    let mut crc = 0xFFFFu16;
    for &b in bytes {
        crc = crc_accumulate(crc, b);
    }
    crc_accumulate(crc, extra)
}

/// A parsed frame: header fields plus the raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MavFrame {
    /// Sequence number (wraps at 256; receivers detect loss from gaps).
    pub seq: u8,
    /// Sending system id (vehicle or ground station).
    pub sysid: u8,
    /// Sending component id.
    pub compid: u8,
    /// Message id (see [`MsgId`]).
    pub msgid: u8,
    /// Raw payload bytes (schema defined by `msgid`).
    pub payload: Vec<u8>,
}

impl MavFrame {
    /// Encodes `message` into a complete wire frame.
    ///
    /// # Panics
    ///
    /// Panics if the message encodes beyond [`MAX_PAYLOAD`] — message
    /// schemas in [`crate::msg`] are all far below the cap, so this
    /// indicates a schema bug.
    pub fn encode(seq: u8, sysid: u8, compid: u8, message: &Message) -> Vec<u8> {
        let payload = message.encode();
        assert!(payload.len() <= MAX_PAYLOAD, "schema exceeds MAX_PAYLOAD");
        let msgid = message.id() as u8;
        Self::encode_raw(
            seq,
            sysid,
            compid,
            msgid,
            &payload,
            message.id().crc_extra(),
        )
    }

    /// Encodes raw fields without schema validation — what an *attacker*
    /// does. The CRC is still correct (the CVE pattern is a well-formed
    /// frame whose *length* the receiver trusts blindly).
    pub fn encode_raw(
        seq: u8,
        sysid: u8,
        compid: u8,
        msgid: u8,
        payload: &[u8],
        crc_extra: u8,
    ) -> Vec<u8> {
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "payload exceeds the len field"
        );
        let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        out.push(STX);
        out.push(payload.len() as u8);
        out.push(seq);
        out.push(sysid);
        out.push(compid);
        out.push(msgid);
        out.extend_from_slice(payload);
        let crc = crc16(&out[1..], crc_extra);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and CRC-verifies one frame from `bytes`.
    ///
    /// This is the *safe* decoder: every bound is checked before any copy.
    ///
    /// # Errors
    ///
    /// [`MavError::BadMagic`] / [`MavError::Truncated`] /
    /// [`MavError::BadCrc`] / [`MavError::UnknownMsg`] as encountered.
    pub fn decode(bytes: &[u8]) -> Result<MavFrame, MavError> {
        if bytes.first() != Some(&STX) {
            return Err(MavError::BadMagic);
        }
        if bytes.len() < FRAME_OVERHEAD {
            return Err(MavError::Truncated);
        }
        let len = bytes[1] as usize;
        if bytes.len() < FRAME_OVERHEAD + len {
            return Err(MavError::Truncated);
        }
        let msgid = bytes[5];
        let id = MsgId::try_from(msgid).map_err(|_| MavError::UnknownMsg(msgid))?;
        let body = &bytes[1..6 + len];
        let crc = u16::from_le_bytes([bytes[6 + len], bytes[7 + len]]);
        if crc16(body, id.crc_extra()) != crc {
            return Err(MavError::BadCrc);
        }
        Ok(MavFrame {
            seq: bytes[2],
            sysid: bytes[3],
            compid: bytes[4],
            msgid,
            payload: bytes[6..6 + len].to_vec(),
        })
    }

    /// Interprets the payload according to `msgid`.
    ///
    /// # Errors
    ///
    /// [`MavError::UnknownMsg`] / [`MavError::BadLength`] when the payload
    /// does not fit the schema.
    pub fn message(&self) -> Result<Message, MavError> {
        Message::decode(self.msgid, &self.payload)
    }

    /// Total bytes this frame occupies on the wire.
    pub fn wire_len(&self) -> usize {
        FRAME_OVERHEAD + self.payload.len()
    }
}

/// Tracks received sequence numbers and counts gaps (lost frames) the way
/// MAVLink ground stations compute link quality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqTracker {
    last: Option<u8>,
    /// Frames received.
    pub received: u64,
    /// Frames inferred lost from sequence gaps.
    pub lost: u64,
}

impl SeqTracker {
    /// A tracker that has seen nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `seq`, attributing any gap since the previous frame to loss.
    pub fn observe(&mut self, seq: u8) {
        self.received += 1;
        if let Some(last) = self.last {
            let gap = seq.wrapping_sub(last).wrapping_sub(1);
            self.lost += u64::from(gap);
        }
        self.last = Some(seq);
    }

    /// Link quality in `0.0..=1.0` (received over received+lost).
    pub fn quality(&self) -> f64 {
        let total = self.received + self.lost;
        if total == 0 {
            1.0
        } else {
            self.received as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Heartbeat, MavMode};

    #[test]
    fn crc16_known_vector() {
        // MCRF4XX of "123456789" is 0x6F91; our extra byte folds in after.
        let mut crc = 0xFFFFu16;
        for b in b"123456789" {
            crc = crc_accumulate(crc, *b);
        }
        assert_eq!(crc, 0x6F91);
    }

    #[test]
    fn encode_decode_round_trip() {
        let hb = Message::Heartbeat(Heartbeat {
            mode: MavMode::Auto,
            battery_pct: 55,
            armed: true,
        });
        let wire = MavFrame::encode(3, 1, 200, &hb);
        let frame = MavFrame::decode(&wire).unwrap();
        assert_eq!(frame.seq, 3);
        assert_eq!(frame.sysid, 1);
        assert_eq!(frame.compid, 200);
        assert_eq!(frame.message().unwrap(), hb);
        assert_eq!(frame.wire_len(), wire.len());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut wire = MavFrame::encode(0, 1, 1, &Message::Heartbeat(Heartbeat::default()));
        wire[0] = 0x55;
        assert_eq!(MavFrame::decode(&wire), Err(MavError::BadMagic));
    }

    #[test]
    fn truncation_is_rejected_not_panicked() {
        let wire = MavFrame::encode(0, 1, 1, &Message::Heartbeat(Heartbeat::default()));
        for cut in 0..wire.len() {
            let r = MavFrame::decode(&wire[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn flipped_bit_fails_crc() {
        let wire = MavFrame::encode(9, 1, 1, &Message::Heartbeat(Heartbeat::default()));
        for i in 1..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x01;
            assert_ne!(
                MavFrame::decode(&bad).and_then(|f| f.message()),
                MavFrame::decode(&wire).and_then(|f| f.message()),
                "bit flip at {i} must change the outcome"
            );
        }
    }

    #[test]
    fn crc_extra_seals_the_schema() {
        // Same bytes, different claimed msgid → CRC must fail (the CRC
        // extra binds the schema).
        let wire = MavFrame::encode(0, 1, 1, &Message::Heartbeat(Heartbeat::default()));
        let mut forged = wire.clone();
        forged[5] = MsgId::Statustext as u8;
        assert!(matches!(
            MavFrame::decode(&forged),
            Err(MavError::BadCrc) | Err(MavError::UnknownMsg(_))
        ));
    }

    #[test]
    fn seq_tracker_counts_gaps_and_wraps() {
        let mut t = SeqTracker::new();
        t.observe(250);
        t.observe(251);
        t.observe(254); // 252, 253 lost
        t.observe(1); // 255, 0 lost (wrap)
        assert_eq!(t.received, 4);
        assert_eq!(t.lost, 4);
        assert!((t.quality() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fresh_tracker_reports_perfect_quality() {
        assert!((SeqTracker::new().quality() - 1.0).abs() < f64::EPSILON);
    }
}
