//! Two ground-station receive paths for the same telemetry link — one with
//! the CVE, one compartmentalized.
//!
//! CVE-2024-38951 (cited in the paper's introduction) is an *unchecked
//! buffer limit*: the MAVLink receive path copies an attacker-controlled
//! number of bytes into a fixed-size buffer. [`VulnerableParser`] commits
//! exactly that bug against a flat, unprotected address space — the
//! NuttX/PX4 deployment model the paper describes, where "all applications
//! typically run within a single address space". The bytes that overflow
//! the 64-byte RX buffer land in whatever is adjacent; here, as on a real
//! autopilot, that is the actuator command block.
//!
//! [`CheriParser`] runs the *same unchecked copy loop*, but the RX buffer
//! is held through a bounds-restricted [`cheri::Capability`] into tagged
//! memory. Byte 64 of the copy raises the paper's Fig. 3 capability
//! out-of-bounds exception: the compartment dies, the actuator block —
//! reachable only through a different capability — is untouched.
//!
//! Both implement [`GroundStation`], so tests and examples can run the
//! identical attack against both and diff the blast radius.

use crate::frame::{MavFrame, STX};
use crate::msg::Message;
use crate::MavError;
use cheri::{CapFault, Capability, Perms, TaggedMemory};

/// Size of the fixed telemetry RX buffer both parsers use.
pub const RX_BUF: usize = 64;

/// Motor idle command (PWM microseconds), the safe default.
pub const MOTOR_IDLE: u16 = 1000;

/// What handling one wire frame did.
#[derive(Debug, Clone, PartialEq)]
pub enum ParserOutcome {
    /// The frame decoded cleanly and was delivered.
    Delivered(Message),
    /// The frame was rejected by protocol validation.
    Rejected(MavError),
    /// The copy tripped a CHERI capability fault — the compartment is dead.
    Faulted(CapFault),
    /// The receive compartment is dead; the Intravisor dropped the frame.
    Dropped,
}

impl ParserOutcome {
    /// `true` for [`ParserOutcome::Delivered`].
    pub fn is_delivered(&self) -> bool {
        matches!(self, ParserOutcome::Delivered(_))
    }
}

/// A telemetry receive path plus the actuator state living next to it.
pub trait GroundStation {
    /// Feeds one wire frame to the receive path.
    fn handle(&mut self, wire: &[u8]) -> ParserOutcome;

    /// The four motor commands as the mixer would read them.
    fn motors(&self) -> [u16; 4];

    /// `false` once the receive compartment has been killed by a fault.
    fn alive(&self) -> bool;

    /// `true` when any motor command no longer reads [`MOTOR_IDLE`]
    /// without a legitimate command having set it.
    fn motors_corrupted(&self) -> bool {
        self.motors().iter().any(|&m| m != MOTOR_IDLE)
    }
}

/// Arena layout shared by both parsers: the RX buffer with the actuator
/// command block immediately after it — the adjacency that makes the
/// overflow weaponizable.
const RX_OFF: usize = 0;
const MOTOR_OFF: usize = RX_BUF;
const FAILSAFE_OFF: usize = MOTOR_OFF + 8;
// The arena models the *whole* flat address space around the RX buffer: a
// maximal (255-byte) overflow must land in simulated memory, not trip
// Rust's own bounds checks — in C there is nothing to trip.
const ARENA: usize = RX_BUF + 256;

/// The CVE pattern against flat memory: a C-style ground station in a
/// single address space (no MMU/MPU, as on the paper's NuttX/PX4 class of
/// devices).
///
/// `handle` copies `len` bytes — the *attacker's* length field — into the
/// 64-byte RX buffer with no bound check. Overflowing bytes silently
/// overwrite the adjacent motor command block. The parser itself never
/// notices: validation happens after the copy, exactly the broken ordering
/// of the CVE.
#[derive(Debug, Clone)]
pub struct VulnerableParser {
    arena: Vec<u8>,
    delivered: u64,
}

impl Default for VulnerableParser {
    fn default() -> Self {
        Self::new()
    }
}

impl VulnerableParser {
    /// A fresh ground station with motors at [`MOTOR_IDLE`].
    pub fn new() -> Self {
        let mut arena = vec![0u8; ARENA];
        for i in 0..4 {
            arena[MOTOR_OFF + 2 * i..MOTOR_OFF + 2 * i + 2]
                .copy_from_slice(&MOTOR_IDLE.to_le_bytes());
        }
        arena[FAILSAFE_OFF] = 1; // failsafe armed
        VulnerableParser {
            arena,
            delivered: 0,
        }
    }

    /// Frames delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Whether the failsafe flag still reads armed.
    pub fn failsafe_armed(&self) -> bool {
        self.arena[FAILSAFE_OFF] == 1
    }
}

impl GroundStation for VulnerableParser {
    fn handle(&mut self, wire: &[u8]) -> ParserOutcome {
        if wire.first() != Some(&STX) || wire.len() < 8 {
            return ParserOutcome::Rejected(MavError::BadMagic);
        }
        let len = wire[1] as usize;
        if wire.len() < 8 + len {
            return ParserOutcome::Rejected(MavError::Truncated);
        }
        // THE BUG (CVE-2024-38951 pattern): `len` is attacker-controlled
        // and RX_BUF is 64, but the copy trusts `len` blindly. In flat
        // memory nothing stops the write at the buffer's end.
        for (i, &b) in wire[6..6 + len].iter().enumerate() {
            self.arena[RX_OFF + i] = b; // may run past RX_BUF
        }
        // Validation happens only after the damage is done.
        match MavFrame::decode(wire) {
            Ok(f) => match f.message() {
                Ok(m) => {
                    self.delivered += 1;
                    ParserOutcome::Delivered(m)
                }
                Err(e) => ParserOutcome::Rejected(e),
            },
            Err(e) => ParserOutcome::Rejected(e),
        }
    }

    fn motors(&self) -> [u16; 4] {
        let mut m = [0u16; 4];
        for (i, v) in m.iter_mut().enumerate() {
            *v = u16::from_le_bytes([
                self.arena[MOTOR_OFF + 2 * i],
                self.arena[MOTOR_OFF + 2 * i + 1],
            ]);
        }
        m
    }

    fn alive(&self) -> bool {
        true // flat memory never kills the process — that is the problem
    }
}

/// The same receive path inside a CHERI compartment.
///
/// The copy loop is byte-for-byte the vulnerable one; the difference is the
/// *authority* it runs with: the RX buffer capability spans exactly
/// [`RX_BUF`] bytes. The 65th write raises `CapFault::BoundsViolation`
/// (Fig. 3 of the paper) and the compartment is torn down; the actuator
/// block is only reachable through its own capability, which the parser
/// never touches out of bounds.
#[derive(Debug)]
pub struct CheriParser {
    mem: TaggedMemory,
    rx: Capability,
    actuators: Capability,
    dead: Option<CapFault>,
    delivered: u64,
    faults_survived: u64,
}

impl Default for CheriParser {
    fn default() -> Self {
        Self::new()
    }
}

impl CheriParser {
    /// Builds the compartment: tagged memory with the RX buffer and the
    /// actuator block held via separate, tightly-bounded capabilities.
    ///
    /// # Panics
    ///
    /// Panics only if the fixed arena layout stops satisfying capability
    /// alignment — a compile-time-style invariant of this module.
    pub fn new() -> Self {
        let mut mem = TaggedMemory::new(4096);
        let data = Perms::data();
        let rx = mem
            .root_cap()
            .try_restrict(RX_OFF as u64, RX_BUF as u64)
            .expect("rx buffer capability")
            .try_restrict_perms(data)
            .expect("rx perms");
        let actuators = mem
            .root_cap()
            .try_restrict(MOTOR_OFF as u64, 16)
            .expect("actuator capability")
            .try_restrict_perms(data)
            .expect("actuator perms");
        for i in 0..4u64 {
            mem.write_u16(&actuators, MOTOR_OFF as u64 + 2 * i, MOTOR_IDLE)
                .expect("motor init");
        }
        mem.write_u8(&actuators, FAILSAFE_OFF as u64, 1)
            .expect("failsafe init");
        CheriParser {
            mem,
            rx,
            actuators,
            dead: None,
            delivered: 0,
            faults_survived: 0,
        }
    }

    /// The fault that killed the compartment, if any.
    pub fn fault(&self) -> Option<&CapFault> {
        self.dead.as_ref()
    }

    /// Faults absorbed over the compartment's lifetime (across respawns).
    pub fn faults_survived(&self) -> u64 {
        self.faults_survived
    }

    /// Restarts the dead compartment: fresh tagged memory for the RX
    /// buffer, delivery resumes — the recovery the Intravisor's cVM
    /// lifecycle management enables.
    ///
    /// This is what turns the CVE's *denial of service* into a bounded
    /// availability blip: flat memory gives the attacker silent control
    /// forever; the CHERI deployment loses one compartment for one restart
    /// and keeps its actuator state intact throughout. The actuator block
    /// is deliberately *not* reset — it was never corrupted, and a real
    /// autopilot must not glitch its motors on a telemetry-parser restart.
    ///
    /// Calling this on a live compartment is a no-op.
    pub fn respawn(&mut self) {
        if self.dead.take().is_some() {
            self.faults_survived += 1;
            // Scrub the RX buffer (a fresh cVM gets zeroed pages).
            for i in 0..RX_BUF as u64 {
                self.mem
                    .write_u8(&self.rx, RX_OFF as u64 + i, 0)
                    .expect("rx scrub stays in bounds");
            }
        }
    }

    /// Frames delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Whether the failsafe flag still reads armed.
    pub fn failsafe_armed(&mut self) -> bool {
        self.mem
            .read_u8(&self.actuators, FAILSAFE_OFF as u64)
            .map(|b| b == 1)
            .unwrap_or(false)
    }
}

impl GroundStation for CheriParser {
    fn handle(&mut self, wire: &[u8]) -> ParserOutcome {
        if self.dead.is_some() {
            // The compartment is gone; the Intravisor would refuse to
            // schedule it. Frames to a dead cVM are dropped.
            return ParserOutcome::Dropped;
        }
        if wire.first() != Some(&STX) || wire.len() < 8 {
            return ParserOutcome::Rejected(MavError::BadMagic);
        }
        let len = wire[1] as usize;
        if wire.len() < 8 + len {
            return ParserOutcome::Rejected(MavError::Truncated);
        }
        // The SAME unchecked loop as VulnerableParser::handle — but every
        // store is checked against the rx capability's bounds in hardware.
        for (i, &b) in wire[6..6 + len].iter().enumerate() {
            if let Err(fault) = self.mem.write_u8(&self.rx, (RX_OFF + i) as u64, b) {
                self.dead = Some(fault.clone());
                return ParserOutcome::Faulted(fault);
            }
        }
        match MavFrame::decode(wire) {
            Ok(f) => match f.message() {
                Ok(m) => {
                    self.delivered += 1;
                    ParserOutcome::Delivered(m)
                }
                Err(e) => ParserOutcome::Rejected(e),
            },
            Err(e) => ParserOutcome::Rejected(e),
        }
    }

    fn motors(&self) -> [u16; 4] {
        // Reading state of a (possibly dead) compartment is the
        // Intravisor's privilege; we model it with a scoped clone of the
        // actuator capability.
        let mut mem = self.mem.clone();
        let mut m = [0u16; 4];
        for (i, v) in m.iter_mut().enumerate() {
            *v = mem
                .read_u16(&self.actuators, (MOTOR_OFF + 2 * i) as u64)
                .unwrap_or(0);
        }
        m
    }

    fn alive(&self) -> bool {
        self.dead.is_none()
    }
}

/// Builders for the attack traffic the tests and the example inject.
pub mod attack {
    use super::RX_BUF;
    use crate::frame::{crc16, STX};
    use crate::msg::MsgId;

    /// A CRC-valid Statustext frame whose declared length (`payload_len`)
    /// exceeds the receiver's 64-byte buffer. Bytes past the buffer are
    /// chosen to rewrite the adjacent motor block to `motor_cmd` and clear
    /// the failsafe flag — "take full control of a drone" (paper §I).
    ///
    /// # Panics
    ///
    /// Panics if `payload_len` is not in `(RX_BUF + 9) ..= 255` — too short
    /// to reach the actuator block or too long for the length field.
    pub fn oversized_statustext(payload_len: usize, motor_cmd: u16) -> Vec<u8> {
        assert!(
            payload_len > RX_BUF + 9 && payload_len <= 255,
            "payload must overrun into the 9-byte actuator block"
        );
        let mut payload = vec![0u8; payload_len];
        payload[0] = 6; // severity: Info (valid, to get past shallow checks)
        payload[1] = (payload_len - 2) as u8; // self-consistent text length
        for b in payload[2..RX_BUF].iter_mut() {
            *b = b'A';
        }
        // Bytes that land on the motor block after the overflow.
        for i in 0..4 {
            let le = motor_cmd.to_le_bytes();
            payload[RX_BUF + 2 * i] = le[0];
            payload[RX_BUF + 2 * i + 1] = le[1];
        }
        payload[RX_BUF + 8] = 0; // disarm the failsafe flag
        let mut wire = Vec::with_capacity(8 + payload_len);
        wire.push(STX);
        wire.push(payload_len as u8);
        wire.push(77); // seq
        wire.push(255); // sysid: a GCS id, as a spoofed sender would use
        wire.push(1);
        wire.push(MsgId::Statustext as u8);
        wire.extend_from_slice(&payload);
        let crc = crc16(&wire[1..], MsgId::Statustext.crc_extra());
        wire.extend_from_slice(&crc.to_le_bytes());
        wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Heartbeat, MavMode, MsgId};

    fn benign() -> Vec<u8> {
        MavFrame::encode(
            1,
            1,
            1,
            &Message::Heartbeat(Heartbeat {
                mode: MavMode::Hover,
                battery_pct: 90,
                armed: true,
            }),
        )
    }

    #[test]
    fn both_parsers_deliver_benign_traffic() {
        let wire = benign();
        let mut v = VulnerableParser::new();
        let mut c = CheriParser::new();
        assert!(v.handle(&wire).is_delivered());
        assert!(c.handle(&wire).is_delivered());
        assert_eq!(v.motors(), [MOTOR_IDLE; 4]);
        assert_eq!(c.motors(), [MOTOR_IDLE; 4]);
        assert!(v.alive() && c.alive());
        assert_eq!(v.delivered(), 1);
        assert_eq!(c.delivered(), 1);
    }

    #[test]
    fn attack_corrupts_flat_memory_silently() {
        let mut v = VulnerableParser::new();
        let wire = attack::oversized_statustext(90, 2000);
        let out = v.handle(&wire);
        // The frame may even validate — the copy already happened.
        assert!(!matches!(out, ParserOutcome::Faulted(_)));
        assert!(v.alive(), "flat memory: nothing crashes…");
        assert_eq!(v.motors(), [2000; 4], "…but the motors are overwritten");
        assert!(!v.failsafe_armed(), "and the failsafe flag is cleared");
        assert!(v.motors_corrupted());
    }

    #[test]
    fn attack_faults_the_cheri_compartment_and_nothing_else() {
        let mut c = CheriParser::new();
        let wire = attack::oversized_statustext(90, 2000);
        let out = c.handle(&wire);
        let ParserOutcome::Faulted(fault) = out else {
            panic!("expected a capability fault, got {out:?}");
        };
        assert!(
            format!("{fault}").to_lowercase().contains("bound"),
            "Fig. 3's out-of-bounds exception: {fault}"
        );
        assert!(!c.alive(), "the compartment is dead…");
        assert_eq!(c.motors(), [MOTOR_IDLE; 4], "…and the motors are intact");
        assert!(c.failsafe_armed());
        assert!(!c.motors_corrupted());
    }

    #[test]
    fn dead_compartment_drops_subsequent_frames() {
        let mut c = CheriParser::new();
        let _ = c.handle(&attack::oversized_statustext(90, 2000));
        let out = c.handle(&benign());
        assert!(!out.is_delivered());
        assert_eq!(c.delivered(), 0);
    }

    #[test]
    fn respawn_restores_service_with_actuators_untouched() {
        let mut c = CheriParser::new();
        assert!(c.handle(&benign()).is_delivered());
        let _ = c.handle(&attack::oversized_statustext(90, 2000));
        assert!(!c.alive());
        c.respawn();
        assert!(c.alive(), "compartment restarted");
        assert_eq!(c.faults_survived(), 1);
        assert!(c.fault().is_none(), "fault record cleared on respawn");
        assert!(c.handle(&benign()).is_delivered(), "telemetry resumes");
        assert_eq!(c.delivered(), 2);
        assert_eq!(c.motors(), [MOTOR_IDLE; 4], "motors never glitched");
        assert!(c.failsafe_armed());
    }

    #[test]
    fn respawn_survives_repeated_attacks() {
        // The CVE is a DoS; with fail-stop + restart each exploit costs one
        // compartment restart, never state. Ten attack waves:
        let mut c = CheriParser::new();
        for wave in 1..=10u64 {
            let _ = c.handle(&attack::oversized_statustext(100, 0xFFFF));
            assert!(!c.alive());
            c.respawn();
            assert_eq!(c.faults_survived(), wave);
            assert!(c.handle(&benign()).is_delivered());
        }
        assert_eq!(c.motors(), [MOTOR_IDLE; 4]);
        assert_eq!(c.delivered(), 10);
    }

    #[test]
    fn respawn_on_live_compartment_is_a_noop() {
        let mut c = CheriParser::new();
        assert!(c.handle(&benign()).is_delivered());
        c.respawn();
        assert_eq!(c.faults_survived(), 0);
        assert_eq!(c.delivered(), 1);
        assert!(c.alive());
    }

    #[test]
    fn attack_frame_is_crc_valid() {
        // The exploit is not a malformed frame — the safe decoder accepts
        // it as a (weird) Statustext. Only the *copy bound* is the bug.
        let wire = attack::oversized_statustext(100, 1500);
        let f = MavFrame::decode(&wire).expect("attack frame is well-formed");
        assert_eq!(f.payload.len(), 100);
    }

    #[test]
    fn short_overflow_that_stays_in_bounds_is_harmless_everywhere() {
        // A 64-byte payload exactly fills the buffer: legal for both.
        let mut payload = vec![0u8; RX_BUF];
        payload[0] = 6;
        payload[1] = (RX_BUF - 2) as u8;
        let wire = MavFrame::encode_raw(0, 1, 1, MsgId::Statustext as u8, &payload, 83);
        let mut v = VulnerableParser::new();
        let mut c = CheriParser::new();
        assert!(v.handle(&wire).is_delivered());
        assert!(c.handle(&wire).is_delivered());
        assert!(!v.motors_corrupted());
        assert!(!c.motors_corrupted());
    }

    #[test]
    #[should_panic(expected = "overrun")]
    fn attack_builder_rejects_in_bounds_payloads() {
        let _ = attack::oversized_statustext(64, 2000);
    }
}
