//! # mavsim — a MAVLink-style telemetry protocol and the CVE it invites
//!
//! The paper motivates compartmentalization with concrete network-stack
//! CVEs (§I): *"CVE-2024-38951 leverages unchecked buffer limits to mount a
//! Denial-of-Service attack on the MAVLink protocol of PX4"*, and *"a buffer
//! overflow in the network stack could allow an attacker to take full
//! control of a drone."* This crate makes that motivation executable:
//!
//! * [`frame`] — MAVLink-v1-style framing (STX, length, sequence, system /
//!   component ids, message id, CRC-16/MCRF4XX with per-message CRC extra);
//! * [`msg`] — the handful of messages a small UAV telemetry link uses
//!   (heartbeat, attitude, GPS, command, parameter write, status text);
//! * [`parser`] — two receive-path implementations of the same ground
//!   station deserializer:
//!   [`parser::VulnerableParser`] copies payloads using the
//!   *attacker-controlled* length field into a fixed buffer — the CVE's
//!   unchecked-buffer-limit pattern — while
//!   [`parser::CheriParser`] holds the same buffer through a
//!   bounds-restricted [`cheri::Capability`], so the same attack raises a
//!   capability fault instead of corrupting adjacent state.
//!
//! The workspace-level example `mavlink_attack` and the `mavlink_attack`
//! integration tests run the full exploit over the simulated UDP stack:
//! baseline memory silently corrupts the autopilot's actuator commands;
//! the CHERI compartment dies with the paper's Fig. 3 out-of-bounds
//! exception while the rest of the system keeps operating.
//!
//! ## Example
//!
//! ```
//! use mavsim::frame::MavFrame;
//! use mavsim::msg::{Heartbeat, Message, MavMode};
//!
//! # fn main() -> Result<(), mavsim::MavError> {
//! let hb = Heartbeat { mode: MavMode::Hover, battery_pct: 87, armed: true };
//! let wire = MavFrame::encode(7, 1, 1, &Message::Heartbeat(hb));
//! let frame = MavFrame::decode(&wire)?;
//! assert_eq!(frame.seq, 7);
//! assert!(matches!(frame.message()?, Message::Heartbeat(h) if h.battery_pct == 87));
//! # Ok(())
//! # }
//! ```

pub mod frame;
pub mod gcs;
pub mod msg;
pub mod parser;

pub use frame::{MavFrame, FRAME_OVERHEAD, MAX_PAYLOAD, STX};
pub use gcs::{GroundControl, VehicleState};
pub use msg::{Message, MsgId};
pub use parser::{CheriParser, GroundStation, ParserOutcome, VulnerableParser};

/// Errors of the mavsim protocol layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MavError {
    /// The buffer does not start with [`STX`].
    BadMagic,
    /// Fewer bytes than the header + declared payload + CRC require.
    Truncated,
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized,
    /// CRC-16 mismatch (includes the per-message CRC extra).
    BadCrc,
    /// Unknown message id.
    UnknownMsg(u8),
    /// Payload length does not match the message's wire size.
    BadLength,
}

impl std::fmt::Display for MavError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MavError::BadMagic => write!(f, "frame does not start with STX"),
            MavError::Truncated => write!(f, "frame shorter than its declared length"),
            MavError::Oversized => write!(f, "declared payload exceeds the maximum"),
            MavError::BadCrc => write!(f, "checksum mismatch"),
            MavError::UnknownMsg(id) => write!(f, "unknown message id {id}"),
            MavError::BadLength => write!(f, "payload length wrong for message type"),
        }
    }
}

impl std::error::Error for MavError {}
