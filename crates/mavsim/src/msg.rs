//! The message vocabulary of a small UAV telemetry link.
//!
//! Six messages cover the traffic classes the paper's drone scenario needs:
//! liveness ([`Heartbeat`]), state streaming ([`Attitude`], [`GpsRaw`]),
//! command & control ([`CommandLong`]), configuration ([`ParamSet`]) and
//! diagnostics ([`Statustext`]). Every message has a fixed wire size except
//! `Statustext`, whose text field is length-prefixed — the variable-length
//! message is deliberate: it is the shape of payload the CVE's unchecked
//! `memcpy` pattern mishandles.

use crate::MavError;

/// Message ids (a compact subset of common.xml).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgId {
    /// Liveness + mode + battery.
    Heartbeat = 0,
    /// Roll/pitch/yaw attitude state.
    Attitude = 30,
    /// Raw GPS fix.
    GpsRaw = 24,
    /// A command with seven float parameters (arm, takeoff, …).
    CommandLong = 76,
    /// Write one named parameter.
    ParamSet = 23,
    /// Free-text status (severity + length-prefixed text).
    Statustext = 253,
}

impl MsgId {
    /// The per-message CRC seed byte (MAVLink's `CRC_EXTRA`), binding the
    /// schema version into the frame checksum.
    pub fn crc_extra(self) -> u8 {
        match self {
            MsgId::Heartbeat => 50,
            MsgId::Attitude => 39,
            MsgId::GpsRaw => 24,
            MsgId::CommandLong => 152,
            MsgId::ParamSet => 168,
            MsgId::Statustext => 83,
        }
    }

    /// The fixed payload size, or `None` for variable-length messages.
    pub fn wire_size(self) -> Option<usize> {
        match self {
            MsgId::Heartbeat => Some(3),
            MsgId::Attitude => Some(12),
            MsgId::GpsRaw => Some(13),
            MsgId::CommandLong => Some(30),
            MsgId::ParamSet => Some(20),
            MsgId::Statustext => None,
        }
    }
}

impl TryFrom<u8> for MsgId {
    type Error = MavError;

    fn try_from(v: u8) -> Result<MsgId, MavError> {
        Ok(match v {
            0 => MsgId::Heartbeat,
            30 => MsgId::Attitude,
            24 => MsgId::GpsRaw,
            76 => MsgId::CommandLong,
            23 => MsgId::ParamSet,
            253 => MsgId::Statustext,
            other => return Err(MavError::UnknownMsg(other)),
        })
    }
}

/// Flight mode reported in the heartbeat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MavMode {
    /// On the ground, motors idle.
    #[default]
    Standby = 0,
    /// Position-holding hover.
    Hover = 1,
    /// Autonomous mission.
    Auto = 2,
    /// Returning to launch.
    Rtl = 3,
}

impl TryFrom<u8> for MavMode {
    type Error = MavError;

    fn try_from(v: u8) -> Result<MavMode, MavError> {
        Ok(match v {
            0 => MavMode::Standby,
            1 => MavMode::Hover,
            2 => MavMode::Auto,
            3 => MavMode::Rtl,
            _ => return Err(MavError::BadLength),
        })
    }
}

/// Liveness beacon: mode, battery, armed flag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Heartbeat {
    /// Current flight mode.
    pub mode: MavMode,
    /// Battery percentage `0..=100`.
    pub battery_pct: u8,
    /// Motors armed.
    pub armed: bool,
}

/// Attitude state in milliradians (integer encoding keeps the wire format
/// exact for round-trip tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attitude {
    /// Roll, mrad.
    pub roll_mrad: i32,
    /// Pitch, mrad.
    pub pitch_mrad: i32,
    /// Yaw, mrad.
    pub yaw_mrad: i32,
}

/// Raw GPS fix (scaled integers, as MAVLink sends them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpsRaw {
    /// Latitude, degrees × 1e7.
    pub lat_e7: i32,
    /// Longitude, degrees × 1e7.
    pub lon_e7: i32,
    /// Altitude above MSL, millimetres.
    pub alt_mm: i32,
    /// Number of visible satellites.
    pub sats: u8,
}

/// A command with up to seven parameters (MAV_CMD semantics).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommandLong {
    /// Command id (e.g. 400 = arm/disarm).
    pub command: u16,
    /// The seven float parameters.
    pub params: [f32; 7],
}

/// Write one named parameter on the vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamSet {
    /// Parameter name, NUL-padded to 16 bytes.
    pub name: [u8; 16],
    /// New value.
    pub value: f32,
}

impl Default for ParamSet {
    fn default() -> Self {
        ParamSet {
            name: [0; 16],
            value: 0.0,
        }
    }
}

impl ParamSet {
    /// Builds a parameter write from a short name.
    ///
    /// # Panics
    ///
    /// Panics if `name` exceeds 16 bytes.
    pub fn named(name: &str, value: f32) -> Self {
        assert!(name.len() <= 16, "parameter names are at most 16 bytes");
        let mut buf = [0u8; 16];
        buf[..name.len()].copy_from_slice(name.as_bytes());
        ParamSet { name: buf, value }
    }
}

/// Severity of a [`Statustext`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Severity {
    /// Informational.
    #[default]
    Info = 6,
    /// Something degraded.
    Warning = 4,
    /// Operator action required.
    Critical = 2,
}

impl TryFrom<u8> for Severity {
    type Error = MavError;

    fn try_from(v: u8) -> Result<Severity, MavError> {
        Ok(match v {
            6 => Severity::Info,
            4 => Severity::Warning,
            2 => Severity::Critical,
            _ => return Err(MavError::BadLength),
        })
    }
}

/// Free-text status: severity byte + length-prefixed text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Statustext {
    /// Message severity.
    pub severity: Severity,
    /// The text (at most 253 bytes on the wire).
    pub text: Vec<u8>,
}

/// One telemetry message, typed.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Liveness beacon.
    Heartbeat(Heartbeat),
    /// Attitude state.
    Attitude(Attitude),
    /// GPS fix.
    GpsRaw(GpsRaw),
    /// Command & control.
    CommandLong(CommandLong),
    /// Parameter write.
    ParamSet(ParamSet),
    /// Status text.
    Statustext(Statustext),
}

impl Message {
    /// The message id of this variant.
    pub fn id(&self) -> MsgId {
        match self {
            Message::Heartbeat(_) => MsgId::Heartbeat,
            Message::Attitude(_) => MsgId::Attitude,
            Message::GpsRaw(_) => MsgId::GpsRaw,
            Message::CommandLong(_) => MsgId::CommandLong,
            Message::ParamSet(_) => MsgId::ParamSet,
            Message::Statustext(_) => MsgId::Statustext,
        }
    }

    /// Serializes the payload (header/CRC added by [`crate::MavFrame`]).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Heartbeat(h) => {
                vec![h.mode as u8, h.battery_pct, u8::from(h.armed)]
            }
            Message::Attitude(a) => {
                let mut v = Vec::with_capacity(12);
                v.extend_from_slice(&a.roll_mrad.to_le_bytes());
                v.extend_from_slice(&a.pitch_mrad.to_le_bytes());
                v.extend_from_slice(&a.yaw_mrad.to_le_bytes());
                v
            }
            Message::GpsRaw(g) => {
                let mut v = Vec::with_capacity(13);
                v.extend_from_slice(&g.lat_e7.to_le_bytes());
                v.extend_from_slice(&g.lon_e7.to_le_bytes());
                v.extend_from_slice(&g.alt_mm.to_le_bytes());
                v.push(g.sats);
                v
            }
            Message::CommandLong(c) => {
                let mut v = Vec::with_capacity(30);
                v.extend_from_slice(&c.command.to_le_bytes());
                for p in &c.params {
                    v.extend_from_slice(&p.to_le_bytes());
                }
                v
            }
            Message::ParamSet(p) => {
                let mut v = Vec::with_capacity(20);
                v.extend_from_slice(&p.name);
                v.extend_from_slice(&p.value.to_le_bytes());
                v
            }
            Message::Statustext(s) => {
                let mut v = Vec::with_capacity(2 + s.text.len());
                v.push(s.severity as u8);
                v.push(s.text.len().min(253) as u8);
                v.extend_from_slice(&s.text[..s.text.len().min(253)]);
                v
            }
        }
    }

    /// Deserializes a payload of message id `msgid`.
    ///
    /// # Errors
    ///
    /// [`MavError::UnknownMsg`] for unassigned ids, [`MavError::BadLength`]
    /// when the payload does not fit the schema.
    pub fn decode(msgid: u8, p: &[u8]) -> Result<Message, MavError> {
        let id = MsgId::try_from(msgid)?;
        if let Some(want) = id.wire_size() {
            if p.len() != want {
                return Err(MavError::BadLength);
            }
        }
        let le_i32 = |b: &[u8]| i32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        let le_f32 = |b: &[u8]| f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        Ok(match id {
            MsgId::Heartbeat => Message::Heartbeat(Heartbeat {
                mode: MavMode::try_from(p[0])?,
                battery_pct: p[1],
                armed: p[2] != 0,
            }),
            MsgId::Attitude => Message::Attitude(Attitude {
                roll_mrad: le_i32(&p[0..4]),
                pitch_mrad: le_i32(&p[4..8]),
                yaw_mrad: le_i32(&p[8..12]),
            }),
            MsgId::GpsRaw => Message::GpsRaw(GpsRaw {
                lat_e7: le_i32(&p[0..4]),
                lon_e7: le_i32(&p[4..8]),
                alt_mm: le_i32(&p[8..12]),
                sats: p[12],
            }),
            MsgId::CommandLong => {
                let mut params = [0.0f32; 7];
                for (i, q) in params.iter_mut().enumerate() {
                    *q = le_f32(&p[2 + 4 * i..6 + 4 * i]);
                }
                Message::CommandLong(CommandLong {
                    command: u16::from_le_bytes([p[0], p[1]]),
                    params,
                })
            }
            MsgId::ParamSet => {
                let mut name = [0u8; 16];
                name.copy_from_slice(&p[0..16]);
                Message::ParamSet(ParamSet {
                    name,
                    value: le_f32(&p[16..20]),
                })
            }
            MsgId::Statustext => {
                if p.len() < 2 {
                    return Err(MavError::BadLength);
                }
                let severity = Severity::try_from(p[0])?;
                let text_len = p[1] as usize;
                if p.len() != 2 + text_len {
                    return Err(MavError::BadLength);
                }
                Message::Statustext(Statustext {
                    severity,
                    text: p[2..].to_vec(),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: Message) {
        let wire = m.encode();
        let back = Message::decode(m.id() as u8, &wire).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn all_messages_round_trip() {
        round_trip(Message::Heartbeat(Heartbeat {
            mode: MavMode::Rtl,
            battery_pct: 31,
            armed: true,
        }));
        round_trip(Message::Attitude(Attitude {
            roll_mrad: -314,
            pitch_mrad: 1_571,
            yaw_mrad: 2_000_000,
        }));
        round_trip(Message::GpsRaw(GpsRaw {
            lat_e7: 447_112_280,
            lon_e7: 108_844_170,
            alt_mm: 42_000,
            sats: 11,
        }));
        round_trip(Message::CommandLong(CommandLong {
            command: 400,
            params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 21196.0],
        }));
        round_trip(Message::ParamSet(ParamSet::named("MPC_XY_VEL_MAX", 12.5)));
        round_trip(Message::Statustext(Statustext {
            severity: Severity::Warning,
            text: b"low battery".to_vec(),
        }));
    }

    #[test]
    fn wire_sizes_match_schema() {
        assert_eq!(
            Message::Heartbeat(Heartbeat::default()).encode().len(),
            MsgId::Heartbeat.wire_size().unwrap()
        );
        assert_eq!(
            Message::Attitude(Attitude::default()).encode().len(),
            MsgId::Attitude.wire_size().unwrap()
        );
        assert_eq!(
            Message::GpsRaw(GpsRaw::default()).encode().len(),
            MsgId::GpsRaw.wire_size().unwrap()
        );
        assert_eq!(
            Message::CommandLong(CommandLong::default()).encode().len(),
            MsgId::CommandLong.wire_size().unwrap()
        );
        assert_eq!(
            Message::ParamSet(ParamSet::default()).encode().len(),
            MsgId::ParamSet.wire_size().unwrap()
        );
        assert!(MsgId::Statustext.wire_size().is_none());
    }

    #[test]
    fn wrong_length_payloads_are_rejected() {
        assert_eq!(
            Message::decode(MsgId::Heartbeat as u8, &[0; 4]),
            Err(MavError::BadLength)
        );
        assert_eq!(
            Message::decode(MsgId::Attitude as u8, &[0; 11]),
            Err(MavError::BadLength)
        );
        assert_eq!(Message::decode(99, &[]), Err(MavError::UnknownMsg(99)));
    }

    #[test]
    fn statustext_length_prefix_is_enforced() {
        // Declared text length longer than the actual bytes → reject.
        let bad = [Severity::Info as u8, 10, b'h', b'i'];
        assert_eq!(
            Message::decode(MsgId::Statustext as u8, &bad),
            Err(MavError::BadLength)
        );
    }

    #[test]
    fn statustext_truncates_oversized_text_on_encode() {
        let m = Message::Statustext(Statustext {
            severity: Severity::Info,
            text: vec![b'x'; 300],
        });
        let wire = m.encode();
        assert_eq!(wire.len(), 2 + 253);
        assert_eq!(wire[1], 253);
    }

    #[test]
    fn param_names_pad_with_nul() {
        let p = ParamSet::named("BAT_LOW", 21.0);
        assert_eq!(&p.name[..7], b"BAT_LOW");
        assert!(p.name[7..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "at most 16")]
    fn oversized_param_names_panic() {
        let _ = ParamSet::named("A_VERY_LONG_PARAMETER_NAME", 0.0);
    }
}
