//! The consuming side of the telemetry link: a ground-control station
//! that folds the message stream into vehicle state and supervises link
//! health.
//!
//! This is the component the paper's drone scenario ultimately protects:
//! the operator's view of the vehicle. [`GroundControl`] tracks the last
//! known mode/battery/attitude/position, a bounded status-text log, the
//! parameter mirror, and — through the sequence tracker plus a staleness
//! watchdog — whether the link itself can still be trusted. When the
//! vehicle goes quiet past the configured timeout, the station recommends
//! failsafe (return-to-launch), the standard MAVLink GCS behavior.

use crate::frame::{MavFrame, SeqTracker};
use crate::msg::{Attitude, GpsRaw, MavMode, Message, Severity};
use crate::MavError;
use std::collections::HashMap;

/// Nanosecond timestamp type used by the station (virtual or wall time —
/// the station only compares differences).
pub type Nanos = u64;

/// The operator-facing vehicle state, folded from telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VehicleState {
    /// Last reported flight mode.
    pub mode: MavMode,
    /// Last reported battery percentage.
    pub battery_pct: u8,
    /// Last reported armed flag.
    pub armed: bool,
    /// Last attitude sample.
    pub attitude: Attitude,
    /// Last GPS fix.
    pub gps: GpsRaw,
}

/// One retained status-text line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusLine {
    /// Reported severity.
    pub severity: Severity,
    /// The text (lossy UTF-8).
    pub text: String,
    /// Arrival timestamp.
    pub at: Nanos,
}

/// A ground-control station folding telemetry into state.
///
/// # Example
///
/// ```
/// use mavsim::gcs::GroundControl;
/// use mavsim::frame::MavFrame;
/// use mavsim::msg::{Heartbeat, MavMode, Message};
///
/// let mut gcs = GroundControl::new(2_000_000_000); // 2 s link timeout
/// let hb = Message::Heartbeat(Heartbeat { mode: MavMode::Auto, battery_pct: 77, armed: true });
/// gcs.observe(1_000, &MavFrame::encode(0, 1, 1, &hb)).unwrap();
/// assert_eq!(gcs.state().battery_pct, 77);
/// assert!(!gcs.link_stale(500_000_000));
/// assert!(gcs.link_stale(3_000_000_000));
/// ```
#[derive(Debug, Clone)]
pub struct GroundControl {
    state: VehicleState,
    seq: SeqTracker,
    params: HashMap<String, f32>,
    status_log: Vec<StatusLine>,
    last_heard: Option<Nanos>,
    link_timeout: Nanos,
    frames_ok: u64,
    frames_bad: u64,
}

/// Retained status-text lines (older ones are dropped).
const STATUS_LOG_CAP: usize = 64;

impl GroundControl {
    /// A station that declares the link stale after `link_timeout` ns of
    /// silence.
    pub fn new(link_timeout: Nanos) -> Self {
        GroundControl {
            state: VehicleState::default(),
            seq: SeqTracker::new(),
            params: HashMap::new(),
            status_log: Vec::new(),
            last_heard: None,
            link_timeout,
            frames_ok: 0,
            frames_bad: 0,
        }
    }

    /// Feeds one wire frame received at `at`.
    ///
    /// # Errors
    ///
    /// Protocol errors ([`MavError`]) for frames that fail validation;
    /// the station's counters record them, its state is untouched.
    pub fn observe(&mut self, at: Nanos, wire: &[u8]) -> Result<(), MavError> {
        let frame = match MavFrame::decode(wire) {
            Ok(f) => f,
            Err(e) => {
                self.frames_bad += 1;
                return Err(e);
            }
        };
        let msg = match frame.message() {
            Ok(m) => m,
            Err(e) => {
                self.frames_bad += 1;
                return Err(e);
            }
        };
        self.frames_ok += 1;
        self.seq.observe(frame.seq);
        self.last_heard = Some(at);
        match msg {
            Message::Heartbeat(h) => {
                self.state.mode = h.mode;
                self.state.battery_pct = h.battery_pct;
                self.state.armed = h.armed;
            }
            Message::Attitude(a) => self.state.attitude = a,
            Message::GpsRaw(g) => self.state.gps = g,
            Message::ParamSet(p) => {
                let name = String::from_utf8_lossy(
                    &p.name[..p.name.iter().position(|&b| b == 0).unwrap_or(16)],
                )
                .into_owned();
                self.params.insert(name, p.value);
            }
            Message::Statustext(s) => {
                if self.status_log.len() == STATUS_LOG_CAP {
                    self.status_log.remove(0);
                }
                self.status_log.push(StatusLine {
                    severity: s.severity,
                    text: String::from_utf8_lossy(&s.text).into_owned(),
                    at,
                });
            }
            Message::CommandLong(_) => {
                // Commands flow operator → vehicle; one arriving here is
                // legal traffic (e.g. another GCS) but carries no state.
            }
        }
        Ok(())
    }

    /// The folded vehicle state.
    pub fn state(&self) -> &VehicleState {
        &self.state
    }

    /// Mirror of parameters written over the link.
    pub fn param(&self, name: &str) -> Option<f32> {
        self.params.get(name).copied()
    }

    /// The retained status lines, oldest first.
    pub fn status_log(&self) -> &[StatusLine] {
        &self.status_log
    }

    /// Link quality from sequence accounting, `0.0..=1.0`.
    pub fn link_quality(&self) -> f64 {
        self.seq.quality()
    }

    /// `(valid frames, rejected frames)` counters.
    pub fn frame_counts(&self) -> (u64, u64) {
        (self.frames_ok, self.frames_bad)
    }

    /// `true` when nothing valid has been heard for longer than the
    /// configured timeout (or ever).
    pub fn link_stale(&self, now: Nanos) -> bool {
        match self.last_heard {
            None => true,
            Some(t) => now.saturating_sub(t) > self.link_timeout,
        }
    }

    /// Whether the station should command failsafe: the link is stale
    /// while the vehicle was last seen armed — the operator can no longer
    /// intervene, so the vehicle must come home on its own.
    pub fn failsafe_recommended(&self, now: Nanos) -> bool {
        self.state.armed && self.link_stale(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{CommandLong, Heartbeat, ParamSet, Statustext};

    fn hb(seq: u8, battery: u8, armed: bool) -> Vec<u8> {
        MavFrame::encode(
            seq,
            1,
            1,
            &Message::Heartbeat(Heartbeat {
                mode: MavMode::Hover,
                battery_pct: battery,
                armed,
            }),
        )
    }

    #[test]
    fn state_folds_from_the_stream() {
        let mut g = GroundControl::new(1_000_000);
        g.observe(10, &hb(0, 90, true)).unwrap();
        g.observe(
            20,
            &MavFrame::encode(
                1,
                1,
                1,
                &Message::Attitude(Attitude {
                    roll_mrad: 5,
                    pitch_mrad: -7,
                    yaw_mrad: 314,
                }),
            ),
        )
        .unwrap();
        g.observe(
            30,
            &MavFrame::encode(
                2,
                1,
                1,
                &Message::GpsRaw(GpsRaw {
                    lat_e7: 447_000_000,
                    lon_e7: 108_000_000,
                    alt_mm: 120_000,
                    sats: 9,
                }),
            ),
        )
        .unwrap();
        assert_eq!(g.state().battery_pct, 90);
        assert!(g.state().armed);
        assert_eq!(g.state().attitude.yaw_mrad, 314);
        assert_eq!(g.state().gps.sats, 9);
        assert_eq!(g.frame_counts(), (3, 0));
        assert!((g.link_quality() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn params_and_status_are_retained() {
        let mut g = GroundControl::new(1_000_000);
        g.observe(
            1,
            &MavFrame::encode(
                0,
                1,
                1,
                &Message::ParamSet(ParamSet::named("BAT_LOW", 21.5)),
            ),
        )
        .unwrap();
        g.observe(
            2,
            &MavFrame::encode(
                1,
                1,
                1,
                &Message::Statustext(Statustext {
                    severity: Severity::Warning,
                    text: b"low battery".to_vec(),
                }),
            ),
        )
        .unwrap();
        assert_eq!(g.param("BAT_LOW"), Some(21.5));
        assert_eq!(g.param("MISSING"), None);
        assert_eq!(g.status_log().len(), 1);
        assert_eq!(g.status_log()[0].text, "low battery");
        assert_eq!(g.status_log()[0].severity, Severity::Warning);
    }

    #[test]
    fn status_log_is_bounded() {
        let mut g = GroundControl::new(1_000_000);
        for i in 0..(STATUS_LOG_CAP as u64 + 40) {
            g.observe(
                i,
                &MavFrame::encode(
                    i as u8,
                    1,
                    1,
                    &Message::Statustext(Statustext {
                        severity: Severity::Info,
                        text: format!("line {i}").into_bytes(),
                    }),
                ),
            )
            .unwrap();
        }
        assert_eq!(g.status_log().len(), STATUS_LOG_CAP);
        assert_eq!(g.status_log()[0].text, "line 40", "oldest dropped");
    }

    #[test]
    fn staleness_and_failsafe() {
        let mut g = GroundControl::new(1_000);
        assert!(g.link_stale(0), "never heard = stale");
        assert!(
            !g.failsafe_recommended(0),
            "but a disarmed vehicle needs none"
        );
        g.observe(100, &hb(0, 88, true)).unwrap();
        assert!(!g.link_stale(900));
        assert!(g.link_stale(1_200));
        assert!(g.failsafe_recommended(1_200), "armed + stale = come home");
        // A disarm before silence cancels the recommendation.
        g.observe(1_300, &hb(1, 88, false)).unwrap();
        assert!(!g.failsafe_recommended(999_999));
    }

    #[test]
    fn bad_frames_count_but_do_not_poison_state() {
        let mut g = GroundControl::new(1_000_000);
        g.observe(1, &hb(0, 66, true)).unwrap();
        let mut corrupt = hb(1, 11, false);
        corrupt[8] ^= 0xFF;
        assert!(g.observe(2, &corrupt).is_err());
        assert_eq!(g.state().battery_pct, 66, "state unchanged by bad frame");
        assert_eq!(g.frame_counts(), (1, 1));
    }

    #[test]
    fn commands_are_accepted_but_stateless() {
        let mut g = GroundControl::new(1_000_000);
        g.observe(
            1,
            &MavFrame::encode(
                0,
                255,
                190,
                &Message::CommandLong(CommandLong {
                    command: 400,
                    params: [1.0; 7],
                }),
            ),
        )
        .unwrap();
        assert_eq!(g.state(), &VehicleState::default());
        assert_eq!(g.frame_counts(), (1, 0));
    }
}
