//! Fuzz suite for the MAVLink wire format and the hardened parser: no
//! byte sequence — random, truncated, or a valid frame with seeded
//! mutations — may panic the safe decoder or the CHERI-hardened ground
//! station. Valid frames round-trip; corrupt ones land in a precise
//! [`MavError`].

use mavsim::frame::{MavFrame, FRAME_OVERHEAD, STX};
use mavsim::msg::{Heartbeat, MavMode, Message};
use mavsim::parser::{CheriParser, GroundStation, ParserOutcome};
use proptest::prelude::*;

fn heartbeat(seq: u8) -> Vec<u8> {
    MavFrame::encode(
        seq,
        1,
        1,
        &Message::Heartbeat(Heartbeat {
            mode: MavMode::Auto,
            battery_pct: 100,
            armed: true,
        }),
    )
}

proptest! {
    /// Arbitrary bytes through the safe decoder: an error, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = MavFrame::decode(&bytes);
    }

    /// Arbitrary bytes with a forced magic byte — exercises the length /
    /// CRC / msgid paths behind the STX check.
    #[test]
    fn framed_garbage_never_panics_the_decoder(
        mut bytes in proptest::collection::vec(any::<u8>(), 1..300),
    ) {
        bytes[0] = STX;
        let _ = MavFrame::decode(&bytes);
    }

    /// A valid frame with seeded mutations: decodes or errors, never
    /// panics; an untouched frame still round-trips afterwards.
    #[test]
    fn mutated_frames_never_panic(
        seq in any::<u8>(),
        mutations in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let mut wire = heartbeat(seq);
        for (pos, val) in mutations {
            let i = pos as usize % wire.len();
            wire[i] = val;
        }
        let _ = MavFrame::decode(&wire);
    }

    /// Every truncation point of a valid frame is a clean
    /// [`mavsim::frame::MavError::Truncated`]-or-magic error.
    #[test]
    fn truncated_frames_never_panic(seq in any::<u8>(), cut in any::<u16>()) {
        let wire = heartbeat(seq);
        let cut = cut as usize % wire.len();
        prop_assert!(MavFrame::decode(&wire[..cut]).is_err());
    }

    /// Valid frames round-trip through encode/decode.
    #[test]
    fn valid_frames_round_trip(
        seq in any::<u8>(),
        sysid in any::<u8>(),
        compid in any::<u8>(),
        battery in 0u8..=100,
        armed in any::<bool>(),
    ) {
        let msg = Message::Heartbeat(Heartbeat {
            mode: MavMode::Hover,
            battery_pct: battery,
            armed,
        });
        let wire = MavFrame::encode(seq, sysid, compid, &msg);
        let frame = MavFrame::decode(&wire).expect("valid frame decodes");
        prop_assert_eq!(frame.seq, seq);
        prop_assert_eq!(frame.sysid, sysid);
        prop_assert_eq!(frame.compid, compid);
        prop_assert_eq!(frame.message().expect("payload decodes"), msg);
    }

    /// The CHERI-hardened ground station survives arbitrary wire input —
    /// any capability fault is caught (counted, respawned), never a
    /// panic, and the failsafe stays armed.
    #[test]
    fn hardened_parser_survives_arbitrary_input(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..(FRAME_OVERHEAD + 260)),
            1..12,
        ),
    ) {
        let mut gs = CheriParser::new();
        for wire in &frames {
            let out = gs.handle(wire);
            if matches!(out, ParserOutcome::Faulted(_)) {
                gs.respawn();
            }
        }
        prop_assert!(gs.failsafe_armed(), "no input may disarm the failsafe");
        // Still functional: a legitimate heartbeat is delivered.
        prop_assert!(gs.handle(&heartbeat(0)).is_delivered());
    }
}
