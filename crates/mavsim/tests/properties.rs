//! Property-based tests for the mavsim protocol and the two parsers.

use mavsim::frame::{MavFrame, SeqTracker};
use mavsim::msg::{
    Attitude, CommandLong, GpsRaw, Heartbeat, MavMode, Message, ParamSet, Severity, Statustext,
};
use mavsim::parser::{
    attack, CheriParser, GroundStation, ParserOutcome, VulnerableParser, MOTOR_IDLE,
};
use proptest::prelude::*;

fn arb_mode() -> impl Strategy<Value = MavMode> {
    prop_oneof![
        Just(MavMode::Standby),
        Just(MavMode::Hover),
        Just(MavMode::Auto),
        Just(MavMode::Rtl),
    ]
}

fn arb_severity() -> impl Strategy<Value = Severity> {
    prop_oneof![
        Just(Severity::Info),
        Just(Severity::Warning),
        Just(Severity::Critical),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (arb_mode(), 0u8..=100, any::<bool>()).prop_map(|(mode, battery_pct, armed)| {
            Message::Heartbeat(Heartbeat {
                mode,
                battery_pct,
                armed,
            })
        }),
        (any::<i32>(), any::<i32>(), any::<i32>()).prop_map(|(r, p, y)| {
            Message::Attitude(Attitude {
                roll_mrad: r,
                pitch_mrad: p,
                yaw_mrad: y,
            })
        }),
        (any::<i32>(), any::<i32>(), any::<i32>(), any::<u8>()).prop_map(
            |(lat, lon, alt, sats)| {
                Message::GpsRaw(GpsRaw {
                    lat_e7: lat,
                    lon_e7: lon,
                    alt_mm: alt,
                    sats,
                })
            }
        ),
        (any::<u16>(), proptest::array::uniform7(any::<f32>())).prop_map(|(command, params)| {
            Message::CommandLong(CommandLong { command, params })
        }),
        ("[A-Z_]{1,16}", any::<f32>())
            .prop_map(|(name, value)| Message::ParamSet(ParamSet::named(&name, value))),
        (
            arb_severity(),
            proptest::collection::vec(any::<u8>(), 0..200)
        )
            .prop_map(|(severity, text)| Message::Statustext(Statustext { severity, text })),
    ]
}

proptest! {
    /// Encode → decode is the identity for every message (NaN-free floats;
    /// NaN breaks PartialEq, not the codec).
    #[test]
    fn frames_round_trip(m in arb_message(), seq: u8, sysid: u8, compid: u8) {
        prop_assume!(match &m {
            Message::CommandLong(c) => c.params.iter().all(|p| !p.is_nan()),
            Message::ParamSet(p) => !p.value.is_nan(),
            _ => true,
        });
        let wire = MavFrame::encode(seq, sysid, compid, &m);
        let f = MavFrame::decode(&wire).unwrap();
        prop_assert_eq!(f.seq, seq);
        prop_assert_eq!(f.sysid, sysid);
        prop_assert_eq!(f.compid, compid);
        prop_assert_eq!(f.message().unwrap(), m);
    }

    /// The safe decoder never panics, whatever bytes arrive.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = MavFrame::decode(&bytes);
    }

    /// Neither parser panics on arbitrary input, and the CHERI parser's
    /// actuator block survives arbitrary input unchanged.
    #[test]
    fn parsers_survive_fuzz(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut v = VulnerableParser::new();
        let _ = v.handle(&bytes);
        let mut c = CheriParser::new();
        let _ = c.handle(&bytes);
        prop_assert_eq!(c.motors(), [MOTOR_IDLE; 4], "CHERI actuators are inviolable");
    }

    /// The attack succeeds against flat memory and is contained by CHERI,
    /// for every overflow length and payload value.
    #[test]
    fn attack_outcome_is_universal(extra in 74usize..=255, cmd in 1001u16..u16::MAX) {
        let wire = attack::oversized_statustext(extra, cmd);
        let mut v = VulnerableParser::new();
        let _ = v.handle(&wire);
        prop_assert!(v.motors_corrupted(), "flat memory always corrupted");
        prop_assert_eq!(v.motors(), [cmd; 4]);

        let mut c = CheriParser::new();
        let out = c.handle(&wire);
        prop_assert!(matches!(out, ParserOutcome::Faulted(_)), "CHERI always faults");
        prop_assert!(!c.motors_corrupted(), "CHERI actuators always intact");
    }

    /// Benign traffic behaves identically through both parsers.
    #[test]
    fn benign_equivalence(m in arb_message(), seq: u8) {
        prop_assume!(match &m {
            Message::CommandLong(c) => c.params.iter().all(|p| !p.is_nan()),
            Message::ParamSet(p) => !p.value.is_nan(),
            _ => true,
        });
        // Keep payloads inside the 64-byte RX buffer — the legitimate
        // traffic class both receive paths must agree on.
        prop_assume!(m.encode().len() <= 64);
        let wire = MavFrame::encode(seq, 1, 1, &m);
        let mut v = VulnerableParser::new();
        let mut c = CheriParser::new();
        let rv = v.handle(&wire);
        let rc = c.handle(&wire);
        prop_assert_eq!(rv, rc);
        prop_assert!(!v.motors_corrupted());
        prop_assert!(!c.motors_corrupted());
    }

    /// The sequence tracker's quality is always in [0, 1] and total
    /// accounting is consistent.
    #[test]
    fn seq_tracker_accounting(seqs in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut t = SeqTracker::new();
        for s in &seqs {
            t.observe(*s);
        }
        prop_assert_eq!(t.received, seqs.len() as u64);
        let q = t.quality();
        prop_assert!((0.0..=1.0).contains(&q));
    }
}

mod gcs_properties {
    use super::{arb_message, Message};
    use mavsim::frame::MavFrame;
    use mavsim::gcs::GroundControl;
    use proptest::prelude::*;

    proptest! {
        /// The ground station never panics and its counters are consistent
        /// over any mix of valid frames and garbage.
        #[test]
        fn gcs_accounting_is_total(
            stream in proptest::collection::vec(
                prop_oneof![
                    arb_message().prop_map(Some),
                    proptest::collection::vec(any::<u8>(), 0..64).prop_map(|_| None),
                ],
                0..64,
            ),
            garbage in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut g = GroundControl::new(1_000_000);
            let mut sent_ok = 0u64;
            let mut sent_junk = 0u64;
            for (i, item) in stream.iter().enumerate() {
                match item {
                    Some(m) => {
                        prop_assume!(match m {
                            Message::CommandLong(c) => c.params.iter().all(|p| !p.is_nan()),
                            Message::ParamSet(p) => !p.value.is_nan(),
                            _ => true,
                        });
                        let wire = MavFrame::encode(i as u8, 1, 1, m);
                        prop_assert!(g.observe(i as u64, &wire).is_ok());
                        sent_ok += 1;
                    }
                    None => {
                        if g.observe(i as u64, &garbage).is_err() {
                            sent_junk += 1;
                        } else {
                            sent_ok += 1; // garbage that happened to be valid
                        }
                    }
                }
            }
            let (ok, bad) = g.frame_counts();
            prop_assert_eq!(ok, sent_ok);
            prop_assert_eq!(bad, sent_junk);
            let q = g.link_quality();
            prop_assert!((0.0..=1.0).contains(&q));
        }
    }
}
