//! Virtual time: nanosecond-resolution instants and durations.
//!
//! The whole reproduction measures what the paper measures —
//! `clock_gettime(CLOCK_MONOTONIC_RAW)` deltas — but against the simulated
//! clock. [`SimTime`] is an instant on that clock, [`SimDuration`] a span.
//! Both are thin `u64` nanosecond newtypes ([C-NEWTYPE]) with saturating
//! arithmetic so cost-model sweeps can never panic on overflow.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated monotonic clock, in nanoseconds since boot.
///
/// # Example
///
/// ```
/// use simkern::time::{SimDuration, SimTime};
/// let t = SimTime::from_micros(3) + SimDuration::from_nanos(125);
/// assert_eq!(t.as_nanos(), 3_125);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use simkern::time::SimDuration;
/// assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The epoch of the simulated clock (boot time).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" in schedulers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after boot.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after boot.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after boot.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after boot.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since boot (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since boot as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    ///
    /// Mirrors [`std::time::Instant::saturating_duration_since`], which is
    /// what robust benchmark loops want when the clock is quantized.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Rounds the instant *down* to a multiple of `tick`, modeling a timer
    /// with limited resolution (the paper observes heavily quantized
    /// `clock_gettime` readings: p25 = p75 in several box plots).
    ///
    /// A zero `tick` leaves the instant unchanged.
    pub fn quantize(self, tick: SimDuration) -> SimTime {
        if tick.0 == 0 {
            self
        } else {
            SimTime(self.0 - self.0 % tick.0)
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// The span as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as seconds, for rate computations.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating sum of two spans.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// The time to serialize `bytes` bytes at `bits_per_sec`, rounded up.
    ///
    /// This is the workhorse behind the wire and PCI-bus models: a 1538-byte
    /// Ethernet frame (preamble + IFG included) takes 12 304 ns at 1 Gbit/s.
    ///
    /// # Example
    ///
    /// ```
    /// use simkern::time::SimDuration;
    /// let d = SimDuration::for_bytes_at_rate(1538, 1_000_000_000);
    /// assert_eq!(d.as_nanos(), 12_304);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    pub fn for_bytes_at_rate(bytes: u64, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "link rate must be positive");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_nanos(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn serialization_delay_matches_gige_math() {
        // A full-size TCP data frame on GbE including preamble+IFG.
        let d = SimDuration::for_bytes_at_rate(1538, 1_000_000_000);
        assert_eq!(d.as_nanos(), 12_304);
        // 64-byte minimum frame + 20B overhead = 672ns.
        let d = SimDuration::for_bytes_at_rate(84, 1_000_000_000);
        assert_eq!(d.as_nanos(), 672);
    }

    #[test]
    fn quantize_floors_to_tick() {
        let t = SimTime::from_nanos(1_234);
        assert_eq!(t.quantize(SimDuration::from_nanos(100)).as_nanos(), 1_200);
        assert_eq!(t.quantize(SimDuration::ZERO), t);
    }

    #[test]
    fn display_picks_a_sane_unit() {
        assert_eq!(SimDuration::from_nanos(42).to_string(), "42ns");
        assert_eq!(SimDuration::from_micros(42).to_string(), "42.000us");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42.000ms");
        assert_eq!(SimDuration::from_secs(42).to_string(), "42.000s");
    }

    #[test]
    fn duration_sum_and_scale() {
        let parts = [SimDuration::from_nanos(10), SimDuration::from_nanos(32)];
        let total: SimDuration = parts.iter().copied().sum();
        assert_eq!(total.as_nanos(), 42);
        assert_eq!((total * 2).as_nanos(), 84);
        assert_eq!((total / 2).as_nanos(), 21);
    }
}
