//! Deterministic randomness for jitter and workloads.
//!
//! Experiments must be reproducible from a seed (the paper repeats each
//! measurement 1 M times and removes IQR outliers; we need the same
//! population every run to make tests meaningful). [`SimRng`] wraps a
//! fixed-algorithm PRNG (xoshiro256**, implemented locally so the stream is
//! stable across `rand` versions) and exposes the handful of distributions
//! the simulation needs.

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// # Example
///
/// ```
/// use simkern::rng::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 to fill the state, per the xoshiro authors' guidance.
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire-style rejection-free mapping is fine here; bias for our
        // n ≪ 2^64 use is negligible, but we use widening multiply anyway.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `per_mille`/1000.
    pub fn chance_per_mille(&mut self, per_mille: u64) -> bool {
        self.below(1000) < per_mille
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A geometric-ish heavy-tail sample: `base` ns most of the time, with
    /// exponentially rarer integer multiples — a crude but effective model
    /// of cache/interrupt detours that IQR filtering should remove.
    pub fn heavy_tail_ns(&mut self, base: u64) -> u64 {
        let mut v = base;
        while self.chance_per_mille(250) && v < base * 64 {
            v *= 2;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = SimRng::seed_from_u64(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            match r.range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                v => assert!((5..=8).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_per_mille_is_roughly_calibrated() {
        let mut r = SimRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.chance_per_mille(100)).count() as f64;
        let rate = hits / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(6);
        for _ in 0..1_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn heavy_tail_is_bounded_and_mostly_base() {
        let mut r = SimRng::seed_from_u64(7);
        let mut base_count = 0;
        for _ in 0..10_000 {
            let v = r.heavy_tail_ns(100);
            assert!((100..=6_400).contains(&v));
            if v == 100 {
                base_count += 1;
            }
        }
        assert!(base_count > 7_000, "tail too fat: {base_count}");
    }
}
