//! The Morello-calibrated cost model.
//!
//! Every constant here stands in for a number the paper measured (or implies)
//! on the Arm Morello / CheriBSD testbed. The experiments never hard-code
//! nanoseconds: they compose these fields, so sweeping a field is an ablation
//! (see `bench/benches/ablation_locking.rs`).
//!
//! Calibration targets, from the paper's §IV:
//!
//! * Scenario 1 `ff_write` is ≈ **125 ns** slower than Baseline — the
//!   musl→Intravisor trampoline indirection ([`CostModel::trampoline_ns`]).
//! * Scenario 2 (uncontended) is ≈ **200 ns** slower than Scenario 1 — one
//!   cross-cVM wrapper jump plus uncontended mutex handling
//!   ([`CostModel::xcall_ns`] + [`CostModel::mutex_fast_ns`]).
//! * Scenario 2 (contended) mutex operations cost ≈ **19 000 ns**, a 152×
//!   slowdown over the ≈ 125 ns uncontended mutex handling — reproduced by
//!   the umtx sleep/wake path and the F-Stack main-loop lock hold time.
//! * Table II bandwidth ceilings: 941 Mbit/s single-port TCP goodput (pure
//!   framing math) and 658 / 757 Mbit/s per port for dual-port RX / TX
//!   (shared PCI bus DMA limits, [`CostModel::pci_rx_ns_per_byte_x1000`] /
//!   [`CostModel::pci_tx_ns_per_byte_x1000`]).

use crate::time::SimDuration;

/// Cost constants for the simulated Morello/CheriBSD platform.
///
/// Construct with [`CostModel::morello`] (paper calibration) or
/// [`CostModel::default`] (same), then override fields for ablations.
///
/// # Example
///
/// ```
/// use simkern::cost::CostModel;
/// let mut costs = CostModel::morello();
/// assert_eq!(costs.trampoline_ns, 125);
/// costs.trampoline_ns = 0; // ablation: free trampolines
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    // ---- CPU / libc ----
    /// One `clock_gettime(CLOCK_MONOTONIC_RAW)` executed natively (vDSO-less
    /// CheriBSD syscall path). Charged twice per timed iteration.
    pub clock_gettime_ns: u64,
    /// Resolution of the raw monotonic counter; readings are floored to a
    /// multiple of this, which is why the paper's box plots collapse
    /// (p25 = p75) for the fast scenarios.
    pub timer_tick_ns: u64,
    /// A generic native syscall entry/exit (CheriBSD, non-compartmentalized).
    pub syscall_ns: u64,
    /// Plain function call overhead inside one compartment.
    pub call_ns: u64,
    /// Copying one byte between user buffers (memcpy steady-state).
    pub copy_ns_per_byte_x1000: u64,

    // ---- CHERI / Intravisor ----
    /// The musl→Intravisor trampoline: save registers, load the target
    /// PCC/DDC pair, `blrs` into the Intravisor and back. The paper reports
    /// the Scenario 1 vs Baseline `ff_write` delta as ≈ 125 ns.
    pub trampoline_ns: u64,
    /// A cross-cVM wrapper call (Scenario 2 app → F-Stack service cVM):
    /// sealed-pair invoke, argument capability re-derivation, return.
    pub xcall_ns: u64,
    /// Validating one capability argument at a compartment boundary.
    pub cap_check_ns: u64,
    /// Uncontended mutex lock+unlock pair (atomic fast path, no kernel).
    /// Together with the bookkeeping around it this is the "≈ 125 ns mutex
    /// handling" the paper's 152× slowdown is measured against.
    pub mutex_fast_ns: u64,
    /// Blocking on `umtx` (musl futex translated by the Intravisor):
    /// trampoline + kernel sleep enqueue + context switch away.
    pub umtx_block_ns: u64,
    /// Waking an `umtx` waiter: kernel wake + context switch in.
    pub umtx_wake_ns: u64,

    // ---- F-Stack / DPDK software path ----
    /// Fixed cost of `ff_write` excluding the per-byte copy: fd lookup,
    /// socket state checks, mbuf append bookkeeping.
    pub ff_write_fixed_ns: u64,
    /// One F-Stack main-loop iteration with idle rings (poll, timer check).
    pub mainloop_idle_ns: u64,
    /// Additional main-loop cost per frame processed (driver + protocol).
    pub mainloop_per_frame_ns: u64,
    /// While serving Scenario 2, the main loop holds the F-Stack mutex for
    /// the duration of its iteration; this is the dominant term of the
    /// ≈ 19 µs contended-mutex overhead.
    pub s2_loop_hold_ns: u64,

    // ---- NIC / PCI (Intel 82576 dual-port model) ----
    /// Line rate of each Ethernet port, bits per second.
    pub link_bps: u64,
    /// One-way propagation + PHY latency of the cable.
    pub wire_latency_ns: u64,
    /// Shared PCI bus DMA cost per byte on the receive path (device →
    /// memory), scaled by 1000 (i.e. 5 724 means 5.724 ns/byte). Calibrated
    /// so two ports receiving saturate at ≈ 658 Mbit/s each.
    pub pci_rx_ns_per_byte_x1000: u64,
    /// Shared PCI bus DMA cost per byte on the transmit path (memory →
    /// device), scaled by 1000. Calibrated so two ports sending saturate at
    /// ≈ 757 Mbit/s each.
    pub pci_tx_ns_per_byte_x1000: u64,
    /// Fixed per-DMA-transaction overhead on the PCI bus.
    pub pci_per_frame_ns: u64,
    /// Store-and-forward processing latency of a switching element
    /// (lookup + buffer copy), charged once per frame per switch hop on
    /// top of the egress-port serialization at [`CostModel::link_bps`].
    pub switch_latency_ns: u64,

    // ---- measurement noise ----
    /// Probability (per mille) that an iteration takes a long detour
    /// (interrupt, cache refill storm). The paper discards ≈ 10 % of
    /// iterations as IQR outliers; this is where they come from.
    pub jitter_per_mille: u64,
    /// Magnitude of a jitter detour.
    pub jitter_ns: u64,
}

impl CostModel {
    /// The calibration used for all paper-shaped experiments.
    pub fn morello() -> Self {
        CostModel {
            clock_gettime_ns: 60,
            timer_tick_ns: 25,
            syscall_ns: 140,
            call_ns: 4,
            copy_ns_per_byte_x1000: 45, // 0.045 ns/B ≈ 22 GB/s memcpy
            trampoline_ns: 125,
            xcall_ns: 170,
            cap_check_ns: 6,
            mutex_fast_ns: 30,
            umtx_block_ns: 2_600,
            umtx_wake_ns: 1_900,
            ff_write_fixed_ns: 380,
            mainloop_idle_ns: 900,
            mainloop_per_frame_ns: 260,
            s2_loop_hold_ns: 8_100,
            link_bps: 1_000_000_000,
            wire_latency_ns: 1_000,
            pci_rx_ns_per_byte_x1000: 5_724,
            pci_tx_ns_per_byte_x1000: 4_975,
            pci_per_frame_ns: 0,
            switch_latency_ns: 2_000,
            jitter_per_mille: 100, // ~10% of iterations, as the paper removes
            jitter_ns: 2_400,
        }
    }

    /// An idealized platform with zero isolation overhead; useful in tests
    /// that want protocol behaviour without timing noise.
    pub fn zero_overhead() -> Self {
        CostModel {
            clock_gettime_ns: 0,
            timer_tick_ns: 0,
            syscall_ns: 0,
            call_ns: 0,
            copy_ns_per_byte_x1000: 0,
            trampoline_ns: 0,
            xcall_ns: 0,
            cap_check_ns: 0,
            mutex_fast_ns: 0,
            umtx_block_ns: 0,
            umtx_wake_ns: 0,
            ff_write_fixed_ns: 0,
            mainloop_idle_ns: 100,
            mainloop_per_frame_ns: 0,
            s2_loop_hold_ns: 0,
            link_bps: 1_000_000_000,
            wire_latency_ns: 0,
            pci_rx_ns_per_byte_x1000: 0,
            pci_tx_ns_per_byte_x1000: 0,
            pci_per_frame_ns: 0,
            switch_latency_ns: 0,
            jitter_per_mille: 0,
            jitter_ns: 0,
        }
    }

    /// Cost of copying `bytes` bytes between user buffers.
    pub fn copy_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes * self.copy_ns_per_byte_x1000 / 1000)
    }

    /// PCI bus occupancy for a DMA of `bytes` in the receive direction.
    pub fn pci_rx_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(
            bytes * self.pci_rx_ns_per_byte_x1000 / 1000 + self.pci_per_frame_ns,
        )
    }

    /// PCI bus occupancy for a DMA of `bytes` in the transmit direction.
    pub fn pci_tx_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(
            bytes * self.pci_tx_ns_per_byte_x1000 / 1000 + self.pci_per_frame_ns,
        )
    }

    /// Wire serialization time for a frame of `wire_bytes` (including
    /// preamble and inter-frame gap) at the configured line rate.
    pub fn wire_cost(&self, wire_bytes: u64) -> SimDuration {
        SimDuration::for_bytes_at_rate(wire_bytes, self.link_bps)
    }

    /// The timer tick as a duration, for clock quantization.
    pub fn timer_tick(&self) -> SimDuration {
        SimDuration::from_nanos(self.timer_tick_ns)
    }

    /// The minimum latency any frame needs to traverse a cable of this
    /// cost model, per **link class** (who is emitting): propagation plus
    /// at least one minimum-frame serialization at line rate, plus the
    /// store-and-forward latency when the emitting side is a switch.
    ///
    /// These per-edge floors are what a conservative parallel simulation
    /// derives its lookahead from — a cut edge of a given class can never
    /// carry causality faster than its floor, so the wider the floor, the
    /// wider the safe execution window. `min_wire_bytes` is the smallest
    /// on-wire frame size of the protocol layer above (minimum frame plus
    /// preamble/IFG overhead; the cost model itself is protocol-agnostic).
    pub fn link_floor_ns(&self, min_wire_bytes: u64, from_switch: bool) -> u64 {
        self.wire_latency_ns
            + self.wire_cost(min_wire_bytes).as_nanos()
            + if from_switch {
                self.switch_latency_ns
            } else {
                0
            }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::morello()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morello_matches_paper_deltas() {
        let c = CostModel::morello();
        // Scenario 1 vs Baseline: the trampoline indirection ≈ 125 ns.
        assert_eq!(c.trampoline_ns, 125);
        // Scenario 2 extra vs Scenario 1: wrapper + mutex ≈ 200 ns.
        assert_eq!(c.xcall_ns + c.mutex_fast_ns, 200);
    }

    #[test]
    fn pci_calibration_produces_table2_ceilings() {
        let c = CostModel::morello();
        // A full-size frame occupies the bus long enough that two RX ports
        // share ≈ 1316 Mbit/s of goodput (658 each). Wire frame: 1518 B
        // + 20 B preamble/IFG; payload 1448 B.
        let per_frame = c.pci_rx_cost(1538).as_nanos();
        let aggregate_bps = 1448.0 * 8.0 / (per_frame as f64 / 1e9);
        assert!(
            (aggregate_bps / 1e6 - 1316.0).abs() < 10.0,
            "rx aggregate {aggregate_bps}"
        );
        let per_frame = c.pci_tx_cost(1538).as_nanos();
        let aggregate_bps = 1448.0 * 8.0 / (per_frame as f64 / 1e9);
        assert!(
            (aggregate_bps / 1e6 - 1514.0).abs() < 10.0,
            "tx aggregate {aggregate_bps}"
        );
    }

    #[test]
    fn single_port_is_wire_limited_not_pci_limited() {
        let c = CostModel::morello();
        // One port: wire serialization (12 304 ns/frame) must exceed the PCI
        // cost per frame, so a single flow reaches the 941 Mbit/s goodput.
        assert!(c.pci_rx_cost(1538) < c.wire_cost(1538));
        assert!(c.pci_tx_cost(1538) < c.wire_cost(1538));
    }

    #[test]
    fn link_floors_split_by_link_class() {
        let c = CostModel::morello();
        // Ethernet minimum frame (64 B) + preamble/IFG (20 B) at 1 Gbit/s
        // serializes in 672 ns; NIC egress adds propagation, switch egress
        // adds store-and-forward on top.
        assert_eq!(c.link_floor_ns(84, false), 1_000 + 672);
        assert_eq!(c.link_floor_ns(84, true), 1_000 + 672 + 2_000);
        // Degenerate models floor at the (possibly zero) propagation.
        let z = CostModel::zero_overhead();
        assert_eq!(z.link_floor_ns(84, false), 672);
    }

    #[test]
    fn copy_cost_scales_linearly() {
        let c = CostModel::morello();
        assert_eq!(c.copy_cost(0), SimDuration::ZERO);
        assert_eq!(
            c.copy_cost(2000).as_nanos(),
            2 * c.copy_cost(1000).as_nanos()
        );
    }
}
