//! # simkern — discrete-event simulation kernel
//!
//! This crate is the timing substrate of the `capnet` reproduction of the
//! DATE 2025 paper *"Enabling Security on the Edge: A CHERI Compartmentalized
//! Network Stack"*. The paper evaluates on an Arm Morello board; we have no
//! CHERI silicon, so every nanosecond in this repository is **virtual**:
//! produced by the event engine in [`engine`], advanced by cost constants from
//! [`cost::CostModel`], and read back through the simulated
//! `clock_gettime(CLOCK_MONOTONIC_RAW)` of the `chos` crate.
//!
//! The kernel is deliberately small and generic:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — nanosecond virtual time.
//! * [`engine::Engine`] — a typed calendar-queue event loop (timer-wheel
//!   near band + heap overflow), generic over a user-supplied world type `W`
//!   whose [`engine::World::Event`] enum is stored inline — the steady state
//!   of a simulation schedules without allocating. A boxed-closure escape
//!   hatch ([`engine::Engine::schedule_boxed`]) remains for small worlds.
//! * [`cost::CostModel`] — the Morello-calibrated cost constants (trampoline
//!   ≈ 125 ns, cross-cVM call, umtx block/wake, …) with one documented field
//!   per paper-reported overhead.
//! * [`resource::BusyResource`] and [`resource::FifoMutex`] — analytic models
//!   of serialized shared resources (the 82576's PCI bus, the Scenario 2
//!   F-Stack service mutex) that avoid continuation-passing by computing
//!   grant/release times in virtual time.
//! * [`rng::SimRng`] — a small deterministic PRNG for measurement jitter and
//!   workload randomness, so every experiment is reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use simkern::engine::{Engine, World};
//! use simkern::time::{SimDuration, SimTime};
//!
//! struct Sim { ticks: u32 }
//! enum Ev { Tick }
//!
//! impl World for Sim {
//!     type Event = Ev;
//!     fn handle(&mut self, ev: Ev, eng: &mut Engine<Self>) {
//!         let Ev::Tick = ev;
//!         self.ticks += 1;
//!         if self.ticks < 2 {
//!             eng.schedule_in(SimDuration::from_micros(5), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let mut world = Sim { ticks: 0 };
//! engine.schedule(SimTime::ZERO, Ev::Tick);
//! engine.run_until(&mut world, SimTime::from_millis(1));
//! assert_eq!(world.ticks, 2);
//! ```

pub mod cost;
pub mod engine;
pub mod resource;
pub mod rng;
pub mod time;

pub use cost::CostModel;
pub use engine::Engine;
pub use resource::{BusyResource, FifoMutex, LockGrant};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
