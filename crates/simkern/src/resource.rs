//! Analytic models of serialized shared resources.
//!
//! Two resources in the paper's system serialize concurrent actors:
//!
//! * the **PCI bus** of the dual-port Intel 82576 NIC — every DMA in either
//!   direction occupies the shared bus, which is what caps Table II's
//!   dual-port bandwidth at 658 / 757 Mbit/s per port;
//! * the **F-Stack service mutex** of Scenario 2 — `ff_*` API calls and the
//!   F-Stack main loop must alternate, which is what produces Fig. 6's
//!   ≈ 19 µs contended `ff_write`.
//!
//! Instead of blocking simulated threads, both are modeled analytically in
//! virtual time: a request made at instant `t` is granted at
//! `max(t, next_free)` and the resource advances its `next_free` horizon.
//! With FIFO granting this is exactly a single-server queue, which is what
//! the hardware bus arbiter and a fair futex-backed mutex implement.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A serially reusable resource with a busy-until horizon (single-server
/// FIFO queue). Used for the PCI bus and for wire serialization.
///
/// # Example
///
/// ```
/// use simkern::resource::BusyResource;
/// use simkern::time::{SimDuration, SimTime};
///
/// let mut bus = BusyResource::new();
/// let d = SimDuration::from_nanos(100);
/// // Two back-to-back requests at t=0 serialize.
/// let a = bus.occupy(SimTime::ZERO, d);
/// let b = bus.occupy(SimTime::ZERO, d);
/// assert_eq!(a.as_nanos(), 100);
/// assert_eq!(b.as_nanos(), 200);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BusyResource {
    next_free: SimTime,
    total_busy: SimDuration,
    grants: u64,
}

impl BusyResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the resource at `now` for `hold`; returns the completion
    /// instant. Requests are served in call order (FIFO).
    pub fn occupy(&mut self, now: SimTime, hold: SimDuration) -> SimTime {
        let start = now.max(self.next_free);
        let done = start + hold;
        self.next_free = done;
        self.total_busy += hold;
        self.grants += 1;
        done
    }

    /// The instant after which the resource is idle again.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total time the resource has been held.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Number of grants served.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Utilization of the resource over `[0, horizon]`, in `0.0..=1.0`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            (self.total_busy.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
        }
    }
}

/// The outcome of a [`FifoMutex`] acquisition, all in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockGrant {
    /// When the lock was actually granted (≥ the request instant).
    pub acquired_at: SimTime,
    /// When the caller's critical section ends and the lock is released.
    pub released_at: SimTime,
    /// Whether the caller had to block (kernel sleep via umtx).
    pub contended: bool,
    /// Time spent waiting before the grant.
    pub wait: SimDuration,
}

/// A FIFO mutex modeled in virtual time, with distinct fast-path and
/// blocking-path costs — the Scenario 2 F-Stack service mutex.
///
/// The fast path charges [`fast_ns`](FifoMutex::new) (uncontended atomic
/// lock+unlock). The slow path charges a `umtx` block on the waiter and a
/// wake when the holder releases, exactly the musl-futex → CheriBSD-umtx
/// path the paper routes through the Intravisor.
///
/// # Example
///
/// ```
/// use simkern::resource::FifoMutex;
/// use simkern::time::{SimDuration, SimTime};
///
/// let mut m = FifoMutex::new(30, 2_600, 1_900);
/// let g = m.acquire(SimTime::ZERO, SimDuration::from_nanos(500));
/// assert!(!g.contended);
/// // A second acquire during the first critical section must wait.
/// let g2 = m.acquire(SimTime::from_nanos(10), SimDuration::from_nanos(500));
/// assert!(g2.contended);
/// assert!(g2.acquired_at >= g.released_at);
/// ```
#[derive(Debug, Clone)]
pub struct FifoMutex {
    fast_ns: u64,
    block_ns: u64,
    wake_ns: u64,
    next_free: SimTime,
    acquisitions: u64,
    contentions: u64,
    total_wait: SimDuration,
    recent_waits: VecDeque<SimDuration>,
}

impl FifoMutex {
    /// How many recent waits [`FifoMutex::recent_waits`] retains.
    const RECENT: usize = 64;

    /// Creates a mutex with the given fast-path, block and wake costs (ns).
    pub fn new(fast_ns: u64, block_ns: u64, wake_ns: u64) -> Self {
        FifoMutex {
            fast_ns,
            block_ns,
            wake_ns,
            next_free: SimTime::ZERO,
            acquisitions: 0,
            contentions: 0,
            total_wait: SimDuration::ZERO,
            recent_waits: VecDeque::with_capacity(Self::RECENT),
        }
    }

    /// Acquires the mutex at `now`, holding it for `hold` of critical-section
    /// work, and returns the grant. FIFO among callers.
    pub fn acquire(&mut self, now: SimTime, hold: SimDuration) -> LockGrant {
        self.acquisitions += 1;
        let contended = self.next_free > now;
        let (acquired_at, overhead) = if contended {
            self.contentions += 1;
            // The waiter blocks via umtx; the holder's release wakes it.
            let woken = self.next_free + SimDuration::from_nanos(self.wake_ns);
            (woken, SimDuration::from_nanos(self.block_ns + self.fast_ns))
        } else {
            (now, SimDuration::from_nanos(self.fast_ns))
        };
        let released_at = acquired_at + hold + overhead;
        self.next_free = released_at;
        let wait = acquired_at - now;
        self.total_wait += wait;
        if self.recent_waits.len() == Self::RECENT {
            self.recent_waits.pop_front();
        }
        self.recent_waits.push_back(wait);
        LockGrant {
            acquired_at,
            released_at,
            contended,
            wait,
        }
    }

    /// Total acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Acquisitions that had to block.
    pub fn contentions(&self) -> u64 {
        self.contentions
    }

    /// Sum of all waiting time.
    pub fn total_wait(&self) -> SimDuration {
        self.total_wait
    }

    /// The most recent waits (bounded window), oldest first.
    pub fn recent_waits(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.recent_waits.iter().copied()
    }

    /// The instant the lock next becomes free.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_resource_serializes_fifo() {
        let mut r = BusyResource::new();
        let d = SimDuration::from_nanos(10);
        assert_eq!(r.occupy(SimTime::from_nanos(0), d).as_nanos(), 10);
        assert_eq!(r.occupy(SimTime::from_nanos(3), d).as_nanos(), 20);
        // A late arrival after the queue drains starts immediately.
        assert_eq!(r.occupy(SimTime::from_nanos(100), d).as_nanos(), 110);
        assert_eq!(r.grants(), 3);
        assert_eq!(r.total_busy().as_nanos(), 30);
    }

    #[test]
    fn busy_resource_utilization() {
        let mut r = BusyResource::new();
        r.occupy(SimTime::ZERO, SimDuration::from_nanos(50));
        assert!((r.utilization(SimTime::from_nanos(100)) - 0.5).abs() < 1e-9);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn uncontended_lock_is_fast_path() {
        let mut m = FifoMutex::new(30, 2_600, 1_900);
        let g = m.acquire(SimTime::from_nanos(1_000), SimDuration::from_nanos(400));
        assert!(!g.contended);
        assert_eq!(g.acquired_at.as_nanos(), 1_000);
        assert_eq!(g.released_at.as_nanos(), 1_000 + 400 + 30);
        assert_eq!(g.wait, SimDuration::ZERO);
    }

    #[test]
    fn contended_lock_pays_block_and_wake() {
        let mut m = FifoMutex::new(30, 2_600, 1_900);
        let g1 = m.acquire(SimTime::ZERO, SimDuration::from_nanos(10_000));
        let g2 = m.acquire(SimTime::from_nanos(100), SimDuration::from_nanos(500));
        assert!(g2.contended);
        assert_eq!(
            g2.acquired_at,
            g1.released_at + SimDuration::from_nanos(1_900)
        );
        assert_eq!(
            g2.released_at,
            g2.acquired_at + SimDuration::from_nanos(500 + 2_600 + 30)
        );
        assert_eq!(m.contentions(), 1);
        assert!(g2.wait.as_nanos() > 10_000);
    }

    #[test]
    fn three_way_contention_is_fifo() {
        // Mirrors Scenario 2 contended: main loop + two app cVMs.
        let mut m = FifoMutex::new(30, 2_600, 1_900);
        let hold = SimDuration::from_nanos(1_000);
        let a = m.acquire(SimTime::ZERO, hold);
        let b = m.acquire(SimTime::from_nanos(1), hold);
        let c = m.acquire(SimTime::from_nanos(2), hold);
        assert!(a.released_at <= b.acquired_at);
        assert!(b.released_at <= c.acquired_at);
        assert_eq!(m.acquisitions(), 3);
        assert_eq!(m.contentions(), 2);
    }

    #[test]
    fn recent_waits_window_is_bounded() {
        let mut m = FifoMutex::new(0, 0, 0);
        for i in 0..200 {
            m.acquire(SimTime::from_nanos(i), SimDuration::ZERO);
        }
        assert!(m.recent_waits().count() <= 64);
    }
}
