//! The event engine: a typed, allocation-free calendar queue over a world `W`.
//!
//! The engine owns no domain state — the scenario drivers in the `capnet`
//! crate define their own world structs holding the Intravisor, NICs, stacks
//! and apps. A world declares its event vocabulary through the [`World`]
//! trait: `type Event` is a small enum interpreted by [`World::handle`],
//! stored **inline** in a two-band calendar: a 512-slot × 1024 ns timer wheel
//! for the dense near band, with a binary heap as overflow for far-future
//! deadlines (retransmission timers, TIME_WAIT). Events migrate from the heap
//! into the wheel as virtual time advances. A [`Engine::schedule_boxed`]
//! escape hatch keeps closure-style scheduling available for doctests and
//! small ad-hoc worlds; boxed schedules are counted
//! ([`Engine::boxed_scheduled`]) so perf-sensitive drivers can assert their
//! steady state never boxes.
//!
//! # Dispatch order
//!
//! Dispatch follows the total order `(at, class, key)`, where `class`
//! separates ordinary events from [`Engine::schedule_last`] events and `key`
//! is an [`OrderKey`] — the tie-break among same-instant, same-class events.
//!
//! For plain [`Engine::schedule`] calls the key degenerates to a global
//! sequence number, so ties stay FIFO exactly as the previous engine ordered
//! them. Worlds that are **sharded across several engines** (the parallel
//! `NetSim`) instead schedule through [`Engine::schedule_from`], which builds
//! the key from *execution-invariant* components: the virtual instant the
//! scheduling event ran, its class, the scheduling object's stable `origin`
//! id, and a per-origin emission counter. Two engines partitioning the same
//! world produce the same keys for the same events regardless of how the
//! partition interleaves, which is what makes a sharded run's merge order —
//! and therefore its wire behaviour — byte-identical to the single-engine
//! run (see `capnet-core`'s `tests/parallel_determinism.rs`).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

type Action<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// A world drivable by the engine: the event vocabulary plus its interpreter.
///
/// `Event` should be a small plain enum — it is stored by value in the
/// calendar, so scheduling one allocates nothing. Worlds that only ever use
/// [`Engine::schedule_boxed`] can set `type Event = NoEvent`.
pub trait World: Sized {
    /// The typed event vocabulary of this world.
    type Event;
    /// Interprets one event at its scheduled instant (`engine.now()`).
    fn handle(&mut self, ev: Self::Event, engine: &mut Engine<Self>);
}

/// An uninhabited event type for worlds driven purely by boxed closures.
pub enum NoEvent {}

/// The origin id carried by plain (non-[`Engine::schedule_from`]) schedules:
/// sorts after every explicit origin, and its `ctr` component is the global
/// sequence number, preserving the legacy FIFO tie-break.
const COMPAT_ORIGIN: u32 = u32::MAX;

/// The execution-invariant tie-break among same-instant, same-class events.
///
/// Components compare in order:
///
/// 1. `gen` — the virtual instant of the event that *scheduled* this one
///    (events scheduled earlier in virtual time dispatch first);
/// 2. `gen_class` — the class of the scheduling event (children of ordinary
///    events precede children of `schedule_last` events at the same `gen`,
///    mirroring the order their parents dispatched);
/// 3. `origin` — the stable id of the scheduling object, assigned by the
///    world (a sharded world must assign ids that are identical across
///    partitions);
/// 4. `ctr` — the origin's monotone emission counter (a single handler
///    emitting several events keeps their order).
///
/// Every component is derived from the scheduling event's own (by induction,
/// invariant) execution — never from engine-global state — so keys are
/// identical no matter how the world is partitioned across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrderKey {
    /// Virtual instant of the scheduling event.
    pub gen: u64,
    /// Class of the scheduling event.
    pub gen_class: u8,
    /// Stable id of the scheduling object (`u32::MAX` for plain
    /// schedules).
    pub origin: u32,
    /// Per-origin monotone emission counter (the global sequence number for
    /// plain schedules).
    pub ctr: u64,
}

/// Identifies one scheduled typed event, for [`Engine::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle {
    key: OrderKey,
}

enum Slot<W: World> {
    Typed(W::Event),
    Boxed(Action<W>),
}

struct Scheduled<W: World> {
    at: SimTime,
    /// Tie-break class at equal instants: 0 for ordinary events, 1 for
    /// [`Engine::schedule_last`] events (park/wake ticks that must observe
    /// every same-instant delivery first).
    class: u8,
    key: OrderKey,
    slot: Slot<W>,
}

impl<W: World> Scheduled<W> {
    fn key(&self) -> (u64, u8, OrderKey) {
        (self.at.as_nanos(), self.class, self.key)
    }
}

impl<W: World> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<W: World> Eq for Scheduled<W> {}
impl<W: World> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W: World> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with the invariant tie-break (class, then key) among same-instant
        // events.
        other.key().cmp(&self.key())
    }
}

/// log2 of the wheel slot granularity in nanoseconds.
const GRAN_SHIFT: u32 = 10;
/// Wheel slot width: 1024 ns — one or two main-loop ticks per slot.
const GRAN: u64 = 1 << GRAN_SHIFT;
/// Number of wheel slots (one rotation covers `SLOTS * GRAN` ≈ 524 µs —
/// wide enough that deliveries behind a full 64-frame egress backlog still
/// land directly in the wheel instead of bouncing through the heap).
const SLOTS: usize = 512;
/// The wheel horizon: events at `base + HORIZON` or later overflow to the heap.
const HORIZON: u64 = GRAN * SLOTS as u64;

/// The two-band calendar: a near-future timer wheel plus an overflow heap.
///
/// Invariants:
/// * every wheel entry `e` satisfies `base <= clamp(e.at) < base + HORIZON`
///   (entries scheduled "behind" the cursor — legal while `now` trails a
///   partially drained slot — are clamped into the cursor slot);
/// * every heap entry is at `base + HORIZON` or later;
/// * `base` is a multiple of `GRAN` and never decreases.
struct Calendar<W: World> {
    slots: Vec<Vec<Scheduled<W>>>,
    wheel_len: usize,
    base: u64,
    heap: BinaryHeap<Scheduled<W>>,
    /// Keys of cancelled, still-queued events: lazily removed when the
    /// cursor reaches them ([`Engine::cancel`]). Keys are never reused
    /// within a run, so a tombstone can only match its own event.
    cancelled: HashSet<OrderKey>,
    /// Memoized earliest-live-event instant (a sharded driver polls it
    /// every window round); invalidated by pops, cancellations and any
    /// push that could undercut it.
    next_cache: Option<SimTime>,
}

impl<W: World> Calendar<W> {
    fn new() -> Self {
        Calendar {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            base: 0,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_cache: None,
        }
    }

    fn len(&self) -> usize {
        // Saturating: a stale tombstone (cancel() after dispatch — a
        // caller bug) must not wrap the live count.
        (self.wheel_len + self.heap.len()).saturating_sub(self.cancelled.len())
    }

    fn push(&mut self, ev: Scheduled<W>) {
        if self.next_cache.is_some_and(|c| ev.at < c) {
            self.next_cache = None;
        }
        let at = ev.at.as_nanos();
        if at >= self.base.saturating_add(HORIZON) {
            self.heap.push(ev);
        } else {
            // Events at or behind the cursor window land in the cursor slot;
            // the per-slot min-scan orders them correctly regardless.
            let eff = at.max(self.base);
            self.slots[((eff >> GRAN_SHIFT) as usize) % SLOTS].push(ev);
            self.wheel_len += 1;
        }
    }

    /// Pulls heap entries that the advancing horizon now covers.
    fn migrate(&mut self) {
        let horizon = self.base.saturating_add(HORIZON);
        while let Some(top) = self.heap.peek() {
            if top.at.as_nanos() >= horizon {
                break;
            }
            let ev = self.heap.pop().expect("peeked entry pops");
            if !self.cancelled.is_empty() && self.cancelled.remove(&ev.key) {
                continue;
            }
            let eff = ev.at.as_nanos().max(self.base);
            self.slots[((eff >> GRAN_SHIFT) as usize) % SLOTS].push(ev);
            self.wheel_len += 1;
        }
    }

    /// Pops the globally earliest live event if its instant is `<= deadline`.
    fn pop_if(&mut self, deadline: SimTime) -> Option<Scheduled<W>> {
        loop {
            if self.wheel_len == 0 {
                // Fast-forward: jump the cursor straight to the heap head.
                let top_at = self.heap.peek()?.at;
                if top_at > deadline {
                    return None;
                }
                self.base = top_at.as_nanos() & !(GRAN - 1);
                self.migrate();
                continue;
            }
            let idx = ((self.base >> GRAN_SHIFT) as usize) % SLOTS;
            if self.slots[idx].is_empty() {
                // Advance the cursor one slot; the horizon moves with it.
                self.base += GRAN;
                self.migrate();
                continue;
            }
            // Min-scan the cursor slot: entries within a slot are unordered.
            let best = self.slots[idx]
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.key())
                .map(|(i, e)| (i, e.at))
                .expect("slot is nonempty");
            if best.1 > deadline {
                return None;
            }
            self.wheel_len -= 1;
            let ev = self.slots[idx].swap_remove(best.0);
            // The is_empty guard keeps the tombstone hash off the
            // steady-state dispatch path (most runs never cancel).
            if !self.cancelled.is_empty() && self.cancelled.remove(&ev.key) {
                continue;
            }
            self.next_cache = None;
            return Some(ev);
        }
    }

    /// The instant of the earliest live event, without removing it. Advances
    /// the cursor over empty slots (state-neutral) and reaps cancelled
    /// entries it encounters.
    fn peek_next_at(&mut self) -> Option<SimTime> {
        if let Some(c) = self.next_cache {
            return Some(c);
        }
        let next = self.peek_next_at_uncached();
        self.next_cache = next;
        next
    }

    fn peek_next_at_uncached(&mut self) -> Option<SimTime> {
        loop {
            if self.wheel_len == 0 {
                // Reap cancelled heap heads so the answer is a live event.
                while let Some(top) = self.heap.peek() {
                    if !self.cancelled.is_empty() && self.cancelled.contains(&top.key) {
                        let ev = self.heap.pop().expect("peeked entry pops");
                        self.cancelled.remove(&ev.key);
                    } else {
                        return Some(top.at);
                    }
                }
                return None;
            }
            let idx = ((self.base >> GRAN_SHIFT) as usize) % SLOTS;
            if self.slots[idx].is_empty() {
                self.base += GRAN;
                self.migrate();
                continue;
            }
            let best = self.slots[idx]
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.key())
                .map(|(i, e)| (i, e.at, e.key))
                .expect("slot is nonempty");
            if !self.cancelled.is_empty() && self.cancelled.remove(&best.2) {
                self.slots[idx].swap_remove(best.0);
                self.wheel_len -= 1;
                continue;
            }
            return Some(best.1);
        }
    }

    fn clear(&mut self) {
        for s in &mut self.slots {
            s.clear();
        }
        self.wheel_len = 0;
        self.heap.clear();
        self.cancelled.clear();
        self.next_cache = None;
    }
}

/// A discrete-event engine over a caller-owned world type `W`.
///
/// # Example
///
/// A typed world: the event enum is stored inline in the calendar, so the
/// steady state of a simulation schedules without allocating.
///
/// ```
/// use simkern::engine::{Engine, World};
/// use simkern::time::{SimDuration, SimTime};
///
/// struct Counter { ticks: u32 }
/// enum Ev { Tick }
///
/// impl World for Counter {
///     type Event = Ev;
///     fn handle(&mut self, ev: Ev, eng: &mut Engine<Self>) {
///         let Ev::Tick = ev;
///         self.ticks += 1;
///         if self.ticks < 10 {
///             eng.schedule_in(SimDuration::from_nanos(100), Ev::Tick);
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// let mut world = Counter { ticks: 0 };
/// engine.schedule(SimTime::ZERO, Ev::Tick);
/// engine.run(&mut world);
/// assert_eq!(world.ticks, 10);
/// assert_eq!(engine.boxed_scheduled(), 0);
/// ```
///
/// The boxed escape hatch, for worlds without an event vocabulary:
///
/// ```
/// use simkern::engine::{Engine, NoEvent, World};
/// use simkern::time::SimTime;
///
/// struct Small(u32);
/// impl World for Small {
///     type Event = NoEvent;
///     fn handle(&mut self, ev: NoEvent, _: &mut Engine<Self>) { match ev {} }
/// }
///
/// let mut engine: Engine<Small> = Engine::new();
/// let mut w = Small(0);
/// engine.schedule_boxed(SimTime::from_nanos(10), |w: &mut Small, _| w.0 += 1);
/// engine.schedule_boxed(SimTime::from_nanos(5), |w: &mut Small, _| w.0 += 10);
/// engine.run(&mut w);
/// assert_eq!(w.0, 11);
/// ```
pub struct Engine<W: World> {
    now: SimTime,
    seq: u64,
    /// Class of the event currently dispatching (0 outside dispatch) — the
    /// `gen_class` component of keys built for events it schedules.
    cur_class: u8,
    /// Key of the event currently dispatching ([`Engine::current_key`]).
    cur_key: OrderKey,
    /// Per-origin emission counters for [`Engine::schedule_from`].
    origin_ctrs: Vec<u64>,
    queue: Calendar<W>,
    executed: u64,
    event_cap: u64,
    boxed_scheduled: u64,
}

impl<W: World> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W: World> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: World> Engine<W> {
    /// A generous default runaway guard (see [`Engine::set_event_cap`]).
    pub const DEFAULT_EVENT_CAP: u64 = 2_000_000_000;

    /// Creates an engine at virtual time zero with an empty calendar.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            cur_class: 0,
            cur_key: OrderKey {
                gen: 0,
                gen_class: 0,
                origin: COMPAT_ORIGIN,
                ctr: 0,
            },
            origin_ctrs: Vec::new(),
            queue: Calendar::new(),
            executed: 0,
            event_cap: Self::DEFAULT_EVENT_CAP,
            boxed_scheduled: 0,
        }
    }

    /// The current virtual instant (the timestamp of the running event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of boxed-closure events scheduled so far — the witness that a
    /// steady-state hot path stayed on the typed, allocation-free band.
    pub fn boxed_scheduled(&self) -> u64 {
        self.boxed_scheduled
    }

    /// Caps the number of events a run may execute, as a guard against
    /// accidentally non-terminating schedules in tests. Both [`Engine::run`]
    /// / [`Engine::run_until`] and single-stepping via [`Engine::step`]
    /// count against the cap.
    pub fn set_event_cap(&mut self, cap: u64) {
        self.event_cap = cap;
    }

    fn push(&mut self, at: SimTime, class: u8, key: OrderKey, slot: Slot<W>) {
        let at = at.max(self.now);
        self.queue.push(Scheduled {
            at,
            class,
            key,
            slot,
        });
    }

    /// The legacy key for plain schedules: generation components plus the
    /// global sequence number, preserving FIFO among same-instant ties.
    fn compat_key(&mut self) -> OrderKey {
        self.seq += 1;
        OrderKey {
            gen: self.now.as_nanos(),
            gen_class: self.cur_class,
            origin: COMPAT_ORIGIN,
            ctr: self.seq,
        }
    }

    /// The execution-invariant key for origin-tagged schedules.
    fn origin_key(&mut self, origin: u32) -> OrderKey {
        // Origins index a dense per-origin counter table; a huge id (or
        // the reserved compat origin) is a caller bug that would otherwise
        // surface as a giant allocation.
        debug_assert!(
            origin < COMPAT_ORIGIN,
            "origin {origin} is reserved / not a dense object id"
        );
        let idx = origin as usize;
        if idx >= self.origin_ctrs.len() {
            self.origin_ctrs.resize(idx + 1, 0);
        }
        self.origin_ctrs[idx] += 1;
        OrderKey {
            gen: self.now.as_nanos(),
            gen_class: self.cur_class,
            origin,
            ctr: self.origin_ctrs[idx],
        }
    }

    /// Schedules a typed event at instant `at` (allocation-free).
    ///
    /// Events scheduled in the past of the current event are executed at the
    /// current instant instead (time never goes backwards); this matches how
    /// a hardware completion that "already happened" is observed at poll time.
    pub fn schedule(&mut self, at: SimTime, ev: W::Event) {
        let key = self.compat_key();
        self.push(at, 0, key, Slot::Typed(ev));
    }

    /// Schedules a typed event `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, ev: W::Event) {
        let at = self.now + delay;
        self.schedule(at, ev);
    }

    /// Schedules a typed event at `at` with an execution-invariant
    /// [`OrderKey`] built from `origin` (the scheduling object's stable id,
    /// below [`u32::MAX`]). Same-instant ties then resolve identically no
    /// matter how the world is sharded across engines. Returns a handle for
    /// [`Engine::cancel`].
    pub fn schedule_from(&mut self, origin: u32, at: SimTime, ev: W::Event) -> EventHandle {
        let key = self.origin_key(origin);
        self.push(at, 0, key, Slot::Typed(ev));
        EventHandle { key }
    }

    /// Schedules a typed event at `at`, ordered **after** every ordinary
    /// event at the same instant (regardless of scheduling order). Park/wake
    /// ticks use this so a woken main loop observes every frame delivered at
    /// its wake instant — exactly as the pre-park polling loop did, whose
    /// self-reschedule always carried a later sequence number than any
    /// same-instant delivery.
    pub fn schedule_last(&mut self, at: SimTime, ev: W::Event) {
        let key = self.compat_key();
        self.push(at, 1, key, Slot::Typed(ev));
    }

    /// [`Engine::schedule_last`] with an origin-tagged key
    /// ([`Engine::schedule_from`]); returns a cancellation handle.
    pub fn schedule_last_from(&mut self, origin: u32, at: SimTime, ev: W::Event) -> EventHandle {
        let key = self.origin_key(origin);
        self.push(at, 1, key, Slot::Typed(ev));
        EventHandle { key }
    }

    /// Schedules a typed class-0 event carrying a key built by *another*
    /// engine — how a sharded world injects a peer shard's cross-boundary
    /// events so the merged dispatch order matches the single-engine run.
    pub fn schedule_injected(&mut self, at: SimTime, key: OrderKey, ev: W::Event) {
        self.push(at, 0, key, Slot::Typed(ev));
    }

    /// Builds (and consumes) the next [`OrderKey`] for `origin` without
    /// scheduling anything locally — for events this world hands to a
    /// *peer* engine ([`Engine::schedule_injected`]). The per-origin
    /// counter advances exactly as a local [`Engine::schedule_from`] would,
    /// so an origin emitting a mix of local and cross-engine events
    /// produces the same key sequence the single-engine run assigns.
    pub fn make_key(&mut self, origin: u32) -> OrderKey {
        self.origin_key(origin)
    }

    /// The [`OrderKey`] of the event currently dispatching — a handler can
    /// record it to reproduce the global dispatch order of its event later
    /// (the sharded trace-digest merge).
    pub fn current_key(&self) -> OrderKey {
        self.cur_key
    }

    /// Cancels a pending typed event scheduled with
    /// [`Engine::schedule_from`] / [`Engine::schedule_last_from`]: the event
    /// is unlinked from the calendar (lazily, via a tombstone) and will
    /// never dispatch nor count as executed. Cancelling an event that
    /// already dispatched is a caller bug; keys are never reused, so the
    /// stale tombstone can mis-cancel nothing, but it leaks a set entry for
    /// the rest of the run and deflates [`Engine::pending`] by one
    /// (saturating — the count never wraps).
    pub fn cancel(&mut self, handle: EventHandle) {
        self.queue.cancelled.insert(handle.key);
        self.queue.next_cache = None;
    }

    /// Schedules a boxed `action` closure to run at instant `at` — the
    /// compatibility escape hatch for worlds without a typed event
    /// vocabulary. Counted by [`Engine::boxed_scheduled`].
    pub fn schedule_boxed<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.boxed_scheduled += 1;
        let key = self.compat_key();
        self.push(at, 0, key, Slot::Boxed(Box::new(action)));
    }

    /// Schedules a boxed `action` closure `delay` after the current instant.
    pub fn schedule_boxed_in<F>(&mut self, delay: crate::time::SimDuration, action: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        let at = self.now + delay;
        self.schedule_boxed(at, action);
    }

    /// Runs events until the calendar is empty.
    ///
    /// # Panics
    ///
    /// Panics if the event cap is exceeded (runaway schedule).
    pub fn run(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    fn dispatch(&mut self, world: &mut W, ev: Scheduled<W>) {
        self.now = ev.at;
        self.cur_class = ev.class;
        self.cur_key = ev.key;
        self.executed += 1;
        assert!(
            self.executed <= self.event_cap,
            "simulation exceeded event cap of {} events at t={}",
            self.event_cap,
            self.now
        );
        match ev.slot {
            Slot::Typed(e) => world.handle(e, self),
            Slot::Boxed(f) => f(world, self),
        }
        self.cur_class = 0;
    }

    /// Runs events with timestamps `<= deadline`, then stops.
    ///
    /// The virtual clock is left at the later of the last executed event and
    /// any previous `now` — it does *not* jump to `deadline`, so interleaved
    /// `run_until` calls compose.
    ///
    /// # Panics
    ///
    /// Panics if the event cap is exceeded (runaway schedule).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        while let Some(ev) = self.queue.pop_if(deadline) {
            self.dispatch(world, ev);
        }
    }

    /// Runs events with timestamps **strictly before** `end`, then stops —
    /// one lookahead window of a sharded run. Equivalent to
    /// [`Engine::run_until`] with an inclusive deadline of `end − 1 ns`.
    ///
    /// # Panics
    ///
    /// Panics if the event cap is exceeded (runaway schedule).
    pub fn run_window(&mut self, world: &mut W, end: SimTime) {
        let Some(deadline) = end.as_nanos().checked_sub(1) else {
            return;
        };
        self.run_until(world, SimTime::from_nanos(deadline));
    }

    /// The instant of the earliest pending event, if any — what a sharded
    /// driver uses to fast-forward over windows in which this engine has
    /// nothing to do.
    pub fn next_event_at(&mut self) -> Option<SimTime> {
        self.queue.peek_next_at()
    }

    /// Runs exactly one event if one is pending, returning `true` if it ran.
    ///
    /// # Panics
    ///
    /// Panics if the event cap is exceeded — stepping counts against the cap
    /// exactly as [`Engine::run_until`] does.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.queue.pop_if(SimTime::MAX) {
            Some(ev) => {
                self.dispatch(world, ev);
                true
            }
            None => false,
        }
    }

    /// Discards all pending events (used when tearing a scenario down).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    /// Closure-driven test worlds: no typed vocabulary.
    macro_rules! boxed_world {
        ($($t:ty),*) => {$(
            impl World for $t {
                type Event = NoEvent;
                fn handle(&mut self, ev: NoEvent, _: &mut Engine<Self>) {
                    match ev {}
                }
            }
        )*};
    }
    boxed_world!(Vec<u32>, Vec<u64>, u32, ());

    #[test]
    fn events_run_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule_boxed(SimTime::from_nanos(30), |l: &mut Vec<u32>, _| l.push(3));
        eng.schedule_boxed(SimTime::from_nanos(10), |l: &mut Vec<u32>, _| l.push(1));
        eng.schedule_boxed(SimTime::from_nanos(20), |l: &mut Vec<u32>, _| l.push(2));
        eng.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(eng.boxed_scheduled(), 3);
    }

    #[test]
    fn same_instant_events_are_fifo() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        for i in 0..5 {
            eng.schedule_boxed(SimTime::from_nanos(7), move |l: &mut Vec<u32>, _| l.push(i));
        }
        eng.run(&mut log);
        assert_eq!(log, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handlers_can_reschedule_themselves() {
        struct W {
            count: u32,
        }
        enum Ev {
            Tick,
        }
        impl World for W {
            type Event = Ev;
            fn handle(&mut self, ev: Ev, eng: &mut Engine<Self>) {
                let Ev::Tick = ev;
                self.count += 1;
                if self.count < 10 {
                    eng.schedule_in(SimDuration::from_nanos(100), Ev::Tick);
                }
            }
        }
        let mut eng = Engine::new();
        let mut w = W { count: 0 };
        eng.schedule(SimTime::ZERO, Ev::Tick);
        eng.run(&mut w);
        assert_eq!(w.count, 10);
        assert_eq!(eng.now(), SimTime::from_nanos(900));
        assert_eq!(eng.boxed_scheduled(), 0, "typed path never boxes");
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: Engine<u32> = Engine::new();
        let mut w = 0;
        for i in 1..=10u64 {
            eng.schedule_boxed(SimTime::from_nanos(i * 10), |w: &mut u32, _| *w += 1);
        }
        eng.run_until(&mut w, SimTime::from_nanos(50));
        assert_eq!(w, 5);
        assert_eq!(eng.pending(), 5);
        eng.run(&mut w);
        assert_eq!(w, 10);
    }

    #[test]
    fn run_window_excludes_the_end_instant() {
        let mut eng: Engine<u32> = Engine::new();
        let mut w = 0;
        for i in 1..=10u64 {
            eng.schedule_boxed(SimTime::from_nanos(i * 10), |w: &mut u32, _| *w += 1);
        }
        eng.run_window(&mut w, SimTime::from_nanos(50));
        assert_eq!(
            w, 4,
            "the event at exactly 50 ns belongs to the next window"
        );
        eng.run_window(&mut w, SimTime::ZERO); // empty window: no-op
        assert_eq!(w, 4);
        eng.run(&mut w);
        assert_eq!(w, 10);
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule_boxed(
            SimTime::from_nanos(100),
            |l: &mut Vec<u64>, e: &mut Engine<_>| {
                // Scheduling "in the past" executes at the current instant.
                e.schedule_boxed(
                    SimTime::from_nanos(1),
                    |l: &mut Vec<u64>, e: &mut Engine<_>| {
                        l.push(e.now().as_nanos());
                    },
                );
                l.push(e.now().as_nanos());
            },
        );
        eng.run(&mut log);
        assert_eq!(log, vec![100, 100]);
    }

    #[test]
    #[should_panic(expected = "event cap")]
    fn runaway_schedules_trip_the_cap() {
        fn forever(_: &mut (), eng: &mut Engine<()>) {
            eng.schedule_boxed_in(SimDuration::from_nanos(1), forever);
        }
        let mut eng = Engine::new();
        eng.set_event_cap(1_000);
        eng.schedule_boxed(SimTime::ZERO, forever);
        eng.run(&mut ());
    }

    /// Regression: `step` used to bypass the event-cap guard that
    /// `run_until` enforced, so a runaway schedule driven one event at a
    /// time never tripped the cap.
    #[test]
    #[should_panic(expected = "event cap")]
    fn stepping_counts_against_the_cap() {
        fn forever(_: &mut (), eng: &mut Engine<()>) {
            eng.schedule_boxed_in(SimDuration::from_nanos(1), forever);
        }
        let mut eng = Engine::new();
        eng.set_event_cap(100);
        eng.schedule_boxed(SimTime::ZERO, forever);
        while eng.step(&mut ()) {}
    }

    #[test]
    fn step_runs_one_event() {
        let mut eng: Engine<u32> = Engine::new();
        let mut w = 0;
        eng.schedule_boxed(SimTime::from_nanos(1), |w: &mut u32, _| *w += 1);
        eng.schedule_boxed(SimTime::from_nanos(2), |w: &mut u32, _| *w += 1);
        assert!(eng.step(&mut w));
        assert_eq!(w, 1);
        eng.clear();
        assert!(!eng.step(&mut w));
    }

    /// Events far beyond the wheel horizon overflow into the heap band and
    /// migrate back as the cursor advances — order is unaffected.
    #[test]
    fn heap_band_overflow_preserves_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        // Far band (≫ 262 µs), scheduled first.
        eng.schedule_boxed(SimTime::from_millis(50), |l: &mut Vec<u32>, _| l.push(5));
        eng.schedule_boxed(SimTime::from_millis(10), |l: &mut Vec<u32>, _| l.push(3));
        // Near band.
        eng.schedule_boxed(SimTime::from_nanos(900), |l: &mut Vec<u32>, _| l.push(1));
        eng.schedule_boxed(SimTime::from_micros(200), |l: &mut Vec<u32>, _| l.push(2));
        // Mid band: within the horizon of the second event but not the first.
        eng.schedule_boxed(
            SimTime::from_millis(10) + crate::time::SimDuration::from_micros(100),
            |l: &mut Vec<u32>, _| l.push(4),
        );
        eng.run(&mut log);
        assert_eq!(log, vec![1, 2, 3, 4, 5]);
    }

    /// A handler scheduling into its own (partially drained) wheel slot and
    /// beyond keeps the total order.
    #[test]
    fn rescheduling_into_the_cursor_slot_is_ordered() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule_boxed(SimTime::from_nanos(512), |l: &mut Vec<u32>, e| {
            l.push(1);
            // Same wheel slot, later instant.
            e.schedule_boxed(SimTime::from_nanos(700), |l: &mut Vec<u32>, _| l.push(2));
            // Same slot, same instant: FIFO after the one above? No —
            // ordered purely by (at, seq): 600 < 700.
            e.schedule_boxed(SimTime::from_nanos(600), |l: &mut Vec<u32>, _| l.push(3));
        });
        eng.run(&mut log);
        assert_eq!(log, vec![1, 3, 2]);
    }

    #[test]
    fn schedule_last_orders_after_same_instant_events() {
        struct W {
            log: Vec<&'static str>,
        }
        enum Ev {
            Ordinary,
            Late,
        }
        impl World for W {
            type Event = Ev;
            fn handle(&mut self, ev: Ev, _: &mut Engine<Self>) {
                self.log.push(match ev {
                    Ev::Ordinary => "ordinary",
                    Ev::Late => "late",
                });
            }
        }
        let mut eng = Engine::new();
        let mut w = W { log: Vec::new() };
        let t = SimTime::from_nanos(500);
        // The late event is scheduled FIRST (lowest seq) yet runs last.
        eng.schedule_last(t, Ev::Late);
        eng.schedule(t, Ev::Ordinary);
        eng.schedule(t, Ev::Ordinary);
        eng.run(&mut w);
        assert_eq!(w.log, vec!["ordinary", "ordinary", "late"]);
    }

    /// Typed worlds for origin-key and cancellation tests.
    struct Log(Vec<u32>);
    enum Tag {
        Mark(u32),
    }
    impl World for Log {
        type Event = Tag;
        fn handle(&mut self, ev: Tag, _: &mut Engine<Self>) {
            let Tag::Mark(v) = ev;
            self.0.push(v);
        }
    }

    /// Same-instant origin-keyed events order by (gen, gen_class, origin,
    /// ctr) — not by scheduling order.
    #[test]
    fn origin_keys_order_same_instant_ties_invariantly() {
        let t = SimTime::from_nanos(100);
        // Schedule origin 2 first, then origin 1: origin order wins.
        let mut eng: Engine<Log> = Engine::new();
        let mut w = Log(Vec::new());
        eng.schedule_from(2, t, Tag::Mark(2));
        eng.schedule_from(1, t, Tag::Mark(1));
        eng.schedule_from(1, t, Tag::Mark(11)); // same origin: ctr keeps order
        eng.run(&mut w);
        assert_eq!(w.0, vec![1, 11, 2]);
    }

    /// An injected event (foreign key) interleaves exactly where the key
    /// says, regardless of injection order.
    #[test]
    fn injected_keys_interleave_by_key() {
        let t = SimTime::from_nanos(64);
        let mut eng: Engine<Log> = Engine::new();
        let mut w = Log(Vec::new());
        eng.schedule_from(5, t, Tag::Mark(5));
        // A key another engine would have built for origin 3's first
        // emission at gen 0: sorts before origin 5.
        eng.schedule_injected(
            t,
            OrderKey {
                gen: 0,
                gen_class: 0,
                origin: 3,
                ctr: 1,
            },
            Tag::Mark(3),
        );
        eng.run(&mut w);
        assert_eq!(w.0, vec![3, 5]);
    }

    /// A cancelled event never dispatches and never counts as executed —
    /// in the wheel band and in the heap band alike.
    #[test]
    fn cancelled_events_never_dispatch() {
        let mut eng: Engine<Log> = Engine::new();
        let mut w = Log(Vec::new());
        let near = eng.schedule_from(1, SimTime::from_nanos(50), Tag::Mark(1));
        let far = eng.schedule_from(1, SimTime::from_millis(10), Tag::Mark(2));
        eng.schedule_from(1, SimTime::from_nanos(60), Tag::Mark(3));
        assert_eq!(eng.pending(), 3);
        eng.cancel(near);
        eng.cancel(far);
        assert_eq!(eng.pending(), 1, "cancelled events leave the live count");
        eng.run(&mut w);
        assert_eq!(w.0, vec![3]);
        assert_eq!(eng.executed(), 1, "cancelled events do not execute");
    }

    /// `next_event_at` reports the earliest live event and skips cancelled
    /// ones.
    #[test]
    fn next_event_at_sees_through_cancellations() {
        let mut eng: Engine<Log> = Engine::new();
        assert_eq!(eng.next_event_at(), None);
        let h = eng.schedule_from(1, SimTime::from_nanos(40), Tag::Mark(1));
        eng.schedule_from(1, SimTime::from_micros(700), Tag::Mark(2)); // heap band
        assert_eq!(eng.next_event_at(), Some(SimTime::from_nanos(40)));
        eng.cancel(h);
        assert_eq!(eng.next_event_at(), Some(SimTime::from_micros(700)));
        let h2 = eng.schedule_from(2, SimTime::from_micros(600), Tag::Mark(3));
        assert_eq!(eng.next_event_at(), Some(SimTime::from_micros(600)));
        eng.cancel(h2);
        assert_eq!(eng.next_event_at(), Some(SimTime::from_micros(700)));
        let mut w = Log(Vec::new());
        eng.run(&mut w);
        assert_eq!(w.0, vec![2]);
    }
}
