//! The event engine: a calendar queue of scheduled actions over a world `W`.
//!
//! Handlers are boxed `FnOnce(&mut W, &mut Engine<W>)` closures. The engine
//! owns no domain state — the scenario drivers in the `capnet` crate define
//! their own world structs holding the Intravisor, NICs, stacks and apps, and
//! every event is a closure over ids into that world. This keeps the borrow
//! checker happy without `Rc<RefCell<…>>` webs and keeps runs deterministic:
//! ties in time are broken by a monotonically increasing sequence number.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

type Action<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with FIFO order among same-instant events.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event engine over a caller-owned world type `W`.
///
/// # Example
///
/// ```
/// use simkern::engine::Engine;
/// use simkern::time::SimTime;
///
/// let mut engine: Engine<u32> = Engine::new();
/// let mut counter = 0u32;
/// engine.schedule(SimTime::from_nanos(10), |c: &mut u32, _| *c += 1);
/// engine.schedule(SimTime::from_nanos(5), |c: &mut u32, _| *c += 10);
/// engine.run(&mut counter);
/// assert_eq!(counter, 11);
/// ```
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    executed: u64,
    event_cap: u64,
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// A generous default runaway guard (see [`Engine::set_event_cap`]).
    pub const DEFAULT_EVENT_CAP: u64 = 2_000_000_000;

    /// Creates an engine at virtual time zero with an empty calendar.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
            event_cap: Self::DEFAULT_EVENT_CAP,
        }
    }

    /// The current virtual instant (the timestamp of the running event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Caps the number of events a run may execute, as a guard against
    /// accidentally non-terminating schedules in tests.
    pub fn set_event_cap(&mut self, cap: u64) {
        self.event_cap = cap;
    }

    /// Schedules `action` to run at instant `at`.
    ///
    /// Events scheduled in the past of the current event are executed at the
    /// current instant instead (time never goes backwards); this matches how
    /// a hardware completion that "already happened" is observed at poll time.
    pub fn schedule<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        let at = at.max(self.now);
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq: self.seq,
            action: Box::new(action),
        });
    }

    /// Schedules `action` `delay` after the current instant.
    pub fn schedule_in<F>(&mut self, delay: crate::time::SimDuration, action: F)
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        let at = self.now + delay;
        self.schedule(at, action);
    }

    /// Runs events until the calendar is empty.
    ///
    /// # Panics
    ///
    /// Panics if the event cap is exceeded (runaway schedule).
    pub fn run(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    /// Runs events with timestamps `<= deadline`, then stops.
    ///
    /// The virtual clock is left at the later of the last executed event and
    /// any previous `now` — it does *not* jump to `deadline`, so interleaved
    /// `run_until` calls compose.
    ///
    /// # Panics
    ///
    /// Panics if the event cap is exceeded (runaway schedule).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must pop");
            self.now = ev.at;
            self.executed += 1;
            assert!(
                self.executed <= self.event_cap,
                "simulation exceeded event cap of {} events at t={}",
                self.event_cap,
                self.now
            );
            (ev.action)(world, self);
        }
    }

    /// Runs exactly one event if one is pending, returning `true` if it ran.
    pub fn step(&mut self, world: &mut W) -> bool {
        if let Some(ev) = self.queue.pop() {
            self.now = ev.at;
            self.executed += 1;
            (ev.action)(world, self);
            true
        } else {
            false
        }
    }

    /// Discards all pending events (used when tearing a scenario down).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn events_run_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule(SimTime::from_nanos(30), |l: &mut Vec<u32>, _| l.push(3));
        eng.schedule(SimTime::from_nanos(10), |l: &mut Vec<u32>, _| l.push(1));
        eng.schedule(SimTime::from_nanos(20), |l: &mut Vec<u32>, _| l.push(2));
        eng.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_events_are_fifo() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        for i in 0..5 {
            eng.schedule(SimTime::from_nanos(7), move |l: &mut Vec<u32>, _| l.push(i));
        }
        eng.run(&mut log);
        assert_eq!(log, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handlers_can_reschedule_themselves() {
        struct W {
            count: u32,
        }
        fn tick(w: &mut W, eng: &mut Engine<W>) {
            w.count += 1;
            if w.count < 10 {
                eng.schedule_in(SimDuration::from_nanos(100), tick);
            }
        }
        let mut eng = Engine::new();
        let mut w = W { count: 0 };
        eng.schedule(SimTime::ZERO, tick);
        eng.run(&mut w);
        assert_eq!(w.count, 10);
        assert_eq!(eng.now(), SimTime::from_nanos(900));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: Engine<u32> = Engine::new();
        let mut w = 0;
        for i in 1..=10u64 {
            eng.schedule(SimTime::from_nanos(i * 10), |w: &mut u32, _| *w += 1);
        }
        eng.run_until(&mut w, SimTime::from_nanos(50));
        assert_eq!(w, 5);
        assert_eq!(eng.pending(), 5);
        eng.run(&mut w);
        assert_eq!(w, 10);
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        eng.schedule(
            SimTime::from_nanos(100),
            |l: &mut Vec<u64>, e: &mut Engine<_>| {
                // Scheduling "in the past" executes at the current instant.
                e.schedule(
                    SimTime::from_nanos(1),
                    |l: &mut Vec<u64>, e: &mut Engine<_>| {
                        l.push(e.now().as_nanos());
                    },
                );
                l.push(e.now().as_nanos());
            },
        );
        eng.run(&mut log);
        assert_eq!(log, vec![100, 100]);
    }

    #[test]
    #[should_panic(expected = "event cap")]
    fn runaway_schedules_trip_the_cap() {
        fn forever(_: &mut (), eng: &mut Engine<()>) {
            eng.schedule_in(SimDuration::from_nanos(1), forever);
        }
        let mut eng = Engine::new();
        eng.set_event_cap(1_000);
        eng.schedule(SimTime::ZERO, forever);
        eng.run(&mut ());
    }

    #[test]
    fn step_runs_one_event() {
        let mut eng: Engine<u32> = Engine::new();
        let mut w = 0;
        eng.schedule(SimTime::from_nanos(1), |w: &mut u32, _| *w += 1);
        eng.schedule(SimTime::from_nanos(2), |w: &mut u32, _| *w += 1);
        assert!(eng.step(&mut w));
        assert_eq!(w, 1);
        eng.clear();
        assert!(!eng.step(&mut w));
    }
}
