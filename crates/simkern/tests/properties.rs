//! Property tests of the simulation kernel's ordering laws.

use proptest::prelude::*;
use simkern::engine::{Engine, NoEvent, World};
use simkern::resource::{BusyResource, FifoMutex};
use simkern::time::{SimDuration, SimTime};

/// Closure-driven test worlds (no typed vocabulary; newtypes because the
/// orphan rule forbids implementing the foreign `World` trait on std types
/// from an integration-test crate).
struct Log(Vec<(u64, usize)>);
struct Count(u32);
macro_rules! boxed_world {
    ($($t:ty),*) => {$(
        impl World for $t {
            type Event = NoEvent;
            fn handle(&mut self, ev: NoEvent, _: &mut Engine<Self>) {
                match ev {}
            }
        }
    )*};
}
boxed_world!(Log, Count);

proptest! {
    /// The engine executes events in nondecreasing time order, regardless
    /// of insertion order (including across the wheel/heap band split), and
    /// FIFO among equal timestamps.
    #[test]
    fn engine_is_a_priority_queue(times in proptest::collection::vec(0u64..600_000, 1..200)) {
        let mut eng: Engine<Log> = Engine::new();
        let mut log = Log(Vec::new());
        for (i, &t) in times.iter().enumerate() {
            eng.schedule_boxed(SimTime::from_nanos(t), move |l: &mut Log, e| {
                l.0.push((e.now().as_nanos(), i));
            });
        }
        eng.run(&mut log);
        let log = log.0;
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO among ties");
            }
        }
    }

    /// run_until never executes an event past the deadline, and a
    /// subsequent run executes exactly the remainder — with deadlines and
    /// instants spanning both calendar bands.
    #[test]
    fn run_until_partitions_execution(times in proptest::collection::vec(0u64..600_000, 1..100), cut in 0u64..600_000) {
        let mut eng: Engine<Count> = Engine::new();
        let mut count = Count(0);
        for &t in &times {
            eng.schedule_boxed(SimTime::from_nanos(t), |c: &mut Count, _| c.0 += 1);
        }
        eng.run_until(&mut count, SimTime::from_nanos(cut));
        let expect_first = times.iter().filter(|&&t| t <= cut).count() as u32;
        prop_assert_eq!(count.0, expect_first);
        eng.run(&mut count);
        prop_assert_eq!(count.0, times.len() as u32);
    }

    /// A BusyResource never overlaps grants and serves work conservatively:
    /// total busy time equals the sum of holds.
    #[test]
    fn busy_resource_non_overlap(reqs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..100)) {
        let mut r = BusyResource::new();
        let mut prev_end = 0u64;
        let mut total = 0u64;
        // Requests must be made in nondecreasing request order for FIFO.
        let mut reqs = reqs;
        reqs.sort_by_key(|&(t, _)| t);
        for &(t, hold) in &reqs {
            let done = r.occupy(SimTime::from_nanos(t), SimDuration::from_nanos(hold));
            // Completion is after both the request and the previous grant.
            prop_assert!(done.as_nanos() >= t + hold);
            prop_assert!(done.as_nanos() >= prev_end + hold);
            prev_end = done.as_nanos();
            total += hold;
        }
        prop_assert_eq!(r.total_busy().as_nanos(), total);
        prop_assert_eq!(r.grants(), reqs.len() as u64);
    }

    /// FIFO mutex: grants never overlap and are ordered by request time.
    #[test]
    fn fifo_mutex_grants_are_serialized(reqs in proptest::collection::vec((0u64..10_000, 1u64..2_000), 1..80)) {
        let mut m = FifoMutex::new(30, 2_600, 1_900);
        let mut reqs = reqs;
        reqs.sort_by_key(|&(t, _)| t);
        let mut prev_release = 0u64;
        let mut prev_acquire = 0u64;
        for &(t, hold) in &reqs {
            let g = m.acquire(SimTime::from_nanos(t), SimDuration::from_nanos(hold));
            prop_assert!(g.acquired_at.as_nanos() >= t, "no time travel");
            prop_assert!(g.acquired_at.as_nanos() >= prev_acquire, "FIFO order");
            prop_assert!(
                g.acquired_at.as_nanos() >= prev_release
                    || prev_release == 0,
                "no overlap with the previous critical section"
            );
            prop_assert!(g.released_at > g.acquired_at || hold == 0);
            prop_assert_eq!(g.contended, g.wait.as_nanos() > 0 || g.acquired_at.as_nanos() > t);
            prev_release = g.released_at.as_nanos();
            prev_acquire = g.acquired_at.as_nanos();
        }
        prop_assert_eq!(m.acquisitions(), reqs.len() as u64);
        prop_assert!(m.contentions() <= m.acquisitions());
    }

    /// Time arithmetic: (t + d) - t == d for all representable values.
    #[test]
    fn time_add_sub_inverse(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
        let ti = SimTime::from_nanos(t);
        let du = SimDuration::from_nanos(d);
        prop_assert_eq!((ti + du) - ti, du);
        prop_assert_eq!((ti + du) - du, ti);
    }

    /// Quantization is idempotent and floors.
    #[test]
    fn quantize_laws(t in 0u64..1_000_000, tick in 1u64..1_000) {
        let ti = SimTime::from_nanos(t);
        let tk = SimDuration::from_nanos(tick);
        let q = ti.quantize(tk);
        prop_assert!(q <= ti);
        prop_assert_eq!(q.quantize(tk), q, "idempotent");
        prop_assert_eq!(q.as_nanos() % tick, 0);
        prop_assert!(ti.as_nanos() - q.as_nanos() < tick);
    }

    /// Serialization time is monotone in bytes and inversely so in rate.
    #[test]
    fn wire_time_monotonicity(bytes in 1u64..100_000, rate in 1_000u64..10_000_000_000) {
        let d1 = SimDuration::for_bytes_at_rate(bytes, rate);
        let d2 = SimDuration::for_bytes_at_rate(bytes + 1, rate);
        prop_assert!(d2 >= d1);
        let d3 = SimDuration::for_bytes_at_rate(bytes, rate * 2);
        prop_assert!(d3 <= d1);
    }
}
