//! Support library for the bench targets.
//!
//! [`BenchReport`] is the machine-readable side of `cargo bench`: each
//! bench target records its paper-facing summary numbers (throughput,
//! latency, fairness) and serializes them to `BENCH_<name>.json` in the
//! working directory (or `$BENCH_REPORT_DIR`). CI uploads these files as
//! workflow artifacts, so every PR carries its own point on the repo's
//! perf trajectory.
//!
//! The JSON is written by hand: the workspace's vendored `serde` is a
//! no-op API stand-in (see `vendor/serde`), and the schema here is flat
//! enough that a formatter is all that's needed.
//!
//! # Example
//!
//! ```
//! use capnet_bench::BenchReport;
//! let mut report = BenchReport::new("doc_example");
//! report.record("star", "clients=8", &[("aggregate_mbit_per_sec", 941.0)]);
//! let path = report.write().unwrap();
//! let json = std::fs::read_to_string(&path).unwrap();
//! assert!(json.contains("\"aggregate_mbit_per_sec\": 941"));
//! # std::fs::remove_file(path).unwrap();
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

/// One recorded case: a bench name, a case label, and its metrics.
#[derive(Debug, Clone)]
struct Entry {
    bench: String,
    case: String,
    metrics: Vec<(String, f64)>,
}

/// A perf-trajectory report, serialized as `BENCH_<name>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    entries: Vec<Entry>,
}

impl BenchReport {
    /// Creates an empty report named `name` (the file becomes
    /// `BENCH_<name>.json`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// Records `metrics` for `case` of `bench`.
    pub fn record(&mut self, bench: &str, case: &str, metrics: &[(&str, f64)]) {
        self.entries.push(Entry {
            bench: bench.to_string(),
            case: case.to_string(),
            metrics: metrics.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Records `metrics` plus the host-speed trio derived from a measured
    /// run: `host_wall_ms` (wall clock of the run), `events_per_sec`
    /// (simulation events executed per host second) and
    /// `host_ns_per_sim_sec` (host nanoseconds spent per simulated
    /// second — the number the perf trajectory tracks across PRs; smaller
    /// is faster).
    pub fn record_timed(
        &mut self,
        bench: &str,
        case: &str,
        wall: std::time::Duration,
        events: u64,
        sim_seconds: f64,
        metrics: &[(&str, f64)],
    ) {
        let wall_s = wall.as_secs_f64();
        let mut all: Vec<(String, f64)> =
            metrics.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        all.push(("host_wall_ms".to_string(), wall_s * 1e3));
        all.push((
            "events_per_sec".to_string(),
            if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                f64::NAN
            },
        ));
        all.push((
            "host_ns_per_sim_sec".to_string(),
            if sim_seconds > 0.0 {
                wall_s * 1e9 / sim_seconds
            } else {
                f64::NAN
            },
        ));
        self.entries.push(Entry {
            bench: bench.to_string(),
            case: case.to_string(),
            metrics: all,
        });
    }

    /// Cases recorded so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` before the first [`BenchReport::record`].
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The destination path: `$BENCH_REPORT_DIR` (or the working
    /// directory) joined with `BENCH_<name>.json`.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var_os("BENCH_REPORT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        dir.join(format!("BENCH_{}.json", self.name))
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"report\": {},", json_string(&self.name));
        out.push_str("  \"generated_by\": \"capnet-bench\",\n");
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"bench\": {}, \"case\": {}, \"metrics\": {{",
                json_string(&e.bench),
                json_string(&e.case)
            );
            for (j, (k, v)) in e.metrics.iter().enumerate() {
                let _ = write!(out, "{}{}: {}", sep(j), json_string(k), json_number(*v));
            }
            out.push_str("}}");
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn sep(i: usize) -> &'static str {
    if i == 0 {
        ""
    } else {
        ", "
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a metric as a JSON number (non-finite values become `null`).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v.trunc() as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut r = BenchReport::new("unit");
        assert!(r.is_empty());
        r.record(
            "star",
            "clients=2",
            &[("aggregate_mbit_per_sec", 941.5), ("flows", 2.0)],
        );
        r.record("chain", "hops=3", &[("mbit_per_sec", 930.0)]);
        assert_eq!(r.len(), 2);
        let json = r.to_json();
        assert!(json.contains("\"report\": \"unit\""));
        assert!(json.contains("\"bench\": \"star\""));
        assert!(json.contains("\"case\": \"clients=2\""));
        assert!(json.contains("\"aggregate_mbit_per_sec\": 941.5"));
        assert!(json.contains("\"flows\": 2"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn record_timed_derives_speed_metrics() {
        let mut r = BenchReport::new("timed");
        r.record_timed(
            "star",
            "clients=8",
            std::time::Duration::from_millis(50),
            1_000_000,
            0.025,
            &[("aggregate_mbit_per_sec", 900.0)],
        );
        let json = r.to_json();
        assert!(json.contains("\"host_wall_ms\": 50"));
        assert!(json.contains("\"events_per_sec\": 20000000"));
        // 50 ms of host time for 25 ms simulated = 2e9 ns per sim second.
        assert!(json.contains("\"host_ns_per_sim_sec\": 2000000000"));
        assert!(json.contains("\"aggregate_mbit_per_sec\": 900"));
        // Degenerate denominators serialize as null, not a crash.
        let mut r = BenchReport::new("degenerate");
        r.record_timed("b", "c", std::time::Duration::ZERO, 1, 0.0, &[]);
        assert!(r.to_json().contains("null"));
    }

    #[test]
    fn strings_and_numbers_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_number(3.0), "3");
        assert_eq!(json_number(3.25), "3.25");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn write_lands_in_report_dir() {
        let dir = std::env::temp_dir().join("capnet_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Env vars are process-global; this is the only test that sets it.
        std::env::set_var("BENCH_REPORT_DIR", &dir);
        let mut r = BenchReport::new("dirtest");
        r.record("b", "c", &[("m", 1.0)]);
        let path = r.write().unwrap();
        std::env::remove_var("BENCH_REPORT_DIR");
        assert_eq!(path, dir.join("BENCH_dirtest.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"m\": 1"));
        std::fs::remove_file(path).unwrap();
    }
}
