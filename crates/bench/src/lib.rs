pub fn bench_lib_placeholder() {}
