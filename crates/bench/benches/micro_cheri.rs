//! Microbenchmarks of the capability machine — the real-silicon cost of
//! the checks the simulation model charges for. Useful when re-calibrating
//! `CostModel` or comparing against hardware-CHERI numbers.

use cheri::capability::Access;
use cheri::{Capability, Perms, TaggedMemory};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_capability_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("cheri_capability");
    let cap = Capability::root(0x1000, 0x10000, Perms::data());

    g.bench_function("check_access_hit", |b| {
        b.iter(|| black_box(cap.check_access(black_box(0x2000), 64, Access::Load)))
    });
    g.bench_function("check_access_oob", |b| {
        b.iter(|| black_box(cap.check_access(black_box(0x20000), 64, Access::Load)))
    });
    g.bench_function("try_restrict", |b| {
        b.iter(|| black_box(cap.try_restrict(black_box(0x2000), 256)))
    });
    g.bench_function("try_restrict_perms", |b| {
        b.iter(|| black_box(cap.try_restrict_perms(Perms::read_only())))
    });
    let sealer = Capability::root(0, 4096, Perms::SEAL | Perms::UNSEAL).with_addr(42);
    g.bench_function("seal_unseal", |b| {
        b.iter(|| {
            let s = cap.seal(&sealer).unwrap();
            black_box(s.unseal(&sealer).unwrap())
        })
    });
    g.bench_function("compressed_bounds", |b| {
        b.iter(|| {
            black_box(cheri::compress::representable_bounds(
                black_box(12_345),
                1 << 22,
            ))
        })
    });
    g.finish();
}

fn bench_tagged_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("cheri_tagged_memory");
    let mut mem = TaggedMemory::new(1 << 20);
    let root = mem.root_cap();
    let data = vec![0xAB; 1448];
    let mut buf = vec![0u8; 1448];

    g.throughput(criterion::Throughput::Bytes(1448));
    g.bench_function("write_1448", |b| {
        b.iter(|| mem.write(&root, black_box(4096), &data).unwrap())
    });
    g.bench_function("read_1448", |b| {
        b.iter(|| mem.read_into(&root, black_box(4096), &mut buf).unwrap())
    });
    g.bench_function("copy_1448", |b| {
        b.iter(|| mem.copy(&root, 4096, &root, 65536, 1448).unwrap())
    });
    g.throughput(criterion::Throughput::Elements(1));
    let value = root.try_restrict(0, 64).unwrap();
    g.bench_function("store_load_cap", |b| {
        b.iter(|| {
            mem.store_cap(&root, 8192, value).unwrap();
            black_box(mem.load_cap(&root, 8192).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_capability_ops, bench_tagged_memory);
criterion_main!(benches);
