//! Bench target for the **sharded parallel `NetSim`**: star fan-in at
//! three sizes, each at `workers = 1 / 2 / 4`.
//!
//! Two things are recorded per `(clients, workers)` case into
//! `BENCH_parallel.json`:
//!
//! * the host-speed trio (`host_wall_ms`, `events_per_sec`,
//!   `host_ns_per_sim_sec`) for the **run phase only** — scenario
//!   construction is identical across worker counts and its wall time is
//!   dominated by allocator noise (hundreds of 4 MiB node arenas), which
//!   would drown the worker-axis signal;
//! * the trace digest (split into `trace_digest_hi/lo` — the metrics are
//!   `f64`, which holds 32-bit halves exactly), plus `workers`,
//!   `lookahead_ns`, `host_parallelism` and the `ev_*` counters.
//!
//! The bench **asserts** that every worker count reproduces the
//! `workers = 1` digest and counters byte for byte, so CI's bench-smoke
//! job fails on any determinism regression. `speedup_vs_workers1` records
//! the honest wall-time ratio on the machine that ran the bench —
//! `host_parallelism` says how many cores that machine actually had (a
//! single-CPU runner multiplexes the shards on one thread, so the ratio
//! there measures sharding overhead against per-shard calendar savings,
//! not parallel speedup).

use capnet::netsim::NetSim;
use capnet::SimOutcome;
use capnet_bench::BenchReport;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simkern::{CostModel, SimDuration};

const SEED: u64 = 0x70B0;
const RUN: SimDuration = SimDuration::from_millis(25);
const HORIZON: SimDuration = SimDuration::from_millis(55);

/// Builds the star scenario and times only the simulation run.
fn star_case(clients: usize, workers: usize) -> (SimOutcome, std::time::Duration) {
    let mut sim = NetSim::new(CostModel::morello());
    sim.set_seed(SEED);
    sim.set_workers(workers);
    let star = capnet::topology::build_star(&mut sim, clients).expect("star builds");
    for (i, &leaf) in star.leaves.iter().enumerate() {
        let port = 5301 + i as u16;
        sim.add_server(star.hub, format!("hub-rx{i}"), port)
            .expect("server");
        sim.add_client(
            leaf,
            format!("leaf-tx{i}"),
            (star.hub_ip, port),
            RUN,
            SimDuration::ZERO,
        )
        .expect("client");
    }
    let t0 = std::time::Instant::now();
    let out = sim.run(HORIZON).expect("runs");
    (out, t0.elapsed())
}

/// Best-of-`reps` wall time (first outcome kept; all reps must agree).
fn measured(clients: usize, workers: usize, reps: usize) -> (SimOutcome, std::time::Duration) {
    let (out, mut best) = star_case(clients, workers);
    for _ in 1..reps {
        let (again, wall) = star_case(clients, workers);
        assert_eq!(
            again.trace, out.trace,
            "star/{clients}/w{workers}: a rerun diverged from itself"
        );
        best = best.min(wall);
    }
    (out, best)
}

fn bench_parallel(c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    // Best-of-7 (applied to every worker count alike) damps the
    // single-allocator noise that dominates run-to-run variance here.
    let reps = if smoke { 1 } else { 7 };
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let mut report = BenchReport::new("parallel");
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);

    for clients in [8usize, 32, 128] {
        let mut baseline: Option<(SimOutcome, f64)> = None;
        for workers in [1usize, 2, 4] {
            let (out, wall) = measured(clients, workers, reps);
            if let Some((base, _)) = &baseline {
                // The headline contract, enforced in CI's bench-smoke job:
                // byte-identical wire behavior at any worker count.
                assert_eq!(
                    base.trace, out.trace,
                    "star/{clients}: workers={workers} diverged from workers=1"
                );
                assert_eq!(
                    base.counters, out.counters,
                    "star/{clients}: workers={workers} counter drift"
                );
            }
            let wall_s = wall.as_secs_f64();
            let speedup = baseline
                .as_ref()
                .map_or(1.0, |(_, base_wall)| base_wall / wall_s);
            eprintln!(
                "[parallel] star/{clients} workers={workers}: {:.1} ms run, {speedup:.2}x vs workers=1, digest {:#018x}",
                wall_s * 1e3,
                out.trace.digest
            );
            let cnt = out.counters;
            let metrics = [
                ("workers", workers as f64),
                ("flows", clients as f64),
                ("host_parallelism", host_parallelism as f64),
                ("lookahead_ns", out.lookahead_ns as f64),
                ("speedup_vs_workers1", speedup),
                ("trace_digest_hi", (out.trace.digest >> 32) as f64),
                ("trace_digest_lo", (out.trace.digest & 0xFFFF_FFFF) as f64),
                ("trace_frames", out.trace.frames as f64),
                ("ev_loop_polls", cnt.loop_polls as f64),
                ("ev_deliveries", cnt.deliveries as f64),
                ("ev_switch_hops", cnt.switch_hops as f64),
                ("ev_timer_wakes", cnt.timer_wakes as f64),
                ("ev_stale_wakes", cnt.stale_wakes as f64),
                ("ev_parks", cnt.parks as f64),
                ("ev_wakes", cnt.wakes as f64),
            ];
            report.record_timed(
                "star",
                &format!("clients={clients}/workers={workers}"),
                wall,
                out.events,
                out.horizon.as_nanos() as f64 / 1e9,
                &metrics,
            );
            if baseline.is_none() {
                baseline = Some((out, wall_s));
            }
        }
        // Criterion's own timing loop only for the smallest case — the
        // artifacts above are the machine-readable trajectory.
        if clients == 8 {
            for workers in [1usize, 4] {
                group.bench_with_input(
                    BenchmarkId::new(format!("star{clients}"), workers),
                    &workers,
                    |b, &workers| b.iter(|| star_case(clients, workers)),
                );
            }
        }
    }

    group.finish();
    let path = report.write().expect("BENCH_parallel.json written");
    eprintln!("[parallel] perf trajectory: {}", path.display());
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
