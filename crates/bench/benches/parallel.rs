//! Bench target for the **sharded parallel `NetSim`**: star fan-in at
//! three sizes, each at `workers = 1 / 2 / 4`, with adaptive worker
//! selection left on — so the json records what a real caller gets:
//! small stars transparently collapse to the single-engine loop
//! (`workers_used = 1`), the 128-client star genuinely shards.
//!
//! Per `(clients, workers)` case, `BENCH_parallel.json` records:
//!
//! * the host-speed trio (`host_wall_ms`, `events_per_sec`,
//!   `host_ns_per_sim_sec`) for the **run phase only** — scenario
//!   construction is identical across worker counts and its wall time is
//!   dominated by allocator noise (hundreds of 4 MiB node arenas), which
//!   would drown the worker-axis signal;
//! * the trace digest (split into `trace_digest_hi/lo` — the metrics are
//!   `f64`, which holds 32-bit halves exactly), plus `workers` (what was
//!   asked), `workers_used` (what the adaptive model chose),
//!   `lookahead_ns`, `host_parallelism` and the `ev_*` counters —
//!   including the per-round quartet `ev_rounds` / `ev_empty_rounds` /
//!   `ev_xshard_frames` / `ev_rehome_bytes`, which prove on paper that
//!   rehoming stopped copying (`ev_rehome_bytes = 0` on the multiplexed
//!   driver) and how many rounds skipped the exchange sweep.
//!
//! The bench **asserts** that every worker count reproduces the
//! `workers = 1` digest and counters byte for byte — including one
//! forced-threaded, adaptive-off case — so CI's bench-smoke job fails on
//! any determinism regression. Cross-case derived ratios
//! (`speedup_vs_workers1`) are *not* recorded per case: they're computed
//! by `tools/bench_delta.py` from `host_wall_ms`, which also prints a
//! loud banner when `host_parallelism = 1` (a single-CPU runner
//! multiplexes the shards on one thread, so wall-ratios there measure
//! sharding overhead, not parallel speedup).

use capnet::netsim::NetSim;
use capnet::SimOutcome;
use capnet_bench::BenchReport;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simkern::{CostModel, SimDuration};

const SEED: u64 = 0x70B0;
const RUN: SimDuration = SimDuration::from_millis(25);
const HORIZON: SimDuration = SimDuration::from_millis(55);

/// How one case drives the sharded window loop.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Adaptive selection on, auto thread choice — what callers get.
    Auto,
    /// Adaptive off + worker threads forced on: pins the rendezvous
    /// protocol itself (barrier + mailbox slots) for the determinism
    /// gate, regardless of the runner's core count.
    ForcedThreaded,
}

/// Builds the star scenario and times only the simulation run.
fn star_case(clients: usize, workers: usize, mode: Mode) -> (SimOutcome, std::time::Duration) {
    let mut sim = NetSim::new(CostModel::morello());
    sim.set_seed(SEED);
    sim.set_workers(workers);
    if mode == Mode::ForcedThreaded {
        sim.set_adaptive_workers(false);
        sim.set_worker_threads(Some(true));
    }
    let star = capnet::topology::build_star(&mut sim, clients).expect("star builds");
    for (i, &leaf) in star.leaves.iter().enumerate() {
        let port = 5301 + i as u16;
        sim.add_server(star.hub, format!("hub-rx{i}"), port)
            .expect("server");
        sim.add_client(
            leaf,
            format!("leaf-tx{i}"),
            (star.hub_ip, port),
            RUN,
            SimDuration::ZERO,
        )
        .expect("client");
    }
    let t0 = std::time::Instant::now();
    let out = sim.run(HORIZON).expect("runs");
    (out, t0.elapsed())
}

/// Best-of-`reps` wall time (first outcome kept; all reps must agree).
fn measured(
    clients: usize,
    workers: usize,
    mode: Mode,
    reps: usize,
) -> (SimOutcome, std::time::Duration) {
    let (out, mut best) = star_case(clients, workers, mode);
    for _ in 1..reps {
        let (again, wall) = star_case(clients, workers, mode);
        assert_eq!(
            again.trace, out.trace,
            "star/{clients}/w{workers}: a rerun diverged from itself"
        );
        best = best.min(wall);
    }
    (out, best)
}

/// The per-case metric rows shared by every recorded entry.
fn case_metrics(
    out: &SimOutcome,
    clients: usize,
    workers: usize,
    host_parallelism: usize,
) -> Vec<(&'static str, f64)> {
    let cnt = out.counters;
    let r = out.rounds;
    vec![
        ("workers", workers as f64),
        ("workers_used", out.workers as f64),
        ("flows", clients as f64),
        ("host_parallelism", host_parallelism as f64),
        ("lookahead_ns", out.lookahead_ns as f64),
        ("trace_digest_hi", (out.trace.digest >> 32) as f64),
        ("trace_digest_lo", (out.trace.digest & 0xFFFF_FFFF) as f64),
        ("trace_frames", out.trace.frames as f64),
        ("ev_loop_polls", cnt.loop_polls as f64),
        ("ev_deliveries", cnt.deliveries as f64),
        ("ev_switch_hops", cnt.switch_hops as f64),
        ("ev_timer_wakes", cnt.timer_wakes as f64),
        ("ev_stale_wakes", cnt.stale_wakes as f64),
        ("ev_parks", cnt.parks as f64),
        ("ev_wakes", cnt.wakes as f64),
        ("ev_rounds", r.rounds as f64),
        ("ev_empty_rounds", r.empty_rounds as f64),
        ("ev_xshard_frames", r.xshard_frames as f64),
        ("ev_rehome_bytes", r.rehome_bytes as f64),
    ]
}

fn bench_parallel(c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    // Best-of-7 (applied to every worker count alike) damps the
    // single-allocator noise that dominates run-to-run variance here.
    let reps = if smoke { 1 } else { 7 };
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let mut report = BenchReport::new("parallel");
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);

    for clients in [8usize, 32, 128] {
        let mut baseline: Option<(SimOutcome, f64)> = None;
        for workers in [1usize, 2, 4] {
            let (out, wall) = measured(clients, workers, Mode::Auto, reps);
            if let Some((base, _)) = &baseline {
                // The headline contract, enforced in CI's bench-smoke job:
                // byte-identical wire behavior at any worker count.
                assert_eq!(
                    base.trace, out.trace,
                    "star/{clients}: workers={workers} diverged from workers=1"
                );
                assert_eq!(
                    base.counters, out.counters,
                    "star/{clients}: workers={workers} counter drift"
                );
            }
            let wall_s = wall.as_secs_f64();
            let speedup = baseline
                .as_ref()
                .map_or(1.0, |(_, base_wall)| base_wall / wall_s);
            eprintln!(
                "[parallel] star/{clients} workers={workers} (used {}): {:.1} ms run, {speedup:.2}x vs workers=1, digest {:#018x}",
                out.workers,
                wall_s * 1e3,
                out.trace.digest
            );
            report.record_timed(
                "star",
                &format!("clients={clients}/workers={workers}"),
                wall,
                out.events,
                out.horizon.as_nanos() as f64 / 1e9,
                &case_metrics(&out, clients, workers, host_parallelism),
            );
            if baseline.is_none() {
                baseline = Some((out, wall_s));
            }
        }

        // The forced-threaded determinism gate, one mid-size case: the
        // rendezvous protocol (one barrier per round, parity mailbox
        // slots) must land on the same digest even when the adaptive
        // model would have collapsed the plan and the auto driver would
        // have multiplexed. On a multicore runner this row doubles as the
        // recorded genuinely-parallel measurement.
        if clients == 32 {
            let (out, wall) = measured(clients, 2, Mode::ForcedThreaded, reps);
            let (base, _) = baseline.as_ref().expect("baseline recorded");
            assert_eq!(
                base.trace, out.trace,
                "star/{clients}: forced-threaded workers=2 diverged from workers=1"
            );
            assert_eq!(
                base.counters, out.counters,
                "star/{clients}: forced-threaded workers=2 counter drift"
            );
            assert_eq!(out.workers, 2, "forced-threaded case must stay sharded");
            eprintln!(
                "[parallel] star/{clients} workers=2 forced-threaded: {:.1} ms run, digest {:#018x}",
                wall.as_secs_f64() * 1e3,
                out.trace.digest
            );
            report.record_timed(
                "star",
                &format!("clients={clients}/workers=2-threaded"),
                wall,
                out.events,
                out.horizon.as_nanos() as f64 / 1e9,
                &case_metrics(&out, clients, 2, host_parallelism),
            );
        }

        // Criterion's own timing loop only for the smallest case — the
        // artifacts above are the machine-readable trajectory.
        if clients == 8 {
            for workers in [1usize, 4] {
                group.bench_with_input(
                    BenchmarkId::new(format!("star{clients}"), workers),
                    &workers,
                    |b, &workers| b.iter(|| star_case(clients, workers, Mode::Auto)),
                );
            }
        }
    }

    group.finish();
    let path = report.write().expect("BENCH_parallel.json written");
    eprintln!("[parallel] perf trajectory: {}", path.display());
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
