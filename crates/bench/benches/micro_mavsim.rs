//! Microbenchmarks of the mavsim telemetry protocol — the per-frame costs
//! a flight controller pays on its telemetry link: CRC, encode, decode,
//! and the two receive paths (flat-memory vs CHERI-compartment parser,
//! benign and attack traffic).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mavsim::frame::{crc16, MavFrame};
use mavsim::msg::{Attitude, CommandLong, Heartbeat, MavMode, Message};
use mavsim::parser::{attack, CheriParser, GroundStation, VulnerableParser};

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_mavsim/codec");
    let hb = Message::Heartbeat(Heartbeat {
        mode: MavMode::Auto,
        battery_pct: 87,
        armed: true,
    });
    let att = Message::Attitude(Attitude {
        roll_mrad: -314,
        pitch_mrad: 1_571,
        yaw_mrad: 2_000,
    });
    let cmd = Message::CommandLong(CommandLong {
        command: 400,
        params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 21196.0],
    });
    let wire_hb = MavFrame::encode(1, 1, 1, &hb);
    let wire_cmd = MavFrame::encode(2, 255, 190, &cmd);

    g.bench_function("crc16_30B", |b| {
        b.iter(|| crc16(black_box(&wire_cmd[1..36]), black_box(152)))
    });
    g.bench_function("encode_heartbeat", |b| {
        b.iter(|| MavFrame::encode(black_box(7), 1, 1, black_box(&hb)))
    });
    g.bench_function("encode_attitude", |b| {
        b.iter(|| MavFrame::encode(black_box(7), 1, 1, black_box(&att)))
    });
    g.bench_function("decode_heartbeat", |b| {
        b.iter(|| MavFrame::decode(black_box(&wire_hb)).unwrap())
    });
    g.bench_function("decode_command_long", |b| {
        b.iter(|| {
            MavFrame::decode(black_box(&wire_cmd))
                .and_then(|f| f.message())
                .unwrap()
        })
    });
    g.finish();
}

fn bench_parsers(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_mavsim/parsers");
    let benign = MavFrame::encode(
        1,
        1,
        1,
        &Message::Heartbeat(Heartbeat {
            mode: MavMode::Hover,
            battery_pct: 90,
            armed: true,
        }),
    );
    let exploit = attack::oversized_statustext(120, 0xFFFF);

    g.bench_function("flat_benign", |b| {
        let mut p = VulnerableParser::new();
        b.iter(|| p.handle(black_box(&benign)))
    });
    g.bench_function("cheri_benign", |b| {
        let mut p = CheriParser::new();
        b.iter(|| p.handle(black_box(&benign)))
    });
    // Attack handling including the compartment respawn — the full
    // fail-stop + recovery cycle the DoS costs.
    g.bench_function("cheri_attack_and_respawn", |b| {
        let mut p = CheriParser::new();
        b.iter(|| {
            let out = p.handle(black_box(&exploit));
            p.respawn();
            out
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_parsers);
criterion_main!(benches);
