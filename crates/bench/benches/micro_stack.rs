//! Microbenchmarks of the network stack: protocol codecs, the TCP engine,
//! the trampoline and the cross-compartment call — the building blocks
//! whose modeled costs the figures compose.

use chos::clock::ClockId;
use chos::syscall::Syscall;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fstack::ip::IpProto;
use fstack::ip::{checksum, Ipv4Hdr};
use fstack::tcp::tcb::Tcb;
use fstack::tcp::{TcpFlags, TcpOptions, TcpSegment};
use intravisor::{CvmConfig, Intravisor};
use simkern::{CostModel, SimDuration, SimTime};
use std::net::Ipv4Addr;

const A: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 1), 40000);
const B: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 2), 5201);

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_codecs");
    let payload = vec![0x5Au8; 1448];
    g.throughput(criterion::Throughput::Bytes(1448));
    g.bench_function("internet_checksum_1448", |b| {
        b.iter(|| black_box(checksum(&payload)))
    });
    let seg = TcpSegment {
        src_port: A.1,
        dst_port: B.1,
        seq: 1,
        ack: 2,
        flags: TcpFlags::only_ack(),
        window: 65535,
        options: TcpOptions {
            mss: None,
            ts: Some((1, 2)),
            ..Default::default()
        },
        payload: payload.clone().into(),
    };
    g.bench_function("tcp_segment_build", |b| {
        b.iter(|| black_box(seg.build(A.0, B.0)))
    });
    let bytes = seg.build(A.0, B.0);
    g.bench_function("tcp_segment_parse", |b| {
        b.iter(|| black_box(TcpSegment::parse(A.0, B.0, &bytes).unwrap()))
    });
    let ip = Ipv4Hdr::build(A.0, B.0, IpProto::Tcp, 1, &bytes);
    g.bench_function("ipv4_parse", |b| {
        b.iter(|| black_box(Ipv4Hdr::parse(&ip).unwrap()))
    });
    g.finish();
}

fn bench_tcp_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_engine");
    // A pre-established pair: measure the steady-state data pump.
    fn pair() -> (SimTime, Tcb, Tcb) {
        let mut now = SimTime::from_millis(1);
        let mut client = Tcb::connect(A, B, 1000, 1448);
        let syn = client.poll_output(now).remove(0);
        let mut server = Tcb::accept_from(B, A, &syn, 9000, 1448);
        for _ in 0..8 {
            for s in server.poll_output(now) {
                client.on_segment(now, &s);
            }
            for s in client.poll_output(now) {
                server.on_segment(now, &s);
            }
            now += SimDuration::from_micros(50);
        }
        (now, client, server)
    }
    g.bench_function("bulk_pump_64k", |b| {
        b.iter_with_setup(pair, |(mut now, mut cl, mut sv)| {
            let data = vec![7u8; 64 * 1024];
            let mut sent = 0;
            let mut recvd = 0;
            while recvd < data.len() {
                if sent < data.len() {
                    sent += cl.write(&data[sent..]);
                }
                for s in cl.poll_output(now) {
                    sv.on_segment(now, &s);
                }
                for s in sv.poll_output(now) {
                    cl.on_segment(now, &s);
                }
                recvd += sv.read(usize::MAX).len();
                now += SimDuration::from_micros(20);
            }
            black_box(recvd)
        })
    });
    g.finish();
}

fn bench_compartment_crossings(c: &mut Criterion) {
    let mut g = c.benchmark_group("compartment_crossings");
    let mut iv = Intravisor::new(1 << 20, CostModel::morello());
    let app = iv
        .create_cvm(CvmConfig::new("app").mem_size(64 * 1024))
        .unwrap();
    let svc_cvm = iv
        .create_cvm(CvmConfig::new("svc").mem_size(64 * 1024))
        .unwrap();
    let svc = iv.register_service(svc_cvm, "api").unwrap();

    g.bench_function("trampoline_clock_gettime", |b| {
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(1);
            black_box(iv.trampoline_syscall(app, t, Syscall::ClockGettime(ClockId::MonotonicRaw)))
        })
    });
    g.bench_function("xcall_sealed_pair", |b| {
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(1);
            black_box(iv.xcall(app, svc, t).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codecs,
    bench_tcp_engine,
    bench_compartment_crossings
);
criterion_main!(benches);
