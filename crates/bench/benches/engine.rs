//! Microbench for the simkern event engine: raw schedule/dispatch
//! throughput of the typed calendar, in both bands of the two-band
//! structure — the timer-wheel near band (loop ticks, wire deliveries)
//! and the binary-heap overflow band (retransmission timers, deep egress
//! backlogs) — against the boxed-closure escape hatch the engine kept for
//! small worlds. The spread between `typed_wheel` and `boxed_wheel` is the
//! allocation the PR removed from every steady-state event; the spread
//! between `typed_wheel` and `typed_heap` is what the wheel front-end buys
//! for the dense near-future band.

use capnet_bench::BenchReport;
use criterion::{criterion_group, criterion_main, Criterion};
use simkern::engine::{Engine, NoEvent, World};
use simkern::time::{SimDuration, SimTime};

/// A self-rescheduling typed world: one inline event per tick.
struct Ticker {
    remaining: u64,
    period: SimDuration,
}

enum Ev {
    Tick,
}

impl World for Ticker {
    type Event = Ev;
    fn handle(&mut self, ev: Ev, eng: &mut Engine<Self>) {
        let Ev::Tick = ev;
        if self.remaining > 0 {
            self.remaining -= 1;
            eng.schedule_in(self.period, Ev::Tick);
        }
    }
}

/// The boxed twin: every tick allocates a fresh closure (the pre-typed
/// engine's only representation).
struct BoxedTicker {
    remaining: u64,
    period: SimDuration,
}

impl World for BoxedTicker {
    type Event = NoEvent;
    fn handle(&mut self, ev: NoEvent, _: &mut Engine<Self>) {
        match ev {}
    }
}

fn boxed_tick(w: &mut BoxedTicker, eng: &mut Engine<BoxedTicker>) {
    if w.remaining > 0 {
        w.remaining -= 1;
        eng.schedule_boxed_in(w.period, boxed_tick);
    }
}

/// Runs `events` typed self-reschedules at `period` and returns events/sec.
fn typed_throughput(events: u64, period: SimDuration) -> f64 {
    let mut eng = Engine::new();
    let mut w = Ticker {
        remaining: events,
        period,
    };
    eng.schedule(SimTime::ZERO, Ev::Tick);
    let t0 = std::time::Instant::now();
    eng.run(&mut w);
    events as f64 / t0.elapsed().as_secs_f64()
}

fn boxed_throughput(events: u64, period: SimDuration) -> f64 {
    let mut eng = Engine::new();
    let mut w = BoxedTicker {
        remaining: events,
        period,
    };
    eng.schedule_boxed(SimTime::ZERO, boxed_tick);
    let t0 = std::time::Instant::now();
    eng.run(&mut w);
    events as f64 / t0.elapsed().as_secs_f64()
}

/// The poll-loop cadence: lands every schedule in the wheel's near band.
const WHEEL_PERIOD: SimDuration = SimDuration::from_nanos(900);
/// Far beyond the ≈262 µs wheel horizon: every schedule overflows to the
/// heap and migrates back as the cursor advances.
const HEAP_PERIOD: SimDuration = SimDuration::from_millis(1);
const EVENTS: u64 = 1_000_000;

fn bench_engine(c: &mut Criterion) {
    let mut report = BenchReport::new("engine");

    for (case, throughput) in [
        ("typed_wheel", typed_throughput(EVENTS, WHEEL_PERIOD)),
        ("typed_heap", typed_throughput(EVENTS, HEAP_PERIOD)),
        ("boxed_wheel", boxed_throughput(EVENTS, WHEEL_PERIOD)),
        ("boxed_heap", boxed_throughput(EVENTS, HEAP_PERIOD)),
    ] {
        eprintln!("[engine] {case}: {:.1} M events/s", throughput / 1e6);
        report.record(
            "schedule_dispatch",
            case,
            &[("events_per_sec", throughput), ("events", EVENTS as f64)],
        );
    }

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("typed_wheel_100k", |b| {
        b.iter(|| typed_throughput(100_000, WHEEL_PERIOD))
    });
    group.bench_function("typed_heap_100k", |b| {
        b.iter(|| typed_throughput(100_000, HEAP_PERIOD))
    });
    group.bench_function("boxed_wheel_100k", |b| {
        b.iter(|| boxed_throughput(100_000, WHEEL_PERIOD))
    });
    group.finish();

    let path = report.write().expect("BENCH_engine.json written");
    eprintln!("[engine] perf trajectory: {}", path.display());
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
