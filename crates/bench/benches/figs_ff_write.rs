//! Bench targets regenerating **Figs. 4–6**: `ff_write()` latency
//! distributions per scenario, plus the Fig. 3 security check as a
//! zero-cost sanity gate.
//!
//! Each group prints the simulated box-plot statistics once (the paper
//! artifact) and lets Criterion time the measurement harness itself.

use capnet::experiment::fig3;
use capnet::experiment::figs::{measure, LatencyScenario};
use criterion::{criterion_group, criterion_main, Criterion};
use simkern::CostModel;

const ITERS: usize = 5_000;

fn report(scenario: LatencyScenario) {
    let run = measure(scenario, 20_000, CostModel::morello(), 11).expect("measure");
    eprintln!(
        "[figs] {}: mean={:.0}ns q1={} med={} q3={} ({:.1}% outliers removed)",
        scenario.label(),
        run.summary.mean,
        run.summary.q1,
        run.summary.median,
        run.summary.q3,
        run.removed_fraction * 100.0
    );
}

fn bench_fig4(c: &mut Criterion) {
    report(LatencyScenario::Baseline);
    report(LatencyScenario::Scenario1);
    let mut g = c.benchmark_group("fig4_ff_write");
    g.sample_size(10);
    g.bench_function("baseline", |b| {
        b.iter(|| measure(LatencyScenario::Baseline, ITERS, CostModel::morello(), 1).unwrap())
    });
    g.bench_function("scenario1", |b| {
        b.iter(|| measure(LatencyScenario::Scenario1, ITERS, CostModel::morello(), 1).unwrap())
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    report(LatencyScenario::Scenario2Uncontended);
    let mut g = c.benchmark_group("fig5_ff_write");
    g.sample_size(10);
    g.bench_function("scenario2_uncontended", |b| {
        b.iter(|| {
            measure(
                LatencyScenario::Scenario2Uncontended,
                ITERS,
                CostModel::morello(),
                1,
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    report(LatencyScenario::Scenario2Contended);
    let mut g = c.benchmark_group("fig6_ff_write");
    g.sample_size(10);
    g.bench_function("scenario2_contended", |b| {
        b.iter(|| {
            measure(
                LatencyScenario::Scenario2Contended,
                ITERS,
                CostModel::morello(),
                1,
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let out = fig3::run().expect("fig3");
    eprintln!("[fig3] {}", out.fault);
    let mut g = c.benchmark_group("fig3_violation");
    g.bench_function("full_experiment", |b| b.iter(|| fig3::run().unwrap()));
    g.finish();
}

criterion_group!(benches, bench_fig4, bench_fig5, bench_fig6, bench_fig3);
criterion_main!(benches);
