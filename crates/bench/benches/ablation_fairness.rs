//! Ablation: app-cVM scheduling policy for contended Scenario 2
//! (Table II bottom rows; the paper's fairness-control future work).
//!
//! Prints the contended client split under the paper-calibrated barging
//! model (expect ≈531/410) and under round-robin (expect ≈470/470), and
//! lets Criterion time the simulation harness itself.

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

use capnet::netsim::AppSched;
use capnet::scenario::{run_bandwidth_full, ScenarioKind, TrafficMode};
use criterion::{criterion_group, criterion_main, Criterion};
use simkern::{CostModel, SimDuration};
use updk::wire::Impairments;

const DUR: SimDuration = SimDuration::from_millis(60);

fn split(sched: AppSched) -> (f64, f64) {
    let out = run_bandwidth_full(
        ScenarioKind::Scenario2Contended,
        TrafficMode::Client,
        DUR,
        CostModel::morello(),
        Impairments::default(),
        sched,
    )
    .expect("contended cell");
    (out.clients[0].mbit_per_sec(), out.clients[1].mbit_per_sec())
}

fn bench_fairness(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fairness");
    g.sample_size(10);
    let cases = [
        ("barging_paper", AppSched::paper_barging()),
        ("round_robin", AppSched::RoundRobin),
    ];
    for (name, sched) in cases {
        let (a, b) = split(sched);
        eprintln!("[{name}] contended client split: {a:.0} / {b:.0} Mbit/s");
        g.bench_function(name, |bch| bch.iter(|| split(sched)));
    }
    g.finish();
}

criterion_group!(benches, bench_fairness);
criterion_main!(benches);
