//! Ablation: locking strategies for the Scenario 2 service mutex.
//!
//! The paper's future work: "investigate in details the impact of different
//! locking strategies to further reduce the overhead of our designs." This
//! bench sweeps the strategy space the cost model exposes:
//!
//! * **umtx-blocking** (the paper's design): sleep in the kernel, pay
//!   block+wake on contention;
//! * **spin**: burn cycles, zero block/wake cost, grant at release;
//! * **backoff-spin**: spin with a bounded exponential pause (modeled as a
//!   small fixed re-check latency);
//! * plus a **loop-hold sweep**, showing how shrinking the service loop's
//!   critical section collapses Fig. 6's 19 µs.
//!
//! For each variant it prints the simulated contended `ff_write` mean — the
//! paper-facing artifact — and lets Criterion time the harness.

use capnet::experiment::figs::{measure, LatencyScenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simkern::CostModel;

struct Strategy {
    name: &'static str,
    mutex_fast_ns: u64,
    umtx_block_ns: u64,
    umtx_wake_ns: u64,
}

const STRATEGIES: [Strategy; 3] = [
    Strategy {
        name: "umtx_blocking",
        mutex_fast_ns: 30,
        umtx_block_ns: 2_600,
        umtx_wake_ns: 1_900,
    },
    Strategy {
        name: "pure_spin",
        mutex_fast_ns: 30,
        umtx_block_ns: 0,
        umtx_wake_ns: 0,
    },
    Strategy {
        name: "backoff_spin",
        mutex_fast_ns: 30,
        umtx_block_ns: 0,
        umtx_wake_ns: 260, // average re-check latency after release
    },
];

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_locking_strategy");
    g.sample_size(10);
    for s in &STRATEGIES {
        let mut costs = CostModel::morello();
        costs.mutex_fast_ns = s.mutex_fast_ns;
        costs.umtx_block_ns = s.umtx_block_ns;
        costs.umtx_wake_ns = s.umtx_wake_ns;
        let run = measure(
            LatencyScenario::Scenario2Contended,
            20_000,
            costs.clone(),
            3,
        )
        .expect("measure");
        eprintln!(
            "[ablation] {}: contended ff_write mean={:.0}ns median={}ns",
            s.name, run.summary.mean, run.summary.median
        );
        g.bench_with_input(BenchmarkId::new("strategy", s.name), s, |b, s| {
            let mut costs = CostModel::morello();
            costs.mutex_fast_ns = s.mutex_fast_ns;
            costs.umtx_block_ns = s.umtx_block_ns;
            costs.umtx_wake_ns = s.umtx_wake_ns;
            b.iter(|| {
                measure(LatencyScenario::Scenario2Contended, 4_000, costs.clone(), 3).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_loop_hold_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_loop_hold");
    g.sample_size(10);
    for hold_us in [2u64, 4, 8, 16] {
        let mut costs = CostModel::morello();
        costs.s2_loop_hold_ns = hold_us * 1_000;
        let run = measure(
            LatencyScenario::Scenario2Contended,
            20_000,
            costs.clone(),
            5,
        )
        .expect("measure");
        eprintln!(
            "[ablation] loop_hold={hold_us}us: contended ff_write mean={:.0}ns",
            run.summary.mean
        );
        g.bench_with_input(
            BenchmarkId::new("loop_hold_us", hold_us),
            &hold_us,
            |b, &hold_us| {
                let mut costs = CostModel::morello();
                costs.s2_loop_hold_ns = hold_us * 1_000;
                b.iter(|| {
                    measure(LatencyScenario::Scenario2Contended, 4_000, costs.clone(), 5).unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_loop_hold_sweep);
criterion_main!(benches);
