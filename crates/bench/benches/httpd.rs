//! Bench target for the **HTTP serving plane**: the capnet-httpd static
//! server under an open-loop client fleet, in the two regimes that stress
//! opposite ends of the stack.
//!
//! Recorded into `BENCH_httpd.json` per case:
//!
//! * `p50_us` / `p99_us` / `p999_us` — request latency percentiles over
//!   the aggregated fleet population (connect-to-last-body-byte for the
//!   first request on a connection, write-to-last-byte thereafter);
//! * `requests_per_sec` — completed 200s over the virtual horizon;
//! * `conns_started` / `requests_ok` — population sanity counters;
//! * the trace digest (`trace_digest_hi/lo`) of every case.
//!
//! The **keep-alive** case pipelines several requests per connection and
//! exercises persistent-connection parsing and the server's idle reaping;
//! the **churn** case closes after every request and exercises the SYN
//! path, TIME_WAIT recycling and ephemeral-port allocation at rate.
//!
//! The bench also **asserts** the keep-alive star reproduces its
//! `workers = 1` digest at `workers = 2` and `workers = 4` — the CI
//! bench-smoke determinism gate extended over the serving plane.

use capnet::scenario::ScenarioSpec;
use capnet::SimOutcome;
use capnet_bench::BenchReport;
use capnet_httpd::{FleetConfig, FleetReport, HttpServerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use simkern::SimDuration;

const SEED: u64 = 0x4A77;
const RUN: SimDuration = SimDuration::from_millis(120);
const LEAVES: usize = 4;

fn httpd_case(fleet: FleetConfig, workers: usize) -> (SimOutcome, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let out = ScenarioSpec::star(LEAVES)
        .duration(RUN)
        .seed(SEED)
        .workers(workers)
        // Adaptive selection would collapse this 4-leaf star back to one
        // engine, making the workers=2/4 digest gate below vacuous.
        .adaptive_workers(false)
        .http(HttpServerConfig::default(), fleet)
        .run()
        .expect("httpd star runs");
    (out, t0.elapsed())
}

fn keep_alive_fleet() -> FleetConfig {
    FleetConfig {
        rate_per_sec: 2_000,
        keep_alive_per_mille: 900,
        requests_per_conn: 8,
        ..FleetConfig::default()
    }
}

fn churn_fleet() -> FleetConfig {
    FleetConfig {
        rate_per_sec: 4_000,
        keep_alive_per_mille: 0,
        think_ns: 0,
        ..FleetConfig::default()
    }
}

fn digest_halves(out: &SimOutcome) -> [(&'static str, f64); 2] {
    [
        ("trace_digest_hi", (out.trace.digest >> 32) as f64),
        ("trace_digest_lo", (out.trace.digest & 0xFFFF_FFFF) as f64),
    ]
}

fn bench_httpd(c: &mut Criterion) {
    let mut report = BenchReport::new("httpd");
    let mut group = c.benchmark_group("httpd");
    group.sample_size(10);

    for (name, fleet) in [("keep_alive", keep_alive_fleet()), ("churn", churn_fleet())] {
        let (out, wall) = httpd_case(fleet, 1);
        let agg = FleetReport::aggregate(name, &out.http_fleets);
        let rps = agg.requests_per_sec(SimDuration::from_nanos(out.horizon.as_nanos()));
        eprintln!(
            "[httpd] {name}: {} conns, {} ok, p50={:.1}us p99={:.1}us p999={:.1}us, {rps:.0} req/s",
            agg.conns_started,
            agg.requests_ok,
            agg.p50_us(),
            agg.p99_us(),
            agg.p999_us(),
        );
        assert!(agg.requests_ok > 0, "{name}: the fleet completed requests");
        let [hi, lo] = digest_halves(&out);
        report.record_timed(
            "star4",
            name,
            wall,
            out.events,
            out.horizon.as_nanos() as f64 / 1e9,
            &[
                ("p50_us", agg.p50_us()),
                ("p99_us", agg.p99_us()),
                ("p999_us", agg.p999_us()),
                ("requests_per_sec", rps),
                ("conns_started", agg.conns_started as f64),
                ("requests_ok", agg.requests_ok as f64),
                hi,
                lo,
            ],
        );
    }

    // Determinism gate: the serving plane must shard byte-identically
    // (cf. tests/httpd_churn.rs, which also checks the fleet reports).
    let (base, _) = httpd_case(keep_alive_fleet(), 1);
    for workers in [2, 4] {
        let (sharded, _) = httpd_case(keep_alive_fleet(), workers);
        assert_eq!(
            base.trace, sharded.trace,
            "keep-alive star must be byte-identical at workers={workers}"
        );
        assert!(sharded.workers > 1, "rerun must stay sharded");
    }

    // Criterion's own timing loop for the churn-heavy case; the report
    // entries above are the machine-readable trajectory.
    group.bench_function("churn_star4", |b| b.iter(|| httpd_case(churn_fleet(), 1)));
    group.finish();
    let path = report.write().expect("BENCH_httpd.json written");
    eprintln!("[httpd] perf trajectory: {}", path.display());
}

criterion_group!(benches, bench_httpd);
criterion_main!(benches);
