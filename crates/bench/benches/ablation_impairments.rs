//! Ablation: TCP goodput under link impairments (extension experiment).
//!
//! The paper's testbed cables are ideal; this sweep drives Baseline and the
//! Scenario 2 compartment split over lossy/reordering cables and prints the
//! goodput each sustains. Two properties are under test:
//!
//! 1. F-Stack's TCP recovery machinery keeps the stack functional at edge-
//!    realistic loss rates (graceful decay, no collapse below 5 % loss);
//! 2. compartmentalization is loss-neutral: Scenario 2 tracks Baseline at
//!    every impairment level.

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

use capnet::scenario::{run_bandwidth_impaired, ScenarioKind, TrafficMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simkern::{CostModel, SimDuration};
use updk::wire::Impairments;

const DUR: SimDuration = SimDuration::from_millis(40);

fn goodput(kind: ScenarioKind, imp: Impairments) -> f64 {
    run_bandwidth_impaired(kind, TrafficMode::Server, DUR, CostModel::morello(), imp)
        .expect("impaired cell")
        .servers[0]
        .mbit_per_sec()
}

fn bench_loss_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_impairments/loss");
    g.sample_size(10);
    for per_mille in [0u16, 5, 20] {
        let imp = Impairments::lossy(per_mille);
        let base = goodput(ScenarioKind::BaselineSingleProcess, imp);
        let s2 = goodput(ScenarioKind::Scenario2Uncontended, imp);
        eprintln!(
            "[loss {:>4.1}%] Baseline {:>4.0} Mbit/s | Scenario2 {:>4.0} Mbit/s",
            per_mille as f64 / 10.0,
            base,
            s2
        );
        g.bench_with_input(
            BenchmarkId::new("baseline", per_mille),
            &per_mille,
            |b, &pm| {
                b.iter(|| goodput(ScenarioKind::BaselineSingleProcess, Impairments::lossy(pm)))
            },
        );
    }
    g.finish();
}

fn bench_reorder_and_dup(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_impairments/other");
    g.sample_size(10);
    let cases: [(&str, Impairments); 2] = [
        (
            "reorder2pct_300us",
            Impairments::reordering(20, SimDuration::from_micros(300)),
        ),
        (
            "dup5pct",
            Impairments {
                dup_per_mille: 50,
                ..Impairments::default()
            },
        ),
    ];
    for (name, imp) in cases {
        let bw = goodput(ScenarioKind::BaselineSingleProcess, imp);
        eprintln!("[{name}] Baseline {bw:>4.0} Mbit/s");
        g.bench_function(name, |b| {
            b.iter(|| goodput(ScenarioKind::BaselineSingleProcess, imp))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_loss_sweep, bench_reorder_and_dup);
criterion_main!(benches);
