//! Bench target for the **TCP protocol-fidelity tier**: congestion-control
//! fairness on a lossy dumbbell and SACK goodput recovery on a lossy WAN.
//!
//! Recorded into `BENCH_tcp.json` per case:
//!
//! * `fairness_index` — Jain's index over the dumbbell's per-flow rates
//!   (1.0 = perfectly even trunk split) for Reno/Reno, Reno/CUBIC and
//!   CUBIC/CUBIC sender mixes under 1% loss;
//! * `goodput_mbit_per_sec` — aggregate lossy-WAN application goodput with
//!   SACK negotiation off and on at the same seed (same drops), isolating
//!   what scoreboard-driven retransmission buys;
//! * the trace digest (`trace_digest_hi/lo`) of every case, plus the
//!   host-speed trio for the run phase.
//!
//! The bench also **asserts** that the CUBIC+SACK lossy star reproduces
//! its `workers = 1` digest at `workers = 2` — extending CI's bench-smoke
//! determinism gate over the new protocol machinery (persist timer, SACK
//! scoreboard, pluggable CC).

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

use capnet::scenario::{fairness_index, run_dumbbell_cc_impaired, run_lossy_wan};
use capnet::{CcAlgo, SimOutcome};
use capnet_bench::BenchReport;
use criterion::{criterion_group, criterion_main, Criterion};
use simkern::{CostModel, SimDuration};
use updk::wire::Impairments;

const DUMBBELL_SEED: u64 = 5;
const WAN_SEED: u64 = 77;
const DUMBBELL_RUN: SimDuration = SimDuration::from_millis(30);
const WAN_RUN: SimDuration = SimDuration::from_millis(40);
const DUMBBELL_LOSS: u16 = 10;
const WAN_LOSS: u16 = 20;

fn dumbbell_case(algos: &[CcAlgo]) -> (SimOutcome, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let out = run_dumbbell_cc_impaired(
        2,
        DUMBBELL_RUN,
        CostModel::morello(),
        DUMBBELL_SEED,
        algos,
        Impairments {
            loss_per_mille: DUMBBELL_LOSS,
            ..Default::default()
        },
    )
    .expect("dumbbell runs");
    (out, t0.elapsed())
}

fn wan_case(sack: bool) -> (SimOutcome, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let out = run_lossy_wan(WAN_RUN, CostModel::morello(), WAN_SEED, WAN_LOSS, sack)
        .expect("lossy wan runs");
    (out, t0.elapsed())
}

fn digest_halves(out: &SimOutcome) -> [(&'static str, f64); 2] {
    [
        ("trace_digest_hi", (out.trace.digest >> 32) as f64),
        ("trace_digest_lo", (out.trace.digest & 0xFFFF_FFFF) as f64),
    ]
}

fn bench_tcp(c: &mut Criterion) {
    let mut report = BenchReport::new("tcp");
    let mut group = c.benchmark_group("tcp");
    group.sample_size(10);

    // Dumbbell trunk fairness across congestion-control mixes.
    for (name, algos) in [
        ("reno_reno", [CcAlgo::Reno, CcAlgo::Reno]),
        ("reno_cubic", [CcAlgo::Reno, CcAlgo::Cubic]),
        ("cubic_cubic", [CcAlgo::Cubic, CcAlgo::Cubic]),
    ] {
        let (out, wall) = dumbbell_case(&algos);
        let rates: Vec<f64> = out.servers.iter().map(|r| r.mbit_per_sec()).collect();
        let jain = fairness_index(&rates);
        eprintln!(
            "[tcp] dumbbell/{name}: {:.0}/{:.0} Mbit/s, J={jain:.3}",
            rates[0], rates[1]
        );
        let [hi, lo] = digest_halves(&out);
        report.record_timed(
            "dumbbell_cc",
            name,
            wall,
            out.events,
            out.horizon.as_nanos() as f64 / 1e9,
            &[
                ("fairness_index", jain),
                ("flow0_mbit_per_sec", rates[0]),
                ("flow1_mbit_per_sec", rates[1]),
                ("loss_per_mille", f64::from(DUMBBELL_LOSS)),
                hi,
                lo,
            ],
        );
    }

    // Lossy-WAN goodput, SACK off vs on at the same seed (same drops).
    let mut goodput_off = 0.0;
    for sack in [false, true] {
        let (out, wall) = wan_case(sack);
        let goodput: f64 = out.servers.iter().map(|r| r.mbit_per_sec()).sum();
        let name = if sack { "sack_on" } else { "sack_off" };
        if !sack {
            goodput_off = goodput;
        } else {
            eprintln!(
                "[tcp] lossy_wan: {goodput_off:.0} Mbit/s plain -> {goodput:.0} Mbit/s with SACK"
            );
        }
        let [hi, lo] = digest_halves(&out);
        report.record_timed(
            "lossy_wan",
            name,
            wall,
            out.events,
            out.horizon.as_nanos() as f64 / 1e9,
            &[
                ("goodput_mbit_per_sec", goodput),
                ("loss_per_mille", f64::from(WAN_LOSS)),
                ("sack", f64::from(u8::from(sack))),
                hi,
                lo,
            ],
        );
    }

    // Determinism gate over the new machinery: the CUBIC+SACK lossy star
    // must shard byte-identically (cf. tests/tcp_protocol_scenarios.rs).
    // Adaptive worker selection is forced off — a 2-client star collapses
    // to one engine otherwise, which would make the gate vacuous.
    let star = |workers: usize| {
        capnet::ScenarioSpec::star(2)
            .duration(WAN_RUN)
            .costs(CostModel::morello())
            .seed(WAN_SEED)
            .impairments(Impairments {
                loss_per_mille: WAN_LOSS,
                ..Default::default()
            })
            .workers(workers)
            .adaptive_workers(false)
            .congestion(CcAlgo::Cubic)
            .sack(true)
            .run()
            .expect("lossy cubic star runs")
    };
    let base = star(1);
    let sharded = star(2);
    assert_eq!(
        base.trace, sharded.trace,
        "CUBIC+SACK lossy star must be byte-identical at workers=2"
    );
    assert_eq!(
        sharded.workers, 2,
        "lossy cubic star rerun must stay sharded"
    );

    // Criterion's own timing loop for the cheapest case only; the report
    // entries above are the machine-readable trajectory.
    group.bench_function("lossy_wan_sack_on", |b| b.iter(|| wan_case(true)));
    group.finish();
    let path = report.write().expect("BENCH_tcp.json written");
    eprintln!("[tcp] perf trajectory: {}", path.display());
}

criterion_group!(benches, bench_tcp);
criterion_main!(benches);
