//! Bench target for the **price and payoff of isolation**: what
//! capability enforcement costs the serving plane, and what it detects
//! when compartments are actively attacked.
//!
//! Recorded into `BENCH_isolation.json`:
//!
//! * `overhead_pct` — the throughput delta between checks-off and
//!   full-isolation runs of the same workload. For the httpd star the
//!   full-isolation run charges every `ff_*` call the calibrated
//!   cross-cVM cost (`xcall_ns` + two boundary capability checks), so
//!   the delta is **deterministic in virtual time**. For the mavsim
//!   telemetry parser it is the host-time delta between the flat-memory
//!   parser and the CHERI-compartment parser over the same frame corpus.
//! * `violations_per_sec` — detected violations per virtual second when
//!   a full three-family chaos campaign (wire fuzzing, capability
//!   probes, bit flips) rides the serving plane: walker faults + flip
//!   kills/absorptions + the hub's counted malformed-frame drops.
//!
//! The campaign case is **also** a determinism gate: the chaos star must
//! reproduce its `workers = 1` trace and campaign digests at
//! `workers = 2` — the adversarial suite extends the sharding contract.

use capnet::scenario::ScenarioSpec;
use capnet::SimOutcome;
use capnet_bench::BenchReport;
use capnet_chaos::{BitFlipConfig, ChaosConfig, WalkerConfig, WireChaosConfig};
use capnet_httpd::{FleetConfig, FleetReport, HttpServerConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mavsim::frame::MavFrame;
use mavsim::msg::{Heartbeat, MavMode, Message};
use mavsim::parser::{CheriParser, GroundStation, VulnerableParser};
use simkern::{CostModel, SimDuration};

const SEED: u64 = 0x150;
const RUN: SimDuration = SimDuration::from_millis(80);
const LEAVES: usize = 4;

/// The calibrated full-isolation charge per `ff_*` call: the paper's
/// deepest split (Scenario 4 — app, F-Stack, DPDK and the NIC-register
/// proxy each in their own cVM) pays three cross-cVM crossings plus the
/// service-mutex fast path on every call.
fn full_isolation_ns() -> u64 {
    let m = CostModel::morello();
    3 * m.xcall_ns + m.mutex_fast_ns
}

fn fleet() -> FleetConfig {
    FleetConfig {
        rate_per_sec: 2_000,
        keep_alive_per_mille: 700,
        requests_per_conn: 4,
        ..FleetConfig::default()
    }
}

fn httpd_case(isolation_ns: u64) -> (SimOutcome, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let out = ScenarioSpec::star(LEAVES)
        .duration(RUN)
        .seed(SEED)
        .isolation_cost(isolation_ns)
        .http(HttpServerConfig::default(), fleet())
        .run()
        .expect("httpd star runs");
    (out, t0.elapsed())
}

fn chaos_case(workers: usize) -> (SimOutcome, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let out = ScenarioSpec::star(LEAVES)
        .duration(RUN)
        .seed(SEED)
        .workers(workers)
        .adaptive_workers(false)
        .http(HttpServerConfig::default(), fleet())
        .chaos(ChaosConfig {
            rounds: 400,
            wire: Some(WireChaosConfig::default()),
            walker: Some(WalkerConfig::default()),
            bitflip: Some(BitFlipConfig::default()),
            ..ChaosConfig::default()
        })
        .run()
        .expect("chaos star runs");
    (out, t0.elapsed())
}

fn rps(out: &SimOutcome) -> f64 {
    FleetReport::aggregate("agg", &out.http_fleets)
        .requests_per_sec(SimDuration::from_nanos(out.horizon.as_nanos()))
}

fn bench_isolation(c: &mut Criterion) {
    let smoke = std::env::var_os("BENCH_SMOKE").is_some();
    let mut report = BenchReport::new("isolation");
    let mut group = c.benchmark_group("isolation");
    group.sample_size(10);

    // ---- httpd: checks-off vs full isolation, deterministic delta ----
    // The checks-off side charges 1 ns (not 0): a zero charge also
    // flips the hosts into the gated ideal-loop regime, and the delta
    // would then mix loop-policy effects into the capability-check cost.
    // At 1 ns both runs drive the identical ungated loop and the delta
    // is purely the per-call charge.
    let (base, base_wall) = httpd_case(1);
    let (full, full_wall) = httpd_case(full_isolation_ns());
    let (base_rps, full_rps) = (rps(&base), rps(&full));
    assert!(base_rps > 0.0, "the baseline fleet completed requests");
    // The fleet is open-loop — completed requests track arrivals, so
    // throughput cannot see a per-call charge. Request latency can:
    // every `ff_*` call on the request path pays it, deterministically.
    let base_agg = FleetReport::aggregate("base", &base.http_fleets);
    let full_agg = FleetReport::aggregate("full", &full.http_fleets);
    let overhead_pct = 100.0 * (full_agg.p50_us() - base_agg.p50_us()) / base_agg.p50_us();
    eprintln!(
        "[isolation] httpd: p50 {:.1}us bare, {:.1}us at {}ns/ff_call \
         -> {overhead_pct:.2}% overhead ({base_rps:.0} req/s)",
        base_agg.p50_us(),
        full_agg.p50_us(),
        full_isolation_ns()
    );
    report.record_timed(
        "star4",
        "httpd/checks_off",
        base_wall,
        base.events,
        base.horizon.as_nanos() as f64 / 1e9,
        &[
            ("requests_per_sec", base_rps),
            ("p50_us", base_agg.p50_us()),
            ("p99_us", base_agg.p99_us()),
        ],
    );
    report.record_timed(
        "star4",
        "httpd/full_isolation",
        full_wall,
        full.events,
        full.horizon.as_nanos() as f64 / 1e9,
        &[
            ("requests_per_sec", full_rps),
            ("p50_us", full_agg.p50_us()),
            ("p99_us", full_agg.p99_us()),
            ("overhead_pct", overhead_pct),
        ],
    );

    // ---- mavsim: flat-memory vs CHERI-compartment parser, host time ----
    let frames: Vec<Vec<u8>> = (0..if smoke { 2_000u32 } else { 50_000 })
        .map(|i| {
            MavFrame::encode(
                i as u8,
                1,
                1,
                &Message::Heartbeat(Heartbeat {
                    mode: MavMode::Auto,
                    battery_pct: (i % 101) as u8,
                    armed: true,
                }),
            )
        })
        .collect();
    fn time_parser(frames: &[Vec<u8>], mut run: impl FnMut(&[u8])) -> std::time::Duration {
        let t0 = std::time::Instant::now();
        for wire in frames {
            run(wire);
        }
        t0.elapsed()
    }
    let mut flat = VulnerableParser::new();
    let flat_wall = time_parser(&frames, |w| {
        black_box(flat.handle(w));
    });
    let mut hardened = CheriParser::new();
    let cheri_wall = time_parser(&frames, |w| {
        black_box(hardened.handle(w));
    });
    let mav_overhead_pct = if flat_wall.as_nanos() > 0 {
        100.0 * (cheri_wall.as_secs_f64() - flat_wall.as_secs_f64()) / flat_wall.as_secs_f64()
    } else {
        0.0
    };
    eprintln!(
        "[isolation] mavsim: {} frames, flat {:?} vs cheri {:?} -> {mav_overhead_pct:.1}% overhead",
        frames.len(),
        flat_wall,
        cheri_wall,
    );
    report.record(
        "mavsim",
        "parser/full_isolation",
        &[
            ("frames", frames.len() as f64),
            ("overhead_pct", mav_overhead_pct),
        ],
    );

    // ---- chaos campaign: detection rate + determinism gate ----
    let (chaos, chaos_wall) = chaos_case(1);
    let campaign = &chaos.chaos[0];
    assert_eq!(campaign.mismatches(), 0, "every probe faulted as predicted");
    assert_eq!(campaign.corruptions(), 0, "no probe corrupted the victim");
    let hub_parse_drops = chaos
        .stack_stats
        .iter()
        .find(|(name, _)| name == "hub")
        .map_or(0, |(_, s)| s.parse_drops());
    let horizon_sec = chaos.horizon.as_nanos() as f64 / 1e9;
    let violations_per_sec =
        (campaign.violations_detected() + hub_parse_drops) as f64 / horizon_sec;
    eprintln!(
        "[isolation] chaos: {} violations + {hub_parse_drops} wire drops over \
         {horizon_sec:.3}s -> {violations_per_sec:.0} violations/s",
        campaign.violations_detected(),
    );
    report.record_timed(
        "star4",
        "chaos/campaign",
        chaos_wall,
        chaos.events,
        horizon_sec,
        &[
            ("violations_per_sec", violations_per_sec),
            ("campaign_rounds", campaign.rounds as f64),
            ("wire_parse_drops", hub_parse_drops as f64),
        ],
    );
    let (sharded, _) = chaos_case(2);
    assert_eq!(
        chaos.trace, sharded.trace,
        "the chaos star must be byte-identical at workers=2"
    );
    assert_eq!(
        chaos.chaos, sharded.chaos,
        "campaign digests must be byte-identical at workers=2"
    );

    group.bench_function("httpd_full_isolation_star4", |b| {
        b.iter(|| httpd_case(full_isolation_ns()))
    });
    group.finish();
    let path = report.write().expect("BENCH_isolation.json written");
    eprintln!("[isolation] perf trajectory: {}", path.display());
}

criterion_group!(benches, bench_isolation);
criterion_main!(benches);
