//! Bench target for the **switched N-node topologies**: star fan-in,
//! switch-chain depth, and dumbbell fairness.
//!
//! Criterion times the harness (wall clock of the discrete-event run); the
//! *measured artifacts* — aggregate Mbit/s through the shared bottleneck,
//! per-hop chain throughput, Jain's fairness index — are printed once per
//! case and serialized to `BENCH_topology.json` via
//! [`capnet_bench::BenchReport`], the repo's machine-readable perf
//! trajectory (uploaded per-PR by CI's bench-smoke job).

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

use capnet::netsim::NetSim;
use capnet::scenario::{fairness_index, run_dumbbell_fairness, run_star_iperf};
use capnet::topology::build_chain;
use capnet::{CcAlgo, ScenarioSpec, SimOutcome};
use capnet_bench::BenchReport;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simkern::{CostModel, SimDuration};

const SEED: u64 = 0x70B0;
const RUN: SimDuration = SimDuration::from_millis(25);

fn run_chain(hops: usize) -> SimOutcome {
    let mut sim = NetSim::new(CostModel::morello());
    sim.set_seed(SEED);
    let chain = build_chain(&mut sim, hops).expect("chain builds");
    sim.add_server(chain.b, "b-rx", 5501).expect("server");
    sim.add_client(chain.a, "a-tx", (chain.b_ip, 5501), RUN, SimDuration::ZERO)
        .expect("client");
    sim.run(RUN + SimDuration::from_millis(30)).expect("runs")
}

fn server_mbits(out: &SimOutcome) -> Vec<f64> {
    out.servers.iter().map(|r| r.mbit_per_sec()).collect()
}

/// The per-kind event counters every entry carries, so BENCH_*.json shows
/// *why* events/sec moved: loop polls vs deliveries vs park/wake traffic.
fn counter_metrics(out: &SimOutcome) -> [(&'static str, f64); 13] {
    let c = out.counters;
    let r = out.rounds;
    [
        ("ev_loop_polls", c.loop_polls as f64),
        ("ev_idle_polls", c.idle_polls as f64),
        ("ev_deliveries", c.deliveries as f64),
        ("ev_switch_hops", c.switch_hops as f64),
        ("ev_timer_wakes", c.timer_wakes as f64),
        ("ev_stale_wakes", c.stale_wakes as f64),
        ("ev_parks", c.parks as f64),
        ("ev_wakes", c.wakes as f64),
        // loop_polls + deliveries + switch_hops + stale_wakes == events
        // (the partition tests/event_engine.rs asserts), and boxed must
        // stay 0 — recorded so the json is self-accounting.
        ("ev_boxed", c.boxed_events as f64),
        // Sharded-run rendezvous accounting (all zero for single-engine
        // runs): rounds driven, rounds with no cross-shard exchange, and
        // the zero-copy rehoming proof (frames crossing shards vs bytes
        // actually copied for them).
        ("ev_rounds", r.rounds as f64),
        ("ev_empty_rounds", r.empty_rounds as f64),
        ("ev_xshard_frames", r.xshard_frames as f64),
        ("ev_rehome_bytes", r.rehome_bytes as f64),
    ]
}

fn bench_many_nodes(c: &mut Criterion) {
    let mut report = BenchReport::new("many_nodes");
    let mut group = c.benchmark_group("many_nodes");
    group.sample_size(10);

    // Star fan-in: N clients share the hub's one switch port. The 32-client
    // case is new with the quiescence-aware engine — the poll-every-tick
    // scheduler made 33 nodes too slow to bench.
    for clients in [2usize, 4, 8, 32] {
        let t0 = std::time::Instant::now();
        let out = run_star_iperf(clients, RUN, CostModel::morello(), SEED).expect("star runs");
        let wall = t0.elapsed();
        // The sharded-run determinism gate: the same star at workers=2
        // must land on the byte-identical delivery-trace digest. Adaptive
        // selection is forced off so the rerun genuinely shards (these
        // stars are all small enough to collapse otherwise, which would
        // make the gate vacuous). A mismatch aborts the bench, which
        // fails CI's bench-smoke job.
        let sharded = ScenarioSpec::star(clients)
            .duration(RUN)
            .costs(CostModel::morello())
            .seed(SEED)
            .workers(2)
            .adaptive_workers(false)
            .congestion(CcAlgo::Reno)
            .sack(false)
            .run()
            .expect("sharded star runs");
        assert_eq!(
            out.trace, sharded.trace,
            "star/{clients}: workers=2 digest diverged from workers=1 — sharded determinism broke"
        );
        assert_eq!(
            sharded.workers, 2,
            "star/{clients}: rerun must stay sharded"
        );
        let flows = server_mbits(&out);
        let aggregate: f64 = flows.iter().sum();
        let jain = fairness_index(&flows);
        eprintln!(
            "[many_nodes] star/{clients} clients: {aggregate:.0} Mbit/s aggregate, Jain {jain:.3}"
        );
        let mut metrics = vec![
            ("aggregate_mbit_per_sec", aggregate),
            ("fairness_jain", jain),
            ("flows", clients as f64),
            ("switch_forwarded", out.switch_stats[0].forwarded as f64),
            ("switch_dropped", out.switch_stats[0].dropped as f64),
            ("trace_frames", out.trace.frames as f64),
            // 1.0 = the workers=2 rerun reproduced the digest (asserted
            // above; recorded so the JSON is self-documenting).
            ("workers2_digest_match", 1.0),
        ];
        metrics.extend(counter_metrics(&out));
        report.record_timed(
            "star",
            &format!("clients={clients}"),
            wall,
            out.events,
            out.horizon.as_nanos() as f64 / 1e9,
            &metrics,
        );
        group.bench_with_input(
            BenchmarkId::new("star", clients),
            &clients,
            |b, &clients| {
                b.iter(|| run_star_iperf(clients, RUN, CostModel::morello(), SEED).expect("star"))
            },
        );
    }

    // Chain depth: one flow across K store-and-forward hops.
    for hops in [1usize, 2, 4] {
        let t0 = std::time::Instant::now();
        let out = run_chain(hops);
        let wall = t0.elapsed();
        let mbit = out.servers[0].mbit_per_sec();
        eprintln!("[many_nodes] chain/{hops} hops: {mbit:.0} Mbit/s");
        let mut metrics = vec![
            ("mbit_per_sec", mbit),
            ("hops", hops as f64),
            ("trace_frames", out.trace.frames as f64),
        ];
        metrics.extend(counter_metrics(&out));
        report.record_timed(
            "chain",
            &format!("hops={hops}"),
            wall,
            out.events,
            out.horizon.as_nanos() as f64 / 1e9,
            &metrics,
        );
        group.bench_with_input(BenchmarkId::new("chain", hops), &hops, |b, &hops| {
            b.iter(|| run_chain(hops))
        });
    }

    // Dumbbell: pairs contending for one trunk.
    for pairs in [2usize, 4] {
        let t0 = std::time::Instant::now();
        let out =
            run_dumbbell_fairness(pairs, RUN, CostModel::morello(), SEED).expect("dumbbell runs");
        let wall = t0.elapsed();
        let flows = server_mbits(&out);
        let aggregate: f64 = flows.iter().sum();
        let jain = fairness_index(&flows);
        eprintln!(
            "[many_nodes] dumbbell/{pairs} pairs: {aggregate:.0} Mbit/s aggregate, Jain {jain:.3}"
        );
        let mut metrics = vec![
            ("aggregate_mbit_per_sec", aggregate),
            ("fairness_jain", jain),
            ("flows", pairs as f64),
        ];
        metrics.extend(counter_metrics(&out));
        report.record_timed(
            "dumbbell",
            &format!("pairs={pairs}"),
            wall,
            out.events,
            out.horizon.as_nanos() as f64 / 1e9,
            &metrics,
        );
        group.bench_with_input(BenchmarkId::new("dumbbell", pairs), &pairs, |b, &pairs| {
            b.iter(|| run_dumbbell_fairness(pairs, RUN, CostModel::morello(), SEED).expect("bell"))
        });
    }

    group.finish();
    let path = report.write().expect("BENCH_many_nodes.json written");
    eprintln!("[many_nodes] perf trajectory: {}", path.display());
}

criterion_group!(benches, bench_many_nodes);
criterion_main!(benches);
