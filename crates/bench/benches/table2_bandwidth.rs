//! Bench target regenerating **Table II**: TCP bandwidth per scenario.
//!
//! Criterion times the harness (wall clock of the discrete-event run); the
//! *measured artifact* — Mbit/s per configuration — is printed once per
//! scenario so `cargo bench` output doubles as the table. Shape assertions
//! live in `tests/experiments_reproduce_paper.rs`.

// Calls the deprecated `run_*` wrappers on purpose: keeping these entry
// points exercised proves they still delegate to `ScenarioSpec`
// byte-identically (the pinned digests would catch any drift).
#![allow(deprecated)]

use capnet::scenario::{run_bandwidth, ScenarioKind, TrafficMode};
use capnet_bench::BenchReport;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simkern::{CostModel, SimDuration};

fn bench_table2(c: &mut Criterion) {
    let mut report = BenchReport::new("table2");
    let mut group = c.benchmark_group("table2_tcp_bandwidth");
    group.sample_size(10);
    let duration = SimDuration::from_millis(40);

    for kind in ScenarioKind::all() {
        for mode in [TrafficMode::Server, TrafficMode::Client] {
            // Print the paper-facing number once, timing the run so the
            // trajectory captures host speed alongside simulated Mbit/s.
            let t0 = std::time::Instant::now();
            let out =
                run_bandwidth(kind, mode, duration, CostModel::morello()).expect("scenario runs");
            let wall = t0.elapsed();
            let sim_s = out.horizon.as_nanos() as f64 / 1e9;
            let reports = match mode {
                TrafficMode::Server => &out.servers,
                TrafficMode::Client => &out.clients,
            };
            for r in reports.iter().filter(|r| !r.label.starts_with("host")) {
                eprintln!(
                    "[table2] {kind} / {mode} / {}: {:.0} Mbit/s",
                    r.label,
                    r.mbit_per_sec()
                );
                report.record_timed(
                    &format!("{kind}"),
                    &format!("{mode}/{}", r.label),
                    wall,
                    out.events,
                    sim_s,
                    &[("mbit_per_sec", r.mbit_per_sec())],
                );
            }
            group.bench_with_input(
                BenchmarkId::new(kind.label(), mode.to_string()),
                &(kind, mode),
                |b, &(kind, mode)| {
                    b.iter(|| {
                        run_bandwidth(kind, mode, duration, CostModel::morello())
                            .expect("scenario runs")
                    })
                },
            );
        }
    }
    group.finish();
    let path = report.write().expect("BENCH_table2.json written");
    eprintln!("[table2] perf trajectory: {}", path.display());
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
