//! Bench target for the **failure-domain fault schedules**: the HTTP
//! serving plane driven through deterministic partitions and crashes,
//! with the client fleets' retry/backoff machinery doing the surviving.
//!
//! Recorded into `BENCH_faults.json` per case:
//!
//! * `time_to_recovery_ms` — virtual time from the heal instant (link
//!   back up / node restarted) to the first completed request after it;
//! * `goodput_during_partition_rps` — completed requests per second over
//!   the fault window (how much the plane still serves while degraded);
//! * `goodput_after_heal_rps` — the recovered serving rate;
//! * `retry_amplification` — connections started per original launch
//!   (1.0 = no retries needed);
//! * `retries` / `retry_giveups` / `http_503s` / `timeouts` — the retry
//!   machinery's ledger;
//! * `completion_per_mille` — completed requests per 1000 originals; the
//!   flap case **asserts ≥ 990** (the ISSUE's ≥ 99 % budget bar);
//! * the trace digest (`trace_digest_hi/lo`).
//!
//! The **flap_star** case downs the hub's uplink mid-run: in-flight
//! connections ride their retransmission ladders across the outage, and
//! everything launched into the hole completes after the heal. The
//! **crash_hub** case kills the server node outright — peers see RSTs
//! from the reborn hub's fresh stack, and the fleets' capped-backoff
//! retries carry the request budget to completion.
//!
//! Both cases **assert** byte-identity at `workers = 1/2/4` — the fault
//! subsystem rides the same rendezvous determinism gate CI enforces for
//! the fault-free planes.

use capnet::scenario::ScenarioSpec;
use capnet::{FaultPlan, FaultTarget, SimOutcome};
use capnet_bench::BenchReport;
use capnet_httpd::{FleetConfig, FleetReport, HttpServerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use simkern::SimDuration;

const SEED: u64 = 0xFA17;
const RUN: SimDuration = SimDuration::from_millis(120);
const LEAVES: usize = 4;

/// The fault window of each case, boot-relative.
const FAULT_AT: SimDuration = SimDuration::from_millis(30);
const HEAL_AT: SimDuration = SimDuration::from_millis(55);

fn retry_fleet() -> FleetConfig {
    FleetConfig {
        rate_per_sec: 3_000,
        keep_alive_per_mille: 300,
        requests_per_conn: 4,
        retry_budget: 3,
        retry_backoff_base: SimDuration::from_millis(2),
        retry_backoff_cap: SimDuration::from_millis(50),
        ..FleetConfig::default()
    }
}

fn flap_plan() -> FaultPlan {
    FaultPlan::new()
        .link_down(FAULT_AT, FaultTarget::Hub)
        .link_up(HEAL_AT, FaultTarget::Hub)
}

fn crash_plan() -> FaultPlan {
    FaultPlan::new()
        .node_crash(FAULT_AT, FaultTarget::Hub)
        .node_restart(HEAL_AT, FaultTarget::Hub)
}

fn fault_case(plan: FaultPlan, workers: usize) -> (SimOutcome, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let out = ScenarioSpec::star(LEAVES)
        .duration(RUN)
        .seed(SEED)
        .workers(workers)
        // Adaptive selection would collapse this 4-leaf star back to one
        // engine, making the workers=2/4 digest gate below vacuous.
        .adaptive_workers(false)
        .http(
            HttpServerConfig {
                max_conns: 48,
                ..HttpServerConfig::default()
            },
            retry_fleet(),
        )
        .faults(plan)
        .run()
        .expect("faulted star runs");
    (out, t0.elapsed())
}

/// Completed-request instants inside `[from, to)`, per virtual second.
fn goodput_rps(agg: &FleetReport, from: SimDuration, to: SimDuration) -> f64 {
    let (from, to) = (from.as_nanos(), to.as_nanos());
    let n = agg
        .ok_at_ns
        .iter()
        .filter(|&&t| t >= from && t < to)
        .count();
    n as f64 * 1e9 / (to - from) as f64
}

/// Virtual milliseconds from the heal instant to the first completed
/// request at or after it.
fn time_to_recovery_ms(agg: &FleetReport) -> f64 {
    let heal = HEAL_AT.as_nanos();
    agg.ok_at_ns
        .iter()
        .find(|&&t| t >= heal)
        .map_or(f64::NAN, |&t| (t - heal) as f64 / 1e6)
}

fn digest_halves(out: &SimOutcome) -> [(&'static str, f64); 2] {
    [
        ("trace_digest_hi", (out.trace.digest >> 32) as f64),
        ("trace_digest_lo", (out.trace.digest & 0xFFFF_FFFF) as f64),
    ]
}

fn bench_faults(c: &mut Criterion) {
    let mut report = BenchReport::new("faults");
    let mut group = c.benchmark_group("faults");
    group.sample_size(10);

    for (name, plan) in [("flap_star", flap_plan()), ("crash_hub", crash_plan())] {
        let (out, wall) = fault_case(plan.clone(), 1);
        let agg = FleetReport::aggregate(name, &out.http_fleets);
        let originals = agg.conns_started - agg.retries;
        let completion_per_mille = (agg.requests_ok.min(originals) * 1_000)
            .checked_div(originals)
            .unwrap_or(0);
        let ttr = time_to_recovery_ms(&agg);
        let during = goodput_rps(&agg, FAULT_AT, HEAL_AT);
        let after = goodput_rps(&agg, HEAL_AT, RUN);
        eprintln!(
            "[faults] {name}: {} conns ({} retries, {} giveups), {} ok, \
             503s={}, timeouts={}, ttr={ttr:.2}ms, \
             goodput during/after = {during:.0}/{after:.0} rps, \
             amp={:.3}, completion={completion_per_mille}‰",
            agg.conns_started,
            agg.retries,
            agg.retry_giveups,
            agg.requests_ok,
            agg.http503,
            agg.timeouts,
            agg.retry_amplification(),
        );
        assert!(
            out.fault_stats.link_down_events + out.fault_stats.node_crashes == 1,
            "{name}: the fault fired exactly once: {:?}",
            out.fault_stats
        );
        assert!(ttr.is_finite(), "{name}: requests completed after the heal");
        assert!(
            after > during,
            "{name}: the heal restored goodput ({during:.0} → {after:.0} rps)"
        );
        if name == "flap_star" {
            // The ISSUE's bar: with retries, the flapping-uplink plane
            // completes ≥ 99 % of its request budget once healed.
            assert!(
                completion_per_mille >= 990,
                "flap_star: only {completion_per_mille}‰ of the budget \
                 completed ({} ok / {originals} originals)",
                agg.requests_ok,
            );
        }
        let [hi, lo] = digest_halves(&out);
        report.record_timed(
            "star4",
            name,
            wall,
            out.events,
            out.horizon.as_nanos() as f64 / 1e9,
            &[
                ("time_to_recovery_ms", ttr),
                ("goodput_during_partition_rps", during),
                ("goodput_after_heal_rps", after),
                ("retry_amplification", agg.retry_amplification()),
                ("retries", agg.retries as f64),
                ("retry_giveups", agg.retry_giveups as f64),
                ("http_503s", agg.http503 as f64),
                ("timeouts", agg.timeouts as f64),
                ("completion_per_mille", completion_per_mille as f64),
                ("requests_ok", agg.requests_ok as f64),
                ("conns_started", agg.conns_started as f64),
                hi,
                lo,
            ],
        );

        // Determinism gate: fault schedules must shard byte-identically
        // (cf. tests/parallel_determinism.rs, which also compares the
        // full report set).
        let (base, _) = fault_case(plan.clone(), 1);
        for workers in [2, 4] {
            let (sharded, _) = fault_case(plan.clone(), workers);
            assert_eq!(
                base.trace, sharded.trace,
                "{name} must be byte-identical at workers={workers}"
            );
            assert_eq!(
                base.fault_stats, sharded.fault_stats,
                "{name}: merged fault counters at workers={workers}"
            );
            assert!(sharded.workers > 1, "rerun must stay sharded");
        }
    }

    // Criterion's own timing loop for the heavier crash case; the report
    // entries above are the machine-readable trajectory.
    group.bench_function("crash_hub_star4", |b| {
        b.iter(|| fault_case(crash_plan(), 1))
    });
    group.finish();
    let path = report.write().expect("BENCH_faults.json written");
    eprintln!("[faults] perf trajectory: {}", path.display());
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
