//! Single-event-upset injection into tagged memory.
//!
//! The injector owns a private [`TaggedMemory`] arena (never the network
//! node's — campaigns must not perturb workload memory), populates it
//! with a data pattern and a population of legitimately stored
//! capabilities, then strikes seeded data bits and tag bits. Each strike
//! is classified by the architecture's [`FlipEffect`]:
//!
//! * a hit on a **tagged** granule kills the stored capability — a
//!   detectable, fail-stop outcome (the next load yields a dead
//!   capability that faults on use);
//! * a **data** hit on an untagged granule is silent corruption, the
//!   case CHERI does not claim to catch (payload checksums do);
//! * a **tag** hit on an untagged granule is absorbed: tag storage can
//!   never flip *to* valid, so no authority is ever minted.
//!
//! After every capability kill the injector verifies detection end to
//! end: the reloaded capability must be dead and dereferencing it must
//! raise [`cheri::FaultKind::Tag`].

use crate::ChaosDigest;
use cheri::{FlipEffect, TaggedMemory, CAP_GRANULE};
use simkern::rng::SimRng;

/// Bit-flip knobs.
#[derive(Debug, Clone)]
pub struct BitFlipConfig {
    /// Arena size in bytes (default 64 KiB).
    pub arena: u64,
    /// Capabilities stored across the arena (default 32).
    pub caps: u64,
    /// Flips per campaign round (default 4).
    pub flips_per_round: u32,
}

impl Default for BitFlipConfig {
    fn default() -> Self {
        BitFlipConfig {
            arena: 64 * 1024,
            caps: 32,
            flips_per_round: 4,
        }
    }
}

/// Bit-flip accounting: every strike lands in exactly one bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitFlipReport {
    /// Strikes injected.
    pub flips: u64,
    /// Strikes that killed a live capability (detectable).
    pub caps_killed: u64,
    /// Data strikes on untagged granules (silent corruption).
    pub silent_data: u64,
    /// Tag strikes on untagged granules (absorbed, no authority minted).
    pub absorbed: u64,
    /// Kills whose detection was verified end to end (dead reload +
    /// faulting dereference). Must equal `caps_killed`.
    pub kills_detected: u64,
}

/// The injector and its private arena.
#[derive(Debug)]
pub struct BitFlipInjector {
    mem: TaggedMemory,
    cfg: BitFlipConfig,
    /// Addresses of the granules seeded with capabilities.
    cap_addrs: Vec<u64>,
    rng: SimRng,
    report: BitFlipReport,
}

impl BitFlipInjector {
    /// Builds the arena: a byte pattern everywhere, `cfg.caps` stored
    /// capabilities spread over the first half.
    pub fn new(cfg: BitFlipConfig, seed: u64) -> Self {
        let mut mem = TaggedMemory::new(cfg.arena);
        let root = mem.root_cap();
        let pattern: Vec<u8> = (0..cfg.arena).map(|i| (i % 251) as u8).collect();
        mem.write(&root, 0, &pattern).expect("seed pattern");
        let mut cap_addrs = Vec::new();
        let stride = (cfg.arena / 2 / cfg.caps.max(1)) & !(CAP_GRANULE - 1);
        for i in 0..cfg.caps {
            let addr = i * stride.max(CAP_GRANULE);
            if addr + CAP_GRANULE > cfg.arena {
                break;
            }
            let value = root
                .try_restrict(cfg.arena / 2, CAP_GRANULE)
                .expect("derive stored cap");
            mem.store_cap(&root, addr, value).expect("seed cap");
            cap_addrs.push(addr);
        }
        BitFlipInjector {
            mem,
            cfg,
            cap_addrs,
            rng: SimRng::seed_from_u64(seed),
            report: BitFlipReport::default(),
        }
    }

    /// Runs one round of strikes, folding each effect into `digest`.
    pub fn round(&mut self, digest: &mut ChaosDigest) {
        for _ in 0..self.cfg.flips_per_round {
            // Half the strikes aim at the capability population (tagged
            // granules), half anywhere — so both detectable and silent
            // outcomes occur in every campaign.
            let aim_cap = self.rng.chance_per_mille(500) && !self.cap_addrs.is_empty();
            let addr = if aim_cap {
                let slot = self.rng.below(self.cap_addrs.len() as u64) as usize;
                self.cap_addrs[slot] + self.rng.below(CAP_GRANULE)
            } else {
                self.rng.below(self.mem.size())
            };
            let tag_strike = self.rng.chance_per_mille(300);
            let effect = if tag_strike {
                self.mem.flip_tag_bit(addr)
            } else {
                let bit = self.rng.below(8) as u8;
                self.mem.flip_data_bit(addr, bit)
            };
            self.report.flips += 1;
            match effect {
                FlipEffect::CapabilityKilled => {
                    self.report.caps_killed += 1;
                    if self.kill_is_detected(addr) {
                        self.report.kills_detected += 1;
                    }
                    // Re-arm the granule so later strikes can kill again.
                    self.rearm(addr);
                }
                FlipEffect::SilentData => self.report.silent_data += 1,
                FlipEffect::Absorbed => self.report.absorbed += 1,
            }
            digest.fold_u64(addr);
            digest.fold_u64(match effect {
                FlipEffect::CapabilityKilled => 1,
                FlipEffect::SilentData => 2,
                FlipEffect::Absorbed => 3,
            });
        }
    }

    /// Accounting so far.
    pub fn report(&self) -> BitFlipReport {
        self.report.clone()
    }

    /// End-to-end detection check: the struck granule must reload as a
    /// dead capability, and dereferencing it must raise a tag fault.
    fn kill_is_detected(&mut self, addr: u64) -> bool {
        let granule = (addr / CAP_GRANULE) * CAP_GRANULE;
        let root = self.mem.root_cap();
        match self.mem.load_cap(&root, granule) {
            Ok(loaded) => {
                !loaded.tag()
                    && self
                        .mem
                        .read_vec(&loaded, loaded.addr(), 1)
                        .err()
                        .is_some_and(|f| f.kind() == cheri::FaultKind::Tag)
            }
            Err(_) => false,
        }
    }

    /// Restores a stored capability (and the pattern byte a data strike
    /// may have corrupted) at the struck granule, if it is one of the
    /// seeded slots.
    fn rearm(&mut self, addr: u64) {
        let granule = (addr / CAP_GRANULE) * CAP_GRANULE;
        if !self.cap_addrs.contains(&granule) {
            return;
        }
        let root = self.mem.root_cap();
        let value = root
            .try_restrict(self.cfg.arena / 2, CAP_GRANULE)
            .expect("re-derive stored cap");
        self.mem
            .store_cap(&root, granule, value)
            .expect("re-arm cap slot");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kill_is_detected_and_tags_never_mint() {
        let mut b = BitFlipInjector::new(BitFlipConfig::default(), 9);
        let mut d = ChaosDigest::new();
        for _ in 0..256 {
            b.round(&mut d);
        }
        let r = b.report();
        assert_eq!(r.flips, 1024);
        assert_eq!(
            r.caps_killed + r.silent_data + r.absorbed,
            r.flips,
            "every strike lands in exactly one bucket"
        );
        assert!(r.caps_killed > 0, "campaign must hit tagged granules");
        assert!(r.silent_data > 0, "campaign must hit plain data too");
        assert!(r.absorbed > 0, "tag strikes on untagged granules occur");
        assert_eq!(
            r.kills_detected, r.caps_killed,
            "every kill must be detectable end to end"
        );
    }

    #[test]
    fn rounds_are_deterministic_in_the_seed() {
        let run = |seed| {
            let mut b = BitFlipInjector::new(BitFlipConfig::default(), seed);
            let mut d = ChaosDigest::new();
            for _ in 0..64 {
                b.round(&mut d);
            }
            (d.value(), b.report())
        };
        assert_eq!(run(2), run(2));
        assert_ne!(run(2).0, run(5).0);
    }
}
