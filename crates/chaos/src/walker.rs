//! The compromised-compartment model: a capability-space walker.
//!
//! One [`Intravisor`] hosts two cVMs: a **victim** holding live MAVLink
//! telemetry state (the drone ground-station from `mavsim` is the
//! motivating workload) and an **attacker** that has achieved arbitrary
//! code execution inside its own compartment. The attacker then does
//! what a real exploit payload would: it probes outward — out-of-bounds
//! loads and stores at the victim's region, dereferences through
//! tag-cleared and sealed capabilities, attempts to widen bounds and
//! escalate permissions, forges capabilities and passes them across the
//! Intravisor boundary, and tries to conjure authority out of raw bytes.
//!
//! The walker asserts the CHERI containment contract probe by probe:
//! every attempt must raise exactly the predicted [`FaultKind`]
//! (mismatches are counted and must be zero), and the victim's memory
//! must be bit-identical after every probe (corruptions must be zero).

use crate::ChaosDigest;
use cheri::{Capability, FaultKind, Perms, CAP_GRANULE};
use intravisor::{validate_boundary_cap, CvmConfig, CvmId, Intravisor};
use mavsim::frame::MavFrame;
use mavsim::msg::{Heartbeat, MavMode, Message};
use simkern::cost::CostModel;
use simkern::rng::SimRng;

/// Number of distinct probe classes the walker cycles through.
const N_PROBES: u64 = 10;

/// Walker knobs.
#[derive(Debug, Clone)]
pub struct WalkerConfig {
    /// Victim cVM region size (default 64 KiB).
    pub victim_mem: u64,
    /// Attacker cVM region size (default 64 KiB).
    pub attacker_mem: u64,
    /// Probes per campaign round (default 2).
    pub probes_per_round: u32,
}

impl Default for WalkerConfig {
    fn default() -> Self {
        WalkerConfig {
            victim_mem: 64 * 1024,
            attacker_mem: 64 * 1024,
            probes_per_round: 2,
        }
    }
}

/// Walker accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalkerReport {
    /// Probes attempted.
    pub probes: u64,
    /// Probes that raised exactly the predicted fault class.
    pub faults_expected: u64,
    /// Probes whose outcome differed from the prediction (must be 0).
    pub mismatches: u64,
    /// Probes after which the victim's memory had changed (must be 0).
    pub corruptions: u64,
    /// Faults the Intravisor logged against the attacker cVM.
    pub logged_faults: u64,
}

/// The attacker driving probes into its own private [`Intravisor`].
///
/// The walker owns the whole machine — it never touches the network
/// node's arena, so campaigns compose with any workload without
/// perturbing its memory or its digests.
#[derive(Debug)]
pub struct CapabilityWalker {
    iv: Intravisor,
    victim: CvmId,
    attacker: CvmId,
    /// The victim's telemetry buffer: address and pristine contents.
    victim_buf: Capability,
    victim_snapshot: Vec<u8>,
    /// An attacker-owned buffer for the self-inflicted probes.
    own_buf: Capability,
    /// Granule-aligned slot inside `own_buf` holding a stored capability.
    cap_slot: u64,
    probes_per_round: u32,
    rng: SimRng,
    report: WalkerReport,
}

impl CapabilityWalker {
    /// Boots the machine: victim cVM seeded with encoded MAVLink
    /// telemetry, attacker cVM with a scratch buffer and one legitimately
    /// stored capability (the forgery probes need a granule to clobber).
    pub fn new(cfg: WalkerConfig, seed: u64) -> Self {
        let mut iv = Intravisor::new(
            (256 * 1024) + cfg.victim_mem + cfg.attacker_mem,
            CostModel::morello(),
        );
        let victim = iv
            .create_cvm(CvmConfig::new("mavsim-victim").mem_size(cfg.victim_mem))
            .expect("victim cVM");
        let attacker = iv
            .create_cvm(CvmConfig::new("attacker").mem_size(cfg.attacker_mem))
            .expect("attacker cVM");

        // The victim's live state: a ring of encoded MAVLink frames, the
        // data a ground station would be holding mid-flight.
        let mut telemetry = Vec::new();
        for seq in 0..8u8 {
            let hb = Message::Heartbeat(Heartbeat {
                mode: MavMode::Auto,
                battery_pct: 100 - seq,
                armed: true,
            });
            telemetry.extend_from_slice(&MavFrame::encode(seq, 1, 1, &hb));
        }
        let victim_buf = iv
            .cvm_alloc(victim, telemetry.len() as u64, CAP_GRANULE)
            .expect("victim buffer");
        iv.cvm_store(victim, victim_buf.base(), &telemetry)
            .expect("seed victim telemetry");

        // Attacker scratch: 256 bytes, with a real capability stored at a
        // granule-aligned slot inside it.
        let own_buf = iv
            .cvm_alloc(attacker, 256, CAP_GRANULE)
            .expect("attacker buffer");
        let cap_slot = own_buf.base();
        let stored = own_buf
            .try_restrict(own_buf.base() + 64, 64)
            .expect("derive stored cap");
        let attacker_ddc = *iv.cvm(attacker).ctx().ddc();
        iv.memory_mut()
            .store_cap(&attacker_ddc, cap_slot, stored)
            .expect("store attacker cap");

        CapabilityWalker {
            iv,
            victim,
            attacker,
            victim_buf,
            victim_snapshot: telemetry,
            own_buf,
            cap_slot,
            probes_per_round: cfg.probes_per_round,
            rng: SimRng::seed_from_u64(seed),
            report: WalkerReport::default(),
        }
    }

    /// Runs one round of probes, folding each verdict into `digest`.
    pub fn round(&mut self, digest: &mut ChaosDigest) {
        for _ in 0..self.probes_per_round {
            let class = self.rng.below(N_PROBES);
            let (expected, actual) = self.probe(class);
            self.report.probes += 1;
            digest.fold_u64(class);
            digest.fold_u64(kind_code(actual));
            if actual == Some(expected) {
                self.report.faults_expected += 1;
            } else {
                self.report.mismatches += 1;
            }
            if !self.victim_intact() {
                self.report.corruptions += 1;
            }
        }
        self.report.logged_faults = self
            .iv
            .fault_log()
            .iter()
            .filter(|(id, _)| *id == self.attacker)
            .count() as u64;
    }

    /// Accounting so far.
    pub fn report(&self) -> WalkerReport {
        self.report.clone()
    }

    /// The victim's telemetry, read back through the victim's own DDC,
    /// compared against the pristine snapshot.
    fn victim_intact(&mut self) -> bool {
        match self.iv.cvm_load(
            self.victim,
            self.victim_buf.base(),
            self.victim_snapshot.len() as u64,
        ) {
            Ok(bytes) => bytes == self.victim_snapshot,
            Err(_) => false,
        }
    }

    /// One probe: returns the predicted fault class and what actually
    /// happened (`None` = the operation unexpectedly succeeded).
    fn probe(&mut self, class: u64) -> (FaultKind, Option<FaultKind>) {
        let victim_base = self.victim_buf.base();
        let attacker_ddc = *self.iv.cvm(self.attacker).ctx().ddc();
        match class {
            // Out-of-bounds load: reach into the victim's region through
            // the attacker's DDC — the paper's Fig. 3 exception.
            0 => {
                let off = self.rng.below(self.victim_snapshot.len() as u64);
                let r = self.iv.cvm_load(self.attacker, victim_base + off, 16);
                (FaultKind::Bounds, r.err().map(|f| f.kind()))
            }
            // Out-of-bounds store at the victim's telemetry.
            1 => {
                let off = self.rng.below(self.victim_snapshot.len() as u64);
                let r = self
                    .iv
                    .cvm_store(self.attacker, victim_base + off, &[0xAA; 8]);
                (FaultKind::Bounds, r.err().map(|f| f.kind()))
            }
            // Tag-cleared dereference: hardware killed the pointer, use
            // it anyway.
            2 => {
                let dead = attacker_ddc.without_tag();
                let r = self.iv.memory_mut().read_vec(&dead, self.own_buf.base(), 8);
                (FaultKind::Tag, r.err().map(|f| f.kind()))
            }
            // Sealed dereference: load through the compartment's sealed
            // entry capability.
            3 => {
                let entry = *self.iv.cvm(self.attacker).entry();
                let r = self.iv.memory_mut().read_vec(&entry, entry.base(), 4);
                (FaultKind::Seal, r.err().map(|f| f.kind()))
            }
            // Permission escalation: derive EXECUTE from a data-only DDC.
            4 => {
                let r = attacker_ddc.try_restrict_perms(Perms::data() | Perms::EXECUTE);
                (FaultKind::Monotonicity, r.err().map(|f| f.kind()))
            }
            // Bounds widening: grow the scratch buffer past its top.
            5 => {
                let grow = self.rng.range_inclusive(1, 4096);
                let r = self
                    .own_buf
                    .try_restrict(self.own_buf.base(), self.own_buf.len() + grow);
                (FaultKind::Monotonicity, r.err().map(|f| f.kind()))
            }
            // Confused deputy: pass a forged capability over the victim's
            // memory across the Intravisor boundary.
            6 => {
                let forged = Capability::root(victim_base, 64, Perms::data());
                let r = validate_boundary_cap(&attacker_ddc, &forged);
                (FaultKind::Monotonicity, r.err().map(|f| f.kind()))
            }
            // Boundary argument with a cleared tag.
            7 => {
                let arg = self.own_buf.without_tag();
                let r = validate_boundary_cap(&attacker_ddc, &arg);
                (FaultKind::Tag, r.err().map(|f| f.kind()))
            }
            // Capability forgery through byte writes: clobber the granule
            // holding the stored capability, then dereference the load.
            8 => {
                let junk = self.rng.next_u64();
                self.iv
                    .memory_mut()
                    .write(&attacker_ddc, self.cap_slot, &junk.to_le_bytes())
                    .expect("in-bounds byte write");
                let loaded = self
                    .iv
                    .memory_mut()
                    .load_cap(&attacker_ddc, self.cap_slot)
                    .expect("aligned in-bounds cap load");
                let r = self.iv.memory_mut().read_vec(&loaded, loaded.addr(), 1);
                // Restore the slot for the next iteration of this probe.
                let stored = self
                    .own_buf
                    .try_restrict(self.own_buf.base() + 64, 64)
                    .expect("re-derive stored cap");
                self.iv
                    .memory_mut()
                    .store_cap(&attacker_ddc, self.cap_slot, stored)
                    .expect("restore cap slot");
                (FaultKind::Tag, r.err().map(|f| f.kind()))
            }
            // Misaligned capability load.
            _ => {
                let r = self
                    .iv
                    .memory_mut()
                    .load_cap(&attacker_ddc, self.cap_slot + 1 + self.rng.below(14));
                (FaultKind::Alignment, r.err().map(|f| f.kind()))
            }
        }
    }
}

/// A stable small integer per fault class for the digest stream.
fn kind_code(k: Option<FaultKind>) -> u64 {
    match k {
        None => 0,
        Some(FaultKind::Tag) => 1,
        Some(FaultKind::Seal) => 2,
        Some(FaultKind::Bounds) => 3,
        Some(FaultKind::Monotonicity) => 4,
        Some(FaultKind::Alignment) => 5,
        Some(FaultKind::Type) => 6,
        Some(FaultKind::Representability) => 7,
        Some(_) => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_probe_class_faults_as_predicted() {
        let mut w = CapabilityWalker::new(WalkerConfig::default(), 11);
        let mut digest = ChaosDigest::new();
        for class in 0..N_PROBES {
            for _ in 0..8 {
                let (expected, actual) = w.probe(class);
                assert_eq!(
                    actual,
                    Some(expected),
                    "probe class {class} must raise {expected:?}"
                );
                assert!(w.victim_intact(), "probe class {class} altered the victim");
            }
        }
        w.round(&mut digest);
        let r = w.report();
        assert_eq!(r.mismatches, 0);
        assert_eq!(r.corruptions, 0);
        assert!(r.faults_expected > 0);
    }

    #[test]
    fn rounds_are_deterministic_in_the_seed() {
        let run = |seed| {
            let mut w = CapabilityWalker::new(WalkerConfig::default(), seed);
            let mut d = ChaosDigest::new();
            for _ in 0..32 {
                w.round(&mut d);
            }
            (d.value(), w.report())
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).0, run(4).0);
    }

    #[test]
    fn intravisor_logs_the_ddc_probes() {
        let mut w = CapabilityWalker::new(WalkerConfig::default(), 5);
        let mut d = ChaosDigest::new();
        for _ in 0..64 {
            w.round(&mut d);
        }
        let r = w.report();
        // cvm_load/cvm_store probes are logged against the attacker.
        assert!(r.logged_faults > 0);
        assert_eq!(r.probes, 128);
    }
}
