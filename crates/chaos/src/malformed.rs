//! The wire-level adversary: seeded malformed-frame generation.
//!
//! Every frame starts life *valid* — built with the same
//! [`fstack::ether`]/[`fstack::ip`]/[`fstack::tcp`]/[`fstack::udp`]/
//! [`fstack::arp`] builders the stack itself uses — and is then mutated
//! by one seeded corruption class. The mutations target exactly the
//! trust boundaries a receive parser must defend: length fields that
//! lie, checksums that do not cover what they claim, header-size fields
//! pointing past the frame, protocol constants that make no sense, and
//! semantically-valid-but-hostile ARP replies (cache poisoning).
//!
//! Frames leave through [`fstack::FStack::inject_raw_tx`] — the normal
//! transmit path — so they traverse the NIC, the switch and the victim's
//! receive path like any legitimate frame. Victim stacks account every
//! rejection in their `parse_drop_*` counters; the campaign asserts the
//! sum is positive and nothing panics.

use crate::{ChaosDigest, ChaosStepOutcome};
use fstack::arp::ArpPacket;
use fstack::ether::{EthHdr, EtherType, ETH_HDR_LEN};
use fstack::ip::{IpProto, Ipv4Hdr, IPV4_HDR_LEN};
use fstack::tcp::{TcpFlags, TcpOptions, TcpSegment};
use fstack::udp::UdpDatagram;
use fstack::FStack;
use simkern::rng::SimRng;
use std::net::Ipv4Addr;
use updk::framebuf::FrameBuf;
use updk::nic::MacAddr;

/// Number of distinct corruption classes the adversary cycles through.
const N_CLASSES: u64 = 11;

/// Wire-adversary knobs.
#[derive(Debug, Clone)]
pub struct WireChaosConfig {
    /// The host the frames claim to be for (L3 destination).
    pub target_ip: Ipv4Addr,
    /// L4 destination port for the TCP/UDP mutations (default 8080).
    pub target_port: u16,
    /// Frames emitted per campaign round (default 4).
    pub frames_per_round: u32,
}

impl Default for WireChaosConfig {
    fn default() -> Self {
        WireChaosConfig {
            target_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_port: 8080,
            frames_per_round: 4,
        }
    }
}

/// Wire-adversary accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireChaosReport {
    /// Frames handed to the transmit path.
    pub frames_emitted: u64,
    /// Bytes of those frames.
    pub bytes_emitted: u64,
    /// Semantically valid ARP poison replies among them.
    pub arp_poison: u64,
    /// Frames the stack refused to queue (oversized fuzz) — still counted
    /// as campaign work, just never on the wire.
    pub rejected_oversize: u64,
}

/// The adversarial app: one seeded RNG, one corruption pipeline.
#[derive(Debug)]
pub struct MalformedFrameApp {
    cfg: WireChaosConfig,
    rng: SimRng,
    src_mac: MacAddr,
    src_ip: Ipv4Addr,
    report: WireChaosReport,
}

impl MalformedFrameApp {
    /// Builds the adversary transmitting as `src_mac`/`src_ip`.
    pub fn new(cfg: WireChaosConfig, seed: u64, src_mac: MacAddr, src_ip: Ipv4Addr) -> Self {
        MalformedFrameApp {
            cfg,
            rng: SimRng::seed_from_u64(seed),
            src_mac,
            src_ip,
            report: WireChaosReport::default(),
        }
    }

    /// Emits one round of mutated frames through `stack`'s transmit path.
    pub fn round(
        &mut self,
        stack: &mut FStack,
        digest: &mut ChaosDigest,
        out: &mut ChaosStepOutcome,
    ) {
        for _ in 0..self.cfg.frames_per_round {
            let class = self.rng.below(N_CLASSES);
            let frame = self.craft(class);
            digest.fold_u64(class);
            digest.fold(&frame);
            if stack.inject_raw_tx(&frame) {
                self.report.frames_emitted += 1;
                self.report.bytes_emitted += frame.len() as u64;
                out.ff_calls += 1;
                out.bytes += frame.len() as u64;
            } else {
                self.report.rejected_oversize += 1;
            }
            out.progressed = true;
        }
    }

    /// Accounting so far.
    pub fn report(&self) -> WireChaosReport {
        self.report.clone()
    }

    /// An Ethernet header to the broadcast address (so every stack on the
    /// segment runs its parser over the payload).
    fn eth(&self, ethertype: EtherType) -> EthHdr {
        EthHdr {
            dst: MacAddr::BROADCAST,
            src: self.src_mac,
            ethertype,
        }
    }

    /// A valid IPv4+TCP frame to the target — the starting point the
    /// TCP/IP mutation classes corrupt.
    fn tcp_frame(&mut self) -> Vec<u8> {
        let seg = TcpSegment {
            src_port: 40_000 + (self.rng.below(20_000) as u16),
            dst_port: self.cfg.target_port,
            seq: self.rng.next_u64() as u32,
            ack: 0,
            flags: TcpFlags {
                syn: true,
                ..TcpFlags::default()
            },
            window: 65_535,
            options: TcpOptions::default(),
            payload: FrameBuf::copy_from(&[]),
        };
        let l4 = seg.build(self.src_ip, self.cfg.target_ip);
        let ip = Ipv4Hdr::build(
            self.src_ip,
            self.cfg.target_ip,
            IpProto::Tcp,
            self.rng.next_u64() as u16,
            &l4,
        );
        self.eth(EtherType::Ipv4).build(&ip)
    }

    /// A valid IPv4+UDP frame to the target.
    fn udp_frame(&mut self) -> Vec<u8> {
        let len = self.rng.range_inclusive(8, 64) as usize;
        let payload: Vec<u8> = (0..len).map(|_| self.rng.next_u64() as u8).collect();
        let dg = UdpDatagram {
            src_port: 40_000 + (self.rng.below(20_000) as u16),
            dst_port: self.cfg.target_port,
            payload: FrameBuf::copy_from(&payload),
        };
        let l4 = dg.build(self.src_ip, self.cfg.target_ip);
        let ip = Ipv4Hdr::build(
            self.src_ip,
            self.cfg.target_ip,
            IpProto::Udp,
            self.rng.next_u64() as u16,
            &l4,
        );
        self.eth(EtherType::Ipv4).build(&ip)
    }

    /// Recomputes the IPv4 header checksum in place after a header
    /// mutation, so the lie survives the checksum gate and reaches the
    /// deeper validation it targets.
    fn refresh_ip_checksum(frame: &mut [u8]) {
        let h = &mut frame[ETH_HDR_LEN..ETH_HDR_LEN + IPV4_HDR_LEN];
        h[10] = 0;
        h[11] = 0;
        let csum = fstack::ip::finish_checksum(fstack::ip::sum_words(h, 0));
        h[10..12].copy_from_slice(&csum.to_be_bytes());
    }

    /// One frame of the given corruption class.
    fn craft(&mut self, class: u64) -> Vec<u8> {
        match class {
            // IPv4 header checksum wrong: flip a header byte, keep the
            // stale checksum.
            0 => {
                let mut f = self.tcp_frame();
                f[ETH_HDR_LEN + 8] ^= 0x40; // TTL
                f
            }
            // total_len lies beyond the frame (checksum refreshed so the
            // length check itself must catch it).
            1 => {
                let mut f = self.tcp_frame();
                let lie = (f.len() + self.rng.range_inclusive(1, 1000) as usize) as u16;
                f[ETH_HDR_LEN + 2..ETH_HDR_LEN + 4].copy_from_slice(&lie.to_be_bytes());
                Self::refresh_ip_checksum(&mut f);
                f
            }
            // total_len shorter than the IP header itself.
            2 => {
                let mut f = self.tcp_frame();
                let lie = self.rng.below(IPV4_HDR_LEN as u64) as u16;
                f[ETH_HDR_LEN + 2..ETH_HDR_LEN + 4].copy_from_slice(&lie.to_be_bytes());
                Self::refresh_ip_checksum(&mut f);
                f
            }
            // Bad version / IHL nibble.
            3 => {
                let mut f = self.tcp_frame();
                f[ETH_HDR_LEN] = if self.rng.chance_per_mille(500) {
                    0x65 // version 6, ihl 5
                } else {
                    0x41 // version 4, ihl 1 (header shorter than minimum)
                };
                Self::refresh_ip_checksum(&mut f);
                f
            }
            // TCP data-offset field points past the frame (truncated
            // header claim).
            4 => {
                let mut f = self.tcp_frame();
                f[ETH_HDR_LEN + IPV4_HDR_LEN + 12] = 0xF0; // doff = 15 words
                f
            }
            // TCP checksum corrupted.
            5 => {
                let mut f = self.tcp_frame();
                f[ETH_HDR_LEN + IPV4_HDR_LEN + 16] ^= 0xFF;
                f
            }
            // UDP length field lies beyond the datagram.
            6 => {
                let mut f = self.udp_frame();
                let lie = (f.len() + 100) as u16;
                f[ETH_HDR_LEN + IPV4_HDR_LEN + 4..ETH_HDR_LEN + IPV4_HDR_LEN + 6]
                    .copy_from_slice(&lie.to_be_bytes());
                f
            }
            // UDP checksum corrupted.
            7 => {
                let mut f = self.udp_frame();
                f[ETH_HDR_LEN + IPV4_HDR_LEN + 6] ^= 0xA5;
                f
            }
            // ARP structural garbage: bad htype/hlen/op constants.
            8 => {
                let req = ArpPacket::request(self.src_mac, self.src_ip, self.cfg.target_ip);
                let mut p = req.build();
                match self.rng.below(3) {
                    0 => p[1] = 9, // htype
                    1 => p[4] = 8, // hlen
                    _ => p[7] = 7, // op
                }
                self.eth(EtherType::Arp).build(&p)
            }
            // ARP poison: a fully valid gratuitous is-at claiming the
            // target's IP lives at the adversary's MAC.
            9 => {
                self.report.arp_poison += 1;
                let poison = ArpPacket {
                    op: fstack::arp::ArpOp::Reply,
                    sha: self.src_mac,
                    spa: self.cfg.target_ip,
                    tha: MacAddr::BROADCAST,
                    tpa: self.cfg.target_ip,
                };
                self.eth(EtherType::Arp).build(&poison.build())
            }
            // Unknown EtherType carrying random bytes.
            _ => {
                let len = self.rng.range_inclusive(0, 180) as usize;
                let junk: Vec<u8> = (0..len).map(|_| self.rng.next_u64() as u8).collect();
                self.eth(EtherType::Other(0x88B5)).build(&junk)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstack::StackConfig;
    use simkern::time::SimTime;

    /// Every corruption class, replayed into a victim stack: the victim
    /// must reject-and-count (or, for the poison/junk classes, at least
    /// not panic), and the adversary's own stack must queue the frames.
    #[test]
    fn every_class_is_rejected_not_panicked() {
        let victim_ip = Ipv4Addr::new(10, 0, 0, 1);
        let mut attacker = MalformedFrameApp::new(
            WireChaosConfig {
                target_ip: victim_ip,
                ..WireChaosConfig::default()
            },
            42,
            MacAddr::local(7),
            Ipv4Addr::new(10, 0, 0, 7),
        );
        let mut victim = FStack::new(StackConfig::new("victim", MacAddr::local(1), victim_ip));
        let mut digest = ChaosDigest::new();
        for class in 0..N_CLASSES {
            for _ in 0..32 {
                let frame = attacker.craft(class);
                digest.fold(&frame);
                victim.input_buf(SimTime::ZERO, &FrameBuf::copy_from(&frame));
            }
        }
        let stats = victim.stats();
        assert!(
            stats.parse_drops() > 0,
            "malformed frames must be counted, got {stats:?}"
        );
        // The poison replies parse fine — they are the classes that do
        // NOT show up as parse drops.
        assert!(attacker.report().arp_poison > 0);
    }

    #[test]
    fn rounds_are_deterministic_in_the_seed() {
        let mk = || {
            MalformedFrameApp::new(
                WireChaosConfig::default(),
                3,
                MacAddr::local(2),
                Ipv4Addr::new(10, 0, 0, 5),
            )
        };
        let mut a = mk();
        let mut b = mk();
        let mut stack_a = FStack::new(StackConfig::new(
            "a",
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 5),
        ));
        let mut stack_b = FStack::new(StackConfig::new(
            "b",
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 5),
        ));
        let (mut da, mut db) = (ChaosDigest::new(), ChaosDigest::new());
        let (mut oa, mut ob) = (ChaosStepOutcome::default(), ChaosStepOutcome::default());
        for _ in 0..16 {
            a.round(&mut stack_a, &mut da, &mut oa);
            b.round(&mut stack_b, &mut db, &mut ob);
        }
        assert_eq!(da.value(), db.value());
        assert_eq!(a.report(), b.report());
    }
}
