//! # capnet-chaos — seeded fault-injection campaigns
//!
//! The paper's security argument is that compartmentalization *contains*
//! faults: a compromised or misbehaving component raises a precise
//! capability exception instead of corrupting its neighbours. This crate
//! makes that argument executable as three deterministic injector
//! families, driven from inside the simulation like any other app:
//!
//! * [`malformed::MalformedFrameApp`] — a **wire-level adversary** that
//!   builds well-formed Ethernet/IP/TCP/UDP/ARP frames with the stack's
//!   own builders, then applies seeded mutations (length-field lies, bad
//!   checksums, truncated-header claims, ARP poisoning) and emits them
//!   through the normal transmit path. Every parser in `fstack`/`updk`
//!   must reject-and-count, never panic.
//! * [`tcpforge::TcpForgeApp`] — an **off-path TCP forger** spraying
//!   blind RSTs and SYNs (RFC 5961's threat model) at live victim
//!   4-tuples: teardown only on an exact sequence match, everything else
//!   a counted drop in the victim's `StackStats` forgery counters.
//! * [`walker::CapabilityWalker`] — a **compromised-compartment model**:
//!   an attacker cVM inside its own [`intravisor::Intravisor`] probes
//!   capability space around a MAVLink-victim cVM (out-of-bounds loads
//!   and stores, tag-cleared dereferences, sealed dereferences,
//!   permission and bounds escalations, forged boundary capabilities).
//!   Every probe must land as the *precise* expected
//!   [`cheri::FaultKind`], and none may alter the victim's memory.
//! * [`bitflip::BitFlipInjector`] — single-event upsets into a
//!   [`cheri::TaggedMemory`]'s data and tag bits, with
//!   [`cheri::FlipEffect`] accounting: strikes on tagged granules are
//!   detectable kills, tag storage never flips *to* valid.
//!
//! A campaign is one [`ChaosApp`] hosting any subset of the families.
//! Everything is a pure function of the seed: the per-round outcome
//! stream folds into an FNV-1a digest ([`ChaosReport::digest`]) that is
//! byte-identical at any worker count of the sharded engine.

pub mod bitflip;
pub mod malformed;
pub mod tcpforge;
pub mod walker;

pub use bitflip::{BitFlipConfig, BitFlipInjector, BitFlipReport};
pub use malformed::{MalformedFrameApp, WireChaosConfig, WireChaosReport};
pub use tcpforge::{TcpForgeApp, TcpForgeConfig, TcpForgeReport};
pub use walker::{CapabilityWalker, WalkerConfig, WalkerReport};

use fstack::FStack;
use simkern::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;
use updk::nic::MacAddr;

/// FNV-1a 64-bit accumulator — the same digest family the engine's trace
/// uses, so campaign streams get the same byte-identity guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosDigest(u64);

impl ChaosDigest {
    /// The FNV-1a offset basis.
    pub fn new() -> ChaosDigest {
        ChaosDigest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the digest.
    pub fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds a little-endian `u64` into the digest.
    pub fn fold_u64(&mut self, v: u64) {
        self.fold(&v.to_le_bytes());
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for ChaosDigest {
    fn default() -> Self {
        ChaosDigest::new()
    }
}

/// What one [`ChaosApp::step`] did — the same shape the HTTP apps report,
/// so the engine charges isolation costs and schedules identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStepOutcome {
    /// `ff_*` calls issued (each wire injection is one).
    pub ff_calls: u32,
    /// Bytes pushed onto the wire.
    pub bytes: u64,
    /// The campaign has run all its rounds.
    pub finished: bool,
    /// Whether any injector made progress.
    pub progressed: bool,
}

/// A campaign: which injector families run, and the pacing they share.
///
/// Defaults enable nothing — each family is opted in with its sub-config.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Delay before the first round (default 1 ms — lets ARP/handshakes
    /// settle so the adversary hits a warm stack).
    pub start_after: SimDuration,
    /// Gap between rounds (default 50 µs).
    pub period: SimDuration,
    /// Total rounds to run (default 200).
    pub rounds: u64,
    /// Wire-level adversary, if any.
    pub wire: Option<WireChaosConfig>,
    /// Off-path TCP forger (blind RST/SYN against live tuples), if any.
    pub forge: Option<TcpForgeConfig>,
    /// Compromised-compartment walker, if any.
    pub walker: Option<WalkerConfig>,
    /// Bit-flip injector, if any.
    pub bitflip: Option<BitFlipConfig>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            start_after: SimDuration::from_millis(1),
            period: SimDuration::from_micros(50),
            rounds: 200,
            wire: None,
            forge: None,
            walker: None,
            bitflip: None,
        }
    }
}

/// What a finished (or in-flight) campaign observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// The app label.
    pub label: String,
    /// FNV-1a digest of the full outcome stream (frames emitted, probe
    /// verdicts, flip effects) — byte-identical at any worker count.
    pub digest: u64,
    /// Rounds completed.
    pub rounds: u64,
    /// Wire adversary accounting.
    pub wire: Option<WireChaosReport>,
    /// TCP-forgery accounting.
    pub forge: Option<TcpForgeReport>,
    /// Capability walker accounting.
    pub walker: Option<WalkerReport>,
    /// Bit-flip accounting.
    pub bitflip: Option<BitFlipReport>,
}

impl ChaosReport {
    /// Injected violations the architecture turned into a detectable
    /// event: capability probes that faulted as expected plus flips that
    /// killed (or were absorbed by) tagged storage.
    pub fn violations_detected(&self) -> u64 {
        self.walker.as_ref().map_or(0, |w| w.faults_expected)
            + self
                .bitflip
                .as_ref()
                .map_or(0, |b| b.caps_killed + b.absorbed)
    }

    /// Probes whose fault class differed from the prediction — must be 0.
    pub fn mismatches(&self) -> u64 {
        self.walker.as_ref().map_or(0, |w| w.mismatches)
    }

    /// Probes that altered another compartment's memory — must be 0.
    pub fn corruptions(&self) -> u64 {
        self.walker.as_ref().map_or(0, |w| w.corruptions)
    }
}

/// The campaign driver the engine hosts on a node, next to the iperf and
/// HTTP apps. Pacing, RNG streams and every injector are derived from the
/// installer-provided seed, so the outcome is a pure function of
/// `(config, seed, node identity)`.
#[derive(Debug)]
pub struct ChaosApp {
    label: String,
    cfg: ChaosConfig,
    wire: Option<MalformedFrameApp>,
    forge: Option<TcpForgeApp>,
    walker: Option<CapabilityWalker>,
    bitflip: Option<BitFlipInjector>,
    digest: ChaosDigest,
    next_round: Option<SimTime>,
    rounds_done: u64,
    finished: bool,
}

impl ChaosApp {
    /// Builds the campaign. `src_mac`/`src_ip` identify the hosting node
    /// on the wire (the adversary's own L2/L3 address).
    pub fn new(
        label: impl Into<String>,
        cfg: ChaosConfig,
        seed: u64,
        src_mac: MacAddr,
        src_ip: Ipv4Addr,
    ) -> ChaosApp {
        let wire = cfg
            .wire
            .clone()
            .map(|w| MalformedFrameApp::new(w, seed ^ 0x5749_5245, src_mac, src_ip));
        let forge = cfg
            .forge
            .clone()
            .map(|f| TcpForgeApp::new(f, seed ^ 0x464F_5247, src_mac));
        let walker = cfg
            .walker
            .clone()
            .map(|w| CapabilityWalker::new(w, seed ^ 0x5741_4C4B));
        let bitflip = cfg
            .bitflip
            .clone()
            .map(|b| BitFlipInjector::new(b, seed ^ 0x464C_4950));
        ChaosApp {
            label: label.into(),
            cfg,
            wire,
            forge,
            walker,
            bitflip,
            digest: ChaosDigest::new(),
            next_round: None,
            rounds_done: 0,
            finished: false,
        }
    }

    /// `true` once every round has run.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// `true` when a round should fire at (or before) `now`.
    pub fn due(&self, now: SimTime) -> bool {
        self.next_deadline(now).is_some_and(|d| d <= now)
    }

    /// The instant the engine must wake this app, if any.
    pub fn next_deadline(&self, _now: SimTime) -> Option<SimTime> {
        if self.finished {
            return None;
        }
        // Not started: wake immediately so the first step can anchor the
        // round clock at the simulation's current instant.
        Some(self.next_round.unwrap_or(SimTime::ZERO))
    }

    /// Runs every due round: each fires one wire volley, one capability
    /// probe and one flip, per enabled family.
    pub fn step(&mut self, stack: &mut FStack, now: SimTime) -> ChaosStepOutcome {
        let mut out = ChaosStepOutcome::default();
        if self.finished {
            out.finished = true;
            return out;
        }
        let Some(mut next) = self.next_round else {
            // First step: anchor the campaign clock.
            self.next_round = Some(now + self.cfg.start_after);
            out.progressed = true;
            return out;
        };
        while next <= now && !self.finished {
            if let Some(w) = &mut self.wire {
                w.round(stack, &mut self.digest, &mut out);
            }
            if let Some(f) = &mut self.forge {
                f.round(stack, &mut self.digest, &mut out);
            }
            if let Some(w) = &mut self.walker {
                w.round(&mut self.digest);
                out.progressed = true;
            }
            if let Some(b) = &mut self.bitflip {
                b.round(&mut self.digest);
                out.progressed = true;
            }
            self.rounds_done += 1;
            if self.rounds_done >= self.cfg.rounds {
                self.finished = true;
                out.finished = true;
            }
            next += self.cfg.period;
        }
        self.next_round = Some(next);
        out
    }

    /// The campaign's accounting so far.
    pub fn report(&self) -> ChaosReport {
        ChaosReport {
            label: self.label.clone(),
            digest: self.digest.value(),
            rounds: self.rounds_done,
            wire: self.wire.as_ref().map(MalformedFrameApp::report),
            forge: self.forge.as_ref().map(TcpForgeApp::report),
            walker: self.walker.as_ref().map(CapabilityWalker::report),
            bitflip: self.bitflip.as_ref().map(BitFlipInjector::report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstack::StackConfig;

    fn test_stack(ip: Ipv4Addr) -> FStack {
        FStack::new(StackConfig::new("chaos", MacAddr::local(9), ip))
    }

    fn full_config(rounds: u64) -> ChaosConfig {
        ChaosConfig {
            rounds,
            wire: Some(WireChaosConfig {
                target_ip: Ipv4Addr::new(10, 0, 0, 1),
                ..WireChaosConfig::default()
            }),
            walker: Some(WalkerConfig::default()),
            bitflip: Some(BitFlipConfig::default()),
            ..ChaosConfig::default()
        }
    }

    fn run_campaign(seed: u64) -> ChaosReport {
        let mut app = ChaosApp::new(
            "campaign",
            full_config(40),
            seed,
            MacAddr::local(9),
            Ipv4Addr::new(10, 0, 0, 9),
        );
        let mut stack = test_stack(Ipv4Addr::new(10, 0, 0, 9));
        let mut now = SimTime::ZERO;
        while !app.finished() {
            if let Some(d) = app.next_deadline(now) {
                now = now.max(d);
            }
            app.step(&mut stack, now);
        }
        app.report()
    }

    #[test]
    fn campaign_is_a_pure_function_of_the_seed() {
        let a = run_campaign(7);
        let b = run_campaign(7);
        assert_eq!(a, b);
        let c = run_campaign(8);
        assert_ne!(a.digest, c.digest, "different seeds must diverge");
    }

    #[test]
    fn campaign_contains_every_violation() {
        let r = run_campaign(21);
        assert_eq!(r.rounds, 40);
        assert_eq!(r.mismatches(), 0, "a probe missed its predicted fault");
        assert_eq!(r.corruptions(), 0, "a probe altered the victim");
        assert!(r.violations_detected() > 0);
        let w = r.wire.as_ref().unwrap();
        assert!(w.frames_emitted > 0);
    }

    #[test]
    fn report_helpers_default_to_zero_without_families() {
        let app = ChaosApp::new(
            "empty",
            ChaosConfig::default(),
            1,
            MacAddr::local(1),
            Ipv4Addr::new(10, 0, 0, 3),
        );
        let r = app.report();
        assert_eq!(r.violations_detected(), 0);
        assert_eq!(r.mismatches(), 0);
        assert_eq!(r.corruptions(), 0);
    }

    #[test]
    fn pacing_fires_rounds_on_the_period() {
        let mut app = ChaosApp::new(
            "paced",
            ChaosConfig {
                rounds: 3,
                bitflip: Some(BitFlipConfig::default()),
                ..ChaosConfig::default()
            },
            5,
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 4),
        );
        let mut stack = test_stack(Ipv4Addr::new(10, 0, 0, 4));
        // Unanchored app is due immediately; the first step only anchors.
        assert!(app.due(SimTime::ZERO));
        app.step(&mut stack, SimTime::ZERO);
        assert_eq!(app.report().rounds, 0);
        let start = SimTime::ZERO + SimDuration::from_millis(1);
        assert!(!app.due(start - SimDuration::from_nanos(1)));
        assert!(app.due(start));
        // Stepping past two periods runs the catch-up rounds in one call.
        let out = app.step(&mut stack, start + SimDuration::from_micros(50));
        assert!(out.progressed);
        assert_eq!(app.report().rounds, 2);
        app.step(&mut stack, start + SimDuration::from_micros(100));
        assert!(app.finished());
        assert_eq!(app.next_deadline(SimTime::ZERO), None);
    }
}
