//! The TCP-forgery adversary: off-path blind RST and SYN injection
//! against *live* victim connections.
//!
//! Where [`crate::malformed`] attacks the parsers, this family attacks
//! TCP's **connection identity**: it spoofs segments that are perfectly
//! well-formed — correct checksums, a real 4-tuple — but were never sent
//! by the peer they claim to be from. The two classic off-path shapes
//! (RFC 5961's threat model):
//!
//! * **Blind RST** — a reset claiming to be the client, with a guessed
//!   sequence number. The victim must tear down only on an *exact*
//!   `rcv_nxt` match; an in-window guess earns a challenge ACK and every
//!   miss is a counted drop (`rst_forgery_drops`), never a teardown.
//! * **Blind SYN** — a SYN on an established connection. The victim must
//!   not reset to Listen (the pre-5961 failure); it drops, counts
//!   (`syn_forgery_drops`) and challenge-ACKs.
//!
//! The forger cycles through a small ephemeral-port range the real
//! client fleet allocates from sequentially, so a busy serving plane
//! guarantees live-tuple hits. Frames leave through
//! [`fstack::FStack::inject_raw_tx`] and traverse the switch like any
//! legitimate traffic; the campaign asserts the victim's forgery
//! counters moved while its serving counters kept climbing.

use crate::{ChaosDigest, ChaosStepOutcome};
use fstack::ether::{EthHdr, EtherType};
use fstack::ip::{IpProto, Ipv4Hdr};
use fstack::tcp::{TcpFlags, TcpOptions, TcpSegment};
use fstack::FStack;
use simkern::rng::SimRng;
use std::net::Ipv4Addr;
use updk::framebuf::FrameBuf;
use updk::nic::MacAddr;

/// TCP-forgery knobs.
#[derive(Debug, Clone)]
pub struct TcpForgeConfig {
    /// The connection endpoint under attack (the serving side).
    pub victim_ip: Ipv4Addr,
    /// The victim's listening port (the live connections' local port).
    pub victim_port: u16,
    /// The peer the forgeries impersonate (a real client's address).
    pub client_ip: Ipv4Addr,
    /// Low end of the impersonated ephemeral-port range. The stack
    /// allocates ephemerals sequentially from 40 000, so a small range
    /// starting there maximizes live-tuple hits.
    pub ephemeral_lo: u16,
    /// High end (inclusive) of the impersonated ephemeral-port range.
    pub ephemeral_hi: u16,
    /// Forged segments per campaign round (default 4; alternating
    /// RST/SYN).
    pub frames_per_round: u32,
}

impl Default for TcpForgeConfig {
    fn default() -> Self {
        TcpForgeConfig {
            victim_ip: Ipv4Addr::new(10, 0, 0, 1),
            victim_port: 8080,
            client_ip: Ipv4Addr::new(10, 0, 0, 2),
            ephemeral_lo: 40_000,
            ephemeral_hi: 40_015,
            frames_per_round: 4,
        }
    }
}

/// TCP-forgery accounting (the adversary's side; the victim's defence
/// shows up in its [`fstack::StackStats`] forgery counters).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TcpForgeReport {
    /// Blind RSTs emitted.
    pub rsts_forged: u64,
    /// Blind SYNs emitted.
    pub syns_forged: u64,
    /// Bytes of forged frames on the wire.
    pub bytes_emitted: u64,
}

/// The forgery app: one seeded RNG choosing ports, sequence numbers and
/// the RST/SYN mix.
#[derive(Debug)]
pub struct TcpForgeApp {
    cfg: TcpForgeConfig,
    rng: SimRng,
    src_mac: MacAddr,
    report: TcpForgeReport,
}

impl TcpForgeApp {
    /// Builds the forger. `src_mac` is the adversary's own L2 address
    /// (the spoofing happens at L3 — off-path hosts share the segment).
    pub fn new(cfg: TcpForgeConfig, seed: u64, src_mac: MacAddr) -> Self {
        TcpForgeApp {
            cfg,
            rng: SimRng::seed_from_u64(seed),
            src_mac,
            report: TcpForgeReport::default(),
        }
    }

    /// Emits one round of forged segments through `stack`'s transmit
    /// path.
    pub fn round(
        &mut self,
        stack: &mut FStack,
        digest: &mut ChaosDigest,
        out: &mut ChaosStepOutcome,
    ) {
        for _ in 0..self.cfg.frames_per_round {
            // Draws in fixed order: port, sequence, kind.
            let span = u64::from(self.cfg.ephemeral_hi.saturating_sub(self.cfg.ephemeral_lo)) + 1;
            let port = self.cfg.ephemeral_lo + self.rng.below(span) as u16;
            let seq = self.rng.next_u64() as u32;
            let rst = self.rng.chance_per_mille(500);
            let frame = self.forge(port, seq, rst);
            digest.fold_u64(u64::from(port) << 33 | u64::from(rst) << 32 | u64::from(seq));
            digest.fold(&frame);
            if stack.inject_raw_tx(&frame) {
                if rst {
                    self.report.rsts_forged += 1;
                } else {
                    self.report.syns_forged += 1;
                }
                self.report.bytes_emitted += frame.len() as u64;
                out.ff_calls += 1;
                out.bytes += frame.len() as u64;
            }
            out.progressed = true;
        }
    }

    /// Accounting so far.
    pub fn report(&self) -> TcpForgeReport {
        self.report.clone()
    }

    /// One forged segment impersonating `client_ip:port → victim`: a
    /// blind RST (guessed `seq`) or a blind SYN. Well-formed in every
    /// way — the victim's *sequence validation*, not its parser, must be
    /// the defence.
    fn forge(&mut self, port: u16, seq: u32, rst: bool) -> Vec<u8> {
        let seg = TcpSegment {
            src_port: port,
            dst_port: self.cfg.victim_port,
            seq,
            ack: 0,
            flags: TcpFlags {
                rst,
                syn: !rst,
                ..TcpFlags::default()
            },
            window: 65_535,
            options: TcpOptions::default(),
            payload: FrameBuf::copy_from(&[]),
        };
        let l4 = seg.build(self.cfg.client_ip, self.cfg.victim_ip);
        let ip = Ipv4Hdr::build(
            self.cfg.client_ip,
            self.cfg.victim_ip,
            IpProto::Tcp,
            self.rng.next_u64() as u16,
            &l4,
        );
        EthHdr {
            // Broadcast at L2: every stack on the segment sees it, only
            // the claimed L3 destination processes it — the off-path
            // adversary needs no ARP knowledge of the victim.
            dst: MacAddr::BROADCAST,
            src: self.src_mac,
            ethertype: EtherType::Ipv4,
        }
        .build(&ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstack::epoll::EpollFlags;
    use fstack::socket::SockType;
    use fstack::StackConfig;
    use simkern::time::SimTime;

    /// Forged RSTs and SYNs replayed straight into a victim stack with a
    /// live established connection: every forgery must be dropped and
    /// counted, never tear the connection down.
    #[test]
    fn forgeries_count_but_never_kill_the_connection() {
        let victim_ip = Ipv4Addr::new(10, 0, 0, 1);
        let client_ip = Ipv4Addr::new(10, 0, 0, 2);
        let port = 8080;

        // A real client stack establishes against the victim.
        let mut victim = FStack::new(StackConfig::new("victim", MacAddr::local(1), victim_ip));
        let mut client = FStack::new(StackConfig::new("client", MacAddr::local(2), client_ip));
        victim
            .arp_cache_mut()
            .insert_static(client_ip, MacAddr::local(2));
        client
            .arp_cache_mut()
            .insert_static(victim_ip, MacAddr::local(1));
        let lfd = victim.ff_socket(SockType::Stream).unwrap();
        victim.ff_bind(lfd, port).unwrap();
        victim.ff_listen(lfd, 8).unwrap();
        let cfd = client.ff_socket(SockType::Stream).unwrap();
        let mut now = SimTime::ZERO;
        client.ff_connect(cfd, (victim_ip, port), now).unwrap();
        for _ in 0..6 {
            now += simkern::time::SimDuration::from_micros(50);
            for f in client.poll_tx(now) {
                victim.input_buf(now, &f);
            }
            for f in victim.poll_tx(now) {
                client.input_buf(now, &f);
            }
        }
        let vfd = victim.ff_accept(lfd).expect("handshake completed");

        // The off-path forger sprays the (known, tiny) tuple space.
        let mut forger = TcpForgeApp::new(
            TcpForgeConfig {
                victim_ip,
                victim_port: port,
                client_ip,
                ephemeral_lo: 40_000,
                ephemeral_hi: 40_003,
                frames_per_round: 64,
            },
            7,
            MacAddr::local(9),
        );
        let mut atk = FStack::new(StackConfig::new("atk", MacAddr::local(9), client_ip));
        let mut digest = ChaosDigest::new();
        let mut out = ChaosStepOutcome::default();
        forger.round(&mut atk, &mut digest, &mut out);
        now += simkern::time::SimDuration::from_micros(50);
        for f in atk.poll_tx(now) {
            victim.input_buf(now, &f);
        }

        let r = forger.report();
        assert!(r.rsts_forged > 0 && r.syns_forged > 0);
        let stats = victim.stats();
        assert!(
            stats.rst_forgery_drops > 0,
            "blind RSTs must be counted drops: {stats:?}"
        );
        assert!(
            stats.syn_forgery_drops > 0,
            "blind SYNs must be counted drops: {stats:?}"
        );
        // The live connection survived the barrage.
        let ready = victim.readiness(vfd);
        assert!(!ready.contains(EpollFlags::ERR) && !ready.contains(EpollFlags::HUP));
    }

    #[test]
    fn forger_is_deterministic_in_the_seed() {
        let mk = || TcpForgeApp::new(TcpForgeConfig::default(), 11, MacAddr::local(3));
        let mut a = mk();
        let mut b = mk();
        let mut sa = FStack::new(StackConfig::new(
            "a",
            MacAddr::local(3),
            Ipv4Addr::new(10, 0, 0, 9),
        ));
        let mut sb = FStack::new(StackConfig::new(
            "b",
            MacAddr::local(3),
            Ipv4Addr::new(10, 0, 0, 9),
        ));
        let (mut da, mut db) = (ChaosDigest::new(), ChaosDigest::new());
        let (mut oa, mut ob) = (ChaosStepOutcome::default(), ChaosStepOutcome::default());
        for _ in 0..8 {
            a.round(&mut sa, &mut da, &mut oa);
            b.round(&mut sb, &mut db, &mut ob);
        }
        assert_eq!(da.value(), db.value());
        assert_eq!(a.report(), b.report());
    }
}
