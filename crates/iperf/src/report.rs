//! Bandwidth accounting and reporting.

use simkern::time::{SimDuration, SimTime};

/// One reporting interval (iperf3 prints one line per second).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalReport {
    /// Interval start.
    pub from: SimTime,
    /// Interval end.
    pub to: SimTime,
    /// Payload bytes moved in the interval.
    pub bytes: u64,
}

impl IntervalReport {
    /// Interval bandwidth in Mbit/s.
    pub fn mbit_per_sec(&self) -> f64 {
        let secs = (self.to - self.from).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / secs / 1e6
        }
    }
}

/// The end-of-run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthReport {
    /// Run label (e.g. `cVM1 server`).
    pub label: String,
    /// Total payload bytes.
    pub bytes: u64,
    /// Measured span.
    pub elapsed: SimDuration,
    /// Per-interval breakdown.
    pub intervals: Vec<IntervalReport>,
}

impl BandwidthReport {
    /// Mean bandwidth in Mbit/s over the whole run.
    pub fn mbit_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / secs / 1e6
        }
    }

    /// The paper's efficiency metric: bandwidth ÷ theoretical line rate.
    pub fn efficiency(&self, link_bps: u64) -> f64 {
        self.mbit_per_sec() * 1e6 / link_bps as f64
    }
}

impl std::fmt::Display for BandwidthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.0} Mbit/s over {} ({} bytes)",
            self.label,
            self.mbit_per_sec(),
            self.elapsed,
            self.bytes
        )
    }
}

/// Accumulates bytes into fixed-length intervals.
#[derive(Debug, Clone)]
pub struct IntervalTracker {
    interval: SimDuration,
    current_start: SimTime,
    current_bytes: u64,
    done: Vec<IntervalReport>,
}

impl IntervalTracker {
    /// Starts tracking at `start` with the given interval length.
    pub fn new(start: SimTime, interval: SimDuration) -> Self {
        IntervalTracker {
            interval,
            current_start: start,
            current_bytes: 0,
            done: Vec::new(),
        }
    }

    /// Records `bytes` moved at instant `now`, rolling intervals as needed.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        while now - self.current_start >= self.interval {
            let end = self.current_start + self.interval;
            self.done.push(IntervalReport {
                from: self.current_start,
                to: end,
                bytes: self.current_bytes,
            });
            self.current_start = end;
            self.current_bytes = 0;
        }
        self.current_bytes += bytes;
    }

    /// Closes the open interval at `now` and returns all intervals.
    pub fn finish(mut self, now: SimTime) -> Vec<IntervalReport> {
        if now > self.current_start {
            self.done.push(IntervalReport {
                from: self.current_start,
                to: now,
                bytes: self.current_bytes,
            });
        }
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_bandwidth_math() {
        let r = IntervalReport {
            from: SimTime::ZERO,
            to: SimTime::from_secs(1),
            bytes: 125_000_000, // 1 Gbit
        };
        assert!((r.mbit_per_sec() - 1000.0).abs() < 1e-6);
        let degenerate = IntervalReport {
            from: SimTime::ZERO,
            to: SimTime::ZERO,
            bytes: 1,
        };
        assert_eq!(degenerate.mbit_per_sec(), 0.0);
    }

    #[test]
    fn summary_efficiency_matches_table2_form() {
        // 941 Mbit/s over a 1 Gbit/s port → 94.1 % efficiency.
        let r = BandwidthReport {
            label: "cVM2".into(),
            bytes: 117_625_000,
            elapsed: SimDuration::from_secs(1),
            intervals: vec![],
        };
        assert!((r.mbit_per_sec() - 941.0).abs() < 0.1);
        assert!((r.efficiency(1_000_000_000) - 0.941).abs() < 1e-4);
    }

    #[test]
    fn tracker_rolls_intervals() {
        let mut t = IntervalTracker::new(SimTime::ZERO, SimDuration::from_millis(100));
        t.record(SimTime::from_millis(10), 100);
        t.record(SimTime::from_millis(50), 100);
        t.record(SimTime::from_millis(150), 100);
        t.record(SimTime::from_millis(310), 100);
        let intervals = t.finish(SimTime::from_millis(350));
        assert_eq!(intervals.len(), 4);
        assert_eq!(intervals[0].bytes, 200);
        assert_eq!(intervals[1].bytes, 100);
        assert_eq!(intervals[2].bytes, 0, "an idle interval is reported");
        assert_eq!(intervals[3].bytes, 100);
    }

    #[test]
    fn display_is_readable() {
        let r = BandwidthReport {
            label: "srv".into(),
            bytes: 1000,
            elapsed: SimDuration::from_millis(1),
            intervals: vec![],
        };
        let s = r.to_string();
        assert!(s.contains("srv"), "{s}");
        assert!(s.contains("Mbit/s"), "{s}");
    }
}
