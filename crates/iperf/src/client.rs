//! The iperf client (sender): connect and keep the pipe full for a
//! configured duration.

use crate::report::{BandwidthReport, IntervalTracker};
use crate::StepOutcome;
use cheri::{Capability, TaggedMemory};
use chos::errno::Errno;
use chos::fdtable::Fd;
use fstack::epoll::{EpollEvent, EpollFlags};
use fstack::socket::SockType;
use fstack::FStack;
use simkern::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Connecting,
    Running,
    Closing,
    Done,
}

/// The sender application.
#[derive(Debug)]
pub struct ClientApp {
    label: String,
    fd: Fd,
    epfd: Fd,
    /// Capability over the (pattern-filled) payload the app writes from.
    payload: Capability,
    duration: SimDuration,
    phase: Phase,
    started: Option<SimTime>,
    bytes: u64,
    tracker: Option<IntervalTracker>,
    /// Optional gap between writes — the paper increases the inter-write
    /// interval in the uncontended Scenario 2 measurement.
    write_gap: SimDuration,
    next_write_at: SimTime,
    /// Reused event vector for the connection-phase epoll poll.
    events: Vec<EpollEvent>,
}

impl ClientApp {
    /// Connects to `remote` and prepares to send for `duration`.
    ///
    /// `payload` is the capability-bounded source buffer (filled by the
    /// caller; its length is the per-call write size).
    ///
    /// # Errors
    ///
    /// Propagates socket-setup failures.
    pub fn start(
        stack: &mut FStack,
        label: impl Into<String>,
        remote: (Ipv4Addr, u16),
        payload: Capability,
        duration: SimDuration,
        now: SimTime,
    ) -> Result<Self, Errno> {
        let fd = stack.ff_socket(SockType::Stream)?;
        stack.ff_connect(fd, remote, now)?;
        let epfd = stack.ff_epoll_create();
        stack.ff_epoll_ctl_add(epfd, fd, EpollFlags::OUT)?;
        Ok(ClientApp {
            label: label.into(),
            fd,
            epfd,
            payload,
            duration,
            phase: Phase::Connecting,
            started: None,
            bytes: 0,
            tracker: None,
            write_gap: SimDuration::ZERO,
            next_write_at: SimTime::ZERO,
            events: Vec::new(),
        })
    }

    /// Sets a minimum gap between consecutive `ff_write` calls (used by the
    /// Fig. 5 uncontended measurement protocol).
    pub fn set_write_gap(&mut self, gap: SimDuration) {
        self.write_gap = gap;
    }

    /// Total bytes accepted by `ff_write`.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The connection socket — the fd a dirty-fd-driven driver watches for
    /// this app (SYN-ACKs, send-space openings, close progress all surface
    /// as changes on it).
    pub fn sock_fd(&self) -> Fd {
        self.fd
    }

    /// `true` when the app would act at `now` without any new stack event:
    /// the sending phase with the write gap elapsed (a write may proceed)
    /// or the stop instant reached (the close is owed). Together with the
    /// dirty-fd set this is the driver's complete "can a step progress?"
    /// test.
    pub fn due(&self, now: SimTime) -> bool {
        match self.phase {
            Phase::Running => {
                let started = self.started.expect("running implies started");
                now >= self.next_write_at || now - started >= self.duration
            }
            _ => false,
        }
    }

    /// `true` once the connection is closed and the run is over.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// One poll-mode step of the sender.
    ///
    /// # Errors
    ///
    /// Unexpected socket errors (EAGAIN/EPIPE during shutdown are handled).
    pub fn step(
        &mut self,
        stack: &mut FStack,
        mem: &mut TaggedMemory,
        now: SimTime,
    ) -> Result<StepOutcome, Errno> {
        let mut out = StepOutcome::default();
        match self.phase {
            Phase::Connecting => {
                out.ff_calls += 1;
                let mut events = std::mem::take(&mut self.events);
                if let Err(e) = stack.ff_epoll_wait_into(self.epfd, &mut events) {
                    self.events = events;
                    return Err(e);
                }
                let writable = events
                    .iter()
                    .any(|e| e.fd == self.fd && e.events.contains(EpollFlags::OUT));
                self.events = events;
                if writable {
                    self.phase = Phase::Running;
                    self.started = Some(now);
                    self.tracker = Some(IntervalTracker::new(now, SimDuration::from_millis(100)));
                    out.progressed = true;
                }
            }
            Phase::Running => {
                let started = self.started.expect("running implies started");
                if now - started >= self.duration {
                    out.ff_calls += 1;
                    stack.ff_close(self.fd)?;
                    self.phase = Phase::Closing;
                    out.progressed = true;
                    return Ok(out);
                }
                if now < self.next_write_at {
                    return Ok(out);
                }
                // Fill the send buffer until EAGAIN (or one write when a
                // gap is configured).
                loop {
                    out.ff_calls += 1;
                    match stack.ff_write(mem, self.fd, &self.payload, self.payload.len()) {
                        Ok(n) => {
                            self.bytes += n;
                            out.bytes += n;
                            out.progressed = true;
                            if let Some(t) = self.tracker.as_mut() {
                                t.record(now, n);
                            }
                            if !self.write_gap.is_zero() {
                                self.next_write_at = now + self.write_gap;
                                break;
                            }
                        }
                        Err(Errno::EAGAIN) => break,
                        Err(Errno::EPIPE) => {
                            self.phase = Phase::Done;
                            out.progressed = true;
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            Phase::Closing => {
                // Wait for the stack to finish the FIN handshake; readiness
                // turns to ERR once the fd is reaped.
                let r = stack.readiness(self.fd);
                if r.contains(EpollFlags::ERR) || r.contains(EpollFlags::HUP) {
                    self.phase = Phase::Done;
                    out.progressed = true;
                }
                out.ff_calls += 1;
            }
            Phase::Done => {}
        }
        out.finished = self.phase == Phase::Done;
        Ok(out)
    }

    /// The next instant at which this app will act on its own (without an
    /// inbound frame prompting it): the configured stop instant and, when a
    /// write gap is set and still pending, the next write instant. `None`
    /// outside the running phase — connecting, closing and done states only
    /// move on stack events (frame arrival or stack timers), so the driver
    /// may park the node's loop until one occurs.
    pub fn next_deadline(&self, now: SimTime) -> Option<SimTime> {
        if self.phase != Phase::Running {
            return None;
        }
        let started = self.started?;
        let mut d = started + self.duration;
        if self.next_write_at > now && self.next_write_at < d {
            d = self.next_write_at;
        }
        Some(d)
    }

    /// Produces the run summary at `now`.
    pub fn report(self, now: SimTime) -> BandwidthReport {
        let started = self.started.unwrap_or(now);
        let end = started + self.duration.min(now - started);
        BandwidthReport {
            label: self.label,
            bytes: self.bytes,
            elapsed: end - started,
            intervals: self.tracker.map(|t| t.finish(now)).unwrap_or_default(),
        }
    }
}
