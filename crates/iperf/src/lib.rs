//! # iperf — the bandwidth-measurement application (iperf3 analog)
//!
//! The paper ports iperf3 onto the `ff_*` API ("we initially ported iperf3
//! to work with the F-Stack API. Next, we replaced the select function, with
//! the epoll mechanism") and uses it in server (receiver) and client
//! (sender) modes to measure the maximum achievable TCP bandwidth for
//! Table II. This crate rebuilds that application against
//! [`fstack::FStack`]:
//!
//! * [`server::ServerApp`] — listen/accept/read loop over `ff_epoll`;
//! * [`client::ClientApp`] — connect + keep-the-pipe-full write loop;
//! * [`report`] — interval and summary bandwidth accounting, including the
//!   efficiency metric the paper reports (bandwidth ÷ 1 Gbit/s).
//!
//! The apps are poll-mode: the scenario driver calls `step` once per
//! F-Stack main-loop iteration (paper §III.B's "user-defined function").
//! Each step reports how many `ff_*` calls it made so the driver can charge
//! the per-call isolation costs of the active scenario (trampolines in
//! Scenario 1; cross-cVM wrappers plus the service mutex in Scenario 2).

pub mod client;
pub mod report;
pub mod server;

pub use client::ClientApp;
pub use report::{BandwidthReport, IntervalReport};
pub use server::ServerApp;

/// What one application step did (driver-side cost accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepOutcome {
    /// `ff_*` API calls issued during the step (each one crosses the
    /// compartment boundary in Scenarios 1/2).
    pub ff_calls: u32,
    /// Payload bytes moved through `ff_read`/`ff_write` this step.
    pub bytes: u64,
    /// `true` once the app has nothing further to do.
    pub finished: bool,
    /// `true` when the step changed application state (connected, accepted,
    /// moved bytes, closed, …). A step that only probed and got `EAGAIN`
    /// leaves this `false`; the quiescence-aware driver uses it — together
    /// with the stack's timer deadlines and the app's own
    /// [`client::ClientApp::next_deadline`] — to park the node's main loop
    /// instead of re-polling an unchanged world.
    pub progressed: bool,
}

/// The default iperf3 control/data port.
pub const IPERF_PORT: u16 = 5201;
