//! The iperf server (receiver): accept connections, drain them, count bytes.

use crate::report::{BandwidthReport, IntervalTracker};
use crate::StepOutcome;
use cheri::Capability;
use cheri::TaggedMemory;
use chos::errno::Errno;
use chos::fdtable::Fd;
use fstack::epoll::{EpollEvent, EpollFlags};
use fstack::socket::SockType;
use fstack::FStack;
use simkern::time::{SimDuration, SimTime};

/// The receiver application.
#[derive(Debug)]
pub struct ServerApp {
    label: String,
    listen_fd: Fd,
    epfd: Fd,
    conns: Vec<Fd>,
    /// Capability-bounded scratch buffer `ff_read` fills.
    read_buf: Capability,
    bytes: u64,
    started: Option<SimTime>,
    last_byte_at: Option<SimTime>,
    tracker: Option<IntervalTracker>,
    /// Reused event vector for the per-turn epoll poll (no allocation in
    /// steady state).
    events: Vec<EpollEvent>,
}

impl ServerApp {
    /// Creates the listener on `port` and registers it with epoll.
    ///
    /// `read_buf` is the app's receive scratch buffer — in the CHERI
    /// scenarios it is a capability bounded to the app cVM's own region, so
    /// a compromised stack could not use it to scribble elsewhere.
    ///
    /// # Errors
    ///
    /// Propagates socket-setup failures.
    pub fn start(
        stack: &mut FStack,
        label: impl Into<String>,
        port: u16,
        read_buf: Capability,
    ) -> Result<Self, Errno> {
        let listen_fd = stack.ff_socket(SockType::Stream)?;
        stack.ff_bind(listen_fd, port)?;
        stack.ff_listen(listen_fd, 16)?;
        let epfd = stack.ff_epoll_create();
        stack.ff_epoll_ctl_add(epfd, listen_fd, EpollFlags::IN)?;
        Ok(ServerApp {
            label: label.into(),
            listen_fd,
            epfd,
            conns: Vec::new(),
            read_buf,
            bytes: 0,
            started: None,
            last_byte_at: None,
            tracker: None,
            events: Vec::new(),
        })
    }

    /// Total payload bytes received.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The listening socket — with [`ServerApp::conn_fds`], the fd set a
    /// dirty-fd-driven driver watches to decide whether a step of this app
    /// can make progress (all server progress is input-driven).
    pub fn listen_fd(&self) -> Fd {
        self.listen_fd
    }

    /// The open connection fds (refreshed by the driver after each
    /// progressing step, since accepts add entries).
    pub fn conn_fds(&self) -> &[Fd] {
        &self.conns
    }

    /// Open connection count.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// One poll-mode step: accept anything pending, drain readable sockets.
    ///
    /// # Errors
    ///
    /// Unexpected socket errors (EAGAIN is handled internally).
    pub fn step(
        &mut self,
        stack: &mut FStack,
        mem: &mut TaggedMemory,
        now: SimTime,
    ) -> Result<StepOutcome, Errno> {
        let mut out = StepOutcome::default();
        // Accept new connections.
        out.ff_calls += 1;
        match stack.ff_accept(self.listen_fd) {
            Ok(fd) => {
                stack.ff_epoll_ctl_add(self.epfd, fd, EpollFlags::IN)?;
                self.conns.push(fd);
                out.progressed = true;
                if self.started.is_none() {
                    self.started = Some(now);
                    self.tracker = Some(IntervalTracker::new(now, SimDuration::from_millis(100)));
                }
            }
            Err(Errno::EAGAIN) => {}
            Err(e) => return Err(e),
        }
        // Drain readable connections (epoll-driven, as the ported iperf3).
        out.ff_calls += 1;
        let mut events = std::mem::take(&mut self.events);
        if let Err(e) = stack.ff_epoll_wait_into(self.epfd, &mut events) {
            self.events = events;
            return Err(e);
        }
        let drained = self.drain_ready(stack, mem, now, &events, &mut out);
        self.events = events;
        drained?;
        out.finished = self.started.is_some() && self.conns.is_empty();
        Ok(out)
    }

    /// Drains every readable connection in `events` (split out so the
    /// caller can restore the reused event vector even on error).
    fn drain_ready(
        &mut self,
        stack: &mut FStack,
        mem: &mut TaggedMemory,
        now: SimTime,
        events: &[EpollEvent],
        out: &mut StepOutcome,
    ) -> Result<(), Errno> {
        for &ev in events {
            if ev.fd == self.listen_fd || !ev.events.contains(EpollFlags::IN) {
                continue;
            }
            loop {
                out.ff_calls += 1;
                match stack.ff_read(mem, ev.fd, &self.read_buf, self.read_buf.len()) {
                    Ok(0) => {
                        // EOF: the sender is done.
                        out.ff_calls += 1;
                        stack.ff_close(ev.fd)?;
                        stack.ff_epoll_ctl_del(self.epfd, ev.fd).ok();
                        self.conns.retain(|&c| c != ev.fd);
                        out.progressed = true;
                        break;
                    }
                    Ok(n) => {
                        self.bytes += n;
                        out.bytes += n;
                        out.progressed = true;
                        self.last_byte_at = Some(now);
                        if let Some(t) = self.tracker.as_mut() {
                            t.record(now, n);
                        }
                    }
                    Err(Errno::EAGAIN) => break,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Produces the run summary at `now`. The measured span ends at the
    /// last received byte (the sender may have stopped before `now`).
    pub fn report(self, now: SimTime) -> BandwidthReport {
        let started = self.started.unwrap_or(now);
        let end = self.last_byte_at.unwrap_or(now).min(now);
        BandwidthReport {
            label: self.label,
            bytes: self.bytes,
            elapsed: end - started,
            intervals: self.tracker.map(|t| t.finish(now)).unwrap_or_default(),
        }
    }
}
