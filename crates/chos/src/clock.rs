//! The kernel clock: `clock_gettime` against virtual time.
//!
//! The paper's measurement methodology is `clock_gettime(CLOCK_MONOTONIC_RAW)`
//! around each `ff_write()` call. Two properties of the real counter matter
//! for reproducing the figures:
//!
//! 1. the *reading* has finite resolution — Morello's generic timer ticks at
//!    a fixed rate, so repeated measurements of a constant-cost operation
//!    collapse onto a few discrete values (the paper notes >50 % identical
//!    results, with p25 = p75 in several box plots);
//! 2. the *call* itself costs time (CheriBSD takes a real syscall here).
//!
//! [`SysClock::read`] models (1); the cost model charges (2).

use simkern::time::{SimDuration, SimTime};

/// POSIX clock identifiers (the subset CheriBSD exposes that we use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockId {
    /// `CLOCK_MONOTONIC_RAW` — the paper's measurement clock.
    MonotonicRaw,
    /// `CLOCK_MONOTONIC` (identical in simulation; no NTP slewing exists).
    Monotonic,
    /// `CLOCK_REALTIME` (offset from boot by a fixed epoch).
    Realtime,
}

/// The system clock device.
///
/// # Example
///
/// ```
/// use chos::clock::{ClockId, SysClock};
/// use simkern::{SimDuration, SimTime};
///
/// let clock = SysClock::new(SimDuration::from_nanos(25));
/// let t = clock.read(SimTime::from_nanos(1_234), ClockId::MonotonicRaw);
/// assert_eq!(t.as_nanos(), 1_225); // floored to the 25 ns tick
/// ```
#[derive(Debug, Clone)]
pub struct SysClock {
    tick: SimDuration,
    realtime_epoch_ns: u64,
}

impl SysClock {
    /// A fixed boot epoch for `CLOCK_REALTIME` (any constant works; chosen
    /// so realtime readings are visibly distinct from monotonic ones).
    const EPOCH_NS: u64 = 1_700_000_000_000_000_000;

    /// Creates a clock whose readings are floored to multiples of `tick`.
    pub fn new(tick: SimDuration) -> Self {
        SysClock {
            tick,
            realtime_epoch_ns: Self::EPOCH_NS,
        }
    }

    /// Reads clock `id` at virtual instant `now`.
    pub fn read(&self, now: SimTime, id: ClockId) -> SimTime {
        let q = now.quantize(self.tick);
        match id {
            ClockId::MonotonicRaw | ClockId::Monotonic => q,
            ClockId::Realtime => {
                SimTime::from_nanos(q.as_nanos().saturating_add(self.realtime_epoch_ns))
            }
        }
    }

    /// The resolution `clock_getres` would report.
    pub fn resolution(&self) -> SimDuration {
        if self.tick.is_zero() {
            SimDuration::from_nanos(1)
        } else {
            self.tick
        }
    }
}

impl Default for SysClock {
    /// The Morello-calibrated 25 ns tick.
    fn default() -> Self {
        SysClock::new(SimDuration::from_nanos(25))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_is_quantized() {
        let c = SysClock::new(SimDuration::from_nanos(10));
        assert_eq!(
            c.read(SimTime::from_nanos(99), ClockId::MonotonicRaw)
                .as_nanos(),
            90
        );
        assert_eq!(
            c.read(SimTime::from_nanos(100), ClockId::Monotonic)
                .as_nanos(),
            100
        );
    }

    #[test]
    fn quantization_collapses_nearby_readings() {
        // The paper's p25 = p75 effect: distinct instants, same reading.
        let c = SysClock::default();
        let a = c.read(SimTime::from_nanos(1_001), ClockId::MonotonicRaw);
        let b = c.read(SimTime::from_nanos(1_024), ClockId::MonotonicRaw);
        assert_eq!(a, b);
    }

    #[test]
    fn realtime_is_offset() {
        let c = SysClock::new(SimDuration::ZERO);
        let m = c.read(SimTime::from_secs(5), ClockId::Monotonic);
        let r = c.read(SimTime::from_secs(5), ClockId::Realtime);
        assert!(r > m);
    }

    #[test]
    fn resolution_is_never_zero() {
        assert_eq!(SysClock::new(SimDuration::ZERO).resolution().as_nanos(), 1);
        assert_eq!(SysClock::default().resolution().as_nanos(), 25);
    }

    #[test]
    fn monotonicity_under_quantization() {
        let c = SysClock::default();
        let mut prev = SimTime::ZERO;
        for ns in (0..10_000).step_by(7) {
            let t = c.read(SimTime::from_nanos(ns), ClockId::MonotonicRaw);
            assert!(t >= prev);
            prev = t;
        }
    }
}
