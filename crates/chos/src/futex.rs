//! The musl-libc side of thread synchronization: Linux-style `futex`.
//!
//! cVMs link against (a model of) **musl libc**, whose lock primitives issue
//! `futex(FUTEX_WAIT/FUTEX_WAKE)`. CheriBSD has no futex; the paper adapts
//! the Intravisor proxy to translate each musl call into the equivalent
//! `_umtx_op`. This module defines the musl-visible operation type and the
//! translation function the proxy uses — kept separate from [`crate::umtx`]
//! so the translation is a visible, testable artifact rather than an
//! implementation detail.

use crate::umtx::{UmtxTable, WaitOutcome, WaiterId};

/// A musl-libc futex request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FutexOp {
    /// `FUTEX_WAIT`: sleep while `*uaddr == expected`.
    Wait {
        /// Address of the futex word.
        uaddr: u64,
        /// The value the caller saw.
        expected: u32,
    },
    /// `FUTEX_WAKE`: wake up to `count` waiters.
    Wake {
        /// Address of the futex word.
        uaddr: u64,
        /// Maximum waiters to wake.
        count: u32,
    },
}

/// Result of a translated futex operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FutexOutcome {
    /// `FUTEX_WAIT` raced with a value change; returns immediately
    /// (musl sees `EAGAIN`).
    ValueChanged,
    /// The caller must sleep until a wake resumes it.
    WouldSleep,
    /// `FUTEX_WAKE` woke these waiters (possibly none).
    Woken(Vec<WaiterId>),
}

/// Translates a musl `futex` call into CheriBSD `_umtx_op` semantics —
/// the adaptation the paper's §III.B describes ("musl libc uses futex for
/// thread synchronization, while CheriBSD uses umtx").
///
/// `current` is the present value of the futex word (the kernel re-reads it
/// under the queue lock; our caller supplies it).
///
/// # Example
///
/// ```
/// use chos::futex::{translate_futex, FutexOp, FutexOutcome};
/// use chos::umtx::UmtxTable;
///
/// let mut umtx = UmtxTable::new();
/// let op = FutexOp::Wait { uaddr: 0x100, expected: 1 };
/// let r = translate_futex(&mut umtx, op, 1, 42);
/// assert_eq!(r, FutexOutcome::WouldSleep);
/// let r = translate_futex(&mut umtx, FutexOp::Wake { uaddr: 0x100, count: 1 }, 0, 42);
/// assert_eq!(r, FutexOutcome::Woken(vec![42]));
/// ```
pub fn translate_futex(
    umtx: &mut UmtxTable,
    op: FutexOp,
    current: u32,
    caller: WaiterId,
) -> FutexOutcome {
    match op {
        FutexOp::Wait { uaddr, expected } => {
            match umtx.wait(uaddr, u64::from(expected), u64::from(current), caller) {
                WaitOutcome::ValueChanged => FutexOutcome::ValueChanged,
                WaitOutcome::WouldSleep => FutexOutcome::WouldSleep,
            }
        }
        FutexOp::Wake { uaddr, count } => FutexOutcome::Woken(umtx.wake(uaddr, count as usize)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_then_wake_round_trip() {
        let mut umtx = UmtxTable::new();
        let w = FutexOp::Wait {
            uaddr: 0x40,
            expected: 7,
        };
        assert_eq!(
            translate_futex(&mut umtx, w, 7, 1),
            FutexOutcome::WouldSleep
        );
        assert_eq!(
            translate_futex(&mut umtx, w, 7, 2),
            FutexOutcome::WouldSleep
        );
        let wake = FutexOp::Wake {
            uaddr: 0x40,
            count: 2,
        };
        assert_eq!(
            translate_futex(&mut umtx, wake, 0, 9),
            FutexOutcome::Woken(vec![1, 2])
        );
    }

    #[test]
    fn stale_value_does_not_sleep() {
        let mut umtx = UmtxTable::new();
        let w = FutexOp::Wait {
            uaddr: 0x40,
            expected: 7,
        };
        assert_eq!(
            translate_futex(&mut umtx, w, 8, 1),
            FutexOutcome::ValueChanged
        );
        assert_eq!(umtx.total_sleepers(), 0);
    }

    #[test]
    fn wake_with_no_sleepers_wakes_nobody() {
        let mut umtx = UmtxTable::new();
        let wake = FutexOp::Wake {
            uaddr: 0x99,
            count: 8,
        };
        assert_eq!(
            translate_futex(&mut umtx, wake, 0, 1),
            FutexOutcome::Woken(vec![])
        );
    }
}
