//! The syscall surface: what a cVM (or Baseline process) can ask of the OS.
//!
//! The Intravisor's proxy table forwards a cVM's (trampolined) requests to
//! [`Kernel::syscall`]; Baseline processes call it directly. Each call
//! returns a [`SyscallOutcome`] carrying both the result and the *completion
//! instant* in virtual time, so callers can account for kernel time without
//! a global scheduler.

use crate::clock::{ClockId, SysClock};
use crate::errno::Errno;
use crate::futex::{translate_futex, FutexOp, FutexOutcome};
use crate::umtx::{UmtxTable, WaiterId};
use simkern::cost::CostModel;
use simkern::time::{SimDuration, SimTime};

/// A system call request (the subset the network stack exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Syscall {
    /// `clock_gettime(2)`; returns nanoseconds as the result value.
    ClockGettime(ClockId),
    /// `nanosleep(2)` for `ns` nanoseconds.
    Nanosleep(u64),
    /// `getpid(2)`.
    GetPid,
    /// CheriBSD `_umtx_op(UMTX_OP_WAIT)`; see [`crate::umtx`].
    UmtxWait {
        /// Word address.
        addr: u64,
        /// Expected value.
        expected: u64,
        /// Current value of the word (kernel re-read).
        current: u64,
        /// Sleeping thread id.
        waiter: WaiterId,
    },
    /// CheriBSD `_umtx_op(UMTX_OP_WAKE)`.
    UmtxWake {
        /// Word address.
        addr: u64,
        /// Max waiters to wake.
        count: u32,
    },
    /// A musl-libc `futex` call arriving from a cVM; the kernel does not
    /// implement it — the Intravisor must translate (see
    /// [`Kernel::musl_futex`]). Direct submission returns `ENOSYS`, which is
    /// exactly the bug the paper's proxy adaptation fixes.
    Futex(FutexOp),
}

/// The result of a system call: value-or-errno plus kernel timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallOutcome {
    /// Return value (syscall-specific) or error.
    pub result: Result<u64, Errno>,
    /// When the syscall returns to the caller, in virtual time.
    pub completed_at: SimTime,
    /// Waiters to reschedule (non-empty only for wake operations).
    pub woken: Vec<WaiterId>,
    /// `true` if the caller must now sleep (wait operations).
    pub sleeps: bool,
}

impl SyscallOutcome {
    fn done(result: Result<u64, Errno>, completed_at: SimTime) -> Self {
        SyscallOutcome {
            result,
            completed_at,
            woken: Vec::new(),
            sleeps: false,
        }
    }
}

/// The CheriBSD-like kernel: clock, umtx queues, pid namespace.
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Kernel {
    clock: SysClock,
    umtx: UmtxTable,
    costs: CostModel,
    syscalls: u64,
    pid_counter: u32,
}

impl Kernel {
    /// Creates a kernel using the given cost model (clock tick included).
    pub fn new(costs: CostModel) -> Self {
        Kernel {
            clock: SysClock::new(costs.timer_tick()),
            umtx: UmtxTable::new(),
            costs,
            syscalls: 0,
            pid_counter: 100,
        }
    }

    /// The kernel clock device.
    pub fn clock(&self) -> &SysClock {
        &self.clock
    }

    /// The umtx sleep-queue table (for scenario drivers and tests).
    pub fn umtx(&self) -> &UmtxTable {
        &self.umtx
    }

    /// Total syscalls served.
    pub fn syscall_count(&self) -> u64 {
        self.syscalls
    }

    /// Allocates a fresh process id.
    pub fn next_pid(&mut self) -> u32 {
        self.pid_counter += 1;
        self.pid_counter
    }

    /// Executes `sc` natively at `now` (the Baseline path — no trampoline).
    pub fn syscall(&mut self, now: SimTime, sc: Syscall) -> SyscallOutcome {
        self.syscalls += 1;
        match sc {
            Syscall::ClockGettime(id) => {
                // Entry + read + exit; the reading reflects the entry time.
                let done = now + SimDuration::from_nanos(self.costs.clock_gettime_ns);
                let reading = self.clock.read(done, id);
                SyscallOutcome::done(Ok(reading.as_nanos()), done)
            }
            Syscall::Nanosleep(ns) => {
                let done = now
                    + SimDuration::from_nanos(self.costs.syscall_ns)
                    + SimDuration::from_nanos(ns);
                SyscallOutcome::done(Ok(0), done)
            }
            Syscall::GetPid => {
                let done = now + SimDuration::from_nanos(self.costs.syscall_ns);
                SyscallOutcome::done(Ok(u64::from(self.pid_counter)), done)
            }
            Syscall::UmtxWait {
                addr,
                expected,
                current,
                waiter,
            } => {
                let done = now + SimDuration::from_nanos(self.costs.umtx_block_ns);
                match self.umtx.wait(addr, expected, current, waiter) {
                    crate::umtx::WaitOutcome::ValueChanged => SyscallOutcome::done(
                        Err(Errno::EAGAIN),
                        now + SimDuration::from_nanos(self.costs.syscall_ns),
                    ),
                    crate::umtx::WaitOutcome::WouldSleep => SyscallOutcome {
                        result: Ok(0),
                        completed_at: done,
                        woken: Vec::new(),
                        sleeps: true,
                    },
                }
            }
            Syscall::UmtxWake { addr, count } => {
                let woken = self.umtx.wake(addr, count as usize);
                let cost = if woken.is_empty() {
                    self.costs.syscall_ns
                } else {
                    self.costs.umtx_wake_ns
                };
                SyscallOutcome {
                    result: Ok(woken.len() as u64),
                    completed_at: now + SimDuration::from_nanos(cost),
                    woken,
                    sleeps: false,
                }
            }
            Syscall::Futex(_) => {
                // CheriBSD has no futex syscall: reaching the kernel with one
                // is a porting bug. The Intravisor uses `musl_futex` instead.
                SyscallOutcome::done(
                    Err(Errno::ENOSYS),
                    now + SimDuration::from_nanos(self.costs.syscall_ns),
                )
            }
        }
    }

    /// The Intravisor's futex→umtx translation entry point (paper §III.B):
    /// performs the musl `futex` request via the umtx machinery.
    pub fn musl_futex(
        &mut self,
        now: SimTime,
        op: FutexOp,
        current: u32,
        caller: WaiterId,
    ) -> SyscallOutcome {
        self.syscalls += 1;
        match translate_futex(&mut self.umtx, op, current, caller) {
            FutexOutcome::ValueChanged => SyscallOutcome::done(
                Err(Errno::EAGAIN),
                now + SimDuration::from_nanos(self.costs.syscall_ns),
            ),
            FutexOutcome::WouldSleep => SyscallOutcome {
                result: Ok(0),
                completed_at: now + SimDuration::from_nanos(self.costs.umtx_block_ns),
                woken: Vec::new(),
                sleeps: true,
            },
            FutexOutcome::Woken(w) => SyscallOutcome {
                result: Ok(w.len() as u64),
                completed_at: now
                    + SimDuration::from_nanos(if w.is_empty() {
                        self.costs.syscall_ns
                    } else {
                        self.costs.umtx_wake_ns
                    }),
                woken: w,
                sleeps: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(CostModel::morello())
    }

    #[test]
    fn clock_gettime_returns_quantized_time_and_costs() {
        let mut k = kernel();
        let now = SimTime::from_nanos(10_000);
        let o = k.syscall(now, Syscall::ClockGettime(ClockId::MonotonicRaw));
        let v = o.result.unwrap();
        assert_eq!(v % 25, 0, "quantized to the 25ns tick");
        assert!(o.completed_at > now);
        assert_eq!(k.syscall_count(), 1);
    }

    #[test]
    fn nanosleep_sleeps_virtual_time() {
        let mut k = kernel();
        let o = k.syscall(SimTime::ZERO, Syscall::Nanosleep(5_000));
        assert!(o.result.is_ok());
        assert!(o.completed_at.as_nanos() >= 5_000);
    }

    #[test]
    fn umtx_wait_wake_cycle() {
        let mut k = kernel();
        let o = k.syscall(
            SimTime::ZERO,
            Syscall::UmtxWait {
                addr: 0x100,
                expected: 1,
                current: 1,
                waiter: 7,
            },
        );
        assert!(o.sleeps);
        let o = k.syscall(
            SimTime::from_micros(1),
            Syscall::UmtxWake {
                addr: 0x100,
                count: 1,
            },
        );
        assert_eq!(o.result.unwrap(), 1);
        assert_eq!(o.woken, vec![7]);
        assert!(!o.sleeps);
    }

    #[test]
    fn umtx_wait_value_changed_is_eagain() {
        let mut k = kernel();
        let o = k.syscall(
            SimTime::ZERO,
            Syscall::UmtxWait {
                addr: 0x100,
                expected: 1,
                current: 2,
                waiter: 7,
            },
        );
        assert_eq!(o.result.unwrap_err(), Errno::EAGAIN);
        assert!(!o.sleeps);
    }

    #[test]
    fn raw_futex_is_enosys_on_cheribsd() {
        // The porting pitfall the paper fixes: musl futex hits the BSD
        // kernel → ENOSYS, unless the Intravisor translates it.
        let mut k = kernel();
        let o = k.syscall(
            SimTime::ZERO,
            Syscall::Futex(FutexOp::Wake {
                uaddr: 0x1,
                count: 1,
            }),
        );
        assert_eq!(o.result.unwrap_err(), Errno::ENOSYS);
    }

    #[test]
    fn musl_futex_translation_works() {
        let mut k = kernel();
        let o = k.musl_futex(
            SimTime::ZERO,
            FutexOp::Wait {
                uaddr: 0x200,
                expected: 3,
            },
            3,
            11,
        );
        assert!(o.sleeps);
        let o = k.musl_futex(
            SimTime::from_micros(2),
            FutexOp::Wake {
                uaddr: 0x200,
                count: 8,
            },
            0,
            12,
        );
        assert_eq!(o.result.unwrap(), 1);
        assert_eq!(o.woken, vec![11]);
    }

    #[test]
    fn pids_are_fresh() {
        let mut k = kernel();
        let a = k.next_pid();
        let b = k.next_pid();
        assert_ne!(a, b);
        let o = k.syscall(SimTime::ZERO, Syscall::GetPid);
        assert_eq!(o.result.unwrap(), u64::from(b));
    }
}
