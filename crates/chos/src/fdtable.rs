//! POSIX-style file descriptor tables.
//!
//! Both the host kernel (per process) and F-Stack (its own user-space fd
//! namespace, returned by `ff_socket`) need lowest-free-fd allocation with
//! O(1) lookup; this generic table serves both.

use crate::errno::Errno;
use std::collections::BTreeSet;

/// A file descriptor number.
pub type Fd = i32;

/// A descriptor table mapping small non-negative integers to entries of
/// type `T`, reusing the lowest free number first (POSIX semantics).
///
/// # Example
///
/// ```
/// use chos::fdtable::FdTable;
///
/// let mut t: FdTable<&str> = FdTable::with_capacity(16);
/// let a = t.alloc("socket-a").unwrap();
/// let b = t.alloc("socket-b").unwrap();
/// assert_eq!((a, b), (0, 1));
/// t.free(a).unwrap();
/// assert_eq!(t.alloc("socket-c").unwrap(), 0); // lowest free first
/// assert_eq!(t.get(b), Some(&"socket-b"));
/// ```
#[derive(Debug, Clone)]
pub struct FdTable<T> {
    slots: Vec<Option<T>>,
    free: BTreeSet<Fd>,
    limit: usize,
}

impl<T> FdTable<T> {
    /// Creates a table that can hold at most `limit` open descriptors.
    pub fn with_capacity(limit: usize) -> Self {
        FdTable {
            slots: Vec::new(),
            free: BTreeSet::new(),
            limit,
        }
    }

    /// Allocates the lowest free descriptor for `entry`.
    ///
    /// # Errors
    ///
    /// [`Errno::EMFILE`] when the table is full.
    pub fn alloc(&mut self, entry: T) -> Result<Fd, Errno> {
        if let Some(&fd) = self.free.iter().next() {
            self.free.remove(&fd);
            self.slots[fd as usize] = Some(entry);
            return Ok(fd);
        }
        if self.slots.len() >= self.limit {
            return Err(Errno::EMFILE);
        }
        let fd = self.slots.len() as Fd;
        self.slots.push(Some(entry));
        Ok(fd)
    }

    /// Releases `fd`, returning its entry.
    ///
    /// # Errors
    ///
    /// [`Errno::EBADF`] if `fd` is not open.
    pub fn free(&mut self, fd: Fd) -> Result<T, Errno> {
        let slot = self.slots.get_mut(fd.max(0) as usize).ok_or(Errno::EBADF)?;
        let entry = slot.take().ok_or(Errno::EBADF)?;
        self.free.insert(fd);
        Ok(entry)
    }

    /// Looks up `fd`.
    pub fn get(&self, fd: Fd) -> Option<&T> {
        if fd < 0 {
            return None;
        }
        self.slots.get(fd as usize).and_then(Option::as_ref)
    }

    /// Mutable lookup of `fd`.
    pub fn get_mut(&mut self, fd: Fd) -> Option<&mut T> {
        if fd < 0 {
            return None;
        }
        self.slots.get_mut(fd as usize).and_then(Option::as_mut)
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// `true` if no descriptor is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(fd, entry)` pairs in ascending fd order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i as Fd, e)))
    }

    /// Iterates over `(fd, entry)` pairs in ascending fd order, mutably —
    /// the poll loop's allocation-free walk over open sockets.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Fd, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|e| (i as Fd, e)))
    }

    /// Descriptor numbers currently open, ascending.
    pub fn fds(&self) -> Vec<Fd> {
        self.iter().map(|(fd, _)| fd).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_free_first() {
        let mut t: FdTable<u32> = FdTable::with_capacity(8);
        let fds: Vec<Fd> = (0..4).map(|i| t.alloc(i).unwrap()).collect();
        assert_eq!(fds, vec![0, 1, 2, 3]);
        t.free(1).unwrap();
        t.free(0).unwrap();
        assert_eq!(t.alloc(10).unwrap(), 0);
        assert_eq!(t.alloc(11).unwrap(), 1);
        assert_eq!(t.alloc(12).unwrap(), 4);
    }

    #[test]
    fn limit_yields_emfile() {
        let mut t: FdTable<()> = FdTable::with_capacity(2);
        t.alloc(()).unwrap();
        t.alloc(()).unwrap();
        assert_eq!(t.alloc(()).unwrap_err(), Errno::EMFILE);
        t.free(0).unwrap();
        assert!(t.alloc(()).is_ok());
    }

    #[test]
    fn bad_fds_are_ebadf_or_none() {
        let mut t: FdTable<u32> = FdTable::with_capacity(4);
        assert_eq!(t.free(0).unwrap_err(), Errno::EBADF);
        assert_eq!(t.free(-1).unwrap_err(), Errno::EBADF);
        assert_eq!(t.get(-1), None);
        assert_eq!(t.get(7), None);
        assert_eq!(t.get_mut(7), None);
        let fd = t.alloc(5).unwrap();
        t.free(fd).unwrap();
        assert_eq!(t.free(fd).unwrap_err(), Errno::EBADF, "double close");
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut t: FdTable<u32> = FdTable::with_capacity(4);
        let fd = t.alloc(1).unwrap();
        *t.get_mut(fd).unwrap() = 99;
        assert_eq!(t.get(fd), Some(&99));
    }

    #[test]
    fn iteration_and_len() {
        let mut t: FdTable<char> = FdTable::with_capacity(8);
        for c in ['a', 'b', 'c'] {
            t.alloc(c).unwrap();
        }
        t.free(1).unwrap();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.fds(), vec![0, 2]);
        let collected: Vec<_> = t.iter().map(|(fd, &c)| (fd, c)).collect();
        assert_eq!(collected, vec![(0, 'a'), (2, 'c')]);
    }
}
