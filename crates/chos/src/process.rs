//! MMU-style process isolation — the paper's **Baseline** scenario.
//!
//! Without CHERI, the Baseline isolates components the classic way: separate
//! processes, each with its own address space, translated by an MMU. We
//! model an address space as a private [`cheri::TaggedMemory`] whose root
//! capability is handed to the process — inside its own space the process is
//! unrestricted (no fine-grained checks, as on a non-CHERI machine), and
//! cross-process access is impossible because no capability to another
//! process's memory can even be *named*. That asymmetry — coarse but
//! airtight between processes, nothing within one — is exactly the trade-off
//! the paper's intro criticizes MMU isolation for.

use cheri::{Capability, TaggedMemory};
use std::collections::HashMap;
use std::fmt;

/// A process id.
pub type Pid = u32;

/// One host process: a private address space plus its root capability.
pub struct HostProcess {
    pid: Pid,
    name: String,
    memory: TaggedMemory,
}

impl fmt::Debug for HostProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostProcess")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("mem_size", &self.memory.size())
            .finish()
    }
}

impl HostProcess {
    /// Creates a process with `mem_size` bytes of private memory.
    pub fn new(pid: Pid, name: impl Into<String>, mem_size: u64) -> Self {
        HostProcess {
            pid,
            name: name.into(),
            memory: TaggedMemory::new(mem_size),
        }
    }

    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The process name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process's private address space.
    pub fn memory(&self) -> &TaggedMemory {
        &self.memory
    }

    /// Mutable access to the private address space.
    pub fn memory_mut(&mut self) -> &mut TaggedMemory {
        &mut self.memory
    }

    /// The all-powerful (within this process!) root capability — on a
    /// non-CHERI machine every pointer implicitly has this authority.
    pub fn root_cap(&self) -> Capability {
        self.memory.root_cap()
    }
}

/// The table of live processes.
#[derive(Debug, Default)]
pub struct ProcessTable {
    procs: HashMap<Pid, HostProcess>,
}

impl ProcessTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawns a process and returns its pid.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is already live (pids come from
    /// [`crate::syscall::Kernel::next_pid`], so this indicates driver misuse).
    pub fn spawn(&mut self, pid: Pid, name: impl Into<String>, mem_size: u64) -> Pid {
        let prev = self
            .procs
            .insert(pid, HostProcess::new(pid, name, mem_size));
        assert!(prev.is_none(), "pid {pid} reused while alive");
        pid
    }

    /// Looks up a process.
    pub fn get(&self, pid: Pid) -> Option<&HostProcess> {
        self.procs.get(&pid)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut HostProcess> {
        self.procs.get_mut(&pid)
    }

    /// Terminates a process, freeing its address space.
    pub fn reap(&mut self, pid: Pid) -> Option<HostProcess> {
        self.procs.remove(&pid)
    }

    /// Number of live processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// `true` if no process is live.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_have_private_spaces() {
        let mut t = ProcessTable::new();
        t.spawn(1, "iperf-a", 4096);
        t.spawn(2, "iperf-b", 4096);

        // Write into process 1's space.
        let root1 = t.get(1).unwrap().root_cap();
        t.get_mut(1)
            .unwrap()
            .memory_mut()
            .write(&root1, 0, b"secret")
            .unwrap();

        // Process 2's space at the same addresses is untouched: different
        // TaggedMemory entirely.
        let root2 = t.get(2).unwrap().root_cap();
        let read = t
            .get_mut(2)
            .unwrap()
            .memory_mut()
            .read_vec(&root2, 0, 6)
            .unwrap();
        assert_eq!(read, vec![0; 6]);
    }

    #[test]
    fn within_a_process_everything_is_reachable() {
        // The MMU gives no intra-process protection: the root capability
        // spans the whole space — the vulnerability class CHERI removes.
        let p = HostProcess::new(1, "px4-like", 8192);
        let root = p.root_cap();
        assert_eq!(root.len(), 8192);
        assert!(root
            .check_access(0, 8192, cheri::capability::Access::Store)
            .is_ok());
    }

    #[test]
    fn cross_process_roots_do_not_transfer() {
        // Even if a capability value leaks across processes, it indexes the
        // *other* arena only through that arena's own API; the spaces are
        // disjoint Rust objects. Here we just confirm reaping frees slots.
        let mut t = ProcessTable::new();
        t.spawn(7, "a", 4096);
        assert_eq!(t.len(), 1);
        let p = t.reap(7).unwrap();
        assert_eq!(p.name(), "a");
        assert_eq!(p.pid(), 7);
        assert!(t.is_empty());
        assert!(t.get(7).is_none());
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn pid_reuse_is_a_driver_bug() {
        let mut t = ProcessTable::new();
        t.spawn(1, "a", 4096);
        t.spawn(1, "b", 4096);
    }
}
