//! `_umtx_op` — CheriBSD/FreeBSD's userland mutex kernel service.
//!
//! FreeBSD has no `futex(2)`; its equivalent is `_umtx_op(2)` with
//! `UMTX_OP_WAIT`/`UMTX_OP_WAKE` on a userspace word. The paper calls this
//! out explicitly: the Intravisor's proxy table must *translate* musl libc's
//! `futex` calls into `umtx` ones. This module is the kernel side of that
//! translation; [`crate::futex`] is the musl side.
//!
//! Blocking is modeled without suspending host threads: `wait` registers a
//! waiter and reports [`WaitOutcome::WouldSleep`]; the discrete-event driver
//! decides when the corresponding wake reschedules it. The *timing* of the
//! sleep is produced by the analytic [`simkern::FifoMutex`] in the scenario
//! layer; this table provides the correctness (who is asleep where, who gets
//! woken, in what order).

use std::collections::{HashMap, VecDeque};

/// Identifies a sleeping thread (scenario-level actor id).
pub type WaiterId = u64;

/// Result of a `UMTX_OP_WAIT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The word no longer held the expected value — return immediately
    /// (the userspace lock changed hands before we slept).
    ValueChanged,
    /// The caller is now enqueued and must sleep until woken.
    WouldSleep,
}

/// The kernel's table of umtx sleep queues, keyed by word address.
///
/// # Example
///
/// ```
/// use chos::umtx::{UmtxTable, WaitOutcome};
///
/// let mut t = UmtxTable::new();
/// // Thread 7 waits on word 0x1000 expecting value 1, and the word is 1:
/// assert_eq!(t.wait(0x1000, 1, 1, 7), WaitOutcome::WouldSleep);
/// // A wake releases it, FIFO.
/// assert_eq!(t.wake(0x1000, 1), vec![7]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UmtxTable {
    queues: HashMap<u64, VecDeque<WaiterId>>,
    waits: u64,
    wakes: u64,
}

impl UmtxTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// `UMTX_OP_WAIT`: if `*addr` (passed as `current`) still equals
    /// `expected`, enqueue `waiter` on the word's sleep queue.
    pub fn wait(
        &mut self,
        addr: u64,
        expected: u64,
        current: u64,
        waiter: WaiterId,
    ) -> WaitOutcome {
        if current != expected {
            return WaitOutcome::ValueChanged;
        }
        self.waits += 1;
        self.queues.entry(addr).or_default().push_back(waiter);
        WaitOutcome::WouldSleep
    }

    /// `UMTX_OP_WAKE`: wake up to `n` waiters on `addr`, FIFO; returns their
    /// ids so the scheduler can resume them.
    pub fn wake(&mut self, addr: u64, n: usize) -> Vec<WaiterId> {
        let mut woken = Vec::new();
        if let Some(q) = self.queues.get_mut(&addr) {
            for _ in 0..n {
                match q.pop_front() {
                    Some(w) => woken.push(w),
                    None => break,
                }
            }
            if q.is_empty() {
                self.queues.remove(&addr);
            }
        }
        self.wakes += woken.len() as u64;
        woken
    }

    /// Removes `waiter` from whatever queue it sleeps on (signal delivery /
    /// timeout path). Returns `true` if it was found.
    pub fn cancel(&mut self, waiter: WaiterId) -> bool {
        let mut found = false;
        self.queues.retain(|_, q| {
            if let Some(pos) = q.iter().position(|&w| w == waiter) {
                q.remove(pos);
                found = true;
            }
            !q.is_empty()
        });
        found
    }

    /// Number of threads currently asleep on `addr`.
    pub fn sleepers(&self, addr: u64) -> usize {
        self.queues.get(&addr).map_or(0, VecDeque::len)
    }

    /// Total threads asleep across all words.
    pub fn total_sleepers(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Lifetime counters `(waits, wakes)` for experiment reports.
    pub fn stats(&self) -> (u64, u64) {
        (self.waits, self.wakes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_change_races_return_immediately() {
        let mut t = UmtxTable::new();
        assert_eq!(t.wait(0x10, 1, 0, 1), WaitOutcome::ValueChanged);
        assert_eq!(t.total_sleepers(), 0);
    }

    #[test]
    fn wake_is_fifo() {
        let mut t = UmtxTable::new();
        for w in [10, 11, 12] {
            assert_eq!(t.wait(0x10, 1, 1, w), WaitOutcome::WouldSleep);
        }
        assert_eq!(t.sleepers(0x10), 3);
        assert_eq!(t.wake(0x10, 2), vec![10, 11]);
        assert_eq!(t.wake(0x10, 5), vec![12]);
        assert_eq!(t.wake(0x10, 1), Vec::<WaiterId>::new());
    }

    #[test]
    fn queues_are_per_address() {
        let mut t = UmtxTable::new();
        t.wait(0x10, 1, 1, 1);
        t.wait(0x20, 1, 1, 2);
        assert_eq!(t.wake(0x10, 10), vec![1]);
        assert_eq!(t.sleepers(0x20), 1);
    }

    #[test]
    fn cancel_removes_a_waiter() {
        let mut t = UmtxTable::new();
        t.wait(0x10, 1, 1, 1);
        t.wait(0x10, 1, 1, 2);
        assert!(t.cancel(1));
        assert!(!t.cancel(99));
        assert_eq!(t.wake(0x10, 10), vec![2]);
    }

    #[test]
    fn stats_count_waits_and_wakes() {
        let mut t = UmtxTable::new();
        t.wait(0x10, 1, 1, 1);
        t.wait(0x10, 1, 0, 2); // value changed: not a wait
        t.wake(0x10, 10);
        assert_eq!(t.stats(), (1, 1));
    }
}
