//! BSD error numbers as a typed error.
//!
//! The subset of `errno.h` the network stack and its tests actually
//! exercise. Values match FreeBSD's `sys/errno.h` so traces read naturally
//! next to the paper's CheriBSD logs.

use std::fmt;

/// A BSD `errno` value.
///
/// # Example
///
/// ```
/// use chos::Errno;
/// assert_eq!(Errno::EAGAIN.code(), 35); // FreeBSD numbering
/// assert_eq!(Errno::EAGAIN.to_string(), "EAGAIN: resource temporarily unavailable");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Errno {
    /// Operation not permitted.
    EPERM,
    /// No such file or directory.
    ENOENT,
    /// Interrupted system call.
    EINTR,
    /// Input/output error.
    EIO,
    /// Bad file descriptor.
    EBADF,
    /// Cannot allocate memory.
    ENOMEM,
    /// Permission denied.
    EACCES,
    /// Bad address (the CheriBSD kernel returns this when a capability
    /// check on a user pointer fails inside a syscall).
    EFAULT,
    /// Device busy.
    EBUSY,
    /// File exists.
    EEXIST,
    /// Invalid argument.
    EINVAL,
    /// Too many open files.
    EMFILE,
    /// Resource temporarily unavailable (also `EWOULDBLOCK`).
    EAGAIN,
    /// Function not implemented.
    ENOSYS,
    /// Value too large to be stored in data type.
    EOVERFLOW,
    /// Operation not supported.
    EOPNOTSUPP,
    /// Address already in use.
    EADDRINUSE,
    /// Can't assign requested address.
    EADDRNOTAVAIL,
    /// Network is unreachable.
    ENETUNREACH,
    /// Connection reset by peer.
    ECONNRESET,
    /// No buffer space available.
    ENOBUFS,
    /// Socket is already connected.
    EISCONN,
    /// Socket is not connected.
    ENOTCONN,
    /// Operation timed out.
    ETIMEDOUT,
    /// Connection refused.
    ECONNREFUSED,
    /// Broken pipe.
    EPIPE,
    /// Socket operation on non-socket.
    ENOTSOCK,
    /// Message too long.
    EMSGSIZE,
    /// Protocol not supported.
    EPROTONOSUPPORT,
    /// Operation already in progress.
    EALREADY,
    /// Operation now in progress.
    EINPROGRESS,
    /// Destination address required.
    EDESTADDRREQ,
}

impl Errno {
    /// `EWOULDBLOCK` is an alias of [`Errno::EAGAIN`] on FreeBSD.
    pub const EWOULDBLOCK: Errno = Errno::EAGAIN;

    /// The FreeBSD numeric code.
    pub fn code(self) -> i32 {
        match self {
            Errno::EPERM => 1,
            Errno::ENOENT => 2,
            Errno::EINTR => 4,
            Errno::EIO => 5,
            Errno::EBADF => 9,
            Errno::ENOMEM => 12,
            Errno::EACCES => 13,
            Errno::EFAULT => 14,
            Errno::EBUSY => 16,
            Errno::EEXIST => 17,
            Errno::EINVAL => 22,
            Errno::EMFILE => 24,
            Errno::EAGAIN => 35,
            Errno::ENOSYS => 78,
            Errno::EOVERFLOW => 84,
            Errno::EOPNOTSUPP => 45,
            Errno::EADDRINUSE => 48,
            Errno::EADDRNOTAVAIL => 49,
            Errno::ENETUNREACH => 51,
            Errno::ECONNRESET => 54,
            Errno::ENOBUFS => 55,
            Errno::EISCONN => 56,
            Errno::ENOTCONN => 57,
            Errno::ETIMEDOUT => 60,
            Errno::ECONNREFUSED => 61,
            Errno::EPIPE => 32,
            Errno::ENOTSOCK => 38,
            Errno::EMSGSIZE => 40,
            Errno::EPROTONOSUPPORT => 43,
            Errno::EALREADY => 37,
            Errno::EINPROGRESS => 36,
            Errno::EDESTADDRREQ => 39,
        }
    }

    /// The symbolic name, e.g. `"EAGAIN"`.
    pub fn name(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::EINTR => "EINTR",
            Errno::EIO => "EIO",
            Errno::EBADF => "EBADF",
            Errno::ENOMEM => "ENOMEM",
            Errno::EACCES => "EACCES",
            Errno::EFAULT => "EFAULT",
            Errno::EBUSY => "EBUSY",
            Errno::EEXIST => "EEXIST",
            Errno::EINVAL => "EINVAL",
            Errno::EMFILE => "EMFILE",
            Errno::EAGAIN => "EAGAIN",
            Errno::ENOSYS => "ENOSYS",
            Errno::EOVERFLOW => "EOVERFLOW",
            Errno::EOPNOTSUPP => "EOPNOTSUPP",
            Errno::EADDRINUSE => "EADDRINUSE",
            Errno::EADDRNOTAVAIL => "EADDRNOTAVAIL",
            Errno::ENETUNREACH => "ENETUNREACH",
            Errno::ECONNRESET => "ECONNRESET",
            Errno::ENOBUFS => "ENOBUFS",
            Errno::EISCONN => "EISCONN",
            Errno::ENOTCONN => "ENOTCONN",
            Errno::ETIMEDOUT => "ETIMEDOUT",
            Errno::ECONNREFUSED => "ECONNREFUSED",
            Errno::EPIPE => "EPIPE",
            Errno::ENOTSOCK => "ENOTSOCK",
            Errno::EMSGSIZE => "EMSGSIZE",
            Errno::EPROTONOSUPPORT => "EPROTONOSUPPORT",
            Errno::EALREADY => "EALREADY",
            Errno::EINPROGRESS => "EINPROGRESS",
            Errno::EDESTADDRREQ => "EDESTADDRREQ",
        }
    }

    fn message(self) -> &'static str {
        match self {
            Errno::EPERM => "operation not permitted",
            Errno::ENOENT => "no such file or directory",
            Errno::EINTR => "interrupted system call",
            Errno::EIO => "input/output error",
            Errno::EBADF => "bad file descriptor",
            Errno::ENOMEM => "cannot allocate memory",
            Errno::EACCES => "permission denied",
            Errno::EFAULT => "bad address",
            Errno::EBUSY => "device busy",
            Errno::EEXIST => "file exists",
            Errno::EINVAL => "invalid argument",
            Errno::EMFILE => "too many open files",
            Errno::EAGAIN => "resource temporarily unavailable",
            Errno::ENOSYS => "function not implemented",
            Errno::EOVERFLOW => "value too large",
            Errno::EOPNOTSUPP => "operation not supported",
            Errno::EADDRINUSE => "address already in use",
            Errno::EADDRNOTAVAIL => "can't assign requested address",
            Errno::ENETUNREACH => "network is unreachable",
            Errno::ECONNRESET => "connection reset by peer",
            Errno::ENOBUFS => "no buffer space available",
            Errno::EISCONN => "socket is already connected",
            Errno::ENOTCONN => "socket is not connected",
            Errno::ETIMEDOUT => "operation timed out",
            Errno::ECONNREFUSED => "connection refused",
            Errno::EPIPE => "broken pipe",
            Errno::ENOTSOCK => "socket operation on non-socket",
            Errno::EMSGSIZE => "message too long",
            Errno::EPROTONOSUPPORT => "protocol not supported",
            Errno::EALREADY => "operation already in progress",
            Errno::EINPROGRESS => "operation now in progress",
            Errno::EDESTADDRREQ => "destination address required",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name(), self.message())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_freebsd() {
        assert_eq!(Errno::EPERM.code(), 1);
        assert_eq!(Errno::EINVAL.code(), 22);
        assert_eq!(Errno::EAGAIN.code(), 35);
        assert_eq!(Errno::ECONNREFUSED.code(), 61);
        assert_eq!(Errno::EWOULDBLOCK, Errno::EAGAIN);
    }

    #[test]
    fn display_has_name_and_message() {
        let s = Errno::ECONNRESET.to_string();
        assert!(s.starts_with("ECONNRESET"));
        assert!(s.contains("reset"));
    }

    #[test]
    fn is_a_std_error() {
        fn f<E: std::error::Error + Send + Sync>(_: E) {}
        f(Errno::EIO);
    }

    #[test]
    fn codes_are_unique() {
        use std::collections::HashSet;
        let all = [
            Errno::EPERM,
            Errno::ENOENT,
            Errno::EINTR,
            Errno::EIO,
            Errno::EBADF,
            Errno::ENOMEM,
            Errno::EACCES,
            Errno::EFAULT,
            Errno::EBUSY,
            Errno::EEXIST,
            Errno::EINVAL,
            Errno::EMFILE,
            Errno::EAGAIN,
            Errno::ENOSYS,
            Errno::EOVERFLOW,
            Errno::EOPNOTSUPP,
            Errno::EADDRINUSE,
            Errno::EADDRNOTAVAIL,
            Errno::ENETUNREACH,
            Errno::ECONNRESET,
            Errno::ENOBUFS,
            Errno::EISCONN,
            Errno::ENOTCONN,
            Errno::ETIMEDOUT,
            Errno::ECONNREFUSED,
            Errno::EPIPE,
            Errno::ENOTSOCK,
            Errno::EMSGSIZE,
            Errno::EPROTONOSUPPORT,
            Errno::EALREADY,
            Errno::EINPROGRESS,
            Errno::EDESTADDRREQ,
        ];
        let codes: HashSet<i32> = all.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), all.len());
        let names: HashSet<&str> = all.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), all.len());
    }
}
