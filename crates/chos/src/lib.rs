//! # chos — a CheriBSD-like host OS substrate
//!
//! The paper runs its compartmentalized network stack on **CheriBSD** (a
//! CHERI-aware FreeBSD). The workload only exercises a narrow slice of the
//! kernel — `clock_gettime(CLOCK_MONOTONIC_RAW)` for the measurements,
//! `_umtx_op` for thread synchronization (CheriBSD's futex analog, which the
//! Intravisor must translate musl `futex` calls into), file descriptors, and
//! plain process isolation for the non-CHERI Baseline. This crate implements
//! exactly that slice against the virtual clock of [`simkern`]:
//!
//! * [`errno::Errno`] — BSD error numbers as a typed error.
//! * [`clock`] — the monotonic raw clock with configurable tick quantization
//!   (the reason the paper's fast box plots collapse to p25 = p75).
//! * [`umtx`] — `_umtx_op(UMTX_OP_WAIT/WAKE)` sleep queues.
//! * [`futex`] — the musl-side futex interface that the Intravisor proxies.
//! * [`fdtable`] — POSIX lowest-free-fd descriptor tables.
//! * [`syscall`] — the [`syscall::Kernel`] dispatcher tying it together.
//! * [`process`] — MMU-style address-space isolation for the Baseline
//!   scenario (one [`cheri::TaggedMemory`] per process, so cross-process
//!   access is impossible by construction rather than by capability check).
//!
//! # Example
//!
//! ```
//! use chos::syscall::{Kernel, Syscall};
//! use chos::clock::ClockId;
//! use simkern::{CostModel, SimTime};
//!
//! let mut kernel = Kernel::new(CostModel::morello());
//! let now = SimTime::from_nanos(1_234);
//! let done = kernel.syscall(now, Syscall::ClockGettime(ClockId::MonotonicRaw));
//! // The syscall result is the (quantized) time at which the kernel read
//! // the counter — entry cost included, floored to the 25 ns tick…
//! assert_eq!(done.result.unwrap(), 1_275);
//! // …and completing it consumed virtual time.
//! assert!(done.completed_at > now);
//! ```

pub mod clock;
pub mod errno;
pub mod fdtable;
pub mod futex;
pub mod process;
pub mod syscall;
pub mod umtx;

pub use errno::Errno;
pub use fdtable::{Fd, FdTable};
pub use syscall::{Kernel, Syscall, SyscallOutcome};
