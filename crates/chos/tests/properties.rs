//! Property tests of the host-OS substrate: POSIX fd semantics against a
//! model, umtx FIFO wake order, and clock monotonicity through the syscall
//! layer.

use chos::clock::ClockId;
use chos::fdtable::FdTable;
use chos::syscall::{Kernel, Syscall};
use chos::umtx::UmtxTable;
use proptest::prelude::*;
use simkern::cost::CostModel;
use simkern::time::SimTime;
use std::collections::BTreeMap;

proptest! {
    /// FdTable implements exactly the POSIX lowest-free-fd rule: compare
    /// against a naive model under arbitrary alloc/free traces.
    #[test]
    fn fdtable_matches_posix_model(ops in proptest::collection::vec(any::<Option<u8>>(), 1..300)) {
        let mut table: FdTable<u8> = FdTable::with_capacity(64);
        let mut model: BTreeMap<i32, u8> = BTreeMap::new();
        for op in ops {
            match op {
                Some(v) => {
                    // Model: lowest non-negative integer not in use.
                    let mut want = 0;
                    while model.contains_key(&want) {
                        want += 1;
                    }
                    match table.alloc(v) {
                        Ok(fd) => {
                            prop_assert!(model.len() < 64);
                            prop_assert_eq!(fd, want);
                            model.insert(fd, v);
                        }
                        Err(_) => prop_assert_eq!(model.len(), 64),
                    }
                }
                None => {
                    // Free the median open fd, if any.
                    if let Some((&fd, _)) = model.iter().nth(model.len() / 2) {
                        let got = table.free(fd).unwrap();
                        let expect = model.remove(&fd).unwrap();
                        prop_assert_eq!(got, expect);
                    } else {
                        prop_assert!(table.free(0).is_err());
                    }
                }
            }
            prop_assert_eq!(table.len(), model.len());
            for (&fd, v) in &model {
                prop_assert_eq!(table.get(fd), Some(v));
            }
        }
    }

    /// umtx wakes waiters in exact FIFO order per address, and never wakes
    /// a waiter from a different address.
    #[test]
    fn umtx_wake_order(
        waits in proptest::collection::vec((0u64..4, 1u64..100), 1..100),
        wake_counts in proptest::collection::vec((0u64..4, 1usize..5), 1..50),
    ) {
        let mut t = UmtxTable::new();
        let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (next_id, &(addr, _)) in waits.iter().enumerate() {
            let next_id = next_id as u64;
            t.wait(addr, 1, 1, next_id);
            model.entry(addr).or_default().push(next_id);
        }
        for &(addr, n) in &wake_counts {
            let woken = t.wake(addr, n);
            let q = model.entry(addr).or_default();
            let expect: Vec<u64> = q.drain(..n.min(q.len())).collect();
            prop_assert_eq!(woken, expect);
        }
        let remaining: usize = model.values().map(Vec::len).sum();
        prop_assert_eq!(t.total_sleepers(), remaining);
    }

    /// The monotonic clock never goes backwards through the syscall layer,
    /// whatever the call instants.
    #[test]
    fn clock_gettime_is_monotone(mut instants in proptest::collection::vec(0u64..10_000_000, 2..100)) {
        instants.sort_unstable();
        let mut k = Kernel::new(CostModel::morello());
        let mut prev = 0u64;
        for &t in &instants {
            let out = k.syscall(
                SimTime::from_nanos(t),
                Syscall::ClockGettime(ClockId::MonotonicRaw),
            );
            let reading = out.result.unwrap();
            prop_assert!(reading >= prev, "monotonic");
            prop_assert!(out.completed_at.as_nanos() >= t, "kernel time flows forward");
            prev = reading;
        }
    }

    /// Syscall accounting: every call is counted exactly once.
    #[test]
    fn syscall_counting(n in 1usize..100) {
        let mut k = Kernel::new(CostModel::morello());
        for i in 0..n {
            k.syscall(SimTime::from_nanos(i as u64), Syscall::GetPid);
        }
        prop_assert_eq!(k.syscall_count(), n as u64);
    }
}
