//! Property tests of the packet framework: pool conservation, ring FIFO,
//! NIC statistic conservation, and the mbuf header-editing algebra.

use cheri::TaggedMemory;
use proptest::prelude::*;
use simkern::cost::CostModel;
use simkern::time::SimTime;
use updk::framebuf::{FrameBuf, FrameBufMut, BUF_CAPACITY};
use updk::mempool::{Mempool, DEFAULT_BUF_SIZE};
use updk::nic::{Nic, NicModel};
use updk::ring::DescRing;
use updk::wire::{Frame, MAX_FRAME, MIN_FRAME, WIRE_OVERHEAD};

proptest! {
    /// Mempool conservation: after any alloc/free interleaving the number
    /// of buffers is invariant and no buffer is ever handed out twice.
    #[test]
    fn mempool_conservation(ops in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mem = TaggedMemory::new(1 << 20);
        let region = mem.root_cap().try_restrict(0, 32 * DEFAULT_BUF_SIZE).unwrap();
        let mut pool = Mempool::new("p", region, DEFAULT_BUF_SIZE).unwrap();
        let cap = pool.capacity();
        let mut live = Vec::new();
        for &do_alloc in &ops {
            if do_alloc {
                if let Ok(m) = pool.alloc() {
                    // Freshly allocated buffer must not collide with a live one.
                    for other in &live {
                        prop_assert_ne!(m.pool_index(), updk::Mbuf::pool_index(other));
                    }
                    live.push(m);
                }
            } else if let Some(m) = live.pop() {
                pool.free(m);
            }
            prop_assert_eq!(pool.in_use() as usize, live.len());
            prop_assert_eq!(pool.available() + pool.in_use(), cap);
        }
    }

    /// DescRing is an exact bounded FIFO: dequeued order equals enqueued
    /// order restricted to accepted elements.
    #[test]
    fn ring_is_a_bounded_fifo(
        items in proptest::collection::vec(any::<u32>(), 1..200),
        deq_every in 1usize..8,
    ) {
        let mut ring: DescRing<u32> = DescRing::new(16);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut out = Vec::new();
        let mut model_out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            if ring.enqueue(x).is_ok() {
                model.push_back(x);
            }
            if i % deq_every == 0 {
                out.extend(ring.dequeue_burst(3));
                for _ in 0..3 {
                    if let Some(v) = model.pop_front() {
                        model_out.push(v);
                    }
                }
            }
        }
        out.extend(ring.dequeue_burst(usize::MAX));
        model_out.extend(model.drain(..));
        prop_assert_eq!(out, model_out);
        let (enq, deq, dropped) = ring.stats();
        prop_assert_eq!(enq, deq);
        prop_assert_eq!(enq + dropped, items.len() as u64);
    }

    /// Frames: padding law and wire arithmetic for any payload size.
    #[test]
    fn frame_laws(len in 0usize..MAX_FRAME) {
        let f = Frame::new(vec![7; len]);
        prop_assert!(f.len() >= MIN_FRAME);
        prop_assert!(f.len() >= len);
        prop_assert_eq!(f.wire_bytes(), f.len() as u64 + WIRE_OVERHEAD);
        if len >= MIN_FRAME {
            prop_assert_eq!(f.len(), len);
        }
    }

    /// NIC statistic conservation: every delivered frame is polled out,
    /// dropped by the ring, or still pending — no frame is lost silently.
    #[test]
    fn nic_frame_conservation(
        n_frames in 1usize..600,
        poll_every in 1usize..10,
    ) {
        let costs = CostModel::morello();
        let mut nic = Nic::new(NicModel::Host, 1);
        nic.set_link(0, true);
        let mut polled = 0u64;
        for i in 0..n_frames {
            nic.deliver(0, SimTime::from_nanos(i as u64), Frame::new(vec![0; 64]), &costs);
            if i % poll_every == 0 {
                polled += nic.rx_burst(0, SimTime::from_secs(1), 8).len() as u64;
            }
        }
        polled += nic.rx_burst(0, SimTime::from_secs(1), usize::MAX).len() as u64;
        let s = nic.stats(0);
        prop_assert_eq!(s.ipackets + s.imissed, n_frames as u64);
        prop_assert_eq!(polled + nic.rx_pending(0) as u64, s.ipackets);
    }

    /// TX departures are strictly increasing per port (the serializer never
    /// interleaves frames) and later requests never depart earlier.
    #[test]
    fn tx_departures_are_monotone(sizes in proptest::collection::vec(60usize..1514, 1..60)) {
        let costs = CostModel::morello();
        let mut nic = Nic::new(NicModel::Dual82576, 1);
        nic.set_link(0, true);
        let mut prev = SimTime::ZERO;
        for (i, &s) in sizes.iter().enumerate() {
            let dep = nic
                .tx(0, SimTime::from_nanos(i as u64), &Frame::new(vec![0; s]), &costs)
                .unwrap();
            prop_assert!(dep > prev);
            prev = dep;
        }
        prop_assert_eq!(nic.stats(0).opackets, sizes.len() as u64);
    }
}

/// Mbuf header algebra: prepend/adj are inverses and bounds are enforced
/// at every step (deterministic edge-case sweep).
#[test]
fn mbuf_prepend_adj_inverse() {
    let mut mem = TaggedMemory::new(1 << 20);
    let region = mem
        .root_cap()
        .try_restrict(0, 8 * DEFAULT_BUF_SIZE)
        .unwrap();
    let mut pool = Mempool::new("p", region, DEFAULT_BUF_SIZE).unwrap();
    for hdr_len in [1usize, 4, 14, 20, 40, 128] {
        let mut m = pool.alloc().unwrap();
        m.set_data(&mut mem, b"payload-payload-payload").unwrap();
        let before = m.read(&mut mem).unwrap();
        let hdr = vec![0xEE; hdr_len];
        if hdr_len <= usize::from(m.headroom()) {
            m.prepend(&mut mem, &hdr).unwrap();
            assert_eq!(m.data_len() as usize, before.len() + hdr_len);
            m.adj(hdr_len as u16).unwrap();
            assert_eq!(m.read(&mut mem).unwrap(), before);
        } else {
            assert!(m.prepend(&mut mem, &hdr).is_err());
        }
        pool.free(m);
    }
}

mod qos_properties {
    use proptest::prelude::*;
    use simkern::time::SimTime;
    use updk::qos::{Color, DrrScheduler, SrTcm, TokenBucket};
    use updk::wire::Frame;

    proptest! {
        /// Token-bucket conservation: over any schedule of conformant
        /// departures, bytes sent never exceed burst + rate × elapsed.
        #[test]
        fn bucket_never_exceeds_rate(
            rate in 1_000u64..1_000_000_000,
            burst in 10_000u64..100_000,
            sizes in proptest::collection::vec(1u64..10_000, 1..200),
        ) {
            // Frames conform (size <= burst); oversize frames intentionally
            // spill past the rate envelope (classic behavior) and are
            // covered by the unit test instead.
            let mut tb = TokenBucket::new(rate, burst);
            let mut now = SimTime::ZERO;
            let mut sent = 0u64;
            for s in sizes {
                now = tb.earliest_departure(now, s);
                tb.consume(now, s);
                sent += s;
            }
            let elapsed_s = now.as_nanos() as f64 / 1e9;
            let cap = burst as f64 + rate as f64 * elapsed_s;
            prop_assert!(
                sent as f64 <= cap + 1.0,
                "sent {sent} exceeds cap {cap:.0} (rate {rate}, burst {burst})"
            );
        }

        /// Departure instants are monotone: conformance can never be
        /// granted in the past relative to the request.
        #[test]
        fn bucket_departures_are_monotone(
            sizes in proptest::collection::vec(1u64..5_000, 1..100),
        ) {
            let mut tb = TokenBucket::new(1_000_000, 3_000);
            let mut now = SimTime::ZERO;
            for s in sizes {
                let dep = tb.earliest_departure(now, s);
                prop_assert!(dep >= now);
                tb.consume(dep, s);
                now = dep;
            }
        }

        /// DRR conservation: every enqueued frame is dequeued exactly
        /// once, regardless of weights and sizes.
        #[test]
        fn drr_conserves_frames(
            w0 in 1u32..16, w1 in 1u32..16,
            sizes in proptest::collection::vec((0usize..2, 1usize..1_514), 1..200),
        ) {
            let mut s = DrrScheduler::new(&[w0, w1], 1_514);
            let mut pushed = [0usize; 2];
            for (flow, size) in &sizes {
                s.enqueue(*flow, Frame::new(vec![0; *size]));
                pushed[*flow] += 1;
            }
            let mut popped = [0usize; 2];
            while let Some((flow, _)) = s.dequeue() {
                popped[flow] += 1;
            }
            prop_assert_eq!(pushed, popped);
            prop_assert_eq!(s.backlog(), 0);
        }

        /// srTCM marks are total and the green share never exceeds what
        /// CIR allows over the offered window.
        #[test]
        fn srtcm_green_bounded_by_cir(
            gap_us in 1u64..1_000,
            n in 10usize..200,
        ) {
            let cir = 1_000_000u64; // 1 MB/s
            let mut m = SrTcm::new(cir, 3_000, 3_000);
            let mut green_bytes = 0u64;
            let mut t = SimTime::ZERO;
            for _ in 0..n {
                if m.mark(t, 1_500) == Color::Green {
                    green_bytes += 1_500;
                }
                t += simkern::SimDuration::from_micros(gap_us);
            }
            let elapsed_s = t.as_nanos() as f64 / 1e9;
            let cap = 3_000.0 + cir as f64 * elapsed_s;
            prop_assert!(green_bytes as f64 <= cap + 1.0);
        }
    }
}

proptest! {
    /// FrameBuf headroom builds round-trip arbitrary payloads: appending a
    /// payload and prepending arbitrary header layers in place yields
    /// exactly `headers… ++ payload`, with headroom/tailroom accounting
    /// consistent throughout.
    #[test]
    fn framebuf_headroom_build_round_trips(
        payload in proptest::collection::vec(any::<u8>(), 0..1448),
        headers in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..24), 0..4),
    ) {
        let headroom: usize = headers.iter().map(Vec::len).sum();
        let mut fb = FrameBufMut::with_headroom(headroom);
        fb.append(&payload);
        prop_assert_eq!(fb.len(), payload.len());
        prop_assert_eq!(fb.tailroom(), BUF_CAPACITY - headroom - payload.len());
        // Prepend innermost-first, the way TCP → IP → Ethernet stack up.
        let mut expect = payload.clone();
        for h in headers.iter().rev() {
            fb.prepend(h);
            let mut e = h.clone();
            e.extend_from_slice(&expect);
            expect = e;
        }
        prop_assert_eq!(fb.headroom(), 0);
        prop_assert_eq!(fb.as_slice(), &expect[..]);
        let frozen = fb.freeze();
        prop_assert_eq!(&frozen[..], &expect[..]);
    }

    /// Slicing a frozen FrameBuf matches slicing the equivalent byte
    /// vector, for arbitrary nested sub-ranges, and slices compare equal
    /// to independent copies of the same bytes (identity-free equality).
    #[test]
    fn framebuf_slices_match_vec_slices(
        data in proptest::collection::vec(any::<u8>(), 1..1514),
        cuts in proptest::collection::vec((any::<u16>(), any::<u16>()), 1..6),
    ) {
        let f = FrameBuf::copy_from(&data);
        prop_assert_eq!(f.len(), data.len());
        let mut view = f.clone();
        let mut model: &[u8] = &data;
        for &(a, b) in &cuts {
            if model.is_empty() {
                break;
            }
            let start = usize::from(a) % model.len();
            let len = usize::from(b) % (model.len() - start + 1);
            view = view.slice(start, len);
            model = &model[start..start + len];
            prop_assert_eq!(view.as_slice(), model);
            prop_assert_eq!(&view, &FrameBuf::copy_from(model));
        }
        // The original view is untouched by slicing.
        prop_assert_eq!(f.as_slice(), &data[..]);
    }

    /// Pool conservation: buffers taken for arbitrary build/slice/drop
    /// sequences all flow back to the pool — takes equal recycles once
    /// every view is dropped.
    #[test]
    fn framebuf_pool_conserves_storage(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..256), 1..20),
    ) {
        let before = updk::framebuf::pool_stats();
        let mut held = Vec::new();
        for p in &payloads {
            let f = FrameBuf::copy_from(p);
            held.push(f.slice_from(p.len() / 2));
            held.push(f);
        }
        drop(held);
        let after = updk::framebuf::pool_stats();
        let taken = (after.fresh + after.reused) - (before.fresh + before.reused);
        prop_assert_eq!(taken, payloads.len() as u64);
        prop_assert_eq!(after.recycled - before.recycled, taken);
    }
}
