//! # updk — a user-space poll-mode packet framework (the DPDK substrate)
//!
//! The paper runs DPDK, ported to CHERI Morello in hybrid mode, beneath
//! F-Stack: the NIC is detached from the kernel, its rings and packet
//! buffers live in user-space memory "allocated with the correct permission
//! flags", and the application polls. This crate rebuilds that layer against
//! the simulated hardware:
//!
//! * [`kmod`] — the kernel-detach module: a PCI device must be unbound from
//!   the kernel driver and bound to userspace I/O before use.
//! * [`mempool`] / [`mbuf`] — packet-buffer pools carved out of
//!   [`cheri::TaggedMemory`] with capability-bounded buffers; every payload
//!   byte the stack touches is capability-checked.
//! * [`ring`] — fixed-capacity descriptor rings (the e1000-style RX/TX
//!   queues), with drop accounting.
//! * [`nic`] — the **Intel 82576 dual-port** model: per-port 1 Gbit/s
//!   serializers and a shared PCI bus whose DMA throughput caps dual-port
//!   bandwidth exactly where Table II observed it (≈ 658 Mbit/s per port
//!   receiving, ≈ 757 Mbit/s sending).
//! * [`framebuf`] — pooled, shared frame buffers (the `bytes::Bytes` /
//!   mbuf-headroom idiom): frames are built once with headroom, headers
//!   are prepended in place, and every hop shares one refcounted payload.
//! * [`wire`] — frames and cables: Ethernet framing overhead (preamble,
//!   IFG, FCS), propagation latency, and stochastic link impairments.
//! * [`switch`] — **LinkFabric**, an N-port learning switch (MAC table,
//!   flood-on-unknown/broadcast, bounded per-port egress queues) that turns
//!   pairwise cables into star/chain/dumbbell topologies.
//! * [`qos`] — traffic metering and scheduling (token bucket, RFC 2697
//!   srTCM, deficit round robin): the "DPDK QoS features" the paper defers
//!   to future work.
//! * [`ethdev`] — the DPDK-flavoured device API: configure, start,
//!   `rx_burst`, `tx_burst`, stats.
//!
//! # Example
//!
//! ```
//! use updk::ethdev::EthDev;
//! use updk::kmod::{BindingRegistry, PciAddress};
//! use updk::nic::NicModel;
//! use updk::wire::Frame;
//! use cheri::TaggedMemory;
//! use simkern::{CostModel, SimTime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mem = TaggedMemory::new(1 << 20);
//! let mut kmod = BindingRegistry::new();
//! let addr = PciAddress::new(0, 3, 0);
//! kmod.discover(addr, "Intel 82576 Gigabit Network Connection");
//! kmod.bind_userspace(addr)?; // detach from the kernel first
//!
//! let root = mem.root_cap();
//! let pool_region = root.try_restrict(0x10000, 0x40000)?;
//! let mut dev = EthDev::new(addr, NicModel::dual_82576(), CostModel::morello());
//! dev.configure_port(0, &mut mem, pool_region, 128)?;
//! dev.start(&kmod)?;
//!
//! // A frame arrives on port 0 and is polled out.
//! dev.deliver(0, SimTime::from_micros(5), Frame::new(vec![0u8; 64]));
//! let rx = dev.rx_burst(0, SimTime::from_micros(100), 32, &mut mem)?;
//! assert_eq!(rx.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod ethdev;
pub mod framebuf;
pub mod kmod;
pub mod mbuf;
pub mod mempool;
pub mod nic;
pub mod qos;
pub mod ring;
pub mod switch;
pub mod wire;

pub use ethdev::{EthDev, PortStats};
pub use framebuf::{FrameBuf, FrameBufMut};
pub use kmod::{BindingRegistry, DeviceBinding, PciAddress};
pub use mbuf::Mbuf;
pub use mempool::Mempool;
pub use nic::{MacAddr, Nic, NicModel};
pub use switch::{LinkFabric, SwitchStats, SwitchTx};
pub use wire::{Frame, ImpairmentStats, Impairments, Wire};

use std::fmt;

/// Errors of the packet framework (distinct from capability faults, which
/// surface as [`cheri::CapFault`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UpdkError {
    /// Device still bound to the kernel driver (run the kmod detach first).
    DeviceBoundToKernel,
    /// Unknown PCI address.
    NoSuchDevice,
    /// Port index out of range for the NIC model.
    NoSuchPort,
    /// The mempool has no free buffers.
    MempoolExhausted,
    /// A descriptor ring rejected entries (full).
    RingFull,
    /// Port not configured (no mempool attached).
    PortNotConfigured,
    /// Device not started.
    NotStarted,
    /// A capability operation failed while touching packet memory.
    Cap(cheri::CapFault),
}

impl fmt::Display for UpdkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdkError::DeviceBoundToKernel => {
                write!(f, "device is bound to the kernel driver; detach it first")
            }
            UpdkError::NoSuchDevice => write!(f, "no such pci device"),
            UpdkError::NoSuchPort => write!(f, "no such port"),
            UpdkError::MempoolExhausted => write!(f, "mempool exhausted"),
            UpdkError::RingFull => write!(f, "descriptor ring full"),
            UpdkError::PortNotConfigured => write!(f, "port not configured"),
            UpdkError::NotStarted => write!(f, "device not started"),
            UpdkError::Cap(e) => write!(f, "capability fault in packet memory: {e}"),
        }
    }
}

impl std::error::Error for UpdkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdkError::Cap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cheri::CapFault> for UpdkError {
    fn from(e: cheri::CapFault) -> Self {
        UpdkError::Cap(e)
    }
}
