//! The NIC model: Intel 82576 dual-port Gigabit with a shared PCI bus.
//!
//! The paper's testbed NIC is "a PCI card Intel 82576 Gigabit Network
//! Connection with two Ethernet ports" — and its PCI bus is precisely why
//! Table II's dual-port rows cannot reach line rate: "we are not achieving
//! high efficiency due to the hardware limitations imposed by the PCI NIC".
//!
//! The model has three timing stages per frame:
//!
//! * **TX**: DMA read over the shared PCI bus → egress
//!   serializer of the port (1 Gbit/s) → departure;
//! * **RX**: arrival → DMA write over the shared PCI bus → the frame
//!   becomes visible to `rx_burst` at the DMA-completion instant.
//!
//! The bus is modeled as two directions (PCIe is full duplex): an RX-DMA
//! server and a TX-DMA server, each a [`BusyResource`]. Both *ports* share
//! both servers; a host-side NIC (the measurement peer) uses
//! [`NicModel::host`] which has no bus constraint.

use crate::ring::DescRing;
use crate::wire::Frame;
use crate::UpdkError;
use simkern::cost::CostModel;
use simkern::resource::BusyResource;
use simkern::time::SimTime;
use std::fmt;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A locally administered address derived from a small id.
    pub fn local(id: u8) -> MacAddr {
        MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, id])
    }

    /// A locally administered station address for `port` of the device
    /// identified by `seed` (24 bits of device identity, so large switched
    /// topologies never collide — unlike [`MacAddr::local`], whose single
    /// byte wraps).
    pub fn station(seed: u32, port: u8) -> MacAddr {
        MacAddr([
            0x02,
            0x00,
            (seed >> 16) as u8,
            (seed >> 8) as u8,
            seed as u8,
            port,
        ])
    }

    /// The raw octets.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// `true` for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// What kind of NIC to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicModel {
    /// The paper's dual-port 82576 behind a shared PCI bus.
    Dual82576,
    /// An ideal single-port host NIC (measurement peer; no PCI ceiling).
    Host,
}

impl NicModel {
    /// Convenience constructor for the device under test.
    pub fn dual_82576() -> NicModel {
        NicModel::Dual82576
    }

    /// Convenience constructor for the peer host.
    pub fn host() -> NicModel {
        NicModel::Host
    }

    /// Number of Ethernet ports.
    pub fn port_count(&self) -> usize {
        match self {
            NicModel::Dual82576 => 2,
            NicModel::Host => 1,
        }
    }

    /// Whether the shared PCI bus constraint applies.
    pub fn has_pci_ceiling(&self) -> bool {
        matches!(self, NicModel::Dual82576)
    }
}

/// Hardware counters of one port (`rte_eth_stats` analog).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwStats {
    /// Frames received.
    pub ipackets: u64,
    /// Frames transmitted.
    pub opackets: u64,
    /// Bytes received (frame bytes, no wire overhead).
    pub ibytes: u64,
    /// Bytes transmitted.
    pub obytes: u64,
    /// RX frames dropped because the ring was full.
    pub imissed: u64,
}

#[derive(Debug)]
struct Port {
    mac: MacAddr,
    link_up: bool,
    egress: BusyResource,
    /// Frames DMA'd to memory, ready for rx_burst at the stored instant.
    rx_ready: DescRing<(SimTime, Frame)>,
    stats: HwStats,
}

/// A NIC instance: ports plus (for the 82576) the shared PCI bus.
#[derive(Debug)]
pub struct Nic {
    model: NicModel,
    ports: Vec<Port>,
    pci_rx: Option<BusyResource>,
    pci_tx: Option<BusyResource>,
}

impl Nic {
    /// Default RX ring depth per port.
    pub const RX_RING: usize = 512;

    /// Instantiates `model` with per-port MACs derived from `mac_seed`
    /// (device identity; every distinct seed yields disjoint MACs).
    pub fn new(model: NicModel, mac_seed: u32) -> Self {
        let ports = (0..model.port_count())
            .map(|i| Port {
                mac: MacAddr::station(mac_seed, i as u8),
                link_up: false,
                egress: BusyResource::new(),
                rx_ready: DescRing::new(Self::RX_RING),
                stats: HwStats::default(),
            })
            .collect();
        let (pci_rx, pci_tx) = if model.has_pci_ceiling() {
            (Some(BusyResource::new()), Some(BusyResource::new()))
        } else {
            (None, None)
        };
        Nic {
            model,
            ports,
            pci_rx,
            pci_tx,
        }
    }

    /// The NIC model.
    pub fn model(&self) -> NicModel {
        self.model
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// MAC address of `port`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid port index.
    pub fn mac(&self, port: usize) -> MacAddr {
        self.ports[port].mac
    }

    /// Brings the link up (done by [`crate::ethdev::EthDev::start`]).
    pub fn set_link(&mut self, port: usize, up: bool) {
        self.ports[port].link_up = up;
    }

    /// Link state of `port`.
    pub fn link_up(&self, port: usize) -> bool {
        self.ports[port].link_up
    }

    /// Hardware counters of `port`.
    pub fn stats(&self, port: usize) -> HwStats {
        self.ports[port].stats
    }

    /// Transmits `frame` from `port` at `now`: PCI DMA read, then egress
    /// serialization. Returns the **departure instant** (when the last bit
    /// leaves the port); the caller propagates it over the wire to the peer.
    ///
    /// # Errors
    ///
    /// [`UpdkError::NotStarted`] when the link is down.
    pub fn tx(
        &mut self,
        port: usize,
        now: SimTime,
        frame: &Frame,
        costs: &CostModel,
    ) -> Result<SimTime, UpdkError> {
        let wire_bytes = frame.wire_bytes();
        if port >= self.ports.len() {
            return Err(UpdkError::NoSuchPort);
        }
        if !self.ports[port].link_up {
            return Err(UpdkError::NotStarted);
        }
        // Stage 1: fetch the frame from memory over the (possibly shared) bus.
        let dma_done = match self.pci_tx.as_mut() {
            Some(bus) => bus.occupy(now, costs.pci_tx_cost(wire_bytes)),
            None => now,
        };
        // Stage 2: serialize onto the wire at line rate.
        let p = &mut self.ports[port];
        let departure = p.egress.occupy(dma_done, costs.wire_cost(wire_bytes));
        p.stats.opackets += 1;
        p.stats.obytes += frame.len() as u64;
        Ok(departure)
    }

    /// Delivers a frame arriving at `port` at instant `arrival`: PCI DMA
    /// write, then the frame is queued for `rx_burst` at the DMA-completion
    /// instant. Ring overflow drops the frame (`imissed`).
    pub fn deliver(&mut self, port: usize, arrival: SimTime, frame: Frame, costs: &CostModel) {
        let wire_bytes = frame.wire_bytes();
        let ready = match self.pci_rx.as_mut() {
            Some(bus) => bus.occupy(arrival, costs.pci_rx_cost(wire_bytes)),
            None => arrival,
        };
        let p = &mut self.ports[port];
        let len = frame.len() as u64;
        match p.rx_ready.enqueue((ready, frame)) {
            Ok(()) => {
                p.stats.ipackets += 1;
                p.stats.ibytes += len;
            }
            Err(_) => {
                p.stats.imissed += 1;
            }
        }
    }

    /// Polls up to `max` frames that are DMA-complete by `now` — the
    /// poll-mode receive the whole design is built around.
    ///
    /// Completion instants are monotone (the DMA engine serves in order),
    /// so one peek at the head decides the whole poll: the ring is never
    /// drained and rebuilt, and an idle poll touches nothing.
    pub fn rx_burst(&mut self, port: usize, now: SimTime, max: usize) -> Vec<Frame> {
        let p = &mut self.ports[port];
        let mut out = Vec::new();
        while out.len() < max {
            match p.rx_ready.peek() {
                Some((t, _)) if *t <= now => {
                    let (_, f) = p.rx_ready.dequeue().expect("peeked entry present");
                    out.push(f);
                }
                _ => break,
            }
        }
        out
    }

    /// Frames queued but not yet DMA-complete or polled.
    pub fn rx_pending(&self, port: usize) -> usize {
        self.ports[port].rx_ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkern::time::SimDuration;

    fn full_frame() -> Frame {
        Frame::new(vec![0; 1514])
    }

    fn started(model: NicModel) -> Nic {
        let mut nic = Nic::new(model, 10);
        for p in 0..nic.port_count() {
            nic.set_link(p, true);
        }
        nic
    }

    #[test]
    fn mac_addresses_are_distinct_and_local() {
        let nic = Nic::new(NicModel::Dual82576, 1);
        assert_ne!(nic.mac(0), nic.mac(1));
        assert_eq!(nic.mac(0).octets()[0], 0x02);
        assert_eq!(nic.mac(0).to_string(), "02:00:00:00:01:00");
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!nic.mac(0).is_broadcast());
        // Distinct device seeds yield disjoint MACs on every port — the
        // property the LinkFabric learning table depends on.
        let other = Nic::new(NicModel::Dual82576, 2);
        assert_ne!(nic.mac(0), other.mac(0));
        assert_ne!(nic.mac(1), other.mac(1));
    }

    #[test]
    fn tx_requires_link_up() {
        let mut nic = Nic::new(NicModel::Host, 1);
        let e = nic
            .tx(0, SimTime::ZERO, &full_frame(), &CostModel::morello())
            .unwrap_err();
        assert_eq!(e, UpdkError::NotStarted);
        assert!(matches!(
            nic.tx(7, SimTime::ZERO, &full_frame(), &CostModel::morello()),
            Err(UpdkError::NoSuchPort)
        ));
    }

    #[test]
    fn single_port_tx_is_wire_limited() {
        let costs = CostModel::morello();
        let mut nic = started(NicModel::Dual82576);
        let mut last = SimTime::ZERO;
        let n = 100;
        for _ in 0..n {
            last = nic.tx(0, SimTime::ZERO, &full_frame(), &costs).unwrap();
        }
        // Back-to-back frames serialize at 12 304 ns each (wire limited,
        // because a single port's PCI demand is below the bus capacity).
        let per_frame = last.as_nanos() as f64 / n as f64;
        assert!(
            (per_frame - 12_304.0).abs() < 120.0,
            "per frame {per_frame}"
        );
    }

    #[test]
    fn dual_port_tx_hits_the_pci_ceiling() {
        let costs = CostModel::morello();
        let mut nic = started(NicModel::Dual82576);
        let n = 200;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let a = nic.tx(0, SimTime::ZERO, &full_frame(), &costs).unwrap();
            let b = nic.tx(1, SimTime::ZERO, &full_frame(), &costs).unwrap();
            last = last.max(a).max(b);
        }
        // 2n frames of 1448B payload through the shared TX bus:
        let goodput_mbps = (2 * n) as f64 * 1448.0 * 8.0 / (last.as_nanos() as f64 / 1e9) / 1e6;
        // Both ports together ≈ 1514 Mbit/s → 757 each (Table II client).
        assert!(
            (goodput_mbps - 1514.0).abs() < 25.0,
            "aggregate {goodput_mbps}"
        );
    }

    #[test]
    fn dual_port_rx_hits_the_lower_pci_ceiling() {
        let costs = CostModel::morello();
        let mut nic = started(NicModel::Dual82576);
        // Deliver a steady dual-port arrival pattern and measure when the
        // frames become pollable.
        let mut t = SimTime::ZERO;
        let n = 200;
        let mut last_ready = SimTime::ZERO;
        for _ in 0..n {
            nic.deliver(0, t, full_frame(), &costs);
            nic.deliver(1, t, full_frame(), &costs);
            t += SimDuration::from_nanos(12_304); // line-rate arrivals
        }
        // Drain everything; the last frame's readiness bounds throughput.
        let far_future = SimTime::from_secs(1);
        for p in 0..2 {
            let got = nic.rx_burst(p, far_future, usize::MAX);
            assert!(got.len() as u64 + nic.stats(p).imissed >= n);
            last_ready = last_ready.max(t);
        }
        // The shared RX bus serves 2n frames at 8.8 µs each → ≈1316 Mbit/s.
        let total_ns = (2 * n) as f64 * costs.pci_rx_cost(1538).as_nanos() as f64;
        let goodput_mbps = (2 * n) as f64 * 1448.0 * 8.0 / (total_ns / 1e9) / 1e6;
        assert!(
            (goodput_mbps - 1316.0).abs() < 25.0,
            "aggregate {goodput_mbps}"
        );
    }

    #[test]
    fn rx_burst_respects_dma_completion_time() {
        let costs = CostModel::morello();
        let mut nic = started(NicModel::Dual82576);
        nic.deliver(0, SimTime::from_micros(10), full_frame(), &costs);
        // Polling before DMA completes sees nothing.
        assert!(nic.rx_burst(0, SimTime::from_micros(10), 32).is_empty());
        assert_eq!(nic.rx_pending(0), 1);
        // Polling after does.
        let got = nic.rx_burst(0, SimTime::from_micros(30), 32);
        assert_eq!(got.len(), 1);
        assert_eq!(nic.stats(0).ipackets, 1);
    }

    #[test]
    fn host_nic_has_no_pci_delay() {
        let costs = CostModel::morello();
        let mut nic = started(NicModel::Host);
        nic.deliver(0, SimTime::from_micros(1), full_frame(), &costs);
        assert_eq!(nic.rx_burst(0, SimTime::from_micros(1), 32).len(), 1);
    }

    #[test]
    fn ring_overflow_counts_imissed() {
        let costs = CostModel::morello();
        let mut nic = started(NicModel::Host);
        for _ in 0..(Nic::RX_RING + 10) {
            nic.deliver(0, SimTime::ZERO, Frame::new(vec![0; 64]), &costs);
        }
        assert_eq!(nic.stats(0).imissed, 10);
        assert_eq!(nic.stats(0).ipackets, Nic::RX_RING as u64);
    }

    #[test]
    fn stats_accumulate() {
        let costs = CostModel::morello();
        let mut nic = started(NicModel::Dual82576);
        nic.tx(0, SimTime::ZERO, &full_frame(), &costs).unwrap();
        nic.tx(0, SimTime::ZERO, &full_frame(), &costs).unwrap();
        let s = nic.stats(0);
        assert_eq!(s.opackets, 2);
        assert_eq!(s.obytes, 2 * 1514);
    }
}
